// CI perf-regression gate. Usage:
//
//   perf_gate <fresh.json> <baseline.json | baseline-dir/> [--max-regress=0.20]
//             [--min-us=50] [--warn-only]
//
// Both files may be repo BENCH_*.json perf records or google-benchmark
// --benchmark_out JSON. When the baseline argument is a *directory*, every
// `*.json` inside it is loaded in filename order (name baselines so
// lexicographic == chronological, e.g. `0001.json` or dated stamps): the
// newest gates exactly as a single-file baseline would, the older ones feed
// a drift table showing how each scope moved across the whole window. An
// empty directory behaves like a missing baseline file — warn and pass so
// the first CI run can bootstrap the history.
//
// Exit codes: 0 = no regression (or baseline file missing / directory
// empty — first-run warming, prints a warning), 1 = at least one scope
// regressed beyond the threshold, 2 = usage or unreadable/invalid input.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/perf_gate.h"
#include "util/json.h"

namespace {

void usage(std::ostream& out) {
  out << "usage: perf_gate <fresh.json> <baseline.json | baseline-dir/>\n"
         "                 [--max-regress=FRACTION] [--min-us=US] "
         "[--warn-only]\n";
}

bool parse_double_flag(const char* arg, const char* prefix, double* out) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  char* end = nullptr;
  const double v = std::strtod(arg + n, &end);
  if (end == arg + n || *end != '\0') {
    throw std::invalid_argument(std::string("bad value in ") + arg);
  }
  *out = v;
  return true;
}

/// Compares the dcs_build_type stamps of the fresh and gating-baseline
/// records. A mismatch (e.g. a debug fresh run against a release baseline)
/// makes every ratio meaningless, so it fails the gate unless --warn-only;
/// a matching non-release pair still warns. Unstamped records (older
/// formats) are not checked. Returns false when the gate must fail.
bool check_build_types(const dcs::json::Value& fresh,
                       const dcs::json::Value& baseline, bool warn_only) {
  const std::string f = dcs::exp::perf_record_build_type(fresh);
  const std::string b = dcs::exp::perf_record_build_type(baseline);
  if (f.empty() || b.empty()) {
    if (f.empty() != b.empty()) {
      std::cout << "perf_gate: warning: only one record carries a "
                   "dcs_build_type stamp (fresh='"
                << f << "', baseline='" << b
                << "'); build types not verified\n";
    }
    return true;
  }
  if (f != b) {
    std::cout << "perf_gate: build-type mismatch: fresh record is a '" << f
              << "' build, baseline is '" << b
              << "' — timings are not comparable"
              << (warn_only ? " (warn-only mode)" : "") << "\n";
    return warn_only;
  }
  if (f != "release") {
    std::cout << "perf_gate: warning: both records come from '" << f
              << "' builds; regenerate them from a release build before "
                 "trusting the ratios\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string fresh_path;
  std::string baseline_path;
  dcs::exp::PerfGateOptions options;
  try {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--warn-only") == 0) {
        options.warn_only = true;
      } else if (parse_double_flag(arg, "--max-regress=",
                                   &options.max_regress) ||
                 parse_double_flag(arg, "--min-us=", &options.min_us)) {
        // handled
      } else if (arg[0] == '-') {
        usage(std::cerr);
        return 2;
      } else if (fresh_path.empty()) {
        fresh_path = arg;
      } else if (baseline_path.empty()) {
        baseline_path = arg;
      } else {
        usage(std::cerr);
        return 2;
      }
    }
    if (fresh_path.empty() || baseline_path.empty()) {
      usage(std::cerr);
      return 2;
    }

    namespace fs = std::filesystem;
    // Trend mode: a baseline directory holds the history, filename order is
    // chronological, the newest file gates and the rest show drift.
    if (fs::is_directory(baseline_path)) {
      std::vector<std::string> paths;
      for (const fs::directory_entry& entry :
           fs::directory_iterator(baseline_path)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json") {
          paths.push_back(entry.path().string());
        }
      }
      if (paths.empty()) {
        std::cout << "perf_gate: baseline directory " << baseline_path
                  << " has no *.json records; skipping comparison (record a "
                     "baseline to arm the gate)\n";
        return 0;
      }
      std::sort(paths.begin(), paths.end());
      std::vector<dcs::exp::PerfTrendBaseline> baselines;
      dcs::json::Value newest_doc;  // gating baseline, for build-type check
      for (const std::string& path : paths) {
        dcs::json::Value doc = dcs::json::parse_file(path);
        baselines.push_back({fs::path(path).stem().string(),
                             dcs::exp::perf_scope_times_us(doc)});
        newest_doc = std::move(doc);
      }
      const dcs::json::Value fresh_doc = dcs::json::parse_file(fresh_path);
      const auto fresh = dcs::exp::perf_scope_times_us(fresh_doc);
      const bool types_ok =
          check_build_types(fresh_doc, newest_doc, options.warn_only);
      const dcs::exp::PerfTrendResult trend =
          dcs::exp::perf_trend(baselines, fresh, options);
      dcs::exp::write_perf_trend_report(std::cout, trend, options);
      return trend.ok() && types_ok ? 0 : 1;
    }

    // A missing baseline is the expected first-run state: warn and pass so
    // the CI step that generates the baseline can bootstrap itself.
    if (!std::ifstream(baseline_path)) {
      std::cout << "perf_gate: baseline " << baseline_path
                << " not found; skipping comparison (record a baseline to "
                   "arm the gate)\n";
      return 0;
    }

    const dcs::json::Value fresh_doc = dcs::json::parse_file(fresh_path);
    const dcs::json::Value baseline_doc = dcs::json::parse_file(baseline_path);
    const auto fresh = dcs::exp::perf_scope_times_us(fresh_doc);
    const auto baseline = dcs::exp::perf_scope_times_us(baseline_doc);
    const bool types_ok =
        check_build_types(fresh_doc, baseline_doc, options.warn_only);
    const dcs::exp::PerfGateResult result =
        dcs::exp::perf_gate_compare(baseline, fresh, options);
    dcs::exp::write_perf_gate_report(std::cout, result, options);
    return result.ok && types_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "perf_gate: " << e.what() << "\n";
    return 2;
  }
}
