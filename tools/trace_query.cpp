// Offline trace analysis CLI over the repo's trace encodings (Chrome JSON,
// trace/telemetry JSONL, merged timeline.jsonl). Usage:
//
//   trace_query scopes    <trace> [output] [--require-rows=N]
//   trace_query counters  <trace> [output] [--require-rows=N]
//   trace_query threshold <trace> --track=NAME --threshold=V
//                         [--above | --below] [--min-duration-us=V]
//                         [output] [--require-rows=N]
//   trace_query slo       <trace> --slo-ms=V [--min-duration-us=V]
//                         [output] [--require-rows=N]
//   trace_query decisions <trace> [--rule=NAME] [output] [--require-rows=N]
//   trace_query explain   <trace> [--id=ID | --rule=NAME] [output]
//                         [--require-rows=N] [--require-resolved]
//   trace_query audit     <trace> [output] [--require-rows=N]
//                         [--require-resolved] [--require-rule=NAME[:N]]
//                         [--require-monotone=TRACK]
//
//   output: --csv[=path] | --jsonl[=path]   (default: readable table)
//
// `scopes` prints duration stats per (src, span name); `counters` prints
// value stats per (src, counter track); `threshold` extracts the maximal
// windows during which a counter track was below (default) or above a
// threshold — e.g. `--track=cb_trip_margin_s --threshold=0.5 --below`
// finds the intervals where the circuit-breaker margin ran thin. `slo` is
// sugar for `threshold --track=serving_window_p99_ms --above`, extracting
// SLO-violation intervals from the serving layer's windowed p99 track.
//
// The decision-provenance commands work on cat="decision" instant events
// (obs/decision.h). `decisions` lists every DecisionRecord (optionally
// filtered by --rule); `explain` reconstructs the causal chain — the
// record, its cause, its cause's cause, back to a root — for one record
// (--id=d0-5) or every record of a rule (--rule=NAME; default
// sprint-onset); `audit` prints the per-(src, rule) inventory with
// chain-resolution counts, plus (table view) a budget-burn summary from
// the slo_* counter tracks when present.
//
// CI assertions (exit 1 when unmet): `--require-rows=N` needs >= N result
// rows; `--require-resolved` needs every reconstructed chain to reach a
// root (no dangling cause id); `--require-rule=NAME[:N]` needs >= N
// (default 1) records of that rule; `--require-monotone=TRACK` needs the
// counter track to be non-decreasing per (src, lane).
//
// `--csv` / `--jsonl` switch to byte-stable machine encodings (stdout, or
// a file with `=path`) for diffing across runs.
//
// Exit codes: 0 = ok, 1 = assertion unmet, 2 = usage/input error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/query.h"
#include "util/json.h"

namespace {

namespace query = dcs::obs::query;

struct Args {
  std::string command;
  std::string trace;
  bool csv = false;
  bool jsonl = false;
  std::string out_path;  // empty = stdout
  std::string track;
  std::optional<double> threshold;
  bool below = true;
  double min_duration_us = 0.0;
  std::optional<double> slo_ms;
  std::size_t require_rows = 0;
  std::string id;
  std::string rule;
  bool require_resolved = false;
  std::vector<std::string> require_rule;      // NAME or NAME:N
  std::vector<std::string> require_monotone;  // counter track names
};

int usage() {
  std::cerr
      << "usage: trace_query "
         "<scopes|counters|threshold|slo|decisions|explain|audit> <trace> "
         "[options]\n"
         "  --csv[=path]           CSV output (default: readable table)\n"
         "  --jsonl[=path]         JSONL output\n"
         "  --track=NAME           counter track (threshold)\n"
         "  --threshold=V          threshold value (threshold)\n"
         "  --below | --above      predicate direction (default --below)\n"
         "  --min-duration-us=V    drop windows shorter than V\n"
         "  --slo-ms=V             p99 target in ms (slo)\n"
         "  --id=ID                decision record to explain\n"
         "  --rule=NAME            decision rule filter (decisions, explain)\n"
         "  --require-rows=N       exit 1 unless >= N result rows\n"
         "  --require-resolved     exit 1 on any dangling cause id\n"
         "  --require-rule=NAME[:N] exit 1 unless >= N records of NAME\n"
         "  --require-monotone=TRACK exit 1 if TRACK ever decreases\n";
  return 2;
}

bool parse_double(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

bool parse(int argc, char** argv, Args* args) {
  if (argc < 3) return false;
  args->command = argv[1];
  args->trace = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix,
                              std::string* value) {
      if (arg.rfind(prefix, 0) != 0) return false;
      *value = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    double number = 0.0;
    if (arg == "--csv") {
      args->csv = true;
    } else if (value_of("--csv=", &value)) {
      args->csv = true;
      args->out_path = value;
    } else if (arg == "--jsonl") {
      args->jsonl = true;
    } else if (value_of("--jsonl=", &value)) {
      args->jsonl = true;
      args->out_path = value;
    } else if (value_of("--track=", &value)) {
      args->track = value;
    } else if (value_of("--threshold=", &value) &&
               parse_double(value, &number)) {
      args->threshold = number;
    } else if (arg == "--below") {
      args->below = true;
    } else if (arg == "--above") {
      args->below = false;
    } else if (value_of("--min-duration-us=", &value) &&
               parse_double(value, &number)) {
      args->min_duration_us = number;
    } else if (value_of("--slo-ms=", &value) && parse_double(value, &number)) {
      args->slo_ms = number;
    } else if (value_of("--require-rows=", &value) &&
               parse_double(value, &number)) {
      args->require_rows = static_cast<std::size_t>(number);
    } else if (value_of("--id=", &value)) {
      args->id = value;
    } else if (value_of("--rule=", &value)) {
      args->rule = value;
    } else if (arg == "--require-resolved") {
      args->require_resolved = true;
    } else if (value_of("--require-rule=", &value)) {
      args->require_rule.push_back(value);
    } else if (value_of("--require-monotone=", &value)) {
      args->require_monotone.push_back(value);
    } else {
      std::cerr << "trace_query: unknown option " << arg << "\n";
      return false;
    }
  }
  if (args->csv && args->jsonl) {
    std::cerr << "trace_query: --csv and --jsonl are mutually exclusive\n";
    return false;
  }
  return true;
}

/// Resolves the machine-output destination; the table view always goes to
/// stdout.
std::ostream* open_out(const Args& args, std::ofstream* file) {
  if ((!args.csv && !args.jsonl) || args.out_path.empty()) return &std::cout;
  file->open(args.out_path, std::ios::trunc);
  if (!*file) {
    std::cerr << "trace_query: cannot write " << args.out_path << "\n";
    return nullptr;
  }
  return file;
}

std::string fmt(double v) { return dcs::json::number_to_string(v); }

std::string tag(const std::string& src, const std::string& name) {
  return src.empty() ? name : src + "/" + name;
}

void print_scopes(std::ostream& out, const std::vector<query::ScopeStat>& s) {
  for (const query::ScopeStat& stat : s) {
    out << tag(stat.src, stat.name) << ": count=" << stat.count
        << " total_us=" << fmt(stat.total_us)
        << " mean_us=" << fmt(stat.mean_us())
        << " min_us=" << fmt(stat.min_us) << " max_us=" << fmt(stat.max_us)
        << "\n";
  }
}

void print_counters(std::ostream& out,
                    const std::vector<query::CounterStat>& s) {
  for (const query::CounterStat& stat : s) {
    out << tag(stat.src, stat.name) << ": points=" << stat.points
        << " min=" << fmt(stat.min) << " mean=" << fmt(stat.mean)
        << " max=" << fmt(stat.max) << " last=" << fmt(stat.last) << "\n";
  }
}

void print_windows(std::ostream& out,
                   const std::vector<query::ThresholdWindow>& windows) {
  for (const query::ThresholdWindow& w : windows) {
    out << (w.src.empty() ? std::string("trace") : w.src) << "/lane"
        << w.lane << ": ["
        << fmt(w.start_us) << " us, " << fmt(w.end_us) << " us] duration_us="
        << fmt(w.duration_us()) << " extreme=" << fmt(w.extreme) << "\n";
  }
}

void print_decisions(std::ostream& out,
                     const std::vector<query::DecisionRecord>& records) {
  for (const query::DecisionRecord& r : records) {
    out << tag(r.src, r.id) << " t=" << fmt(r.ts_us / 1e6) << "s " << r.rule;
    if (!r.cause.empty()) out << " <- " << r.cause;
    out << "\n";
  }
}

void print_explain(std::ostream& out,
                   const std::vector<query::DecisionRecord>& records,
                   const std::vector<query::ExplainChain>& chains) {
  for (const query::ExplainChain& c : chains) {
    if (c.chain.empty()) continue;
    const query::DecisionRecord& tgt = records[c.chain.front()];
    out << tag(tgt.src, tgt.id) << " " << tgt.rule << ":\n";
    for (std::size_t depth = 0; depth < c.chain.size(); ++depth) {
      const query::DecisionRecord& r = records[c.chain[depth]];
      out << "  ";
      for (std::size_t j = 0; j < depth; ++j) out << "  ";
      out << (depth == 0 ? "" : "<- ") << r.rule << " (" << r.id
          << ") t=" << fmt(r.ts_us / 1e6) << "s\n";
    }
    if (!c.complete()) {
      out << "  ";
      for (std::size_t j = 0; j < c.chain.size(); ++j) out << "  ";
      out << "<- MISSING " << c.dangling << "\n";
    }
  }
}

void print_audit(std::ostream& out, const std::vector<query::AuditRow>& rows,
                 const std::vector<query::CounterStat>& counters) {
  for (const query::AuditRow& r : rows) {
    out << tag(r.src, r.rule) << ": count=" << r.count
        << " roots=" << r.roots << " resolved=" << r.resolved
        << " dangling=" << r.dangling << "\n";
  }
  // Budget-burn summary when the trace carries the error-budget tracks.
  for (const query::CounterStat& c : counters) {
    if (c.name != "slo_budget_remaining" && c.name != "slo_burn_fast" &&
        c.name != "slo_burn_slow" && c.name != "slo_budget_violations") {
      continue;
    }
    out << tag(c.src, c.name) << ": last=" << fmt(c.last)
        << " min=" << fmt(c.min) << " max=" << fmt(c.max) << "\n";
  }
}

int finish(const Args& args, std::size_t rows) {
  if (rows < args.require_rows) {
    std::cerr << "trace_query: " << rows << " row(s) < required "
              << args.require_rows << "\n";
    return 1;
  }
  return 0;
}

/// Applies the decision/counter assertions shared by explain and audit.
/// Returns 0 when every assertion holds.
int check_assertions(const Args& args, const query::TraceData& trace,
                     const std::vector<query::DecisionRecord>& records,
                     std::size_t dangling_chains) {
  int rc = 0;
  if (args.require_resolved && dangling_chains > 0) {
    std::cerr << "trace_query: " << dangling_chains
              << " chain(s) with a dangling cause id\n";
    rc = 1;
  }
  for (const std::string& spec : args.require_rule) {
    std::string name = spec;
    std::size_t want = 1;
    const std::size_t colon = spec.rfind(':');
    if (colon != std::string::npos) {
      double n = 0.0;
      if (parse_double(spec.substr(colon + 1), &n)) {
        name = spec.substr(0, colon);
        want = static_cast<std::size_t>(n);
      }
    }
    std::size_t have = 0;
    for (const query::DecisionRecord& r : records) {
      if (r.rule == name) ++have;
    }
    if (have < want) {
      std::cerr << "trace_query: rule " << name << ": " << have
                << " record(s) < required " << want << "\n";
      rc = 1;
    }
  }
  for (const std::string& track : args.require_monotone) {
    const std::vector<query::MonotoneViolation> violations =
        query::counter_monotone(trace, track);
    for (const query::MonotoneViolation& v : violations) {
      std::cerr << "trace_query: " << tag(v.src, track) << " lane " << v.lane
                << " decreased " << fmt(v.prev) << " -> " << fmt(v.value)
                << " at ts_us=" << fmt(v.ts_us) << "\n";
    }
    if (!violations.empty()) rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, &args)) return usage();

  try {
    const query::TraceData trace = query::load_trace(args.trace);
    std::ofstream file;
    std::ostream* out = open_out(args, &file);
    if (out == nullptr) return 2;

    if (args.command == "scopes") {
      const std::vector<query::ScopeStat> stats = query::scope_stats(trace);
      if (args.csv) {
        query::write_scope_csv(*out, stats);
      } else if (args.jsonl) {
        query::write_scope_jsonl(*out, stats);
      } else {
        print_scopes(*out, stats);
      }
      return finish(args, stats.size());
    }
    if (args.command == "counters") {
      const std::vector<query::CounterStat> stats =
          query::counter_stats(trace);
      if (args.csv) {
        query::write_counter_csv(*out, stats);
      } else if (args.jsonl) {
        query::write_counter_jsonl(*out, stats);
      } else {
        print_counters(*out, stats);
      }
      return finish(args, stats.size());
    }
    if (args.command == "threshold" || args.command == "slo") {
      query::ThresholdQuery q;
      if (args.command == "slo") {
        if (!args.slo_ms.has_value()) {
          std::cerr << "trace_query: slo needs --slo-ms=V\n";
          return 2;
        }
        q.track = "serving_window_p99_ms";
        q.threshold = *args.slo_ms;
        q.below = false;
      } else {
        if (args.track.empty() || !args.threshold.has_value()) {
          std::cerr
              << "trace_query: threshold needs --track=NAME --threshold=V\n";
          return 2;
        }
        q.track = args.track;
        q.threshold = *args.threshold;
        q.below = args.below;
      }
      q.min_duration_us = args.min_duration_us;
      const std::vector<query::ThresholdWindow> windows =
          query::threshold_windows(trace, q);
      if (args.csv) {
        query::write_window_csv(*out, windows);
      } else if (args.jsonl) {
        query::write_window_jsonl(*out, windows);
      } else {
        print_windows(*out, windows);
      }
      return finish(args, windows.size());
    }
    if (args.command == "decisions") {
      std::vector<query::DecisionRecord> records =
          query::decision_records(trace);
      if (!args.rule.empty()) {
        std::erase_if(records, [&](const query::DecisionRecord& r) {
          return r.rule != args.rule;
        });
      }
      if (args.csv) {
        query::write_decision_csv(*out, records);
      } else if (args.jsonl) {
        query::write_decision_jsonl(*out, trace, records);
      } else {
        print_decisions(*out, records);
      }
      return finish(args, records.size());
    }
    if (args.command == "explain") {
      const std::vector<query::DecisionRecord> records =
          query::decision_records(trace);
      // Targets: one record by id, or every record of a rule (the default
      // rule answers the canonical question "why did each sprint start").
      const std::string rule = args.rule.empty() ? "sprint-onset" : args.rule;
      std::vector<std::size_t> targets;
      for (std::size_t i = 0; i < records.size(); ++i) {
        if (!args.id.empty() ? records[i].id == args.id
                             : records[i].rule == rule) {
          targets.push_back(i);
        }
      }
      if (!args.id.empty() && targets.empty()) {
        std::cerr << "trace_query: no decision record with id " << args.id
                  << "\n";
        return 2;
      }
      std::vector<query::ExplainChain> chains;
      chains.reserve(targets.size());
      std::size_t dangling = 0;
      for (const std::size_t t : targets) {
        chains.push_back(query::explain_record(records, t));
        if (!chains.back().complete()) ++dangling;
      }
      if (args.csv) {
        query::write_explain_csv(*out, records, chains);
      } else if (args.jsonl) {
        query::write_explain_jsonl(*out, trace, records, chains);
      } else {
        print_explain(*out, records, chains);
      }
      const int rc = check_assertions(args, trace, records, dangling);
      if (rc != 0) return rc;
      return finish(args, chains.size());
    }
    if (args.command == "audit") {
      const std::vector<query::DecisionRecord> records =
          query::decision_records(trace);
      const std::vector<query::AuditRow> rows = query::audit(records);
      if (args.csv) {
        query::write_audit_csv(*out, rows);
      } else if (args.jsonl) {
        query::write_audit_jsonl(*out, rows);
      } else {
        print_audit(*out, rows, query::counter_stats(trace));
      }
      std::size_t dangling = 0;
      for (const query::AuditRow& r : rows) dangling += r.dangling;
      const int rc = check_assertions(args, trace, records, dangling);
      if (rc != 0) return rc;
      return finish(args, rows.size());
    }
    std::cerr << "trace_query: unknown command " << args.command << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "trace_query: " << e.what() << "\n";
    return 2;
  }
}
