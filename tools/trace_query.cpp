// Offline trace analysis CLI over the repo's trace encodings (Chrome JSON,
// trace/telemetry JSONL, merged timeline.jsonl). Usage:
//
//   trace_query scopes    <trace> [--csv[=path]] [--require-rows=N]
//   trace_query counters  <trace> [--csv[=path]] [--require-rows=N]
//   trace_query threshold <trace> --track=NAME --threshold=V
//                         [--above | --below] [--min-duration-us=V]
//                         [--csv[=path]] [--require-rows=N]
//   trace_query slo       <trace> --slo-ms=V [--min-duration-us=V]
//                         [--csv[=path]] [--require-rows=N]
//
// `scopes` prints duration stats per (src, span name); `counters` prints
// value stats per (src, counter track); `threshold` extracts the maximal
// windows during which a counter track was below (default) or above a
// threshold — e.g. `--track=cb_trip_margin_s --threshold=0.5 --below`
// finds the intervals where the circuit-breaker margin ran thin. `slo` is
// sugar for `threshold --track=serving_window_p99_ms --above`, extracting
// SLO-violation intervals from the serving layer's windowed p99 track.
//
// `--csv` switches to the byte-stable CSV encoding (stdout, or a file with
// `--csv=path`) for diffing across runs. `--require-rows=N` exits 1 when
// fewer than N result rows were produced — the CI smoke test's assertion
// that e.g. every shard actually recorded sprint spans.
//
// Exit codes: 0 = ok, 1 = --require-rows unmet, 2 = usage/input error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/query.h"
#include "util/json.h"

namespace {

namespace query = dcs::obs::query;

struct Args {
  std::string command;
  std::string trace;
  bool csv = false;
  std::string csv_path;  // empty = stdout
  std::string track;
  std::optional<double> threshold;
  bool below = true;
  double min_duration_us = 0.0;
  std::optional<double> slo_ms;
  std::size_t require_rows = 0;
};

int usage() {
  std::cerr
      << "usage: trace_query <scopes|counters|threshold|slo> <trace> "
         "[options]\n"
         "  --csv[=path]         CSV output (default: readable table)\n"
         "  --track=NAME         counter track (threshold)\n"
         "  --threshold=V        threshold value (threshold)\n"
         "  --below | --above    predicate direction (default --below)\n"
         "  --min-duration-us=V  drop windows shorter than V\n"
         "  --slo-ms=V           p99 target in ms (slo)\n"
         "  --require-rows=N     exit 1 unless >= N result rows\n";
  return 2;
}

bool parse_double(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

bool parse(int argc, char** argv, Args* args) {
  if (argc < 3) return false;
  args->command = argv[1];
  args->trace = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const std::string& prefix,
                              std::string* value) {
      if (arg.rfind(prefix, 0) != 0) return false;
      *value = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    double number = 0.0;
    if (arg == "--csv") {
      args->csv = true;
    } else if (value_of("--csv=", &value)) {
      args->csv = true;
      args->csv_path = value;
    } else if (value_of("--track=", &value)) {
      args->track = value;
    } else if (value_of("--threshold=", &value) &&
               parse_double(value, &number)) {
      args->threshold = number;
    } else if (arg == "--below") {
      args->below = true;
    } else if (arg == "--above") {
      args->below = false;
    } else if (value_of("--min-duration-us=", &value) &&
               parse_double(value, &number)) {
      args->min_duration_us = number;
    } else if (value_of("--slo-ms=", &value) && parse_double(value, &number)) {
      args->slo_ms = number;
    } else if (value_of("--require-rows=", &value) &&
               parse_double(value, &number)) {
      args->require_rows = static_cast<std::size_t>(number);
    } else {
      std::cerr << "trace_query: unknown option " << arg << "\n";
      return false;
    }
  }
  return true;
}

/// Resolves the CSV destination; the table view always goes to stdout.
std::ostream* open_out(const Args& args, std::ofstream* file) {
  if (!args.csv || args.csv_path.empty()) return &std::cout;
  file->open(args.csv_path, std::ios::trunc);
  if (!*file) {
    std::cerr << "trace_query: cannot write " << args.csv_path << "\n";
    return nullptr;
  }
  return file;
}

std::string fmt(double v) { return dcs::json::number_to_string(v); }

std::string tag(const std::string& src, const std::string& name) {
  return src.empty() ? name : src + "/" + name;
}

void print_scopes(std::ostream& out, const std::vector<query::ScopeStat>& s) {
  for (const query::ScopeStat& stat : s) {
    out << tag(stat.src, stat.name) << ": count=" << stat.count
        << " total_us=" << fmt(stat.total_us)
        << " mean_us=" << fmt(stat.mean_us())
        << " min_us=" << fmt(stat.min_us) << " max_us=" << fmt(stat.max_us)
        << "\n";
  }
}

void print_counters(std::ostream& out,
                    const std::vector<query::CounterStat>& s) {
  for (const query::CounterStat& stat : s) {
    out << tag(stat.src, stat.name) << ": points=" << stat.points
        << " min=" << fmt(stat.min) << " mean=" << fmt(stat.mean)
        << " max=" << fmt(stat.max) << " last=" << fmt(stat.last) << "\n";
  }
}

void print_windows(std::ostream& out,
                   const std::vector<query::ThresholdWindow>& windows) {
  for (const query::ThresholdWindow& w : windows) {
    out << (w.src.empty() ? std::string("trace") : w.src) << "/lane"
        << w.lane << ": ["
        << fmt(w.start_us) << " us, " << fmt(w.end_us) << " us] duration_us="
        << fmt(w.duration_us()) << " extreme=" << fmt(w.extreme) << "\n";
  }
}

int finish(const Args& args, std::size_t rows) {
  if (rows < args.require_rows) {
    std::cerr << "trace_query: " << rows << " row(s) < required "
              << args.require_rows << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, &args)) return usage();

  try {
    const query::TraceData trace = query::load_trace(args.trace);
    std::ofstream file;
    std::ostream* out = open_out(args, &file);
    if (out == nullptr) return 2;

    if (args.command == "scopes") {
      const std::vector<query::ScopeStat> stats = query::scope_stats(trace);
      if (args.csv) {
        query::write_scope_csv(*out, stats);
      } else {
        print_scopes(*out, stats);
      }
      return finish(args, stats.size());
    }
    if (args.command == "counters") {
      const std::vector<query::CounterStat> stats =
          query::counter_stats(trace);
      if (args.csv) {
        query::write_counter_csv(*out, stats);
      } else {
        print_counters(*out, stats);
      }
      return finish(args, stats.size());
    }
    if (args.command == "threshold" || args.command == "slo") {
      query::ThresholdQuery q;
      if (args.command == "slo") {
        if (!args.slo_ms.has_value()) {
          std::cerr << "trace_query: slo needs --slo-ms=V\n";
          return 2;
        }
        q.track = "serving_window_p99_ms";
        q.threshold = *args.slo_ms;
        q.below = false;
      } else {
        if (args.track.empty() || !args.threshold.has_value()) {
          std::cerr
              << "trace_query: threshold needs --track=NAME --threshold=V\n";
          return 2;
        }
        q.track = args.track;
        q.threshold = *args.threshold;
        q.below = args.below;
      }
      q.min_duration_us = args.min_duration_us;
      const std::vector<query::ThresholdWindow> windows =
          query::threshold_windows(trace, q);
      if (args.csv) {
        query::write_window_csv(*out, windows);
      } else {
        print_windows(*out, windows);
      }
      return finish(args, windows.size());
    }
    std::cerr << "trace_query: unknown command " << args.command << "\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "trace_query: " << e.what() << "\n";
    return 2;
  }
}
