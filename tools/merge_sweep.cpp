// Merge sharded sweep checkpoints into one checkpoint file. Usage:
//
//   merge_sweep <out.ckpt.jsonl> <in1.ckpt.jsonl> [in2.ckpt.jsonl ...]
//
// Every input must exist and carry the same sweep fingerprint (name, base
// seed, task count, metrics); an index covered by two inputs must hold
// bit-identical rows. The merged checkpoint is spec-agnostic — re-running
// the bench with checkpoint= pointed at it executes zero tasks and writes
// the final rows/summary CSVs, byte-identical to an unsharded run.
//
// Exit codes: 0 = merged and complete (every task index covered), 1 =
// merged but incomplete (prints which count is missing), 2 = usage or
// unreadable/conflicting input.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/checkpoint.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: merge_sweep <out.ckpt.jsonl> <in1.ckpt.jsonl> "
                 "[in2.ckpt.jsonl ...]\n";
    return 2;
  }
  try {
    std::vector<dcs::exp::CheckpointData> shards;
    for (int i = 2; i < argc; ++i) {
      dcs::exp::CheckpointData data = dcs::exp::load_checkpoint(argv[i]);
      if (!data.present) {
        std::cerr << "merge_sweep: " << argv[i] << " not found\n";
        return 2;
      }
      shards.push_back(std::move(data));
    }
    const dcs::exp::CheckpointData merged =
        dcs::exp::merge_checkpoints(shards);

    // Temp-file + atomic rename: a crash or full disk mid-merge must never
    // leave a truncated output that a later resume would adopt as valid.
    if (!dcs::exp::write_checkpoint_atomic(argv[1], merged)) {
      std::cerr << "merge_sweep: failed writing " << argv[1] << "\n";
      return 2;
    }

    std::cout << "merge_sweep: sweep '" << merged.sweep << "' "
              << merged.rows.size() << "/" << merged.task_count
              << " tasks from " << shards.size() << " checkpoint(s) -> "
              << argv[1] << "\n";
    if (!merged.complete()) {
      std::cout << "merge_sweep: incomplete ("
                << merged.task_count - merged.rows.size()
                << " task(s) missing)\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "merge_sweep: " << e.what() << "\n";
    return 2;
  }
}
