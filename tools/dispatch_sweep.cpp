// Fault-tolerant distributed sweep dispatcher. Usage:
//
//   dispatch_sweep --shards=N --dir=WORKDIR [flags] -- <bench command...>
//
// Spawns N shard workers from the command template (appending `shard=i/N
// checkpoint=WORKDIR/shard_i` to each), supervises them — restarting
// crashed, stalled or deadline-blown workers with exponential backoff under
// a per-shard retry budget — and merges the shard checkpoints into
// WORKDIR/merged/ when the fleet finishes. A machine-readable dispatch
// report (per-shard attempts, restarts, rows, missing task indices) lands
// at WORKDIR/dispatch_report.json (see EXPERIMENTS.md for the schema).
//
// Flags:
//   --retries=K            restarts per shard before giving up (default 3)
//   --stall-timeout=S      kill a worker whose checkpoint stopped growing
//                          for S seconds (default 120; 0 disables)
//   --deadline=S           per-attempt wall-clock cap (default 0 = none)
//   --backoff=S            backoff base (default 0.5; doubles per restart)
//   --backoff-max=S        backoff cap (default 30)
//   --poll=S               supervisor poll interval (default 0.05)
//   --grace=S              drain grace period after SIGTERM (default 10)
//   --chaos-kill-prob=P    per-poll kill probability per live worker
//   --chaos-seed=N         chaos RNG seed
//   --chaos-kill-limit=N   disarm chaos after N kills (0 = unlimited)
//   --telemetry            stream telemetry: workers write per-attempt
//                          JSONL streams the dispatcher tails for live
//                          per-shard progress/ETA lines, and everything
//                          (dispatcher + all worker attempts) merges into
//                          WORKDIR/merged/timeline.{jsonl,perfetto} +
//                          timeline_trace.json + dispatch_stacks.folded
//   --status-interval=S    cadence of aggregated status lines (default 5)
//   --report=PATH          report path (default WORKDIR/dispatch_report.json)
//   --resume-report=PATH   resume a degraded run: seed the merged sweep
//                          checkpoints named in PATH (a prior run's
//                          dispatch_report.json) into the new shard dirs, so
//                          only the report's missing task indices are
//                          recomputed; shards with nothing pending never spawn
//   --quiet                suppress supervision diagnostics
//
// SIGINT/SIGTERM drain cleanly: SIGTERM is forwarded to the workers, which
// finish their in-flight tasks and flush their checkpoints (bench_util's
// worker-mode contract), then the merged state and report are written so
// the run can resume later. A second signal exits immediately.
//
// Exit codes: 0 = complete (every task of every sweep merged), 1 = degraded
// (retry budget exhausted somewhere; partial merge + report written), 2 =
// usage or unusable options, 3 = interrupted (drained on signal).
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "exp/dispatch.h"

namespace {

std::atomic<bool> g_stop{false};

void drain_handler(int sig) {
  // Second signal: the user really means it.
  if (g_stop.exchange(true)) ::_exit(128 + sig);
}

void install_handlers() {
  struct sigaction action = {};
  action.sa_handler = drain_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

void usage(std::ostream& out) {
  out << "usage: dispatch_sweep --shards=N --dir=WORKDIR\n"
         "                      [--retries=K] [--stall-timeout=S] "
         "[--deadline=S]\n"
         "                      [--backoff=S] [--backoff-max=S] [--poll=S] "
         "[--grace=S]\n"
         "                      [--chaos-kill-prob=P] [--chaos-seed=N] "
         "[--chaos-kill-limit=N]\n"
         "                      [--telemetry] [--status-interval=S]\n"
         "                      [--report=PATH] [--resume-report=PATH] "
         "[--quiet] -- <command...>\n";
}

bool parse_value_flag(const char* arg, const char* prefix, std::string* out) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *out = arg + n;
  return true;
}

bool parse_double_flag(const char* arg, const char* prefix, double* out) {
  std::string text;
  if (!parse_value_flag(arg, prefix, &text)) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument(std::string("bad value in ") + arg);
  }
  *out = v;
  return true;
}

bool parse_size_flag(const char* arg, const char* prefix, std::size_t* out) {
  double v = 0.0;
  if (!parse_double_flag(arg, prefix, &v)) return false;
  if (v < 0.0 || v != static_cast<double>(static_cast<std::size_t>(v))) {
    throw std::invalid_argument(std::string("bad value in ") + arg);
  }
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  dcs::exp::DispatchOptions options;
  std::string report_path;
  bool quiet = false;
  std::size_t chaos_seed = 0;
  bool have_chaos_seed = false;
  try {
    int i = 1;
    for (; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--") == 0) {
        ++i;
        break;
      }
      if (std::strcmp(arg, "--quiet") == 0) {
        quiet = true;
      } else if (std::strcmp(arg, "--telemetry") == 0) {
        options.telemetry = true;
      } else if (parse_size_flag(arg, "--shards=", &options.shards) ||
                 parse_size_flag(arg, "--retries=", &options.max_restarts) ||
                 parse_size_flag(arg, "--chaos-kill-limit=",
                                 &options.chaos_kill_limit) ||
                 parse_double_flag(arg, "--stall-timeout=",
                                   &options.stall_timeout_s) ||
                 parse_double_flag(arg, "--deadline=",
                                   &options.attempt_deadline_s) ||
                 parse_double_flag(arg, "--backoff=",
                                   &options.backoff_base_s) ||
                 parse_double_flag(arg, "--backoff-max=",
                                   &options.backoff_max_s) ||
                 parse_double_flag(arg, "--poll=", &options.poll_interval_s) ||
                 parse_double_flag(arg, "--grace=", &options.grace_period_s) ||
                 parse_double_flag(arg, "--status-interval=",
                                   &options.status_interval_s) ||
                 parse_double_flag(arg, "--chaos-kill-prob=",
                                   &options.chaos_kill_prob) ||
                 parse_value_flag(arg, "--dir=", &options.work_dir) ||
                 parse_value_flag(arg, "--report=", &report_path) ||
                 parse_value_flag(arg, "--resume-report=",
                                  &options.resume_report_path)) {
        // handled
      } else if (parse_size_flag(arg, "--chaos-seed=", &chaos_seed)) {
        have_chaos_seed = true;
      } else {
        std::cerr << "dispatch_sweep: unknown flag '" << arg << "'\n";
        usage(std::cerr);
        return 2;
      }
    }
    for (; i < argc; ++i) options.command.emplace_back(argv[i]);
    if (options.command.empty() || options.work_dir.empty() ||
        options.shards == 0) {
      usage(std::cerr);
      return 2;
    }
    if (have_chaos_seed) options.chaos_seed = chaos_seed;
    if (report_path.empty()) {
      report_path = options.work_dir + "/dispatch_report.json";
    }
    options.stop = &g_stop;
    options.log = quiet ? nullptr : &std::cerr;
    install_handlers();

    const dcs::exp::DispatchReport report = dcs::exp::dispatch_sweep(options);

    if (!dcs::exp::write_dispatch_report(report_path, report)) {
      std::cerr << "dispatch_sweep: cannot write report " << report_path
                << "\n";
      return 2;
    }
    std::cout << "dispatch_sweep: " << report.status << " — "
              << report.shards << " shard(s), " << report.chaos_kills
              << " chaos kill(s)\n";
    for (const dcs::exp::ShardStatus& s : report.shard_status) {
      std::cout << "  shard " << s.shard << ": " << s.state << ", "
                << s.attempts.size() << " attempt(s), " << s.restarts
                << " restart(s), " << s.rows << " row(s)\n";
    }
    for (const dcs::exp::MergedSweep& m : report.merged) {
      std::cout << "  sweep '" << m.sweep << "': " << m.rows << "/"
                << m.task_count << " task(s)"
                << (m.error.empty() ? "" : " — " + m.error);
      if (!m.missing.empty()) {
        std::cout << ", missing " << m.missing.size() << " task(s)";
      }
      std::cout << "\n";
    }
    if (report.telemetry) {
      if (report.timeline.ok()) {
        std::cout << "  timeline: " << report.timeline.events
                  << " event(s) from " << report.timeline.sources
                  << " stream(s) -> " << report.timeline.jsonl_path << "\n";
      } else {
        std::cout << "  timeline: " << report.timeline.error << "\n";
      }
    }
    std::cout << "dispatch_sweep: report -> " << report_path << "\n";
    return report.exit_code();
  } catch (const std::exception& e) {
    std::cerr << "dispatch_sweep: " << e.what() << "\n";
    return 2;
  }
}
