// Burst response: an operator's view of one workload burst.
//
// Builds the default data center, injects a burst you describe on the
// command line, runs all four strategies, and prints a per-minute timeline
// of the best one (demand, achieved, degree, phase, breaker heat, ESD state)
// plus a CSV export if requested.
//
// Usage: burst_response [degree=3.2] [minutes=12] [error=0.0] [csv=dir]
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/heuristic_strategy.h"
#include "core/oracle.h"
#include "core/prediction_strategy.h"
#include "util/config.h"
#include "util/csv.h"
#include "util/table.h"
#include "workload/predictor.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = Config::from_args(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));

  const double degree = args.get_double("degree", 3.2);
  const double minutes = args.get_double("minutes", 12.0);
  const double error = args.get_double("error", 0.0);

  DataCenterConfig config;
  config.fleet.pdu_count = static_cast<std::size_t>(args.get_int("pdus", 8));
  DataCenter dc(config);

  workload::YahooTraceParams tp;
  tp.burst_degree = degree;
  tp.burst_duration = Duration::minutes(minutes);
  if (tp.burst_start + tp.burst_duration + Duration::minutes(5) > tp.length) {
    tp.length = tp.burst_start + tp.burst_duration + Duration::minutes(5);
  }
  const TimeSeries trace = workload::generate_yahoo_trace(tp);
  const workload::BurstTruth truth = workload::measure_burst_truth(trace);

  std::cout << "Burst: degree " << format_double(degree, 1) << "x for "
            << format_double(minutes, 0) << " min (forecast error "
            << format_double(error * 100.0, 0) << "%)\n\n";

  // Build the oracle reference and the prediction table.
  const std::vector<Duration> durations = {
      Duration::minutes(1), Duration::minutes(5), Duration::minutes(10),
      Duration::minutes(15), Duration::minutes(25)};
  const std::vector<double> degrees = {1.5, 2.0, 2.6, 3.0, 3.6};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 4);

  const OracleResult oracle = oracle_search(dc, trace, 2);
  ConstantBoundStrategy oracle_strategy(oracle.best_bound, "oracle");
  const RunResult oracle_run = dc.run(trace, &oracle_strategy);

  const workload::ErrorfulForecast forecast(truth, error);
  GreedyStrategy greedy;
  PredictionStrategy prediction(forecast.predicted_duration(), &table);
  HeuristicStrategy heuristic(forecast.apply(oracle_run.avg_sprint_degree),
                              dc.budget_degree_seconds());

  TablePrinter summary(
      {"strategy", "avg perf", "drop %", "sprint min", "min UPS SoC"});
  RunResult best_run;
  std::string best_name;
  double best_perf = 0.0;
  auto consider = [&](const char* name, Strategy* s) {
    RunResult r = dc.run(trace, s, {.record = true});
    summary.add_row(name, {r.performance_factor, r.drop_fraction * 100.0,
                           r.sprint_time.min(), r.min_ups_soc});
    if (r.performance_factor > best_perf) {
      best_perf = r.performance_factor;
      best_run = std::move(r);
      best_name = name;
    }
  };
  consider("greedy", &greedy);
  consider("prediction", &prediction);
  consider("heuristic", &heuristic);
  consider("oracle", &oracle_strategy);
  summary.print(std::cout);

  std::cout << "\nTimeline of the best strategy (" << best_name << "):\n";
  TablePrinter timeline({"min", "demand", "achieved", "degree", "phase",
                         "dc CB heat", "UPS SoC", "TES SoC", "room C"});
  const auto& rec = best_run.recorder;
  for (double m = 0.0; m <= trace.end_time().min(); m += 2.0) {
    const Duration t = Duration::minutes(m);
    timeline.add_row(format_double(m, 0),
                     {rec.series("demand").at(t), rec.series("achieved").at(t),
                      rec.series("degree").at(t), rec.series("phase").at(t),
                      rec.series("dc_cb_heat").at(t),
                      rec.series("ups_soc").at(t), rec.series("tes_soc").at(t),
                      rec.series("room_c").at(t)},
                     2);
  }
  timeline.print(std::cout);

  const std::string csv_dir = args.get_string("csv", "");
  if (!csv_dir.empty()) {
    for (const std::string& ch : rec.channels()) {
      std::ofstream out(csv_dir + "/burst_" + ch + ".csv");
      CsvWriter csv(out);
      csv.write_row({"time_s", ch});
      for (const Sample& s : rec.series(ch).samples()) {
        csv.write_numeric_row({s.time.sec(), s.value});
      }
    }
    std::cout << "\nwrote per-channel CSVs to " << csv_dir << "/\n";
  }
  return 0;
}
