// Quickstart: build the paper's default data center, replay the synthetic
// MS workload, and compare Data Center Sprinting against the baselines.
//
// Usage: quickstart [key=value ...]   e.g.  quickstart dc_headroom=0.2 pdus=16
#include <iostream>
#include <span>

#include "core/datacenter.h"
#include "core/oracle.h"
#include "util/config.h"
#include "util/table.h"
#include "workload/burst.h"
#include "workload/ms_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;

  const Config args = Config::from_args(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));

  core::DataCenterConfig config;
  // All normalized results are invariant to the PDU count (see datacenter.h);
  // a small count keeps the quickstart fast.
  config.fleet.pdu_count =
      static_cast<std::size_t>(args.get_int("pdus", 8));
  config.dc_headroom = args.get_double("dc_headroom", 0.10);
  core::DataCenter dc(config);

  const TimeSeries demand = workload::generate_ms_trace();
  const workload::BurstStats stats = workload::analyze_bursts(demand);
  std::cout << "Synthetic MS trace: peak demand "
            << format_double(stats.peak_demand, 2) << "x capacity, "
            << format_double(stats.over_capacity_time.min(), 1)
            << " min over capacity in " << stats.burst_count << " bursts\n\n";

  TablePrinter table({"mode", "avg perf", "drop %", "sprint min", "UPS kWh",
                      "TES kWh", "peak room C", "tripped"});
  auto report = [&](const char* label, const core::RunResult& r) {
    table.add_row(label,
                  {r.performance_factor, r.drop_fraction * 100.0,
                   r.sprint_time.min(), r.ups_energy.kwh(),
                   r.tes_saved_energy.kwh(), r.peak_room_temperature.c(),
                   r.tripped ? 1.0 : 0.0});
  };

  core::RunOptions opts;
  report("no-sprint", dc.run(demand, nullptr, {.mode = core::Mode::kNoSprint}));
  report("power-capped",
         dc.run(demand, nullptr, {.mode = core::Mode::kPowerCapped}));
  report("uncontrolled",
         dc.run(demand, nullptr, {.mode = core::Mode::kUncontrolled}));

  core::GreedyStrategy greedy;
  report("DCS greedy", dc.run(demand, &greedy, opts));

  const core::OracleResult oracle = core::oracle_search(dc, demand);
  core::ConstantBoundStrategy best(oracle.best_bound, "oracle");
  report("DCS oracle", dc.run(demand, &best, opts));

  table.print(std::cout);
  std::cout << "\nOracle best bound: " << format_double(oracle.best_bound, 2)
            << " (degree)\n";
  return 0;
}
