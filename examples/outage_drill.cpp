// Outage drill: what happens to a sprinting data center when the utility
// feed stumbles?
//
// Injects a supply disturbance in the middle of a burst and shows the
// paper's Section IV-A safety behaviour: the sprint ends immediately, the
// UPS banks bridge the shortfall, the diesel generator starts, and no
// breaker ever trips.
//
// Usage: outage_drill [dip=0.6] [at_min=8] [dip_min=3] [gen_delay=45]
#include <iostream>
#include <span>

#include "core/datacenter.h"
#include "power/generator.h"
#include "util/config.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = Config::from_args(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));
  const double dip = args.get_double("dip", 0.6);
  const double at_min = args.get_double("at_min", 8.0);
  const double dip_min = args.get_double("dip_min", 3.0);
  const double gen_delay = args.get_double("gen_delay", 45.0);

  DataCenterConfig config;
  config.fleet.pdu_count = 8;
  DataCenter dc(config);

  workload::YahooTraceParams tp;
  tp.burst_degree = 3.0;
  tp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(tp);

  TimeSeries supply;
  supply.push_back(Duration::zero(), 1.0);
  supply.push_back(Duration::minutes(at_min), dip);
  supply.push_back(Duration::minutes(at_min + dip_min), 1.0);
  supply.push_back(trace.end_time(), 1.0);

  power::DieselGenerator generator(
      "gen", {.rated = config.dc_rated(),
              .start_delay = Duration::seconds(gen_delay)});

  std::cout << "Burst 3.0x for 15 min; feed dips to "
            << format_double(dip * 100.0, 0) << "% at minute "
            << format_double(at_min, 0) << " for "
            << format_double(dip_min, 0) << " min; generator start delay "
            << format_double(gen_delay, 0) << " s\n\n";

  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy,
                             {.record = true,
                              .supply_fraction = &supply,
                              .generator = &generator});

  TablePrinter table({"min", "demand", "achieved", "degree", "supply",
                      "UPS MW", "UPS SoC", "dc CB heat"});
  const auto& rec = r.recorder;
  for (double m = at_min - 3.0; m <= at_min + dip_min + 3.0; m += 0.5) {
    const Duration t = Duration::minutes(m);
    table.add_row(format_double(m, 1),
                  {rec.series("demand").at(t), rec.series("achieved").at(t),
                   rec.series("degree").at(t), rec.series("supply").at(t),
                   rec.series("ups_mw").at(t), rec.series("ups_soc").at(t),
                   rec.series("dc_cb_heat").at(t)},
                  2);
  }
  table.print(std::cout);

  std::cout << "\nResult: " << (r.tripped ? "BREAKER TRIPPED" : "no trips")
            << "; generator " << (generator.running() ? "running" : "off")
            << "; avg performance " << format_double(r.performance_factor, 2)
            << "x\nThe sprint aborts the moment the feed derates"
               " (Section IV-A), the UPS bridges until the\ngenerator"
               " synchronizes, and normal service continues through the"
               " disturbance.\n";
  return 0;
}
