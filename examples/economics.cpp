// Economics explorer: is sprinting profitable for *your* data center?
//
// Reproduces the paper's Section V-D cost/revenue analysis with every input
// exposed on the command line.
//
// Usage: economics [servers=18750] [N=4] [bursts=3] [minutes=5]
//                  [utilization=1.0] [ut_over_u0=4] [core_usd=40]
#include <iostream>
#include <span>

#include "econ/profitability.h"
#include "util/config.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::econ;
  const Config args = Config::from_args(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));

  CostModel::Params cost_params;
  cost_params.servers =
      static_cast<std::size_t>(args.get_int("servers", 18750));
  cost_params.core_cost_usd = args.get_double("core_usd", 40.0);
  const double n = args.get_double("N", 4.0);
  const int bursts = args.get_int("bursts", 3);
  const double minutes = args.get_double("minutes", 5.0);
  const double utilization = args.get_double("utilization", 1.0);
  const double ut_over_u0 = args.get_double("ut_over_u0", 4.0);

  const ProfitabilityAnalysis analysis{CostModel{cost_params}, RevenueModel{}};
  const ProfitBreakdown p =
      analysis.analyze(n, minutes, bursts, utilization, ut_over_u0);

  std::cout << "Data center: " << cost_params.servers << " servers, max"
            << " sprinting degree " << format_double(n, 1) << "\n"
            << "Bursts: " << bursts << " per month, "
            << format_double(minutes, 0) << " min each, utilizing "
            << format_double(utilization * 100.0, 0)
            << "% of the extra cores; Ut = " << format_double(ut_over_u0, 0)
            << " U0\n\n";

  TablePrinter table({"item", "$/month"});
  table.add_row({"dark-core provisioning cost",
                 format_double(-p.cost_usd, 0)});
  table.add_row({"revenue: served excess requests",
                 format_double(p.request_revenue_usd, 0)});
  table.add_row({"revenue: retained users",
                 format_double(p.retention_revenue_usd, 0)});
  table.add_row({"net profit", format_double(p.profit_usd(), 0)});
  table.print(std::cout);

  std::cout << "\nBreak-even burst count at these parameters: ";
  int k = 0;
  while (k < 1000 &&
         analysis.analyze(n, minutes, k, utilization, ut_over_u0).profit_usd() <
             0.0) {
    ++k;
  }
  if (k == 1000) {
    std::cout << "never (cost dominates)\n";
  } else {
    std::cout << k << " bursts/month\n";
  }
  return 0;
}
