// Capacity planning: size the energy-storage fleet for a target burst.
//
// Given a burst profile (degree, duration) and a service-level target
// (minimum average performance factor), sweeps per-server UPS capacity and
// TES minutes and reports the cheapest combination that meets the target —
// the sizing question an operator adopting Data Center Sprinting actually
// has to answer.
//
// Usage: capacity_planning [degree=3.2] [minutes=15] [target=1.8]
#include <iostream>
#include <optional>
#include <span>

#include "core/datacenter.h"
#include "core/oracle.h"
#include "util/config.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

namespace {

/// Rough capital cost of the ESDs, $ per server: LFP ~$0.5/Wh, TES ~$30/kWh
/// of thermal storage spread over the fleet.
double esd_cost_per_server(const dcs::core::DataCenterConfig& config) {
  const dcs::Energy battery = config.battery_per_server.capacity.at_volts(
      config.battery_per_server.bus_voltage);
  const double ups_usd = battery.wh() * 0.5;
  const dcs::Energy tes = config.fleet_peak_normal() *
                          dcs::Duration::minutes(config.tes_capacity_minutes);
  const double server_count =
      static_cast<double>(config.fleet.servers_per_pdu * config.fleet.pdu_count);
  const double tes_usd = tes.kwh() * 0.03 / server_count * 1000.0;
  return ups_usd + tes_usd;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = Config::from_args(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));
  const double degree = args.get_double("degree", 3.2);
  const double minutes = args.get_double("minutes", 15.0);
  const double target = args.get_double("target", 1.8);

  workload::YahooTraceParams tp;
  tp.burst_degree = degree;
  tp.burst_duration = Duration::minutes(minutes);
  const TimeSeries trace = workload::generate_yahoo_trace(tp);

  std::cout << "Sizing for a " << format_double(degree, 1) << "x / "
            << format_double(minutes, 0) << "-min burst, target avg perf >= "
            << format_double(target, 2) << "x\n\n";

  TablePrinter table({"UPS Ah", "TES min", "perf (oracle bound)", "$/server",
                      "meets target"});
  std::optional<std::pair<double, std::string>> cheapest;
  for (double ah : {0.25, 0.5, 1.0, 2.0}) {
    for (double tes_min : {6.0, 12.0, 24.0}) {
      DataCenterConfig config;
      config.fleet.pdu_count = 4;
      config.battery_per_server.capacity = Charge::amp_hours(ah);
      config.tes_capacity_minutes = tes_min;
      DataCenter dc(config);
      const OracleResult oracle = oracle_search(dc, trace, 4);
      const double cost = esd_cost_per_server(config);
      const bool ok = oracle.best_performance >= target;
      table.add_row({format_double(ah, 2), format_double(tes_min, 0),
                     format_double(oracle.best_performance, 3),
                     format_double(cost, 2), ok ? "yes" : "no"});
      if (ok && (!cheapest || cost < cheapest->first)) {
        cheapest = {cost, format_double(ah, 2) + " Ah / " +
                              format_double(tes_min, 0) + " min TES"};
      }
    }
  }
  table.print(std::cout);

  if (cheapest) {
    std::cout << "\nCheapest configuration meeting the target: "
              << cheapest->second << " at $"
              << format_double(cheapest->first, 2) << " per server\n";
  } else {
    std::cout << "\nNo swept configuration meets the target — raise the"
                 " storage budget or relax the target.\n";
  }
  return 0;
}
