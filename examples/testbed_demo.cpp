// Testbed demo: drive the emulated hardware testbed (Section VI-B) with a
// chosen policy and watch the breaker/UPS interplay second by second.
//
// Usage: testbed_demo [policy=ours|cbfirst|cbonly] [reserve=30] [ups_wh=10]
#include <iostream>
#include <span>
#include <string>

#include "testbed/testbed.h"
#include "util/config.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::testbed;
  const Config args = Config::from_args(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));

  const std::string policy_name = args.get_string("policy", "ours");
  Policy policy = Policy::kReservedTripTime;
  if (policy_name == "cbfirst") {
    policy = Policy::kCbFirst;
  } else if (policy_name == "cbonly") {
    policy = Policy::kCbOnly;
  } else if (policy_name != "ours") {
    std::cerr << "unknown policy '" << policy_name
              << "' (want ours|cbfirst|cbonly)\n";
    return 1;
  }
  const Duration reserve = Duration::seconds(args.get_double("reserve", 30.0));

  TestbedParams params;
  params.ups_capacity = Energy::watt_hours(args.get_double("ups_wh", 10.0));
  Testbed tb(params);
  const TimeSeries util = reference_utilization();
  const TestbedOutcome r = tb.run(util, policy, reserve);

  std::cout << "policy " << policy_name << ", reserved trip time "
            << to_string(reserve) << ", UPS "
            << to_string(params.ups_capacity) << "\n\n";
  TablePrinter table({"t (s)", "server W", "CB W", "UPS W"});
  for (double t = 0.0; t <= r.sustained.sec(); t += 15.0) {
    table.add_row(format_double(t, 0),
                  {r.total_power_w.at(Duration::seconds(t)),
                   r.cb_power_w.at(Duration::seconds(t)),
                   r.ups_power_w.at(Duration::seconds(t))},
                  0);
  }
  table.print(std::cout);

  std::cout << "\nsustained " << to_string(r.sustained)
            << (r.cb_tripped ? " until the breaker tripped" : " (trace end)")
            << "; CB overloaded for " << to_string(r.cb_overload_time)
            << "; UPS energy used " << to_string(r.ups_energy_used) << "\n";
  return 0;
}
