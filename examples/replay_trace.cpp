// Replay your own workload: load a demand trace from CSV and run Data
// Center Sprinting on it — the ingestion path for real telemetry in place
// of the synthetic stand-ins.
//
// The CSV has two columns "time_s,value". Values may be absolute (requests
// per second, GB/s, ...); pass capacity=<value> to normalize so that
// `capacity` maps to 1.0 (the sprint-free peak). Without trace=..., the
// example writes a sample trace next to the binary and replays it, so it is
// runnable out of the box.
//
// Usage: replay_trace [trace=demand.csv] [capacity=1.0] [pdus=8]
#include <iostream>
#include <span>
#include <string>

#include "core/budget_paced_strategy.h"
#include "core/datacenter.h"
#include "core/oracle.h"
#include "util/config.h"
#include "util/table.h"
#include "workload/burst.h"
#include "workload/ms_trace.h"
#include "workload/trace_io.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = Config::from_args(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));

  std::string path = args.get_string("trace", "");
  if (path.empty()) {
    path = "replay_sample_trace.csv";
    workload::save_trace_csv(path, workload::generate_ms_trace());
    std::cout << "(no trace given — wrote and replaying the sample " << path
              << ")\n\n";
  }

  TimeSeries demand = workload::load_trace_csv(path);
  const double capacity = args.get_double("capacity", 1.0);
  if (capacity != 1.0) demand = demand.scaled(1.0 / capacity);

  const workload::BurstStats stats = workload::analyze_bursts(demand);
  std::cout << "Trace: " << format_double(demand.span().min(), 1)
            << " min, peak " << format_double(stats.peak_demand, 2)
            << "x capacity, " << format_double(stats.over_capacity_time.min(), 1)
            << " min over capacity in " << stats.burst_count << " bursts\n\n";
  if (stats.over_capacity_time == Duration::zero()) {
    std::cout << "Nothing exceeds the sprint-free capacity — sprinting would"
                 " never engage. Check the capacity= normalization.\n";
    return 0;
  }

  DataCenterConfig config;
  config.fleet.pdu_count = static_cast<std::size_t>(args.get_int("pdus", 8));
  DataCenter dc(config);

  TablePrinter table({"policy", "avg perf", "drop %", "sprint min",
                      "UPS events", "tripped"});
  auto report = [&](const char* label, const RunResult& r) {
    table.add_row(label, {r.performance_factor, r.drop_fraction * 100.0,
                          r.sprint_time.min(),
                          static_cast<double>(r.ups_discharge_events),
                          r.tripped ? 1.0 : 0.0});
  };
  report("no-sprint", dc.run(demand, nullptr, {.mode = Mode::kNoSprint}));
  report("dvfs-capped", dc.run(demand, nullptr, {.mode = Mode::kDvfsCapped}));
  report("core-capped", dc.run(demand, nullptr, {.mode = Mode::kPowerCapped}));
  GreedyStrategy greedy;
  report("DCS greedy", dc.run(demand, &greedy));
  BudgetPacedStrategy planner(demand, config);
  report("DCS budget-paced", dc.run(demand, &planner));
  const OracleResult oracle = oracle_search(dc, demand, 2);
  ConstantBoundStrategy best(oracle.best_bound, "oracle");
  report("DCS oracle", dc.run(demand, &best));
  table.print(std::cout);

  std::cout << "\nPlanner cap " << format_double(planner.planned_cap(), 2)
            << " vs oracle bound " << format_double(oracle.best_bound, 2)
            << "\n";
  return 0;
}
