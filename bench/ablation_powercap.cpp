// Ablation — Data Center Sprinting vs conventional power capping (the
// related-work family the paper contrasts itself against in Section II:
// capping never exceeds a rating and uses no stored energy, so it can only
// harvest the provisioning slack).
//
// Runs on the src/exp sweep runner: one task per (burst degree, mode) cell,
// each with a fresh DataCenter so tasks execute concurrently.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/datacenter.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  bench::obs_setup(args);
  const DataCenterConfig config = bench::bench_config(args);

  const std::vector<double> degrees = {1.5, 2.0, 2.6, 3.2, 3.6};
  const std::vector<std::string> mode_names = {
      "no-sprint", "dvfs-capped", "core-capped", "greedy", "uncontrolled"};
  const Mode modes[] = {Mode::kNoSprint, Mode::kDvfsCapped, Mode::kPowerCapped,
                        Mode::kControlled, Mode::kUncontrolled};

  exp::SweepSpec spec("ablation_powercap");
  spec.add_axis("degree", degrees, 1);
  spec.add_axis("mode", mode_names);
  const exp::SweepRun run = exp::run_sweep(
      spec, {"perf"},
      [&](const exp::SweepSpec::Task& task) {
        workload::YahooTraceParams p;
        p.burst_degree = spec.value(task, 0);
        p.burst_duration = Duration::minutes(10);
        const TimeSeries trace = workload::generate_yahoo_trace(p);
        DataCenter dc(config);
        const Mode mode = modes[task.level[1]];
        GreedyStrategy greedy;
        const RunResult r = dc.run(
            trace, mode == Mode::kControlled ? &greedy : nullptr, {.mode = mode});
        return std::vector<double>{r.performance_factor};
      },
      bench::runner_options(args, spec));

  std::cout << "=== Ablation: sprinting vs power capping vs no sprint ===\n";
  TablePrinter table({"burst degree", "no-sprint", "DVFS-capped",
                      "core-capped", "DCS greedy", "uncontrolled"});
  for (std::size_t d = 0; d < degrees.size(); ++d) {
    // row_value renders nan for slots another shard owns.
    const auto perf = [&](std::size_t m) {
      return bench::row_value(run, d * mode_names.size() + m, 0);
    };
    table.add_row(format_double(degrees[d], 1),
                  {perf(0), perf(1), perf(2), perf(3), perf(4)});
  }
  table.print(std::cout);
  std::cout << "\nDVFS capping (cubic power cost) trails even core capping"
               " within the ratings; DCS\ntemporarily exceeds the ratings"
               " safely; uncontrolled chip-level sprinting trips\nbreakers"
               " and collapses.\n";

  const exp::SweepSummary summary = exp::aggregate(spec, run);
  bench::maybe_export_sweep(args, spec, run, summary);
  obs::MetricsRegistry metrics;
  if (!args.get_string("metrics", "").empty()) {
    exp::metrics_from_summary(metrics, summary);
  }
  bench::maybe_export_obs(args, "ablation_powercap", nullptr, &metrics);
  std::cerr << "[exp] " << run.rows.size() << " tasks in "
            << format_double(run.wall_seconds, 2) << " s on "
            << run.threads_used << " thread(s)\n";
  bench::drain_exit_if_requested();
  return 0;
}
