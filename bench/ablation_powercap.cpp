// Ablation — Data Center Sprinting vs conventional power capping (the
// related-work family the paper contrasts itself against in Section II:
// capping never exceeds a rating and uses no stored energy, so it can only
// harvest the provisioning slack).
#include <iostream>

#include "bench_util.h"
#include "core/datacenter.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  DataCenter dc(bench::bench_config(args));

  std::cout << "=== Ablation: sprinting vs power capping vs no sprint ===\n";
  TablePrinter table({"burst degree", "no-sprint", "DVFS-capped",
                      "core-capped", "DCS greedy", "uncontrolled"});
  for (double degree : {1.5, 2.0, 2.6, 3.2, 3.6}) {
    workload::YahooTraceParams p;
    p.burst_degree = degree;
    p.burst_duration = Duration::minutes(10);
    const TimeSeries trace = workload::generate_yahoo_trace(p);
    GreedyStrategy greedy;
    table.add_row(
        format_double(degree, 1),
        {dc.run(trace, nullptr, {.mode = Mode::kNoSprint}).performance_factor,
         dc.run(trace, nullptr, {.mode = Mode::kDvfsCapped}).performance_factor,
         dc.run(trace, nullptr, {.mode = Mode::kPowerCapped}).performance_factor,
         dc.run(trace, &greedy).performance_factor,
         dc.run(trace, nullptr, {.mode = Mode::kUncontrolled})
             .performance_factor});
  }
  table.print(std::cout);
  std::cout << "\nDVFS capping (cubic power cost) trails even core capping"
               " within the ratings; DCS\ntemporarily exceeds the ratings"
               " safely; uncontrolled chip-level sprinting trips\nbreakers"
               " and collapses.\n";
  return 0;
}
