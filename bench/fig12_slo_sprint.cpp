// Figure 12 (extension) — tail-latency-SLO-driven sprinting on the
// request-level serving layer (src/serving).
//
// Two trade-off curves on the Yahoo burst trace (3.2x for 15 min):
//
//  - p99 vs sprint budget: scale the ESD budget (UPS Ah + TES minutes)
//    from 0.25x to 4x and compare the SLO strategy (sprint onset on
//    p99-violation pressure) against Greedy. More budget -> the sprint
//    covers more of the burst -> the fluid backlog peaks lower -> the run
//    p99 falls monotonically.
//  - admission vs sprinting: sweep the serving layer's admission headroom
//    (admit=1x..4x capacity) under the SLO strategy vs no-sprint. Tight
//    admission sheds requests to protect latency; generous admission
//    queues them and leans on sprinting to make the p99.
//
// Knobs beyond the common set: slo=<ms> (target p99), queue_model=mg1|ps,
// placement=round_robin|jsq|thermal, rps=<peak requests/s>, servers=<n>,
// admit=<factor> (budget sweep only — the admission sweep owns that axis).
//
// Runs on the src/exp sweep runner: rows are bit-identical for any thread
// count, and checkpoint=/shard= make it dispatchable (tools/dispatch_sweep).
// Under trace=<dir> each task exports its recorder channels — including the
// serving_p99_ms / serving_backlog tracks — as Perfetto counter lanes.
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/datacenter.h"
#include "core/slo_strategy.h"
#include "obs/decision.h"
#include "serving/serving_layer.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

namespace {

/// Serving-side counter tracks appended to the physical defaults.
const std::vector<std::string> kServingChannels = {
    "serving_p99_ms", "serving_window_p99_ms", "serving_backlog",
    "serving_dropped",
    // Error-budget tracks (recorded only when the budget is enabled;
    // export_counters skips channels a run did not produce).
    "slo_budget_remaining", "slo_burn_fast", "slo_burn_slow",
    "slo_budget_violations"};

struct TaskOutcome {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double drop_pct = 0.0;
  double sprint_min = 0.0;
  double perf = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(
      argc, argv, {"slo", "queue_model", "placement", "rps", "servers",
                   "admit"});
  bench::obs_setup(args);
  bench::telemetry_setup(args, "fig12_slo_sprint");
  const bool tracing = bench::tracing_enabled(args);
  const bool decisions = bench::decisions_enabled(args);

  const double slo_ms = args.get_double("slo", 250.0);
  serving::ServingParams base_serving;
  base_serving.servers =
      static_cast<std::size_t>(args.get_int("servers", 8));
  base_serving.peak_rps = args.get_double("rps", 400.0);
  base_serving.queue_model = args.get_string("queue_model", "mg1");
  base_serving.placement = args.get_string("placement", "round_robin");
  base_serving.admit_factor = args.get_double("admit", 2.0);

  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  // One task: run `trace` through the controller with the serving layer
  // riding the engine; the SLO strategy (when selected) closes the loop
  // from the serving window p99 back into the sprint bound.
  const auto run_task = [&](const DataCenterConfig& config,
                            const std::string& strategy_name,
                            const serving::ServingParams& serving_template,
                            obs::Tracer* tracer) {
    serving::ServingParams sp = serving_template;
    sp.demand = &trace;
    serving::ServingLayer serving(sp);
    sim::Recorder serving_recorder;
    SloSprintStrategy slo(
        SloSprintParams{.target_p99_s = slo_ms * 1e-3});
    GreedyStrategy greedy;
    ConstantBoundStrategy nosprint(1.0, "nosprint");
    Strategy* strategy = nullptr;
    if (strategy_name == "slo") {
      strategy = &slo;
      serving.set_slo_callback([&slo](const serving::ServingStats& stats) {
        slo.observe_latency(stats.p99_s);
      });
    } else if (strategy_name == "greedy") {
      strategy = &greedy;
    } else {
      strategy = &nosprint;
    }

    DataCenter dc(config);
    RunOptions opts;
    opts.components = {&serving};
    opts.on_step = [&serving](Duration, Duration, const StepResult& step) {
      serving.set_capacity_degree(step.degree);
    };
    std::optional<obs::DecisionLog> decision_log;
    if (tracer != nullptr) {
      opts.tracer = tracer;
      opts.record = true;
      serving.set_recorder(&serving_recorder);
      if (decisions) {
        // One DecisionLog per task over the task's own trace lane: the
        // controller, the SLO latch and the serving layer all emit into it,
        // so `trace_query explain` can chain p99 latch -> sprint onset.
        decision_log.emplace(tracer);
        opts.decisions = &*decision_log;
        slo.set_decision_log(&*decision_log);
        serving.set_decision_log(&*decision_log);
        serving.enable_error_budget(
            serving::ErrorBudgetParams{.target_p99_s = slo_ms * 1e-3});
      }
    }
    const RunResult run = dc.run(trace, strategy, opts);
    if (tracer != nullptr) {
      obs::export_counters(run.recorder, *tracer,
                           {.channels = bench::kDefaultCounterChannels});
      obs::export_counters(serving_recorder, *tracer,
                           {.channels = kServingChannels});
    }
    TaskOutcome out;
    out.p50_ms = serving.latency().p50() * 1e3;
    out.p99_ms = serving.latency().p99() * 1e3;
    out.p999_ms = serving.latency().p999() * 1e3;
    out.drop_pct = serving.drop_fraction() * 100.0;
    out.sprint_min = run.sprint_time.min();
    out.perf = run.performance_factor;
    return out;
  };

  // --- p99 vs sprint budget ----------------------------------------------
  const std::vector<double> budgets = {0.25, 0.5, 1.0, 2.0, 4.0};
  const std::vector<std::string> budget_strategies = {"slo", "greedy"};
  exp::SweepSpec budget_spec("fig12_slo_budget");
  budget_spec.add_axis("budget", budgets, 2);
  budget_spec.add_axis("strategy", budget_strategies);
  std::vector<obs::Tracer> budget_tracers(
      tracing ? budget_spec.tasks().size() : 0);
  const exp::SweepRun budget_run = exp::run_sweep(
      budget_spec,
      {"p50_ms", "p99_ms", "p999_ms", "drop_pct", "sprint_min", "perf"},
      [&](const exp::SweepSpec::Task& task) {
        const double scale = budget_spec.value(task, 0);
        DataCenterConfig config = bench::bench_config(args);
        config.battery_per_server.capacity =
            Charge::amp_hours(0.5 * scale);
        config.tes_capacity_minutes *= scale;
        obs::Tracer* tracer = nullptr;
        if (tracing) {
          tracer = &budget_tracers[task.index];
          tracer->set_lane(static_cast<std::uint32_t>(task.index));
        }
        const TaskOutcome out = run_task(
            config, budget_spec.label(task, 1), base_serving, tracer);
        return std::vector<double>{out.p50_ms,     out.p99_ms, out.p999_ms,
                                   out.drop_pct,   out.sprint_min,
                                   out.perf};
      },
      bench::runner_options(args, budget_spec));

  std::cout << "=== Fig 12a: serving p99 vs ESD sprint budget (Yahoo 3.2x"
               " burst, SLO " << format_double(slo_ms, 0) << " ms, "
            << base_serving.queue_model << "/" << base_serving.placement
            << ") ===\n";
  TablePrinter budget_table({"budget x  strategy", "p50 ms", "p99 ms",
                             "p999 ms", "drop %", "sprint min", "perf"});
  for (const exp::SweepSpec::Task& task : budget_spec.tasks()) {
    if (budget_run.rows[task.index].empty()) continue;  // other shard's slot
    budget_table.add_row(
        budget_spec.label(task, 0) + "  " + budget_spec.label(task, 1),
        budget_run.rows[task.index]);
  }
  budget_table.print(std::cout);

  // --- admission control vs sprinting --------------------------------------
  const std::vector<double> admits = {1.0, 1.5, 2.0, 3.0, 4.0};
  const std::vector<std::string> admit_strategies = {"slo", "nosprint"};
  exp::SweepSpec admit_spec("fig12_admission");
  admit_spec.add_axis("admit", admits, 2);
  admit_spec.add_axis("strategy", admit_strategies);
  // The admission sweep's lanes start after the budget sweep's so the two
  // grids never share a lane in the merged trace — counter tracks stay
  // per-task step functions and decision ids stay unique per (src, lane).
  const std::uint32_t admit_lane_base =
      static_cast<std::uint32_t>(budget_spec.tasks().size());
  std::vector<obs::Tracer> admit_tracers(
      tracing ? admit_spec.tasks().size() : 0);
  const exp::SweepRun admit_run = exp::run_sweep(
      admit_spec, {"p99_ms", "drop_pct", "sprint_min", "perf"},
      [&](const exp::SweepSpec::Task& task) {
        DataCenterConfig config = bench::bench_config(args);
        serving::ServingParams sp = base_serving;
        sp.admit_factor = admit_spec.value(task, 0);
        obs::Tracer* tracer = nullptr;
        if (tracing) {
          tracer = &admit_tracers[task.index];
          tracer->set_lane(admit_lane_base +
                           static_cast<std::uint32_t>(task.index));
        }
        const TaskOutcome out =
            run_task(config, admit_spec.label(task, 1), sp, tracer);
        return std::vector<double>{out.p99_ms, out.drop_pct, out.sprint_min,
                                   out.perf};
      },
      bench::runner_options(args, admit_spec));

  std::cout << "\n=== Fig 12b: admission headroom vs sprinting (drop"
               " requests or sprint to serve them) ===\n";
  TablePrinter admit_table(
      {"admit x  strategy", "p99 ms", "drop %", "sprint min", "perf"});
  for (const exp::SweepSpec::Task& task : admit_spec.tasks()) {
    if (admit_run.rows[task.index].empty()) continue;  // other shard's slot
    admit_table.add_row(
        admit_spec.label(task, 0) + "  " + admit_spec.label(task, 1),
        admit_run.rows[task.index]);
  }
  admit_table.print(std::cout);

  // Observability tail: merge the per-task lanes in task order (the
  // bit-identity contract) and export.
  bench::StreamTraceSinks stream =
      bench::maybe_stream_sinks(args, "fig12_slo_sprint");
  obs::Tracer tracer =
      stream.active() ? obs::Tracer(stream.sink()) : obs::Tracer();
  obs::MetricsRegistry metrics;
  if (tracing) {
    for (const exp::SweepSpec::Task& task : budget_spec.tasks()) {
      tracer.name_lane(obs::Domain::kSim,
                       static_cast<std::uint32_t>(task.index),
                       "budget=" + budget_spec.label(task, 0) + "x/" +
                           budget_spec.label(task, 1));
      tracer.merge_from(std::move(budget_tracers[task.index]));
    }
    for (const exp::SweepSpec::Task& task : admit_spec.tasks()) {
      tracer.name_lane(obs::Domain::kSim,
                       admit_lane_base + static_cast<std::uint32_t>(task.index),
                       "admit=" + admit_spec.label(task, 0) + "x/" +
                           admit_spec.label(task, 1));
      tracer.merge_from(std::move(admit_tracers[task.index]));
    }
  }
  if (!args.get_string("metrics", "").empty()) {
    // A canonical single run's serving metrics snapshot (1x budget, SLO
    // strategy) — gauges p50/p95/p99/p999 plus offered/dropped counters.
    serving::ServingParams sp = base_serving;
    sp.demand = &trace;
    serving::ServingLayer serving(sp);
    SloSprintStrategy slo(SloSprintParams{.target_p99_s = slo_ms * 1e-3});
    serving.set_slo_callback([&slo](const serving::ServingStats& stats) {
      slo.observe_latency(stats.p99_s);
    });
    DataCenter dc(bench::bench_config(args));
    RunOptions opts;
    opts.components = {&serving};
    opts.on_step = [&serving](Duration, Duration, const StepResult& step) {
      serving.set_capacity_degree(step.degree);
    };
    opts.metrics = &metrics;
    (void)dc.run(trace, &slo, opts);
    serving.export_metrics(metrics);
  }

  const exp::SweepSummary budget_summary = exp::aggregate(budget_spec, budget_run);
  const exp::SweepSummary admit_summary = exp::aggregate(admit_spec, admit_run);
  bench::maybe_export_sweep(args, budget_spec, budget_run, budget_summary);
  bench::maybe_export_sweep(args, admit_spec, admit_run, admit_summary);
  bench::maybe_export_obs(args, "fig12_slo_sprint",
                          tracing ? &tracer : nullptr,
                          args.get_string("metrics", "").empty() ? nullptr
                                                                 : &metrics,
                          &stream);
  bench::telemetry_finish(args, tracing ? &tracer : nullptr, &metrics);
  std::cerr << "[exp] " << budget_run.rows.size() + admit_run.rows.size()
            << " tasks in "
            << format_double(budget_run.wall_seconds + admit_run.wall_seconds,
                             2)
            << " s on " << budget_run.threads_used << " thread(s)\n";

  std::cout << "\nExpected: p99 falls monotonically with the ESD budget"
               " under the SLO strategy;\ntight admission trades drops for"
               " latency while sprinting serves both.\n";
  bench::drain_exit_if_requested();
  return 0;
}
