// Figure 10 — average performance of the four strategies on Yahoo-style
// bursts: degree 2.6-3.6, durations 5 min (Fig. 10a) and 15 min (Fig. 10b),
// zero estimation error.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/heuristic_strategy.h"
#include "core/oracle.h"
#include "core/prediction_strategy.h"
#include "util/table.h"
#include "workload/predictor.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  DataCenter dc(bench::bench_config(args));

  std::cout << "=== Figure 10: strategies vs burst degree and duration ===\n";

  const std::vector<Duration> durations = {
      Duration::minutes(1), Duration::minutes(5), Duration::minutes(10),
      Duration::minutes(15), Duration::minutes(25)};
  const std::vector<double> degrees = {1.5, 2.0, 2.6, 3.0, 3.6};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 4);
  const double budget = dc.budget_degree_seconds();

  for (double minutes : {5.0, 15.0}) {
    std::cout << "\n--- Fig. 10" << (minutes == 5.0 ? "a" : "b") << ": "
              << format_double(minutes, 0) << "-minute bursts ---\n";
    TablePrinter out({"burst degree", "G", "P", "H", "O"});
    for (double degree = 2.6; degree <= 3.6 + 1e-9; degree += 0.2) {
      workload::YahooTraceParams p;
      p.burst_degree = degree;
      p.burst_duration = Duration::minutes(minutes);
      const TimeSeries trace = workload::generate_yahoo_trace(p);
      const workload::BurstTruth truth = workload::measure_burst_truth(trace);

      GreedyStrategy greedy;
      const double g = dc.run(trace, &greedy).performance_factor;

      const OracleResult oracle = oracle_search(dc, trace, 2);
      ConstantBoundStrategy ob(oracle.best_bound, "oracle");
      const RunResult orun = dc.run(trace, &ob);

      PredictionStrategy prediction(truth.duration, &table);
      HeuristicStrategy heuristic(orun.avg_sprint_degree, budget);

      out.add_row(format_double(degree, 1),
                  {g, dc.run(trace, &prediction).performance_factor,
                   dc.run(trace, &heuristic).performance_factor,
                   oracle.best_performance});
    }
    out.print(std::cout);
  }

  std::cout << "\nPaper: 5-min bursts -> Greedy matches Oracle; 15-min"
               " bursts -> Greedy significantly degraded,\nPrediction >"
               " Heuristic > Greedy; overall Yahoo band 1.75-2.45 (ours is"
               " slightly lower, see EXPERIMENTS.md).\n";
  return 0;
}
