// Figure 10 — average performance of the four strategies on Yahoo-style
// bursts: degree 2.6-3.6, durations 5 min (Fig. 10a) and 15 min (Fig. 10b),
// zero estimation error.
//
// The (duration x degree) grid runs on the src/exp sweep runner: one task
// per cell, each owning a fresh DataCenter (the per-cell oracle search runs
// serially inside its task). Bit-identical for any thread count.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/heuristic_strategy.h"
#include "core/oracle.h"
#include "core/prediction_strategy.h"
#include "util/table.h"
#include "workload/predictor.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  const std::size_t threads = bench::bench_threads(args);
  const DataCenter dc(bench::bench_config(args));

  std::cout << "=== Figure 10: strategies vs burst degree and duration ===\n";

  const std::vector<Duration> durations = {
      Duration::minutes(1), Duration::minutes(5), Duration::minutes(10),
      Duration::minutes(15), Duration::minutes(25)};
  const std::vector<double> degrees = {1.5, 2.0, 2.6, 3.0, 3.6};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 4, threads);
  const double budget = dc.budget_degree_seconds();

  const std::vector<double> sweep_minutes = {5.0, 15.0};
  const std::vector<double> sweep_degrees = {2.6, 2.8, 3.0, 3.2, 3.4, 3.6};

  exp::SweepSpec spec("fig10_burst_sweep");
  spec.add_axis("duration_min", sweep_minutes, 0);
  spec.add_axis("degree", sweep_degrees, 1);
  const exp::SweepRun run = exp::run_sweep(
      spec, {"greedy", "prediction", "heuristic", "oracle"},
      [&](const exp::SweepSpec::Task& task) {
        workload::YahooTraceParams p;
        p.burst_duration = Duration::minutes(spec.value(task, 0));
        p.burst_degree = spec.value(task, 1);
        const TimeSeries trace = workload::generate_yahoo_trace(p);
        const workload::BurstTruth truth = workload::measure_burst_truth(trace);

        DataCenter task_dc(dc.config());
        GreedyStrategy greedy;
        const double g = task_dc.run(trace, &greedy).performance_factor;

        const OracleResult oracle =
            oracle_search(task_dc, trace, 2, /*threads=*/1);
        ConstantBoundStrategy oracle_bound(oracle.best_bound, "oracle");
        const RunResult oracle_run = task_dc.run(trace, &oracle_bound);

        PredictionStrategy prediction(truth.duration, &table);
        HeuristicStrategy heuristic(oracle_run.avg_sprint_degree, budget);
        return std::vector<double>{
            g, task_dc.run(trace, &prediction).performance_factor,
            task_dc.run(trace, &heuristic).performance_factor,
            oracle.best_performance};
      },
      bench::runner_options(args, spec));

  for (std::size_t d = 0; d < sweep_minutes.size(); ++d) {
    std::cout << "\n--- Fig. 10" << (d == 0 ? "a" : "b") << ": "
              << format_double(sweep_minutes[d], 0) << "-minute bursts ---\n";
    TablePrinter out({"burst degree", "G", "P", "H", "O"});
    for (std::size_t g = 0; g < sweep_degrees.size(); ++g) {
      const std::size_t cell = d * sweep_degrees.size() + g;
      if (run.rows[cell].empty()) continue;  // slot owned by another shard
      out.add_row(spec.axes()[1].labels[g], run.rows[cell]);
    }
    out.print(std::cout);
  }

  const exp::SweepSummary summary = exp::aggregate(spec, run);
  bench::maybe_export_sweep(args, spec, run, summary);
  std::cerr << "[exp] " << run.rows.size() << " tasks in "
            << format_double(run.wall_seconds, 2) << " s on "
            << run.threads_used << " thread(s)\n";

  std::cout << "\nPaper: 5-min bursts -> Greedy matches Oracle; 15-min"
               " bursts -> Greedy significantly degraded,\nPrediction >"
               " Heuristic > Greedy; overall Yahoo band 1.75-2.45 (ours is"
               " slightly lower, see EXPERIMENTS.md).\n";
  bench::drain_exit_if_requested();
  return 0;
}
