// Ablation — the extension strategies vs the paper's four: the closed-form
// budget-paced planner (the paper's optimization future work) and the
// fully-online adaptive strategy (no oracle inputs at all), on long bursts
// where strategy choice matters.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/budget_paced_strategy.h"
#include "core/heuristic_strategy.h"
#include "core/online_strategy.h"
#include "core/oracle.h"
#include "core/prediction_strategy.h"
#include "util/table.h"
#include "workload/ms_trace.h"
#include "workload/predictor.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  const DataCenterConfig config = bench::bench_config(args);
  DataCenter dc(config);

  std::cout << "=== Extension strategies vs the paper's four ===\n"
            << "(budget-paced: closed-form plan, no simulation; online:"
               " self-learned forecasts)\n\n";

  const std::vector<Duration> durations = {
      Duration::minutes(1), Duration::minutes(5), Duration::minutes(10),
      Duration::minutes(15), Duration::minutes(25)};
  const std::vector<double> degrees = {1.5, 2.0, 2.6, 3.0, 3.6};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 4);
  const double budget = dc.budget_degree_seconds();

  TablePrinter out({"workload", "Greedy", "Prediction", "Heuristic",
                    "BudgetPaced", "Online", "Oracle"});
  auto row = [&](const char* label, const TimeSeries& trace) {
    const workload::BurstTruth truth = workload::measure_burst_truth(trace);
    GreedyStrategy greedy;
    const OracleResult oracle = oracle_search(dc, trace, 2);
    ConstantBoundStrategy ob(oracle.best_bound, "oracle");
    const RunResult orun = dc.run(trace, &ob);
    PredictionStrategy prediction(truth.duration, &table);
    HeuristicStrategy heuristic(orun.avg_sprint_degree, budget);
    BudgetPacedStrategy paced(trace, config);
    OnlineAdaptiveStrategy online(&table);
    out.add_row(label,
                {dc.run(trace, &greedy).performance_factor,
                 dc.run(trace, &prediction).performance_factor,
                 dc.run(trace, &heuristic).performance_factor,
                 dc.run(trace, &paced).performance_factor,
                 dc.run(trace, &online).performance_factor,
                 oracle.best_performance});
  };

  row("MS trace", workload::generate_ms_trace());
  for (double degree : {2.6, 3.2, 3.6}) {
    workload::YahooTraceParams p;
    p.burst_degree = degree;
    p.burst_duration = Duration::minutes(15);
    row(("Yahoo " + format_double(degree, 1) + "x/15min").c_str(),
        workload::generate_yahoo_trace(p));
  }
  out.print(std::cout);

  std::cout << "\nThe budget-paced plan tracks the Oracle without running a"
               " single simulation;\nthe online strategy needs no forecast"
               " inputs and still clearly beats Greedy on long bursts.\n";
  return 0;
}
