// Figure 4 — the three-phase methodology illustration, regenerated from
// simulation: a clean single burst served by the controller, showing when
// each phase is active (T1..T4), how much power flows above the ratings,
// and which source carries it (CB tolerance / UPS / TES relief).
#include <iostream>

#include "bench_util.h"
#include "core/datacenter.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  const DataCenterConfig config = bench::bench_config(args);
  DataCenter dc(config);

  workload::YahooTraceParams p;
  p.burst_degree = 2.4;
  p.burst_duration = Duration::minutes(12);
  const TimeSeries trace = workload::generate_yahoo_trace(p);

  std::cout << "=== Figure 4: the three phases on one 2.4x / 12 min burst ===\n";
  GreedyStrategy greedy;
  const RunResult r = dc.run(trace, &greedy, {.record = true});

  TablePrinter timeline({"minute", "phase", "demand", "degree",
                         "dc load / rated", "UPS MW", "dc CB heat",
                         "TES SoC"});
  const auto& rec = r.recorder;
  const char* phase_names[] = {"normal", "1:CB", "2:UPS", "3:TES", "shutdown"};
  for (double m = 4.0; m <= 20.0; m += 0.5) {
    const Duration t = Duration::minutes(m);
    const int phase = static_cast<int>(rec.series("phase").at(t));
    timeline.add_row({format_double(m, 1), phase_names[phase],
                      format_double(rec.series("demand").at(t), 2),
                      format_double(rec.series("degree").at(t), 2),
                      format_double(rec.series("dc_load_mw").at(t) /
                                        config.dc_rated().mw(),
                                    3),
                      format_double(rec.series("ups_mw").at(t), 3),
                      format_double(rec.series("dc_cb_heat").at(t), 3),
                      format_double(rec.series("tes_soc").at(t), 3)});
  }
  timeline.print(std::cout);

  std::cout << "\nPhase durations (the paper's T1-T2 / T2-T3 / T3-T4):\n"
            << "  phase 1 (CB tolerance only): "
            << to_string(r.phase_time[1]) << "\n"
            << "  phase 2 (UPS assisting):     "
            << to_string(r.phase_time[2]) << "\n"
            << "  phase 3 (TES cooling):       "
            << to_string(r.phase_time[3]) << "\n"
            << "TES activation rule fires at "
            << to_string(config.tes_activation_time())
            << " into the burst (Section V-C).\n";
  return 0;
}
