// Figure 11 — the hardware-testbed experiment (emulated):
// (a) power split between breaker and UPS under the reserved-trip-time
//     policy;
// (b) total sustained time vs reserved trip time, compared to the CB-First
//     baseline and the CB-only reference.
#include <iostream>

#include "bench_util.h"
#include "testbed/testbed.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::testbed;
  const Config args = bench::parse_args(argc, argv);

  std::cout << "=== Figure 11: hardware testbed (emulated) ===\n";
  Testbed tb(TestbedParams{});
  const TimeSeries util = reference_utilization();

  // Fig. 11a: power curve with a 10 s reserved trip time.
  const TestbedOutcome curve =
      tb.run(util, Policy::kReservedTripTime, Duration::seconds(10));
  std::cout << "\nFig. 11a: power split, reserved trip time = 10 s"
               " (10 s resolution):\n";
  TablePrinter pw({"t (s)", "total W", "CB W", "UPS W"});
  for (double t = 0.0; t < curve.sustained.sec(); t += 10.0) {
    pw.add_row(format_double(t, 0),
               {curve.total_power_w.at(Duration::seconds(t)),
                curve.cb_power_w.at(Duration::seconds(t)),
                curve.ups_power_w.at(Duration::seconds(t))},
               0);
  }
  pw.print(std::cout);
  bench::maybe_export_csv(args, "fig11a_cb_power", curve.cb_power_w);

  // Fig. 11b: sustained time vs reserved trip time.
  const TestbedOutcome cb_only = tb.run(util, Policy::kCbOnly);
  const TestbedOutcome cb_first = tb.run(util, Policy::kCbFirst);
  std::cout << "\nFig. 11b: sustained time vs reserved trip time:\n";
  TablePrinter st({"reserved (s)", "ours (s)", "CB First (s)"});
  for (double reserve : {10.0, 20.0, 30.0, 45.0, 60.0, 90.0}) {
    const TestbedOutcome ours =
        tb.run(util, Policy::kReservedTripTime, Duration::seconds(reserve));
    st.add_row(format_double(reserve, 0),
               {ours.sustained.sec(), cb_first.sustained.sec()}, 0);
  }
  st.print(std::cout);
  std::cout << "\nCB-only (no UPS) trips after "
            << format_double(cb_only.sustained.sec(), 0)
            << " s (paper: 65 s, ~26% of the coordinated sustained time).\n"
            << "Paper: an intermediate reserve (~30 s) maximizes the"
               " sustained time, and ours\noutlasts CB First (by 14 s on"
               " their hardware).\n";
  return 0;
}
