// Simulator performance microbenchmarks (google-benchmark): the cost of the
// inner loops — breaker thermal stepping, fleet operating-point solving,
// one controller step, and a full 30-minute experiment run.
#include <benchmark/benchmark.h>

#include "compute/fleet.h"
#include "core/datacenter.h"
#include "core/oracle.h"
#include "power/circuit_breaker.h"
#include "workload/ms_trace.h"

namespace {

using namespace dcs;

void BM_BreakerStep(benchmark::State& state) {
  power::CircuitBreaker cb("cb", {.rated = Power::kilowatts(13.75)});
  const Power load = Power::kilowatts(15.0);
  for (auto _ : state) {
    cb.apply_load(load, Duration::seconds(1));
    if (cb.tripped()) cb.reset();
    benchmark::DoNotOptimize(cb.thermal_state());
  }
}
BENCHMARK(BM_BreakerStep);

void BM_FleetOperate(benchmark::State& state) {
  const compute::Fleet fleet;
  double demand = 0.5;
  for (auto _ : state) {
    demand = demand > 3.5 ? 0.5 : demand + 0.1;
    benchmark::DoNotOptimize(fleet.operate(demand, 4.0));
  }
}
BENCHMARK(BM_FleetOperate);

void BM_ControllerStep(benchmark::State& state) {
  core::DataCenterConfig config;
  config.fleet.pdu_count = static_cast<std::size_t>(state.range(0));
  compute::Fleet fleet(config.fleet);
  power::PowerTopology topology(config.topology_params());
  thermal::TesTank tes("tes", config.tes_params());
  thermal::CoolingPlant cooling(config.cooling_params(&tes));
  thermal::RoomModel room(config.room_params());
  core::GreedyStrategy greedy;
  core::SprintingController controller(
      config, {&fleet, &topology, &cooling, &tes, &room}, &greedy,
      core::Mode::kControlled);
  Duration now = Duration::zero();
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.step(now, 2.5, Duration::seconds(1)));
    now += Duration::seconds(1);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(config.fleet.pdu_count));
}
BENCHMARK(BM_ControllerStep)->Arg(1)->Arg(8)->Arg(64)->Arg(909);

void BM_FullMsRun(benchmark::State& state) {
  core::DataCenterConfig config;
  config.fleet.pdu_count = static_cast<std::size_t>(state.range(0));
  core::DataCenter dc(config);
  const TimeSeries trace = workload::generate_ms_trace();
  core::GreedyStrategy greedy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.run(trace, &greedy));
  }
}
BENCHMARK(BM_FullMsRun)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_OracleSearch(benchmark::State& state) {
  core::DataCenterConfig config;
  config.fleet.pdu_count = 2;
  core::DataCenter dc(config);
  const TimeSeries trace = workload::generate_ms_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::oracle_search(dc, trace, 6));
  }
}
BENCHMARK(BM_OracleSearch)->Unit(benchmark::kMillisecond);

}  // namespace
