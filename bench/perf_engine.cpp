// Simulator performance microbenchmarks (google-benchmark): the cost of the
// inner loops — breaker thermal stepping, fleet operating-point solving,
// one controller step, a full 30-minute experiment run, and the serial vs
// parallel oracle search on the src/exp runner.
//
// Unless --benchmark_out is given, results are also written as a
// machine-readable BENCH_perf_engine.json perf record (wall times, items/s)
// so the repo accumulates a perf trajectory across commits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "compute/fleet.h"
#include "core/datacenter.h"
#include "core/oracle.h"
#include "obs/decision.h"
#include "obs/trace.h"
#include "power/circuit_breaker.h"
#include "workload/ms_trace.h"

namespace {

using namespace dcs;

/// trace=1: BM_FullMsRun records sim trace events into a Tracer each
/// iteration, so the perf gate can bound the tracing overhead (CI compares
/// a traced run against an untraced baseline on the same machine).
bool g_traced = false;

void BM_BreakerStep(benchmark::State& state) {
  power::CircuitBreaker cb("cb", {.rated = Power::kilowatts(13.75)});
  const Power load = Power::kilowatts(15.0);
  for (auto _ : state) {
    cb.apply_load(load, Duration::seconds(1));
    if (cb.tripped()) cb.reset();
    benchmark::DoNotOptimize(cb.thermal_state());
  }
}
BENCHMARK(BM_BreakerStep);

void BM_FleetOperate(benchmark::State& state) {
  const compute::Fleet fleet;
  double demand = 0.5;
  for (auto _ : state) {
    demand = demand > 3.5 ? 0.5 : demand + 0.1;
    benchmark::DoNotOptimize(fleet.operate(demand, 4.0));
  }
}
BENCHMARK(BM_FleetOperate);

void BM_ControllerStep(benchmark::State& state) {
  core::DataCenterConfig config;
  config.fleet.pdu_count = static_cast<std::size_t>(state.range(0));
  compute::Fleet fleet(config.fleet);
  power::PowerTopology topology(config.topology_params());
  thermal::TesTank tes("tes", config.tes_params());
  thermal::CoolingPlant cooling(config.cooling_params(&tes));
  thermal::RoomModel room(config.room_params());
  core::GreedyStrategy greedy;
  core::SprintingController controller(
      config, {&fleet, &topology, &cooling, &tes, &room}, &greedy,
      core::Mode::kControlled);
  Duration now = Duration::zero();
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.step(now, 2.5, Duration::seconds(1)));
    now += Duration::seconds(1);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(config.fleet.pdu_count));
}
BENCHMARK(BM_ControllerStep)->Arg(1)->Arg(8)->Arg(64)->Arg(909);

void BM_FullMsRun(benchmark::State& state) {
  core::DataCenterConfig config;
  config.fleet.pdu_count = static_cast<std::size_t>(state.range(0));
  core::DataCenter dc(config);
  const TimeSeries trace = workload::generate_ms_trace();
  core::GreedyStrategy greedy;
  obs::Tracer tracer;
  for (auto _ : state) {
    if (g_traced) {
      // Tracer + decision emission — record= stays off so the gate
      // measures the tracing hot path (edge-triggered instants plus
      // DecisionRecords), not the recorder's per-tick channel appends.
      tracer.clear();
      core::RunOptions opts;
      opts.tracer = &tracer;
      obs::DecisionLog decisions(&tracer);
      opts.decisions = &decisions;
      benchmark::DoNotOptimize(dc.run(trace, &greedy, opts));
    } else {
      benchmark::DoNotOptimize(dc.run(trace, &greedy));
    }
  }
}
// 909 is the paper's full fleet: the uniform-representative topology makes
// the run PDU-count-invariant in cost, which this arg locks into the
// baseline (the per-PDU walk used to scale linearly).
BENCHMARK(BM_FullMsRun)->Arg(2)->Arg(8)->Arg(909)->Unit(benchmark::kMillisecond);

void BM_OracleSearch(benchmark::State& state) {
  // Arg = worker threads for the candidate sweep (the serial-vs-parallel
  // speedup of the src/exp runner is the interesting trajectory here).
  core::DataCenterConfig config;
  config.fleet.pdu_count = 2;
  core::DataCenter dc(config);
  const TimeSeries trace = workload::generate_ms_trace();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::oracle_search(dc, trace, 6, threads));
  }
}
BENCHMARK(BM_OracleSearch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Record how *this* binary was compiled, distinct from the system
  // google-benchmark library's own "library_build_type" (which reflects the
  // distro package, not our flags). The perf gate refuses to compare records
  // whose dcs_build_type disagrees — debug timings gate nothing.
#ifdef NDEBUG
  benchmark::AddCustomContext("dcs_build_type", "release");
#else
  benchmark::AddCustomContext("dcs_build_type", "debug");
#endif
  // Default a JSON perf record next to the console report; explicit
  // --benchmark_out flags win. perf=<dir> (the other benches' knob) routes
  // the record into <dir>/BENCH_perf_engine.json for the perf gate.
  std::vector<char*> args;
  std::string perf_dir;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "perf=", 5) == 0) {
      perf_dir = argv[i] + 5;
    } else if (std::strncmp(argv[i], "trace=", 6) == 0) {
      g_traced = std::strcmp(argv[i] + 6, "0") != 0;
    } else {
      args.push_back(argv[i]);
    }
  }
  const bool has_out = std::any_of(args.begin(), args.end(), [](const char* a) {
    return std::strncmp(a, "--benchmark_out", 15) == 0;
  });
  std::string out_flag =
      "--benchmark_out=" +
      (perf_dir.empty() ? std::string("BENCH_perf_engine.json")
                        : perf_dir + "/BENCH_perf_engine.json");
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
