// Ablation — available DC-level headroom (the paper sweeps 0-20 % of the
// peak-normal power as the under-provisioning severity, Section VI-A).
//
// The (headroom x trace) grid runs on the src/exp sweep runner; each task
// owns a fresh DataCenter with its own headroom. Bit-identical for any
// thread count.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/oracle.h"
#include "util/table.h"
#include "workload/ms_trace.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);

  std::cout << "=== Ablation: DC headroom sweep (0-20% of peak normal) ===\n";
  const TimeSeries ms = workload::generate_ms_trace();
  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries yahoo = workload::generate_yahoo_trace(yp);
  const std::vector<const TimeSeries*> traces = {&ms, &yahoo};

  const std::vector<double> headrooms = {0.00, 0.05, 0.10, 0.15, 0.20};
  exp::SweepSpec spec("ablation_headroom");
  spec.add_axis("headroom_pct",
                std::vector<double>{0.0, 5.0, 10.0, 15.0, 20.0}, 0);
  spec.add_axis("trace", {"MS", "Yahoo"});
  const exp::SweepRun run = exp::run_sweep(
      spec, {"greedy", "oracle"},
      [&](const exp::SweepSpec::Task& task) {
        DataCenterConfig config = bench::bench_config(args);
        config.dc_headroom = headrooms[task.level[0]];
        DataCenter dc(config);
        const TimeSeries& trace = *traces[task.level[1]];
        GreedyStrategy greedy;
        return std::vector<double>{
            dc.run(trace, &greedy).performance_factor,
            oracle_search(dc, trace, 4, /*threads=*/1).best_performance};
      },
      bench::runner_options(args, spec));

  TablePrinter table({"headroom %", "MS greedy", "MS oracle", "Yahoo greedy",
                      "Yahoo oracle"});
  for (std::size_t h = 0; h < headrooms.size(); ++h) {
    // row_value renders nan for slots another shard owns.
    const std::size_t ms_cell = h * traces.size() + 0;
    const std::size_t yahoo_cell = h * traces.size() + 1;
    table.add_row(spec.axes()[0].labels[h],
                  {bench::row_value(run, ms_cell, 0),
                   bench::row_value(run, ms_cell, 1),
                   bench::row_value(run, yahoo_cell, 0),
                   bench::row_value(run, yahoo_cell, 1)});
  }
  table.print(std::cout);

  const exp::SweepSummary summary = exp::aggregate(spec, run);
  bench::maybe_export_sweep(args, spec, run, summary);
  std::cerr << "[exp] " << run.rows.size() << " tasks in "
            << format_double(run.wall_seconds, 2) << " s on "
            << run.threads_used << " thread(s)\n";

  std::cout << "\nMore available headroom lets the breakers carry more of"
               " the sprint;\neven 0% headroom sprints on stored energy"
               " alone.\n";
  bench::drain_exit_if_requested();
  return 0;
}
