// Ablation — available DC-level headroom (the paper sweeps 0-20 % of the
// peak-normal power as the under-provisioning severity, Section VI-A).
#include <iostream>

#include "bench_util.h"
#include "core/oracle.h"
#include "util/table.h"
#include "workload/ms_trace.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);

  std::cout << "=== Ablation: DC headroom sweep (0-20% of peak normal) ===\n";
  const TimeSeries ms = workload::generate_ms_trace();
  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries yahoo = workload::generate_yahoo_trace(yp);

  TablePrinter table({"headroom %", "MS greedy", "MS oracle", "Yahoo greedy",
                      "Yahoo oracle"});
  for (double headroom : {0.00, 0.05, 0.10, 0.15, 0.20}) {
    DataCenterConfig config = bench::bench_config(args);
    config.dc_headroom = headroom;
    DataCenter dc(config);
    GreedyStrategy greedy;
    table.add_row(format_double(headroom * 100.0, 0),
                  {dc.run(ms, &greedy).performance_factor,
                   oracle_search(dc, ms, 4).best_performance,
                   dc.run(yahoo, &greedy).performance_factor,
                   oracle_search(dc, yahoo, 4).best_performance});
  }
  table.print(std::cout);
  std::cout << "\nMore available headroom lets the breakers carry more of"
               " the sprint;\neven 0% headroom sprints on stored energy"
               " alone.\n";
  return 0;
}
