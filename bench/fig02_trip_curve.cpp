// Figure 2 — the Bulletin 1489-A style circuit-breaker trip curve: trip time
// versus overload magnitude, with the long-delay thermal region, the
// never-trip region, and the instantaneous (short-circuit) region.
#include <iostream>

#include "bench_util.h"
#include "power/trip_curve.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dcs;
  const Config args = bench::parse_args(argc, argv);
  (void)args;

  std::cout << "=== Figure 2: circuit breaker trip curve ===\n";
  const power::TripCurve curve;

  TablePrinter table({"load %", "overload %", "region", "trip time"});
  for (double ratio : {0.50, 1.00, 1.05, 1.10, 1.20, 1.30, 1.40, 1.50, 1.60,
                       1.80, 2.00, 2.50, 3.00, 4.00, 5.00, 8.00}) {
    const Duration t = curve.time_to_trip(ratio);
    const char* region = t.is_infinite()            ? "not tripped"
                         : ratio >= 5.0             ? "short circuit"
                                                    : "long-delay (thermal)";
    table.add_row({format_double(ratio * 100.0, 0),
                   format_double((ratio - 1.0) * 100.0, 0), region,
                   to_string(t)});
  }
  table.print(std::cout);

  std::cout << "\nPaper operating points (Section VII-D):\n"
            << "  60% overload -> " << to_string(curve.time_to_trip(1.6))
            << " (paper: 1 minute)\n"
            << "  30% overload -> " << to_string(curve.time_to_trip(1.3))
            << " (paper: 4 minutes)\n";
  return 0;
}
