// Ablation — energy-storage sizing: per-server UPS capacity, TES capacity,
// and the no-TES configuration the paper discusses in Section V.
//
// All three grids run on the src/exp sweep runner (one task per sizing
// cell, fresh DataCenter per task), so rows/summary/perf records export
// like every other grid experiment.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/datacenter.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  bench::obs_setup(args);

  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  // --- UPS battery capacity ------------------------------------------------
  const std::vector<double> amp_hours = {0.125, 0.25, 0.5, 1.0, 2.0};
  exp::SweepSpec ups_spec("ablation_esd_ups");
  ups_spec.add_axis("ah", amp_hours, 3);
  const exp::SweepRun ups_run = exp::run_sweep(
      ups_spec, {"perf", "min_soc", "sprint_min"},
      [&](const exp::SweepSpec::Task& task) {
        DataCenterConfig config = bench::bench_config(args);
        config.battery_per_server.capacity =
            Charge::amp_hours(ups_spec.value(task, 0));
        DataCenter dc(config);
        GreedyStrategy greedy;
        const RunResult r = dc.run(trace, &greedy);
        return std::vector<double>{r.performance_factor, r.min_ups_soc,
                                   r.sprint_time.min()};
      },
      bench::runner_options(args, ups_spec));

  std::cout << "=== Ablation: UPS battery capacity (paper default 0.5 Ah"
               " ~ 6 min at peak normal) ===\n";
  TablePrinter ups({"Ah/server", "runtime @55W", "greedy perf", "min SoC",
                    "sprint min"});
  for (std::size_t i = 0; i < amp_hours.size(); ++i) {
    if (ups_run.rows[i].empty()) continue;  // slot owned by another shard
    const DataCenterConfig config = bench::bench_config(args);
    const Duration runtime =
        Charge::amp_hours(amp_hours[i])
            .at_volts(config.battery_per_server.bus_voltage) /
        Power::watts(55.0);
    ups.add_row(format_double(amp_hours[i], 3),
                {runtime.min(), ups_run.rows[i][0], ups_run.rows[i][1],
                 ups_run.rows[i][2]});
  }
  ups.print(std::cout);

  // --- TES capacity --------------------------------------------------------
  const std::vector<double> tes_minutes = {3.0, 6.0, 12.0, 24.0, 48.0};
  exp::SweepSpec tes_spec("ablation_esd_tes");
  tes_spec.add_axis("tes_minutes", tes_minutes, 0);
  const exp::SweepRun tes_run = exp::run_sweep(
      tes_spec, {"perf", "min_tes_soc", "sprint_min"},
      [&](const exp::SweepSpec::Task& task) {
        DataCenterConfig config = bench::bench_config(args);
        config.tes_capacity_minutes = tes_spec.value(task, 0);
        DataCenter dc(config);
        GreedyStrategy greedy;
        const RunResult r = dc.run(trace, &greedy);
        return std::vector<double>{r.performance_factor, r.min_tes_soc,
                                   r.sprint_time.min()};
      },
      bench::runner_options(args, tes_spec));

  std::cout << "\n=== Ablation: TES capacity (paper default 12 min of"
               " peak-normal cooling) ===\n";
  TablePrinter tes({"TES minutes", "greedy perf", "min TES SoC", "sprint min"});
  for (std::size_t i = 0; i < tes_minutes.size(); ++i) {
    if (tes_run.rows[i].empty()) continue;  // slot owned by another shard
    tes.add_row(format_double(tes_minutes[i], 0),
                {tes_run.rows[i][0], tes_run.rows[i][1], tes_run.rows[i][2]});
  }
  tes.print(std::cout);

  // --- with vs without TES -------------------------------------------------
  const std::vector<std::string> tes_configs = {"with TES", "no TES"};
  exp::SweepSpec no_spec("ablation_esd_notes");
  no_spec.add_axis("config", tes_configs);
  const exp::SweepRun no_run = exp::run_sweep(
      no_spec, {"perf", "sprint_min", "peak_room_c"},
      [&](const exp::SweepSpec::Task& task) {
        DataCenterConfig config = bench::bench_config(args);
        config.battery_per_server.capacity = Charge::amp_hours(2.0);
        config.has_tes = task.level[0] == 0;
        workload::YahooTraceParams lp;
        lp.length = Duration::minutes(32);
        lp.burst_degree = 3.2;
        lp.burst_duration = Duration::minutes(24);
        const TimeSeries long_trace = workload::generate_yahoo_trace(lp);
        ConstantBoundStrategy bound(2.4);
        const RunResult r = DataCenter(config).run(long_trace, &bound);
        return std::vector<double>{r.performance_factor, r.sprint_time.min(),
                                   r.peak_room_temperature.c()};
      },
      bench::runner_options(args, no_spec));

  std::cout << "\n=== Ablation: no TES at all (Section V: sprinting still"
               " works, shorter) ===\n";
  TablePrinter t({"config", "perf", "sprint min", "peak room C"});
  for (std::size_t i = 0; i < tes_configs.size(); ++i) {
    if (no_run.rows[i].empty()) continue;  // slot owned by another shard
    t.add_row(tes_configs[i],
              {no_run.rows[i][0], no_run.rows[i][1], no_run.rows[i][2]});
  }
  t.print(std::cout);

  obs::MetricsRegistry metrics;
  const bool want_metrics = !args.get_string("metrics", "").empty();
  std::size_t tasks = 0;
  double wall = 0.0;
  const std::pair<const exp::SweepSpec*, const exp::SweepRun*> sweeps[] = {
      {&ups_spec, &ups_run}, {&tes_spec, &tes_run}, {&no_spec, &no_run}};
  for (const auto& [spec, run] : sweeps) {
    const exp::SweepSummary summary = exp::aggregate(*spec, *run);
    bench::maybe_export_sweep(args, *spec, *run, summary);
    if (want_metrics) exp::metrics_from_summary(metrics, summary);
    tasks += run->rows.size();
    wall += run->wall_seconds;
  }
  bench::maybe_export_obs(args, "ablation_esd", nullptr, &metrics);
  std::cerr << "[exp] " << tasks << " tasks in " << format_double(wall, 2)
            << " s on " << ups_run.threads_used << " thread(s)\n";
  bench::drain_exit_if_requested();
  return 0;
}
