// Ablation — energy-storage sizing: per-server UPS capacity, TES capacity,
// and the no-TES configuration the paper discusses in Section V.
#include <iostream>

#include "bench_util.h"
#include "core/datacenter.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);

  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  std::cout << "=== Ablation: UPS battery capacity (paper default 0.5 Ah"
               " ~ 6 min at peak normal) ===\n";
  TablePrinter ups({"Ah/server", "runtime @55W", "greedy perf", "min SoC",
                    "sprint min"});
  for (double ah : {0.125, 0.25, 0.5, 1.0, 2.0}) {
    DataCenterConfig config = bench::bench_config(args);
    config.battery_per_server.capacity = Charge::amp_hours(ah);
    DataCenter dc(config);
    GreedyStrategy greedy;
    const RunResult r = dc.run(trace, &greedy);
    const Duration runtime =
        config.battery_per_server.capacity.at_volts(
            config.battery_per_server.bus_voltage) /
        Power::watts(55.0);
    ups.add_row(format_double(ah, 3),
                {runtime.min(), r.performance_factor, r.min_ups_soc,
                 r.sprint_time.min()});
  }
  ups.print(std::cout);

  std::cout << "\n=== Ablation: TES capacity (paper default 12 min of"
               " peak-normal cooling) ===\n";
  TablePrinter tes({"TES minutes", "greedy perf", "min TES SoC", "sprint min"});
  for (double minutes : {3.0, 6.0, 12.0, 24.0, 48.0}) {
    DataCenterConfig config = bench::bench_config(args);
    config.tes_capacity_minutes = minutes;
    DataCenter dc(config);
    GreedyStrategy greedy;
    const RunResult r = dc.run(trace, &greedy);
    tes.add_row(format_double(minutes, 0),
                {r.performance_factor, r.min_tes_soc, r.sprint_time.min()});
  }
  tes.print(std::cout);

  std::cout << "\n=== Ablation: no TES at all (Section V: sprinting still"
               " works, shorter) ===\n";
  {
    DataCenterConfig with = bench::bench_config(args);
    with.battery_per_server.capacity = Charge::amp_hours(2.0);
    DataCenterConfig without = with;
    without.has_tes = false;
    workload::YahooTraceParams lp;
    lp.length = Duration::minutes(32);
    lp.burst_degree = 3.2;
    lp.burst_duration = Duration::minutes(24);
    const TimeSeries long_trace = workload::generate_yahoo_trace(lp);
    ConstantBoundStrategy bound(2.4);
    const RunResult rw = DataCenter(with).run(long_trace, &bound);
    const RunResult ro = DataCenter(without).run(long_trace, &bound);
    TablePrinter t({"config", "perf", "sprint min", "peak room C"});
    t.add_row("with TES", {rw.performance_factor, rw.sprint_time.min(),
                           rw.peak_room_temperature.c()});
    t.add_row("no TES", {ro.performance_factor, ro.sprint_time.min(),
                         ro.peak_room_temperature.c()});
    t.print(std::cout);
  }
  return 0;
}
