// Ablation — zonal (non-uniform) sprinting: bursts concentrated on a few
// PDU groups, coordinated with the paper's Section V-B parent/child breaker
// rule. Shows the fairness split when zones compete and the advantage of a
// concentrated burst (idle neighbours' substation budget flows to it).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/zonal_controller.h"
#include "obs/counters.h"
#include "sim/recorder.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  DataCenterConfig config = bench::bench_config(args);
  const bool tracing = !args.get_string("trace", "").empty();

  // Per-scenario counter lanes: each zonal run records its per-zone
  // channels into its own recorder, exported as one named lane so Perfetto
  // shows every zone's breaker margin / degree / UPS state side by side.
  bench::StreamTraceSinks stream =
      bench::maybe_stream_sinks(args, "ablation_zonal");
  obs::Tracer tracer =
      stream.active() ? obs::Tracer(stream.sink()) : obs::Tracer();
  std::uint32_t next_lane = 0;
  const auto export_zonal = [&](const sim::Recorder& recorder,
                                std::size_t zones, const std::string& label) {
    if (!tracing) return;
    tracer.set_lane(next_lane);
    tracer.name_lane(obs::Domain::kSim, next_lane, label);
    obs::export_counters(
        recorder, tracer,
        {.channels = obs::with_zonal_channels({"dc_load_mw", "cooling_mw"},
                                              zones)});
    ++next_lane;
  };

  std::cout << "=== Zonal sprinting (Section V-B CB coordination) ===\n";

  workload::YahooTraceParams hot_p;
  hot_p.burst_degree = 4.0;
  hot_p.burst_duration = Duration::minutes(10);
  const TimeSeries hot = workload::generate_yahoo_trace(hot_p);
  TimeSeries idle;
  idle.push_back(Duration::zero(), 0.4);
  idle.push_back(hot.end_time(), 0.4);

  std::cout << "\n--- one hot zone (4.0x/10min), neighbours idle ---\n";
  TablePrinter t1({"hot-zone PDUs / total", "hot perf", "idle perf",
                   "total perf", "sprint min"});
  for (std::size_t hot_pdus : {1u, 2u, 4u}) {
    config.fleet.pdu_count = 8;
    ZonalController ctl(config, {{hot_pdus, &hot}, {8 - hot_pdus, &idle}});
    sim::Recorder recorder;
    if (tracing) ctl.set_recorder(&recorder);
    const ZonalRunResult r = ctl.run();
    export_zonal(recorder, 2, "hot=" + std::to_string(hot_pdus) + "/8");
    t1.add_row(std::to_string(hot_pdus) + "/8",
               {r.performance_factor[0], r.performance_factor[1],
                r.total_performance_factor, r.sprint_time.min()});
  }
  t1.print(std::cout);

  std::cout << "\n--- two zones competing (heavy 3.6x vs light 2.0x,"
               " 15 min, zero headroom) ---\n";
  config.fleet.pdu_count = 8;
  config.dc_headroom = 0.0;
  workload::YahooTraceParams heavy_p, light_p;
  heavy_p.burst_degree = 3.6;
  heavy_p.burst_duration = Duration::minutes(15);
  light_p.burst_degree = 2.0;
  light_p.burst_duration = Duration::minutes(15);
  light_p.seed = 0x777;
  const TimeSeries heavy = workload::generate_yahoo_trace(heavy_p);
  const TimeSeries light = workload::generate_yahoo_trace(light_p);
  ZonalController competing(config, {{4, &heavy}, {4, &light}});
  sim::Recorder competing_recorder;
  if (tracing) competing.set_recorder(&competing_recorder);
  const ZonalRunResult r = competing.run();
  export_zonal(competing_recorder, 2, "competing heavy-vs-light");
  TablePrinter t2({"zone", "burst", "perf"});
  t2.add_row({"heavy", "3.6x / 15 min", format_double(r.performance_factor[0], 3)});
  t2.add_row({"light", "2.0x / 15 min", format_double(r.performance_factor[1], 3)});
  t2.print(std::cout);
  std::cout << "\nMax-min fairness: the light zone is served in full before"
               " the heavy zone's excess\nis granted; no breaker trips even"
               " at zero headroom.\n";
  bench::maybe_export_obs(args, "ablation_zonal", tracing ? &tracer : nullptr,
                          nullptr, &stream);
  return 0;
}
