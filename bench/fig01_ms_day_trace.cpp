// Figure 1 — the day-scale MS-style traffic trace ("aggregated traffic rate
// of 1,500 servers"), demonstrating that demand is bursty even for
// throughput-oriented workloads. Prints hourly statistics of the synthetic
// stand-in plus the burstiness profile the paper's argument relies on.
//
// Under trace=<dir> it additionally runs the controlled data center over
// the full day and traces it — per-tick counter tracks for a 24 h run are
// the motivating workload for sink=stream's bounded-memory file sinks.
#include <iostream>

#include "bench_util.h"
#include "core/datacenter.h"
#include "core/strategy.h"
#include "util/table.h"
#include "workload/burst.h"
#include "workload/ms_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  const Config args = bench::parse_args(argc, argv);
  bench::obs_setup(args);

  std::cout << "=== Figure 1: MS-style day trace (synthetic stand-in) ===\n";
  const TimeSeries trace = workload::generate_ms_day_trace();
  bench::maybe_export_csv(args, "fig01_ms_day_trace", trace);

  TablePrinter hourly({"hour", "mean GB/s", "min GB/s", "max GB/s"});
  for (int h = 0; h < 24; ++h) {
    const TimeSeries slice =
        trace.slice(Duration::hours(h), Duration::hours(h + 1));
    hourly.add_row(std::to_string(h),
                   {slice.time_weighted_mean(), slice.min_value(),
                    slice.max_value()},
                   2);
  }
  hourly.print(std::cout);

  // Burstiness relative to a 4 GB/s sprint-free capacity (the paper's
  // Section V-D revenue example).
  const workload::BurstStats stats =
      workload::analyze_bursts(trace.scaled(1.0 / 4.0));
  std::cout << "\nRelative to a 4 GB/s capacity:\n"
            << "  peak demand        " << format_double(stats.peak_demand, 2)
            << "x capacity (paper: >2x; trace peak >9 GB/s)\n"
            << "  over-capacity time "
            << format_double(stats.over_capacity_time.min(), 1) << " min/day\n"
            << "  burst episodes     " << stats.burst_count
            << " per day (paper: ~200 bursts/month ~ 6-7/day)\n";

  // Opt-in day-long controlled run with counter tracks (trace=<dir>;
  // sink=stream keeps peak memory bounded regardless of trace length).
  if (!args.get_string("trace", "").empty()) {
    bench::StreamTraceSinks stream =
        bench::maybe_stream_sinks(args, "fig01_ms_day_trace");
    obs::Tracer tracer =
        stream.active() ? obs::Tracer(stream.sink()) : obs::Tracer();
    tracer.name_lane(obs::Domain::kSim, 0, "greedy/day-trace");

    core::DataCenter dc(bench::bench_config(args));
    core::GreedyStrategy greedy;
    core::RunOptions opts;
    opts.record = true;
    opts.tracer = &tracer;
    const core::RunResult day_run =
        dc.run(trace.scaled(1.0 / 4.0), &greedy, opts);
    obs::export_counters(day_run.recorder, tracer,
                         {.channels = bench::kDefaultCounterChannels});
    std::cout << "\nDay-long controlled run: performance factor "
              << format_double(day_run.performance_factor, 3) << ", "
              << tracer.count(obs::Domain::kSim) << " sim trace events\n";
    bench::maybe_export_obs(args, "fig01_ms_day_trace", &tracer, nullptr,
                            &stream);
  }
  return 0;
}
