// Shared helpers for the figure-reproduction benches.
#pragma once

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "exp/aggregator.h"
#include "exp/reporter.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "obs/counters.h"
#include "obs/metrics.h"
#include "obs/perfetto.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "obs/sink.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/config.h"
#include "util/time_series.h"

namespace dcs::bench {

/// Keys every bench understands: the shared data-center knobs plus the
/// sweep-runner knobs (threads=<n>, csv=<dir>, perf=<dir>, checkpoint=<dir>
/// for crash-safe resume files, shard=<i>/<N> to run one contiguous slice
/// of every grid) and the observability knobs (trace=<dir> for Chrome
/// trace JSON + JSONL, sink=buffer|stream to pick the in-memory Tracer or
/// the bounded-memory streaming sinks, metrics=<dir> for CSV/JSON/
/// Prometheus snapshots, telemetry=<path> for the worker telemetry stream
/// a supervising dispatcher tails and merges — see obs/telemetry.h).
inline constexpr std::string_view kCommonKeys[] = {
    "pdus", "dc_headroom", "pue", "csv", "perf", "threads", "trace",
    "metrics", "sink", "checkpoint", "shard", "telemetry", "decisions"};

/// Default recorder channels bridged into Perfetto counter tracks by the
/// traced benches: physical state (state of charge, breaker trip margin,
/// room temperature, chiller draw) next to the control trajectory (degree).
inline const std::vector<std::string> kDefaultCounterChannels = {
    "ups_soc",  "tes_soc", "cb_trip_margin_s",
    "room_c",   "degree",  "cooling_mw"};

/// Parses "key=value" command-line arguments. Malformed tokens and keys
/// outside the common set plus `extra_allowed` abort with a clear error
/// instead of being silently ignored.
inline Config parse_args(int argc, char** argv,
                         std::initializer_list<std::string_view> extra_allowed = {}) {
  try {
    const Config args = Config::from_args(
        std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));
    std::vector<std::string_view> allowed(std::begin(kCommonKeys),
                                          std::end(kCommonKeys));
    allowed.insert(allowed.end(), extra_allowed.begin(), extra_allowed.end());
    args.require_known(allowed);
    return args;
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": error: " << e.what()
              << "\nusage: " << argv[0] << " [key=value ...]\n";
    std::exit(2);
  }
}

namespace detail {
inline std::unique_ptr<obs::TelemetrySink>& telemetry_slot() {
  static std::unique_ptr<obs::TelemetrySink> slot;
  return slot;
}
}  // namespace detail

/// The process-global telemetry stream, or null when telemetry= was not
/// given (telemetry_setup not called / no-op).
inline obs::TelemetrySink* telemetry_sink() {
  return detail::telemetry_slot().get();
}

/// Opens the worker telemetry stream under telemetry=<path> (appended by
/// dispatch_sweep --telemetry) and turns the wall-clock profiler on so the
/// stream carries wall spans for the cross-process timeline. Call once
/// near the top of main(), right after obs_setup.
inline void telemetry_setup(const Config& args, const std::string& name) {
  const std::string path = args.get_string("telemetry", "");
  if (path.empty()) return;
  obs::TelemetryOptions options;
  options.name = name;
  options.shard = args.get_string("shard", "");
  detail::telemetry_slot() =
      std::make_unique<obs::TelemetrySink>(path, options);
  if (!telemetry_sink()->ok()) {
    std::cerr << "[obs] cannot write telemetry stream " << path << "\n";
  }
  obs::Profiler::instance().set_enabled(true);
}

/// Whether this run should record sim trace events: a trace= export wants
/// them, and so does a telemetry stream (they are its "ev" payload).
inline bool tracing_enabled(const Config& args) {
  return !args.get_string("trace", "").empty() ||
         !args.get_string("telemetry", "").empty();
}

/// Whether traced runs should also emit DecisionRecords (obs/decision.h)
/// into their trace lanes. On by default whenever tracing is on;
/// decisions=0 turns just the decision plane off (the tracing-overhead
/// gate measures both configurations).
inline bool decisions_enabled(const Config& args) {
  return tracing_enabled(args) && args.get_int("decisions", 1) != 0;
}

/// Worker threads for the sweep runner (threads=<n>; 0 = all hardware).
inline std::size_t bench_threads(const Config& args) {
  const int threads = args.get_int("threads", 0);
  if (threads < 0) {
    std::cerr << "error: threads must be >= 0\n";
    std::exit(2);
  }
  return static_cast<std::size_t>(threads);
}

/// Parses shard=<i>/<N> ("0/4" .. "3/4"). Aborts on malformed values.
inline exp::Shard parse_shard(const std::string& text) {
  exp::Shard shard;
  unsigned long index = 0;
  unsigned long count = 0;
  char trailing = '\0';
  if (std::sscanf(text.c_str(), "%lu/%lu%c", &index, &count, &trailing) != 2 ||
      count == 0 || index >= count) {
    std::cerr << "error: shard must be i/N with 0 <= i < N, got '" << text
              << "'\n";
    std::exit(2);
  }
  shard.index = static_cast<std::size_t>(index);
  shard.count = static_cast<std::size_t>(count);
  return shard;
}

/// Worker-mode drain contract (dispatcher-initiated kills, Ctrl-C on a
/// checkpointed run). SIGTERM/SIGINT set `shutdown_requested`; the sweep
/// runner stops picking up new tasks and finishes (and checkpoints) the
/// in-flight ones, the bench's normal tail then finalizes stream trace
/// sinks, and `drain_exit_if_requested` — the last line of every sweep
/// bench — exits 128+signal so a supervisor can never mistake the partial
/// run for a complete shard. A second signal exits immediately.
inline std::atomic<bool>& shutdown_requested() {
  static std::atomic<bool> requested{false};
  return requested;
}

inline std::atomic<int>& shutdown_signal() {
  static std::atomic<int> signal_number{0};
  return signal_number;
}

namespace detail {
inline void drain_signal_handler(int sig) {
  // Async-signal-safe: lock-free atomic stores only. The actual flushing
  // already happened — checkpoint rows and JSONL trace lines are flushed as
  // written, and the Chrome stream sink keeps its file complete per batch.
  if (shutdown_requested().exchange(true)) ::_exit(128 + sig);
  shutdown_signal().store(sig);
}
}  // namespace detail

/// Installs the SIGTERM/SIGINT drain handlers (idempotent). Benches enter
/// worker mode automatically when checkpoint= is given — see
/// runner_options — because that is when a drained run is resumable.
inline void install_drain_handlers() {
  struct sigaction action = {};
  action.sa_handler = detail::drain_signal_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;  // keep checkpoint writes EINTR-free
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

/// Sweep-runner options for one spec: threads=<n>, plus checkpoint=<dir>
/// (the resume file lands at <dir>/<sweep>.ckpt.jsonl, one per sweep so
/// multi-sweep benches keep their grids apart) and shard=<i>/<N> (each
/// sweep of the bench is sliced the same way). A checkpointed bench runs in
/// worker mode: drain signals stop the sweep cleanly instead of killing it.
inline exp::RunnerOptions runner_options(const Config& args,
                                         const exp::SweepSpec& spec) {
  exp::RunnerOptions options;
  options.threads = bench_threads(args);
  const std::string dir = args.get_string("checkpoint", "");
  if (!dir.empty()) {
    options.checkpoint_path = dir + "/" + spec.name() + ".ckpt.jsonl";
    install_drain_handlers();
  }
  options.stop = &shutdown_requested();
  const std::string shard = args.get_string("shard", "");
  if (!shard.empty()) options.shard = parse_shard(shard);
  if (obs::TelemetrySink* telemetry = telemetry_sink();
      telemetry != nullptr) {
    // Heartbeats flow from the runner's worker threads into the telemetry
    // stream, where a supervising dispatcher tails them for live progress.
    options.on_progress = [telemetry, sweep = spec.name()](
                              std::size_t done, std::size_t total) {
      telemetry->heartbeat(sweep, done, total);
    };
  }
  return options;
}

/// Worker-mode exit-status contract: call as the last statement of a sweep
/// bench's main(). No-op when no drain signal arrived; after a drain it
/// flushes the standard streams and exits 128+signal (143 for SIGTERM), so
/// exit 0 always means "my shard slice is complete in the checkpoint".
inline void drain_exit_if_requested() {
  if (!shutdown_requested().load()) return;
  const int sig = shutdown_signal().load();
  std::cerr << "[bench] drained after signal " << sig
            << "; checkpoint is resumable\n";
  std::cout.flush();
  std::cerr.flush();
  std::exit(128 + (sig == 0 ? SIGTERM : sig));
}

/// Metric `m` of task `index`, or NaN when the slot was not executed (a
/// sharded run printed before its shards merge). Keeps the partial console
/// tables rendering without touching complete runs.
inline double row_value(const exp::SweepRun& run, std::size_t index,
                        std::size_t m) {
  return index < run.rows.size() && m < run.rows[index].size()
             ? run.rows[index][m]
             : std::numeric_limits<double>::quiet_NaN();
}

/// The default experiment configuration: the paper's data center, simulated
/// with a small PDU count (results are invariant to it, see
/// core/datacenter.h) so every bench finishes in seconds.
inline core::DataCenterConfig bench_config(const Config& args) {
  core::DataCenterConfig config;
  config.fleet.pdu_count =
      static_cast<std::size_t>(args.get_int("pdus", 8));
  config.dc_headroom = args.get_double("dc_headroom", 0.10);
  config.pue = args.get_double("pue", 1.53);
  return config;
}

/// Writes a time series as CSV ("time_s,value") under csv=<dir> if given.
inline void maybe_export_csv(const Config& args, const std::string& name,
                             const TimeSeries& series) {
  const std::string dir = args.get_string("csv", "");
  if (dir.empty()) return;
  exp::export_time_series_csv(dir, name, series, &std::cout);
}

/// Sweep reporting glue: rows/summary CSV + JSON under csv=<dir>, and a
/// BENCH_<sweep>.json perf record (wall time, runs/sec, threads) under
/// perf=<dir>. Perf records pick up the wall-clock profile scopes when the
/// profiler is on (see obs_setup).
inline void maybe_export_sweep(const Config& args, const exp::SweepSpec& spec,
                               const exp::SweepRun& run,
                               const exp::SweepSummary& summary) {
  const std::string csv_dir = args.get_string("csv", "");
  if (!csv_dir.empty()) exp::export_sweep(csv_dir, spec, run, summary, &std::cout);
  const std::string perf_dir = args.get_string("perf", "");
  if (!perf_dir.empty()) {
    const std::vector<obs::ProfileEvent> events =
        obs::Profiler::instance().collect();
    // Sampling-profiler folded stacks (non-empty only when the sweep ran
    // with DCS_OBS_SAMPLER set) ride along in the perf record.
    const obs::FoldedStacks folded = obs::Sampler::instance().folded();
    const obs::FoldedStacks* folded_ptr = folded.empty() ? nullptr : &folded;
    if (events.empty()) {
      exp::export_perf_record(perf_dir, summary, &std::cout, nullptr,
                              folded_ptr);
    } else {
      const obs::ProfileSummary scopes = obs::summarize(events);
      exp::export_perf_record(perf_dir, summary, &std::cout, &scopes,
                              folded_ptr);
    }
  }
}

/// Turns the wall-clock profiler on when either observability knob is set;
/// call once near the top of main(), before any sweep runs.
inline void obs_setup(const Config& args) {
  if (!args.get_string("trace", "").empty() ||
      !args.get_string("metrics", "").empty()) {
    obs::Profiler::instance().set_enabled(true);
  }
}

/// Streaming trace sinks for one bench (sink=stream under trace=<dir>):
/// the merged event stream tees into `<dir>/<name>_trace.json` (Chrome,
/// crash-safe), `<dir>/<name>_trace.jsonl` and the Perfetto protobuf
/// stream `<dir>/<name>_trace.perfetto` (trace_processor-queryable) with
/// bounded memory; an open telemetry stream joins the tee so its events
/// flow live. Default (sink=buffer) keeps the in-memory Tracer path.
struct StreamTraceSinks {
  std::unique_ptr<obs::ChromeStreamSink> chrome;
  std::unique_ptr<obs::JsonlStreamSink> jsonl;
  std::unique_ptr<obs::PerfettoStreamSink> perfetto;
  std::unique_ptr<obs::TeeSink> tee;

  [[nodiscard]] bool active() const noexcept { return tee != nullptr; }
  [[nodiscard]] obs::TraceSink* sink() const noexcept { return tee.get(); }

  void finalize(std::ostream* diag = nullptr) {
    if (!active()) return;
    tee->finalize();
    if (diag != nullptr) {
      for (const obs::FileStreamSink* s :
           {static_cast<const obs::FileStreamSink*>(chrome.get()),
            static_cast<const obs::FileStreamSink*>(jsonl.get()),
            static_cast<const obs::FileStreamSink*>(perfetto.get())}) {
        if (s->ok()) {
          *diag << "[obs] streamed " << s->events_written() << " events to "
                << s->path() << "\n";
        } else {
          *diag << "[obs] cannot write " << s->path() << "\n";
        }
      }
    }
  }
};

/// Builds the streaming sinks when trace=<dir> and sink=stream are both
/// given; inactive (null members) otherwise. Rejects unknown sink= values.
inline StreamTraceSinks maybe_stream_sinks(const Config& args,
                                           const std::string& name) {
  StreamTraceSinks sinks;
  const std::string mode = args.get_string("sink", "buffer");
  if (mode != "buffer" && mode != "stream") {
    std::cerr << "error: sink must be 'buffer' or 'stream', got '" << mode
              << "'\n";
    std::exit(2);
  }
  const std::string trace_dir = args.get_string("trace", "");
  if (mode != "stream" || trace_dir.empty()) return sinks;
  sinks.chrome = std::make_unique<obs::ChromeStreamSink>(
      trace_dir + "/" + name + "_trace.json");
  sinks.jsonl = std::make_unique<obs::JsonlStreamSink>(
      trace_dir + "/" + name + "_trace.jsonl");
  sinks.perfetto = std::make_unique<obs::PerfettoStreamSink>(
      trace_dir + "/" + name + "_trace.perfetto");
  std::vector<obs::TraceSink*> children{sinks.chrome.get(), sinks.jsonl.get(),
                                        sinks.perfetto.get()};
  if (obs::TelemetrySink* telemetry = telemetry_sink();
      telemetry != nullptr) {
    children.push_back(telemetry);  // finalize() only flushes it
  }
  sinks.tee = std::make_unique<obs::TeeSink>(std::move(children));
  return sinks;
}

/// Observability export glue: under trace=<dir>, folds the profiler's
/// wall-clock scopes into `tracer` and writes `<name>_trace.json` (Chrome
/// trace-event format, Perfetto-loadable) plus `<name>_trace.jsonl`; under
/// metrics=<dir>, writes `<name>_metrics.{csv,json,prom}`. Null arguments
/// skip the matching export. For a streaming Tracer (attached sink) the
/// wall spans are forwarded to the sink and `stream` is finalized instead
/// of rewriting the files from memory.
inline void maybe_export_obs(const Config& args, const std::string& name,
                             obs::Tracer* tracer,
                             const obs::MetricsRegistry* metrics,
                             StreamTraceSinks* stream = nullptr) {
  const std::string trace_dir = args.get_string("trace", "");
  if (!trace_dir.empty() && tracer != nullptr) {
    obs::export_to(*tracer, obs::Profiler::instance().collect());
    if (tracer->sink() != nullptr) {
      if (stream != nullptr) stream->finalize(&std::cout);
    } else {
      obs::export_trace(trace_dir, name, *tracer, &std::cout);
    }
  }
  const std::string metrics_dir = args.get_string("metrics", "");
  if (!metrics_dir.empty() && metrics != nullptr) {
    obs::export_metrics(metrics_dir, name, *metrics, &std::cout);
  }
}

/// Seals the worker's telemetry stream; call after maybe_export_obs, as
/// the bench's last observability step. For a buffered tracer, replays its
/// lane names and events into the stream (a streaming tracer already teed
/// them live); folds in wall spans that no trace= export collected, then
/// appends the metric snapshot, the sampler's folded stacks and the end
/// marker. No-op without telemetry=.
inline void telemetry_finish(const Config& args, obs::Tracer* tracer = nullptr,
                             const obs::MetricsRegistry* metrics = nullptr) {
  obs::TelemetrySink* telemetry = telemetry_sink();
  if (telemetry == nullptr) return;
  if (tracer != nullptr && tracer->sink() == nullptr) {
    if (args.get_string("trace", "").empty()) {
      // telemetry= without trace=: nothing collected the profiler yet.
      obs::export_to(*tracer, obs::Profiler::instance().collect());
    }
    for (const auto& [key, name] : tracer->lane_names()) {
      telemetry->write_lane_name(key.first, key.second, name);
    }
    for (const obs::TraceEvent& event : tracer->events()) {
      telemetry->write(event);
    }
  }
  if (metrics != nullptr) telemetry->write_metrics(*metrics);
  const obs::FoldedStacks folded = obs::Sampler::instance().folded();
  if (!folded.empty()) telemetry->write_stacks(folded);
  telemetry->close();
}

}  // namespace dcs::bench
