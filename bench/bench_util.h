// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "exp/aggregator.h"
#include "exp/reporter.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "util/config.h"
#include "util/time_series.h"

namespace dcs::bench {

/// Keys every bench understands: the shared data-center knobs plus the
/// sweep-runner knobs (threads=<n>, csv=<dir>, perf=<dir>) and the
/// observability knobs (trace=<dir> for Chrome trace JSON + JSONL,
/// metrics=<dir> for CSV/JSON/Prometheus snapshots).
inline constexpr std::string_view kCommonKeys[] = {
    "pdus", "dc_headroom", "pue", "csv", "perf", "threads", "trace",
    "metrics"};

/// Parses "key=value" command-line arguments. Malformed tokens and keys
/// outside the common set plus `extra_allowed` abort with a clear error
/// instead of being silently ignored.
inline Config parse_args(int argc, char** argv,
                         std::initializer_list<std::string_view> extra_allowed = {}) {
  try {
    const Config args = Config::from_args(
        std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));
    std::vector<std::string_view> allowed(std::begin(kCommonKeys),
                                          std::end(kCommonKeys));
    allowed.insert(allowed.end(), extra_allowed.begin(), extra_allowed.end());
    args.require_known(allowed);
    return args;
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": error: " << e.what()
              << "\nusage: " << argv[0] << " [key=value ...]\n";
    std::exit(2);
  }
}

/// Worker threads for the sweep runner (threads=<n>; 0 = all hardware).
inline std::size_t bench_threads(const Config& args) {
  const int threads = args.get_int("threads", 0);
  if (threads < 0) {
    std::cerr << "error: threads must be >= 0\n";
    std::exit(2);
  }
  return static_cast<std::size_t>(threads);
}

/// The default experiment configuration: the paper's data center, simulated
/// with a small PDU count (results are invariant to it, see
/// core/datacenter.h) so every bench finishes in seconds.
inline core::DataCenterConfig bench_config(const Config& args) {
  core::DataCenterConfig config;
  config.fleet.pdu_count =
      static_cast<std::size_t>(args.get_int("pdus", 8));
  config.dc_headroom = args.get_double("dc_headroom", 0.10);
  config.pue = args.get_double("pue", 1.53);
  return config;
}

/// Writes a time series as CSV ("time_s,value") under csv=<dir> if given.
inline void maybe_export_csv(const Config& args, const std::string& name,
                             const TimeSeries& series) {
  const std::string dir = args.get_string("csv", "");
  if (dir.empty()) return;
  exp::export_time_series_csv(dir, name, series, &std::cout);
}

/// Sweep reporting glue: rows/summary CSV + JSON under csv=<dir>, and a
/// BENCH_<sweep>.json perf record (wall time, runs/sec, threads) under
/// perf=<dir>. Perf records pick up the wall-clock profile scopes when the
/// profiler is on (see obs_setup).
inline void maybe_export_sweep(const Config& args, const exp::SweepSpec& spec,
                               const exp::SweepRun& run,
                               const exp::SweepSummary& summary) {
  const std::string csv_dir = args.get_string("csv", "");
  if (!csv_dir.empty()) exp::export_sweep(csv_dir, spec, run, summary, &std::cout);
  const std::string perf_dir = args.get_string("perf", "");
  if (!perf_dir.empty()) {
    const std::vector<obs::ProfileEvent> events =
        obs::Profiler::instance().collect();
    if (events.empty()) {
      exp::export_perf_record(perf_dir, summary, &std::cout);
    } else {
      const obs::ProfileSummary scopes = obs::summarize(events);
      exp::export_perf_record(perf_dir, summary, &std::cout, &scopes);
    }
  }
}

/// Turns the wall-clock profiler on when either observability knob is set;
/// call once near the top of main(), before any sweep runs.
inline void obs_setup(const Config& args) {
  if (!args.get_string("trace", "").empty() ||
      !args.get_string("metrics", "").empty()) {
    obs::Profiler::instance().set_enabled(true);
  }
}

/// Observability export glue: under trace=<dir>, folds the profiler's
/// wall-clock scopes into `tracer` and writes `<name>_trace.json` (Chrome
/// trace-event format, Perfetto-loadable) plus `<name>_trace.jsonl`; under
/// metrics=<dir>, writes `<name>_metrics.{csv,json,prom}`. Null arguments
/// skip the matching export.
inline void maybe_export_obs(const Config& args, const std::string& name,
                             obs::Tracer* tracer,
                             const obs::MetricsRegistry* metrics) {
  const std::string trace_dir = args.get_string("trace", "");
  if (!trace_dir.empty() && tracer != nullptr) {
    obs::export_to(*tracer, obs::Profiler::instance().collect());
    obs::export_trace(trace_dir, name, *tracer, &std::cout);
  }
  const std::string metrics_dir = args.get_string("metrics", "");
  if (!metrics_dir.empty() && metrics != nullptr) {
    obs::export_metrics(metrics_dir, name, *metrics, &std::cout);
  }
}

}  // namespace dcs::bench
