// Shared helpers for the figure-reproduction benches.
#pragma once

#include <fstream>
#include <iostream>
#include <span>
#include <string>

#include "core/config.h"
#include "util/config.h"
#include "util/csv.h"
#include "util/time_series.h"

namespace dcs::bench {

/// Parses "key=value" command-line arguments.
inline Config parse_args(int argc, char** argv) {
  return Config::from_args(
      std::span<const char* const>(argv + 1, static_cast<std::size_t>(argc - 1)));
}

/// The default experiment configuration: the paper's data center, simulated
/// with a small PDU count (results are invariant to it, see
/// core/datacenter.h) so every bench finishes in seconds.
inline core::DataCenterConfig bench_config(const Config& args) {
  core::DataCenterConfig config;
  config.fleet.pdu_count =
      static_cast<std::size_t>(args.get_int("pdus", 8));
  config.dc_headroom = args.get_double("dc_headroom", 0.10);
  config.pue = args.get_double("pue", 1.53);
  return config;
}

/// Writes a time series as CSV ("time_s,value") under csv=<dir> if given.
inline void maybe_export_csv(const Config& args, const std::string& name,
                             const TimeSeries& series) {
  const std::string dir = args.get_string("csv", "");
  if (dir.empty()) return;
  std::ofstream out(dir + "/" + name + ".csv");
  if (!out) {
    std::cerr << "cannot write CSV to " << dir << "/" << name << ".csv\n";
    return;
  }
  CsvWriter csv(out);
  csv.write_row({"time_s", "value"});
  for (const Sample& s : series.samples()) {
    csv.write_numeric_row({s.time.sec(), s.value});
  }
  std::cout << "[csv] wrote " << dir << "/" << name << ".csv\n";
}

}  // namespace dcs::bench
