// Ablation — UPS battery lifetime under sprinting (Sections III-B/IV-B/V-D):
// simulate a bursty day, extrapolate the discharge pattern to a month, and
// check it against the cycle-life model's lifetime-neutrality criterion for
// both chemistries.
#include <iostream>

#include "bench_util.h"
#include "core/datacenter.h"
#include "power/lifetime.h"
#include "util/table.h"
#include "workload/ms_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  DataCenter dc(bench::bench_config(args));

  // A day of MS-style traffic normalized so the sprint-free capacity is
  // 4 GB/s (the paper's Section V-D example), served greedily.
  workload::MsDayTraceParams dp;
  const TimeSeries day = workload::generate_ms_day_trace(dp).scaled(1.0 / 4.0);
  GreedyStrategy greedy;
  const RunResult r = dc.run(day, &greedy);

  const double events_per_month = static_cast<double>(r.ups_discharge_events) * 30.0;
  // Average depth per event from the equivalent-cycle count.
  const double avg_depth =
      r.ups_discharge_events > 0
          ? r.ups_equivalent_cycles / static_cast<double>(r.ups_discharge_events)
          : 0.0;

  std::cout << "=== UPS wear from one simulated day (extrapolated x30) ===\n"
            << "  discharge events: " << r.ups_discharge_events << "/day -> "
            << format_double(events_per_month, 0) << "/month (paper: ~200)\n"
            << "  average depth:    " << format_double(avg_depth * 100.0, 1)
            << "% (paper: ~26%)\n"
            << "  deepest event:    " << format_double(r.ups_max_depth * 100.0, 1)
            << "%\n"
            << "  sprint time:      " << format_double(r.sprint_time.min(), 1)
            << " min/day, avg perf " << format_double(r.performance_factor, 2)
            << "x\n\n";

  TablePrinter table({"chemistry", "required yrs", "wear yrs @ pattern",
                      "lifetime neutral", "wear yrs @ 10x100%"});
  for (const auto& [name, chem] :
       {std::pair{"LFP", power::Chemistry::kLfp},
        std::pair{"lead-acid", power::Chemistry::kLeadAcid}}) {
    const power::BatteryLifetimeModel model(chem);
    const double depth = std::max(avg_depth, 0.01);
    table.add_row({name,
                   format_double(model.required_service_life().hrs() / 8760.0, 0),
                   format_double(model.wear_years(events_per_month, depth), 1),
                   model.lifetime_neutral(events_per_month, depth) ? "yes" : "no",
                   format_double(model.wear_years(10.0, 1.0), 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper: LFP handles 10 full discharges/month over its 8-year"
               " life, and the Fig. 1 month's\n~200 bursts at ~26% depth have"
               " no lifetime impact.\n";
  return 0;
}
