// Figure 5 — monthly cost of provisioning dark cores vs revenue of
// sprinting, for burst magnitudes utilizing 50/75/100 % of the additional
// cores (R50/R75/R100), with Ut = 4 U0 (Fig. 5a) and Ut = 6 U0 (Fig. 5b).
// Also reproduces the Section V-D trace-driven revenue example ("~$19 M").
#include <iostream>

#include "bench_util.h"
#include "econ/profitability.h"
#include "util/table.h"
#include "workload/ms_trace.h"

namespace {

void print_panel(const dcs::econ::ProfitabilityAnalysis& analysis,
                 double ut_over_u0) {
  using dcs::TablePrinter;
  std::cout << "\n--- K = 3 bursts/month, L = 5 min, Ut = "
            << dcs::format_double(ut_over_u0, 0) << " U0 ---\n";
  TablePrinter table({"max degree N", "cost $M", "R50 $M", "R75 $M",
                      "R100 $M", "profit@R100 $M"});
  for (double n : {1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    const auto r50 = analysis.analyze(n, 5.0, 3, 0.50, ut_over_u0);
    const auto r75 = analysis.analyze(n, 5.0, 3, 0.75, ut_over_u0);
    const auto r100 = analysis.analyze(n, 5.0, 3, 1.00, ut_over_u0);
    table.add_row(dcs::format_double(n, 1),
                  {r100.cost_usd / 1e6, r50.total_revenue_usd() / 1e6,
                   r75.total_revenue_usd() / 1e6,
                   r100.total_revenue_usd() / 1e6, r100.profit_usd() / 1e6});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  const Config args = bench::parse_args(argc, argv);
  (void)args;

  std::cout << "=== Figure 5: cost and revenue of Data Center Sprinting ===\n";
  const econ::ProfitabilityAnalysis analysis{econ::CostModel{},
                                             econ::RevenueModel{}};
  print_panel(analysis, 4.0);  // Fig. 5a
  print_panel(analysis, 6.0);  // Fig. 5b

  std::cout << "\nPaper claims: cost $156,250(N-1)/month; high bursts at"
               " N=4 profit > $0.4M/month;\nlow (50%) bursts see diminishing"
               " returns from extra cores.\n";

  // Section V-D trace example: the Fig. 1 workload repeated for a month,
  // capacity 4 GB/s, N = 4, Ut = 4 U0.
  const TimeSeries day = workload::generate_ms_day_trace();
  const TimeSeries demand = day.scaled(1.0 / 4.0);
  const auto monthly = analysis.analyze_trace(demand, 4.0, 4.0, 1.0 / 30.0);
  std::cout << "\n--- Section V-D trace-driven example (month of Fig. 1) ---\n"
            << "  request revenue   $"
            << format_double(monthly.request_revenue_usd / 1e6, 2) << " M\n"
            << "  retention revenue $"
            << format_double(monthly.retention_revenue_usd / 1e6, 2) << " M\n"
            << "  total             $"
            << format_double(monthly.total_revenue_usd() / 1e6, 2)
            << " M (paper: ~$19 M)\n"
            << "  core cost         $"
            << format_double(monthly.cost_usd / 1e6, 2)
            << " M (paper: $0.47 M)\n";
  return 0;
}
