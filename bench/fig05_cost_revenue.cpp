// Figure 5 — monthly cost of provisioning dark cores vs revenue of
// sprinting, for burst magnitudes utilizing 50/75/100 % of the additional
// cores (R50/R75/R100), with Ut = 4 U0 (Fig. 5a) and Ut = 6 U0 (Fig. 5b).
// Also reproduces the Section V-D trace-driven revenue example ("~$19 M").
//
// The (Ut, N) grid runs on the src/exp sweep runner so the cost/revenue
// cells export rows/summary/perf records like the simulation benches.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "econ/profitability.h"
#include "util/table.h"
#include "workload/ms_trace.h"

int main(int argc, char** argv) {
  using namespace dcs;
  const Config args = bench::parse_args(argc, argv);
  bench::obs_setup(args);

  const econ::ProfitabilityAnalysis analysis{econ::CostModel{},
                                             econ::RevenueModel{}};
  const std::vector<double> ut_over_u0 = {4.0, 6.0};
  const std::vector<double> max_degrees = {1.5, 2.0, 2.5, 3.0, 3.5, 4.0};

  exp::SweepSpec spec("fig05_cost_revenue");
  spec.add_axis("ut_over_u0", ut_over_u0, 0);
  spec.add_axis("max_degree", max_degrees, 1);
  const exp::SweepRun run = exp::run_sweep(
      spec, {"cost_m", "r50_m", "r75_m", "r100_m", "profit_r100_m"},
      [&](const exp::SweepSpec::Task& task) {
        const double ut = spec.value(task, 0);
        const double n = spec.value(task, 1);
        const auto r50 = analysis.analyze(n, 5.0, 3, 0.50, ut);
        const auto r75 = analysis.analyze(n, 5.0, 3, 0.75, ut);
        const auto r100 = analysis.analyze(n, 5.0, 3, 1.00, ut);
        return std::vector<double>{
            r100.cost_usd / 1e6, r50.total_revenue_usd() / 1e6,
            r75.total_revenue_usd() / 1e6, r100.total_revenue_usd() / 1e6,
            r100.profit_usd() / 1e6};
      },
      bench::runner_options(args, spec));

  std::cout << "=== Figure 5: cost and revenue of Data Center Sprinting ===\n";
  for (std::size_t u = 0; u < ut_over_u0.size(); ++u) {
    std::cout << "\n--- K = 3 bursts/month, L = 5 min, Ut = "
              << format_double(ut_over_u0[u], 0) << " U0 ---\n";
    TablePrinter table({"max degree N", "cost $M", "R50 $M", "R75 $M",
                        "R100 $M", "profit@R100 $M"});
    for (std::size_t d = 0; d < max_degrees.size(); ++d) {
      const std::vector<double>& row = run.rows[u * max_degrees.size() + d];
      if (row.empty()) continue;  // slot owned by another shard
      table.add_row(format_double(max_degrees[d], 1),
                    {row[0], row[1], row[2], row[3], row[4]});
    }
    table.print(std::cout);
  }

  std::cout << "\nPaper claims: cost $156,250(N-1)/month; high bursts at"
               " N=4 profit > $0.4M/month;\nlow (50%) bursts see diminishing"
               " returns from extra cores.\n";

  // Section V-D trace example: the Fig. 1 workload repeated for a month,
  // capacity 4 GB/s, N = 4, Ut = 4 U0.
  const TimeSeries day = workload::generate_ms_day_trace();
  const TimeSeries demand = day.scaled(1.0 / 4.0);
  const auto monthly = analysis.analyze_trace(demand, 4.0, 4.0, 1.0 / 30.0);
  std::cout << "\n--- Section V-D trace-driven example (month of Fig. 1) ---\n"
            << "  request revenue   $"
            << format_double(monthly.request_revenue_usd / 1e6, 2) << " M\n"
            << "  retention revenue $"
            << format_double(monthly.retention_revenue_usd / 1e6, 2) << " M\n"
            << "  total             $"
            << format_double(monthly.total_revenue_usd() / 1e6, 2)
            << " M (paper: ~$19 M)\n"
            << "  core cost         $"
            << format_double(monthly.cost_usd / 1e6, 2)
            << " M (paper: $0.47 M)\n";

  const exp::SweepSummary summary = exp::aggregate(spec, run);
  bench::maybe_export_sweep(args, spec, run, summary);
  obs::MetricsRegistry metrics;
  if (!args.get_string("metrics", "").empty()) {
    exp::metrics_from_summary(metrics, summary);
  }
  bench::maybe_export_obs(args, "fig05_cost_revenue", nullptr, &metrics);
  std::cerr << "[exp] " << run.rows.size() << " tasks in "
            << format_double(run.wall_seconds, 2) << " s on "
            << run.threads_used << " thread(s)\n";
  bench::drain_exit_if_requested();
  return 0;
}
