// Figure 8 — required vs achieved performance on the MS trace:
// (a) uncontrolled chip-level sprinting trips the data-center breaker a few
//     minutes in and the whole facility goes dark;
// (b) Data Center Sprinting (Greedy) sustains the boost safely.
// Also reports the Section VII-A energy-source split (UPS / TES share of
// the additional energy).
#include <iostream>

#include "bench_util.h"
#include "core/datacenter.h"
#include "util/table.h"
#include "workload/ms_trace.h"

namespace {

void print_series(const dcs::core::RunResult& run, const char* label) {
  using namespace dcs;
  std::cout << "\n" << label << " (30 s resolution):\n";
  TablePrinter table({"minute", "required", "achieved", "degree", "phase"});
  const TimeSeries& demand = run.recorder.series("demand");
  const TimeSeries& achieved = run.recorder.series("achieved");
  const TimeSeries& degree = run.recorder.series("degree");
  const TimeSeries& phase = run.recorder.series("phase");
  for (double m = 0.0; m < 30.0; m += 1.0) {
    const Duration t = Duration::minutes(m);
    table.add_row(format_double(m, 1),
                  {demand.at(t), achieved.at(t), degree.at(t), phase.at(t)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  const Config args = bench::parse_args(argc, argv);
  core::DataCenter dc(bench::bench_config(args));
  const TimeSeries trace = workload::generate_ms_trace();

  std::cout << "=== Figure 8: uncontrolled sprinting vs Data Center Sprinting ===\n";

  const core::RunResult uncontrolled = dc.run(
      trace, nullptr, {.mode = core::Mode::kUncontrolled, .record = true});
  print_series(uncontrolled, "Fig. 8a: uncontrolled chip-level sprinting");
  std::cout << "CB trips at " << to_string(uncontrolled.trip_time)
            << " into the trace (paper: 5 min 20 s); average performance "
            << format_double(uncontrolled.performance_factor, 2) << "x\n";
  bench::maybe_export_csv(args, "fig08a_achieved",
                          uncontrolled.recorder.series("achieved"));

  core::GreedyStrategy greedy;
  const core::RunResult dcs = dc.run(trace, &greedy, {.record = true});
  print_series(dcs, "Fig. 8b: Data Center Sprinting (Greedy)");
  std::cout << "no trip; average performance "
            << format_double(dcs.performance_factor, 2)
            << "x; sprint time " << format_double(dcs.sprint_time.min(), 1)
            << " min\n";
  bench::maybe_export_csv(args, "fig08b_achieved",
                          dcs.recorder.series("achieved"));

  // Section VII-A: energy-source split of the additional energy.
  const Energy pdu_additional = dcs.ups_energy + dcs.pdu_overload_energy;
  const Energy dc_additional =
      dcs.dc_overload_energy + dcs.tes_saved_energy;
  std::cout << "\nAdditional-energy split:\n"
            << "  PDU level: UPS "
            << format_double(100.0 * (dcs.ups_energy / pdu_additional), 1)
            << "% vs CB overload (paper: UPS ~54%)\n"
            << "  DC level:  TES "
            << format_double(
                   100.0 * (dc_additional > Energy::zero()
                                ? dcs.tes_saved_energy / dc_additional
                                : 0.0),
                   1)
            << "% vs CB overload (paper: TES ~13%)\n";
  return 0;
}
