// Ablation — fault injection and the graceful-degradation ladder: every
// default scenario derates one substrate mid-burst; the controlled modes
// must survive (no trip, no overheat, no watchdog violation) while shedding
// degree, and the uncontrolled baseline shows what "surviving" is worth.
//
// All three sections run on the src/exp sweep runner: the scenario grid
// (11 scenarios x 2 strategies), the uncontrolled baseline, and a 50-seed
// survival sweep over random fault schedules (stable task->seed mapping,
// bit-identical for any thread count).
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/datacenter.h"
#include "faults/schedule.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

namespace {

using namespace dcs;
using namespace dcs::core;
using faults::Fault;
using faults::FaultKind;
using faults::FaultSchedule;
using faults::SensorChannel;

struct Scenario {
  std::string name;
  FaultSchedule schedule;
  /// Optional supply derating paired with the faults (generator scenarios).
  double supply_dip = 1.0;
};

Fault window(FaultKind kind, double start_min, double end_min, double magnitude,
             SensorChannel channel = SensorChannel::kDemand) {
  return Fault{kind, Duration::minutes(start_min), Duration::minutes(end_min),
               magnitude, channel};
}

/// Fault windows sit inside the burst (minutes 5-20 of the Yahoo trace).
std::vector<Scenario> default_scenarios() {
  std::vector<Scenario> out;
  out.push_back({"nominal", {}, 1.0});

  FaultSchedule s;
  s.add(window(FaultKind::kUpsBankOutage, 7, 13, 0.4));
  out.push_back({"ups-outage-40%", s, 1.0});

  s = {};
  s.add(window(FaultKind::kUpsCapacityFade, 6, 20, 0.3));
  out.push_back({"ups-fade-30%", s, 1.0});

  s = {};
  s.add(window(FaultKind::kBreakerDerating, 8, 11, 0.10));
  out.push_back({"pdu-derate-10%", s, 1.0});

  s = {};
  s.add(window(FaultKind::kBreakerNuisanceBias, 7, 12, 0.25));
  out.push_back({"nuisance-bias-0.25", s, 1.0});

  s = {};
  s.add(window(FaultKind::kChillerDegradedCop, 6, 18, 0.35));
  out.push_back({"chiller-cop+35%", s, 1.0});

  s = {};
  s.add(window(FaultKind::kChillerFailure, 9, 13, 0.4));
  out.push_back({"chiller-40%-loss", s, 1.0});

  s = {};
  s.add(window(FaultKind::kTesValveStuck, 8, 16, 1.0));
  out.push_back({"tes-valve-stuck", s, 1.0});

  s = {};
  s.add(window(FaultKind::kGeneratorStartFailure, 0, 30, 1.0));
  out.push_back({"gen-fail+dip-85%", s, 0.85});

  s = {};
  s.add(window(FaultKind::kSensorStale, 7, 12, 1.0, SensorChannel::kDemand));
  out.push_back({"sensor-stale-demand", s, 1.0});

  s = {};
  s.add(window(FaultKind::kSensorNoisy, 6, 18, 0.15, SensorChannel::kDemand));
  out.push_back({"sensor-noisy-15%", s, 1.0});

  return out;
}

struct Outcome {
  bool survived = false;
  RunResult result;
};

/// One isolated scenario run: fresh DataCenter, generator and supply trace
/// per call, so tasks are safe to execute concurrently. `tracer` and
/// `metrics` are per-task sinks (or null) — see RunOptions.
Outcome run_scenario(const DataCenterConfig& config, const TimeSeries& trace,
                     const Scenario& sc, Strategy* strategy, Mode mode,
                     obs::Tracer* tracer = nullptr,
                     obs::MetricsRegistry* metrics = nullptr) {
  DataCenter dc(config);
  RunOptions opts;
  opts.mode = mode;
  opts.tracer = tracer;
  opts.metrics = metrics;
  TimeSeries supply;
  power::DieselGenerator generator(
      "gen", {.rated = config.dc_rated() * 0.5,
              .start_delay = Duration::seconds(45)});
  if (sc.supply_dip < 1.0) {
    supply.push_back(Duration::zero(), 1.0);
    supply.push_back(Duration::minutes(7), sc.supply_dip);
    supply.push_back(Duration::minutes(12), 1.0);
    supply.push_back(trace.end_time(), 1.0);
    opts.supply_fraction = &supply;
    opts.generator = &generator;
  }
  if (!sc.schedule.empty()) opts.faults = &sc.schedule;
  Outcome o;
  o.result = dc.run(trace, strategy, opts);
  o.survived = !o.result.tripped && o.result.watchdog.ok();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Config args = bench::parse_args(argc, argv, {"seeds"});
  bench::obs_setup(args);
  bench::telemetry_setup(args, "ablation_faults");
  const bool tracing = bench::tracing_enabled(args);

  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  const DataCenterConfig config = bench::bench_config(args);
  const std::vector<Scenario> scenarios = default_scenarios();
  const std::vector<std::string> strategy_names = {"greedy", "bound-2.4"};
  const auto make_strategy =
      [](std::size_t level) -> std::unique_ptr<Strategy> {
    if (level == 0) return std::make_unique<GreedyStrategy>();
    return std::make_unique<ConstantBoundStrategy>(2.4);
  };

  // --- Section 1: scenario grid, controlled modes -------------------------
  exp::SweepSpec grid("ablation_faults");
  grid.add_axis("strategy", strategy_names);
  {
    std::vector<std::string> names;
    for (const Scenario& sc : scenarios) names.push_back(sc.name);
    grid.add_axis("scenario", std::move(names));
  }
  // Each grid task owns a Tracer slot (same task-indexed contract as the
  // runner's result rows), so the merged sim-event stream is bit-identical
  // for any thread count.
  std::vector<obs::Tracer> task_tracers(tracing ? grid.tasks().size() : 0);
  const exp::SweepRun grid_run = exp::run_sweep(
      grid, {"survived", "perf", "max_ladder", "watchdog"},
      [&](const exp::SweepSpec::Task& task) {
        obs::Tracer* tracer = nullptr;
        if (tracing) {
          tracer = &task_tracers[task.index];
          tracer->set_lane(static_cast<std::uint32_t>(task.index));
        }
        const auto strategy = make_strategy(task.level[0]);
        const Outcome o = run_scenario(config, trace, scenarios[task.level[1]],
                                       strategy.get(), Mode::kControlled,
                                       tracer);
        return std::vector<double>{
            o.survived ? 1.0 : 0.0, o.result.performance_factor,
            static_cast<double>(o.result.max_degradation),
            static_cast<double>(o.result.watchdog.violations)};
      },
      bench::runner_options(args, grid));

  obs::Tracer tracer;
  if (tracing) {
    for (const exp::SweepSpec::Task& task : grid.tasks()) {
      tracer.name_lane(obs::Domain::kSim,
                       static_cast<std::uint32_t>(task.index),
                       strategy_names[task.level[0]] + "/" +
                           scenarios[task.level[1]].name);
      tracer.merge_from(std::move(task_tracers[task.index]));
    }
  }

  std::cout << "=== Ablation: fault scenarios x strategies (burst 3.2x for"
               " 15 min; survived = no trip, no invariant violation) ===\n";
  TablePrinter table({"scenario", "strategy", "survived", "perf", "retained %",
                      "max ladder", "watchdog"});
  for (std::size_t st = 0; st < strategy_names.size(); ++st) {
    // The nominal (fault-free) cell anchors the "performance retained"
    // column; under sharding it may live in another shard's slot.
    const std::vector<double>& nominal = grid_run.rows[st * scenarios.size()];
    const double base_perf = nominal.empty() ? 0.0 : nominal[1];
    for (std::size_t sc = 0; sc < scenarios.size(); ++sc) {
      const std::vector<double>& row = grid_run.rows[st * scenarios.size() + sc];
      if (row.empty()) continue;  // slot owned by another shard
      const double retained =
          base_perf > 0.0 ? 100.0 * row[1] / base_perf : 0.0;
      table.add_row({scenarios[sc].name, strategy_names[st],
                     row[0] > 0.0 ? "yes" : "NO", format_double(row[1], 3),
                     format_double(retained, 1),
                     std::string(to_string(static_cast<DegradationLevel>(
                         static_cast<int>(row[2])))),
                     format_double(row[3], 0)});
    }
  }
  table.print(std::cout);

  // --- Section 2: uncontrolled baseline ----------------------------------
  exp::SweepSpec unc_spec("ablation_faults_uncontrolled");
  {
    std::vector<std::string> names;
    for (const Scenario& sc : scenarios) names.push_back(sc.name);
    unc_spec.add_axis("scenario", std::move(names));
  }
  const exp::SweepRun unc_run = exp::run_sweep(
      unc_spec, {"tripped", "trip_min", "perf"},
      [&](const exp::SweepSpec::Task& task) {
        const Outcome o = run_scenario(config, trace, scenarios[task.level[0]],
                                       nullptr, Mode::kUncontrolled);
        return std::vector<double>{
            o.result.tripped ? 1.0 : 0.0,
            o.result.tripped ? o.result.trip_time.min() : -1.0,
            o.result.performance_factor};
      },
      bench::runner_options(args, unc_spec));

  std::cout << "\n=== Baseline: uncontrolled sprinting under the same"
               " scenarios (trips expected) ===\n";
  TablePrinter unc({"scenario", "tripped", "trip @ min", "perf"});
  std::size_t uncontrolled_trips = 0;
  for (std::size_t sc = 0; sc < scenarios.size(); ++sc) {
    const std::vector<double>& row = unc_run.rows[sc];
    if (row.empty()) continue;  // slot owned by another shard
    if (row[0] > 0.0) ++uncontrolled_trips;
    unc.add_row({scenarios[sc].name, row[0] > 0.0 ? "yes" : "no",
                 row[0] > 0.0 ? format_double(row[1], 2) : "-",
                 format_double(row[2], 3)});
  }
  unc.print(std::cout);
  std::cout << "\nuncontrolled trips in " << uncontrolled_trips << "/"
            << scenarios.size() << " scenarios\n";

  // --- Section 3: seeded survival sweep over random fault schedules -------
  const std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", 50));
  exp::SweepSpec surv("ablation_faults_survival", /*base_seed=*/0x5EEDFA17ULL);
  const std::vector<double> severities = {1.0};
  surv.add_axis("severity", severities, 2);
  surv.set_replicates(seeds);
  const exp::SweepRun surv_run = exp::run_sweep(
      surv, {"survived", "perf", "watchdog"},
      [&](const exp::SweepSpec::Task& task) {
        const FaultSchedule schedule = FaultSchedule::random(
            task.seed, trace.end_time(), surv.value(task, 0));
        Scenario sc{"random", schedule, 1.0};
        ConstantBoundStrategy bound(2.4);
        const Outcome o =
            run_scenario(config, trace, sc, &bound, Mode::kControlled);
        return std::vector<double>{
            o.survived ? 1.0 : 0.0, o.result.performance_factor,
            static_cast<double>(o.result.watchdog.violations)};
      },
      bench::runner_options(args, surv));
  const exp::SweepSummary surv_summary = exp::aggregate(surv, surv_run);

  std::cout << "\n=== Survival sweep: " << seeds
            << " random fault schedules (severity 1.0, bound-2.4) ===\n";
  TablePrinter surv_table({"severity", "survival %", "perf mean", "perf min",
                           "perf p95", "watchdog"});
  for (const exp::CellSummary& cell : surv_summary.cells) {
    surv_table.add_row({cell.labels[0],
                        format_double(100.0 * cell.metrics[0].mean, 1),
                        format_double(cell.metrics[1].mean, 3),
                        format_double(cell.metrics[1].min, 3),
                        format_double(cell.metrics[1].p95, 3),
                        format_double(cell.metrics[2].max, 0)});
  }
  surv_table.print(std::cout);

  const exp::SweepSummary grid_summary = exp::aggregate(grid, grid_run);
  bench::maybe_export_sweep(args, grid, grid_run, grid_summary);
  bench::maybe_export_sweep(args, surv, surv_run, surv_summary);

  obs::MetricsRegistry metrics;
  if (!args.get_string("metrics", "").empty()) {
    // Cell-level snapshot of both sweeps, plus the per-tick instruments
    // (sprint_degree histogram, SoC/margin gauges, transition counters)
    // from one representative faulted run. The registry is not thread-safe,
    // so the per-tick run happens here, after the sweeps.
    exp::metrics_from_summary(metrics, grid_summary);
    exp::metrics_from_summary(metrics, surv_summary);
    GreedyStrategy greedy;
    run_scenario(config, trace, scenarios[6], &greedy, Mode::kControlled,
                 nullptr, &metrics);
  }
  bench::maybe_export_obs(args, "ablation_faults", &tracer, &metrics);
  bench::telemetry_finish(args, tracing ? &tracer : nullptr, &metrics);
  std::cerr << "[exp] "
            << grid_run.rows.size() + unc_run.rows.size() +
                   surv_run.rows.size()
            << " tasks in "
            << format_double(grid_run.wall_seconds + unc_run.wall_seconds +
                                 surv_run.wall_seconds,
                             2)
            << " s on " << grid_run.threads_used << " thread(s)\n";
  bench::drain_exit_if_requested();
  return 0;
}
