// Ablation — fault injection and the graceful-degradation ladder: every
// default scenario derates one substrate mid-burst; the controlled modes
// must survive (no trip, no overheat, no watchdog violation) while shedding
// degree, and the uncontrolled baseline shows what "surviving" is worth.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/datacenter.h"
#include "faults/schedule.h"
#include "util/table.h"
#include "workload/yahoo_trace.h"

namespace {

using namespace dcs;
using namespace dcs::core;
using faults::Fault;
using faults::FaultKind;
using faults::FaultSchedule;
using faults::SensorChannel;

struct Scenario {
  std::string name;
  FaultSchedule schedule;
  /// Optional supply derating paired with the faults (generator scenarios).
  double supply_dip = 1.0;
};

Fault window(FaultKind kind, double start_min, double end_min, double magnitude,
             SensorChannel channel = SensorChannel::kDemand) {
  return Fault{kind, Duration::minutes(start_min), Duration::minutes(end_min),
               magnitude, channel};
}

/// Fault windows sit inside the burst (minutes 5-20 of the Yahoo trace).
std::vector<Scenario> default_scenarios() {
  std::vector<Scenario> out;
  out.push_back({"nominal", {}, 1.0});

  FaultSchedule s;
  s.add(window(FaultKind::kUpsBankOutage, 7, 13, 0.4));
  out.push_back({"ups-outage-40%", s, 1.0});

  s = {};
  s.add(window(FaultKind::kUpsCapacityFade, 6, 20, 0.3));
  out.push_back({"ups-fade-30%", s, 1.0});

  s = {};
  s.add(window(FaultKind::kBreakerDerating, 8, 11, 0.10));
  out.push_back({"pdu-derate-10%", s, 1.0});

  s = {};
  s.add(window(FaultKind::kBreakerNuisanceBias, 7, 12, 0.25));
  out.push_back({"nuisance-bias-0.25", s, 1.0});

  s = {};
  s.add(window(FaultKind::kChillerDegradedCop, 6, 18, 0.35));
  out.push_back({"chiller-cop+35%", s, 1.0});

  s = {};
  s.add(window(FaultKind::kChillerFailure, 9, 13, 0.4));
  out.push_back({"chiller-40%-loss", s, 1.0});

  s = {};
  s.add(window(FaultKind::kTesValveStuck, 8, 16, 1.0));
  out.push_back({"tes-valve-stuck", s, 1.0});

  s = {};
  s.add(window(FaultKind::kGeneratorStartFailure, 0, 30, 1.0));
  out.push_back({"gen-fail+dip-85%", s, 0.85});

  s = {};
  s.add(window(FaultKind::kSensorStale, 7, 12, 1.0, SensorChannel::kDemand));
  out.push_back({"sensor-stale-demand", s, 1.0});

  s = {};
  s.add(window(FaultKind::kSensorNoisy, 6, 18, 0.15, SensorChannel::kDemand));
  out.push_back({"sensor-noisy-15%", s, 1.0});

  return out;
}

struct Outcome {
  bool survived = false;
  RunResult result;
};

}  // namespace

int main(int argc, char** argv) {
  const Config args = bench::parse_args(argc, argv);

  workload::YahooTraceParams yp;
  yp.burst_degree = 3.2;
  yp.burst_duration = Duration::minutes(15);
  const TimeSeries trace = workload::generate_yahoo_trace(yp);

  const DataCenterConfig config = bench::bench_config(args);

  struct NamedStrategy {
    std::string name;
    Strategy* strategy;
  };
  GreedyStrategy greedy;
  ConstantBoundStrategy bound24(2.4);
  const std::vector<NamedStrategy> strategies = {{"greedy", &greedy},
                                                 {"bound-2.4", &bound24}};

  const auto run_scenario = [&](const Scenario& sc, Strategy* strategy,
                                Mode mode) {
    DataCenter dc(config);
    RunOptions opts;
    opts.mode = mode;
    TimeSeries supply;
    power::DieselGenerator generator(
        "gen", {.rated = config.dc_rated() * 0.5,
                .start_delay = Duration::seconds(45)});
    if (sc.supply_dip < 1.0) {
      supply.push_back(Duration::zero(), 1.0);
      supply.push_back(Duration::minutes(7), sc.supply_dip);
      supply.push_back(Duration::minutes(12), 1.0);
      supply.push_back(trace.end_time(), 1.0);
      opts.supply_fraction = &supply;
      opts.generator = &generator;
    }
    if (!sc.schedule.empty()) opts.faults = &sc.schedule;
    Outcome o;
    o.result = dc.run(trace, strategy, opts);
    o.survived = !o.result.tripped && o.result.watchdog.ok();
    return o;
  };

  std::cout << "=== Ablation: fault scenarios x strategies (burst 3.2x for"
               " 15 min; survived = no trip, no invariant violation) ===\n";
  TablePrinter table({"scenario", "strategy", "survived", "perf", "retained %",
                      "max ladder", "watchdog"});
  for (const auto& st : strategies) {
    const Outcome base =
        run_scenario(default_scenarios().front(), st.strategy, Mode::kControlled);
    for (const Scenario& sc : default_scenarios()) {
      const Outcome o = run_scenario(sc, st.strategy, Mode::kControlled);
      const double retained =
          base.result.performance_factor > 0.0
              ? 100.0 * o.result.performance_factor /
                    base.result.performance_factor
              : 0.0;
      table.add_row({sc.name, st.name, o.survived ? "yes" : "NO",
                     format_double(o.result.performance_factor, 3),
                     format_double(retained, 1),
                     std::string(to_string(o.result.max_degradation)),
                     std::to_string(o.result.watchdog.violations)});
    }
  }
  table.print(std::cout);

  std::cout << "\n=== Baseline: uncontrolled sprinting under the same"
               " scenarios (trips expected) ===\n";
  TablePrinter unc({"scenario", "tripped", "trip @ min", "perf"});
  std::size_t uncontrolled_trips = 0;
  for (const Scenario& sc : default_scenarios()) {
    const Outcome o = run_scenario(sc, nullptr, Mode::kUncontrolled);
    if (o.result.tripped) ++uncontrolled_trips;
    unc.add_row({sc.name, o.result.tripped ? "yes" : "no",
                 o.result.tripped ? format_double(o.result.trip_time.min(), 2)
                                  : "-",
                 format_double(o.result.performance_factor, 3)});
  }
  unc.print(std::cout);

  std::cout << "\nuncontrolled trips in " << uncontrolled_trips << "/"
            << default_scenarios().size() << " scenarios\n";
  return 0;
}
