// Figure 7 — the two experiment workloads: the 30-minute MS cut (7a) and
// the Yahoo trace with an injected burst (7b, degree 3.2 / 15 min).
#include <iostream>

#include "bench_util.h"
#include "util/table.h"
#include "workload/burst.h"
#include "workload/ms_trace.h"
#include "workload/yahoo_trace.h"

namespace {

void print_minutes(const dcs::TimeSeries& trace, const char* label) {
  using namespace dcs;
  std::cout << "\n" << label << " (per-minute mean, % of capacity):\n";
  TablePrinter table({"minute", "demand %", "minute ", "demand % "});
  const int total = static_cast<int>(trace.end_time().min());
  for (int m = 0; m < total / 2; ++m) {
    const int m2 = m + total / 2;
    const double v1 =
        trace.slice(Duration::minutes(m), Duration::minutes(m + 1))
            .time_weighted_mean();
    const double v2 =
        trace.slice(Duration::minutes(m2), Duration::minutes(m2 + 1))
            .time_weighted_mean();
    table.add_row(std::to_string(m),
                  {v1 * 100.0, static_cast<double>(m2), v2 * 100.0}, 0);
  }
  table.print(std::cout);
  const workload::BurstStats stats = workload::analyze_bursts(trace);
  std::cout << "peak " << format_double(stats.peak_demand * 100.0, 0)
            << "%  over-capacity "
            << format_double(stats.over_capacity_time.min(), 1) << " min in "
            << stats.burst_count << " bursts, mean burst magnitude "
            << format_double(stats.mean_burst_demand, 2) << "x\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  const Config args = bench::parse_args(argc, argv);

  std::cout << "=== Figure 7: experiment workload traces ===\n";
  const TimeSeries ms = workload::generate_ms_trace();
  bench::maybe_export_csv(args, "fig07a_ms_trace", ms);
  print_minutes(ms, "Fig. 7a: MS trace (paper: peak >300%, 16.2 min over capacity)");

  const TimeSeries yahoo = workload::generate_yahoo_trace();
  bench::maybe_export_csv(args, "fig07b_yahoo_trace", yahoo);
  print_minutes(yahoo,
                "Fig. 7b: Yahoo trace, burst degree 3.2, duration 15 min");
  return 0;
}
