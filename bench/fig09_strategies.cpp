// Figure 9 — average performance of the four sprinting-degree strategies on
// the MS trace as a function of the estimation error. Greedy and Oracle are
// error-independent; Prediction perturbs the predicted burst duration and
// Heuristic the estimated best average sprinting degree.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/heuristic_strategy.h"
#include "core/oracle.h"
#include "core/prediction_strategy.h"
#include "util/table.h"
#include "workload/ms_trace.h"
#include "workload/predictor.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  DataCenter dc(bench::bench_config(args));
  const TimeSeries trace = workload::generate_ms_trace();

  std::cout << "=== Figure 9: strategies vs estimation error (MS trace) ===\n";

  // The Oracle's exhaustive search, and the upper-bound table it produces
  // for the Prediction strategy.
  const std::vector<Duration> durations = {
      Duration::minutes(1), Duration::minutes(5), Duration::minutes(10),
      Duration::minutes(15), Duration::minutes(25)};
  const std::vector<double> degrees = {1.5, 2.0, 2.6, 3.0, 3.6};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 4);

  const OracleResult oracle = oracle_search(dc, trace, 2);
  ConstantBoundStrategy oracle_strategy(oracle.best_bound, "oracle");
  const RunResult oracle_run = dc.run(trace, &oracle_strategy);

  GreedyStrategy greedy;
  const RunResult greedy_run = dc.run(trace, &greedy);

  const workload::BurstTruth truth = workload::measure_burst_truth(trace);
  const double budget = dc.budget_degree_seconds();

  std::cout << "real burst duration " << format_double(truth.duration.min(), 1)
            << " min; oracle bound " << format_double(oracle.best_bound, 2)
            << "; oracle avg sprint degree "
            << format_double(oracle_run.avg_sprint_degree, 2) << "\n\n";

  TablePrinter table_out(
      {"error %", "Greedy", "Prediction", "Heuristic", "Oracle"});
  for (double err = -1.0; err <= 1.0 + 1e-9; err += 0.2) {
    const workload::ErrorfulForecast forecast(truth, err);
    PredictionStrategy prediction(forecast.predicted_duration(), &table);
    HeuristicStrategy heuristic(forecast.apply(oracle_run.avg_sprint_degree),
                                budget);
    table_out.add_row(format_double(err * 100.0, 0),
                      {greedy_run.performance_factor,
                       dc.run(trace, &prediction).performance_factor,
                       dc.run(trace, &heuristic).performance_factor,
                       oracle.best_performance});
  }
  table_out.print(std::cout);

  std::cout << "\nPaper: overall band 1.62-1.76; Prediction/Heuristic near"
               " Oracle at zero error;\nunderestimated duration or"
               " overestimated degree degrades toward Greedy.\n";
  return 0;
}
