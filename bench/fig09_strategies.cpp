// Figure 9 — average performance of the four sprinting-degree strategies on
// the MS trace as a function of the estimation error. Greedy and Oracle are
// error-independent; Prediction perturbs the predicted burst duration and
// Heuristic the estimated best average sprinting degree.
//
// The error grid runs on the src/exp sweep runner (threads=<n> to pin the
// worker count); results are bit-identical for any thread count.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/heuristic_strategy.h"
#include "core/oracle.h"
#include "core/prediction_strategy.h"
#include "util/table.h"
#include "workload/ms_trace.h"
#include "workload/predictor.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv);
  const std::size_t threads = bench::bench_threads(args);
  const DataCenter dc(bench::bench_config(args));
  const TimeSeries trace = workload::generate_ms_trace();

  std::cout << "=== Figure 9: strategies vs estimation error (MS trace) ===\n";

  // The Oracle's exhaustive search, and the upper-bound table it produces
  // for the Prediction strategy.
  const std::vector<Duration> durations = {
      Duration::minutes(1), Duration::minutes(5), Duration::minutes(10),
      Duration::minutes(15), Duration::minutes(25)};
  const std::vector<double> degrees = {1.5, 2.0, 2.6, 3.0, 3.6};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 4, threads);

  const OracleResult oracle = oracle_search(dc, trace, 2, threads);
  RunResult oracle_run;
  RunResult greedy_run;
  {
    DataCenter run_dc(dc.config());
    ConstantBoundStrategy oracle_strategy(oracle.best_bound, "oracle");
    oracle_run = run_dc.run(trace, &oracle_strategy);
    GreedyStrategy greedy;
    greedy_run = run_dc.run(trace, &greedy);
  }

  const workload::BurstTruth truth = workload::measure_burst_truth(trace);
  const double budget = dc.budget_degree_seconds();

  std::cout << "real burst duration " << format_double(truth.duration.min(), 1)
            << " min; oracle bound " << format_double(oracle.best_bound, 2)
            << "; oracle avg sprint degree "
            << format_double(oracle_run.avg_sprint_degree, 2) << "\n\n";

  std::vector<double> errors;
  std::vector<double> error_pct;
  for (double err = -1.0; err <= 1.0 + 1e-9; err += 0.2) {
    errors.push_back(err);
    error_pct.push_back(err * 100.0);
  }

  exp::SweepSpec spec("fig09_strategies");
  spec.add_axis("error_pct", error_pct, 0);
  const exp::SweepRun run = exp::run_sweep(
      spec, {"greedy", "prediction", "heuristic", "oracle"},
      [&](const exp::SweepSpec::Task& task) {
        const double err = errors[task.level[0]];
        DataCenter task_dc(dc.config());
        const workload::ErrorfulForecast forecast(truth, err);
        PredictionStrategy prediction(forecast.predicted_duration(), &table);
        HeuristicStrategy heuristic(
            forecast.apply(oracle_run.avg_sprint_degree), budget);
        return std::vector<double>{
            greedy_run.performance_factor,
            task_dc.run(trace, &prediction).performance_factor,
            task_dc.run(trace, &heuristic).performance_factor,
            oracle.best_performance};
      },
      {.threads = threads});

  TablePrinter table_out(
      {"error %", "Greedy", "Prediction", "Heuristic", "Oracle"});
  for (std::size_t i = 0; i < run.rows.size(); ++i) {
    table_out.add_row(spec.axes()[0].labels[i], run.rows[i]);
  }
  table_out.print(std::cout);

  const exp::SweepSummary summary = exp::aggregate(spec, run);
  bench::maybe_export_sweep(args, spec, run, summary);
  std::cerr << "[exp] " << run.rows.size() << " tasks in "
            << format_double(run.wall_seconds, 2) << " s on "
            << run.threads_used << " thread(s)\n";

  std::cout << "\nPaper: overall band 1.62-1.76; Prediction/Heuristic near"
               " Oracle at zero error;\nunderestimated duration or"
               " overestimated degree degrades toward Greedy.\n";
  return 0;
}
