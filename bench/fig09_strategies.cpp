// Figure 9 — average performance of the four sprinting-degree strategies on
// the MS trace as a function of the estimation error. Greedy and Oracle are
// error-independent; Prediction perturbs the predicted burst duration and
// Heuristic the estimated best average sprinting degree.
//
// The error grid runs on the src/exp sweep runner (threads=<n> to pin the
// worker count); results are bit-identical for any thread count.
//
// Observability: under trace=<dir> each grid task traces its Prediction run
// (phase-transition instants plus recorder counter tracks: state of charge,
// breaker trip margin, room temperature, degree, chiller draw) into its own
// lane; sink=stream sends the merged stream through the bounded-memory
// crash-safe file sinks. faults=1 injects a canonical mid-burst fault pair
// (UPS bank outage + degraded chiller) so the traced trajectories show the
// degradation ladder at work.
#include <iostream>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "core/heuristic_strategy.h"
#include "obs/decision.h"
#include "core/oracle.h"
#include "core/prediction_strategy.h"
#include "faults/schedule.h"
#include "util/table.h"
#include "workload/ms_trace.h"
#include "workload/predictor.h"

int main(int argc, char** argv) {
  using namespace dcs;
  using namespace dcs::core;
  const Config args = bench::parse_args(argc, argv, {"faults"});
  const std::size_t threads = bench::bench_threads(args);
  bench::obs_setup(args);
  bench::telemetry_setup(args, "fig09_strategies");
  const bool tracing = bench::tracing_enabled(args);
  const bool decisions = bench::decisions_enabled(args);
  const bool faulted = args.get_int("faults", 0) != 0;
  const DataCenter dc(bench::bench_config(args));
  const TimeSeries trace = workload::generate_ms_trace();

  // Canonical mid-burst faults (the MS trace's over-capacity window spans
  // most of the 30-minute cut): a 40% UPS bank outage overlapping a 35%
  // chiller COP degradation.
  faults::FaultSchedule fault_schedule;
  if (faulted) {
    fault_schedule.add(faults::Fault{faults::FaultKind::kUpsBankOutage,
                                     Duration::minutes(10),
                                     Duration::minutes(16), 0.4,
                                     faults::SensorChannel::kDemand});
    fault_schedule.add(faults::Fault{faults::FaultKind::kChillerDegradedCop,
                                     Duration::minutes(8),
                                     Duration::minutes(20), 0.35,
                                     faults::SensorChannel::kDemand});
  }

  std::cout << "=== Figure 9: strategies vs estimation error (MS trace) ===\n";

  // The Oracle's exhaustive search, and the upper-bound table it produces
  // for the Prediction strategy.
  const std::vector<Duration> durations = {
      Duration::minutes(1), Duration::minutes(5), Duration::minutes(10),
      Duration::minutes(15), Duration::minutes(25)};
  const std::vector<double> degrees = {1.5, 2.0, 2.6, 3.0, 3.6};
  const UpperBoundTable table = build_upper_bound_table(
      dc, durations, degrees, workload::YahooTraceParams{}, 4, threads);

  const OracleResult oracle = oracle_search(dc, trace, 2, threads);
  RunResult oracle_run;
  RunResult greedy_run;
  {
    DataCenter run_dc(dc.config());
    ConstantBoundStrategy oracle_strategy(oracle.best_bound, "oracle");
    oracle_run = run_dc.run(trace, &oracle_strategy);
    GreedyStrategy greedy;
    greedy_run = run_dc.run(trace, &greedy);
  }

  const workload::BurstTruth truth = workload::measure_burst_truth(trace);
  const double budget = dc.budget_degree_seconds();

  std::cout << "real burst duration " << format_double(truth.duration.min(), 1)
            << " min; oracle bound " << format_double(oracle.best_bound, 2)
            << "; oracle avg sprint degree "
            << format_double(oracle_run.avg_sprint_degree, 2) << "\n\n";

  std::vector<double> errors;
  std::vector<double> error_pct;
  for (double err = -1.0; err <= 1.0 + 1e-9; err += 0.2) {
    errors.push_back(err);
    error_pct.push_back(err * 100.0);
  }

  exp::SweepSpec spec("fig09_strategies");
  spec.add_axis("error_pct", error_pct, 0);
  // Each grid task owns a Tracer slot (same task-indexed contract as the
  // runner's result rows), so the merged sim-event stream is bit-identical
  // for any thread count.
  std::vector<obs::Tracer> task_tracers(tracing ? spec.tasks().size() : 0);
  const exp::SweepRun run = exp::run_sweep(
      spec, {"greedy", "prediction", "heuristic", "oracle"},
      [&](const exp::SweepSpec::Task& task) {
        const double err = errors[task.level[0]];
        DataCenter task_dc(dc.config());
        const workload::ErrorfulForecast forecast(truth, err);
        PredictionStrategy prediction(forecast.predicted_duration(), &table);
        HeuristicStrategy heuristic(
            forecast.apply(oracle_run.avg_sprint_degree), budget);
        RunOptions opts;
        if (faulted) opts.faults = &fault_schedule;
        std::optional<obs::DecisionLog> decision_log;
        if (tracing) {
          opts.tracer = &task_tracers[task.index];
          opts.tracer->set_lane(static_cast<std::uint32_t>(task.index));
          opts.record = true;
          if (decisions) {
            // Decision provenance rides the task's own trace lane, so the
            // merged decision stream shares the bit-identity contract.
            decision_log.emplace(opts.tracer);
            opts.decisions = &*decision_log;
          }
        }
        const RunResult prediction_run = task_dc.run(trace, &prediction, opts);
        if (tracing) {
          // Counter tracks next to the phase instants the run just traced.
          obs::export_counters(prediction_run.recorder, *opts.tracer,
                               {.channels = bench::kDefaultCounterChannels});
        }
        RunOptions heuristic_opts;
        if (faulted) heuristic_opts.faults = &fault_schedule;
        return std::vector<double>{
            greedy_run.performance_factor, prediction_run.performance_factor,
            task_dc.run(trace, &heuristic, heuristic_opts).performance_factor,
            oracle.best_performance};
      },
      bench::runner_options(args, spec));

  bench::StreamTraceSinks stream =
      bench::maybe_stream_sinks(args, "fig09_strategies");
  obs::Tracer tracer =
      stream.active() ? obs::Tracer(stream.sink()) : obs::Tracer();
  if (tracing) {
    for (const exp::SweepSpec::Task& task : spec.tasks()) {
      tracer.name_lane(obs::Domain::kSim,
                       static_cast<std::uint32_t>(task.index),
                       "prediction/err=" + spec.label(task, 0) + "%");
      tracer.merge_from(std::move(task_tracers[task.index]));
    }
  }

  TablePrinter table_out(
      {"error %", "Greedy", "Prediction", "Heuristic", "Oracle"});
  for (std::size_t i = 0; i < run.rows.size(); ++i) {
    if (run.rows[i].empty()) continue;  // slot owned by another shard
    table_out.add_row(spec.axes()[0].labels[i], run.rows[i]);
  }
  table_out.print(std::cout);

  const exp::SweepSummary summary = exp::aggregate(spec, run);
  bench::maybe_export_sweep(args, spec, run, summary);
  bench::maybe_export_obs(args, "fig09_strategies", tracing ? &tracer : nullptr,
                          nullptr, &stream);
  bench::telemetry_finish(args, tracing ? &tracer : nullptr);
  std::cerr << "[exp] " << run.rows.size() << " tasks in "
            << format_double(run.wall_seconds, 2) << " s on "
            << run.threads_used << " thread(s)\n";

  std::cout << "\nPaper: overall band 1.62-1.76; Prediction/Heuristic near"
               " Oracle at zero error;\nunderestimated duration or"
               " overestimated degree degrades toward Greedy.\n";
  bench::drain_exit_if_requested();
  return 0;
}
