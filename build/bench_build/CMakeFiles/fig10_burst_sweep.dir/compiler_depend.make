# Empty compiler generated dependencies file for fig10_burst_sweep.
# This may be replaced when dependencies are built.
