file(REMOVE_RECURSE
  "../bench/ablation_powercap"
  "../bench/ablation_powercap.pdb"
  "CMakeFiles/ablation_powercap.dir/ablation_powercap.cpp.o"
  "CMakeFiles/ablation_powercap.dir/ablation_powercap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_powercap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
