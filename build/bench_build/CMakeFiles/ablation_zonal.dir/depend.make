# Empty dependencies file for ablation_zonal.
# This may be replaced when dependencies are built.
