file(REMOVE_RECURSE
  "../bench/ablation_zonal"
  "../bench/ablation_zonal.pdb"
  "CMakeFiles/ablation_zonal.dir/ablation_zonal.cpp.o"
  "CMakeFiles/ablation_zonal.dir/ablation_zonal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zonal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
