file(REMOVE_RECURSE
  "../bench/fig01_ms_day_trace"
  "../bench/fig01_ms_day_trace.pdb"
  "CMakeFiles/fig01_ms_day_trace.dir/fig01_ms_day_trace.cpp.o"
  "CMakeFiles/fig01_ms_day_trace.dir/fig01_ms_day_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_ms_day_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
