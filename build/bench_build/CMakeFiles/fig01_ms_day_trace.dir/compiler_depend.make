# Empty compiler generated dependencies file for fig01_ms_day_trace.
# This may be replaced when dependencies are built.
