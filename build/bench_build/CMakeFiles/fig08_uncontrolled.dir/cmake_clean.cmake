file(REMOVE_RECURSE
  "../bench/fig08_uncontrolled"
  "../bench/fig08_uncontrolled.pdb"
  "CMakeFiles/fig08_uncontrolled.dir/fig08_uncontrolled.cpp.o"
  "CMakeFiles/fig08_uncontrolled.dir/fig08_uncontrolled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_uncontrolled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
