# Empty dependencies file for fig08_uncontrolled.
# This may be replaced when dependencies are built.
