# Empty compiler generated dependencies file for fig05_cost_revenue.
# This may be replaced when dependencies are built.
