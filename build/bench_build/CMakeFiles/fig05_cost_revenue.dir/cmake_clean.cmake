file(REMOVE_RECURSE
  "../bench/fig05_cost_revenue"
  "../bench/fig05_cost_revenue.pdb"
  "CMakeFiles/fig05_cost_revenue.dir/fig05_cost_revenue.cpp.o"
  "CMakeFiles/fig05_cost_revenue.dir/fig05_cost_revenue.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_cost_revenue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
