file(REMOVE_RECURSE
  "../bench/perf_engine"
  "../bench/perf_engine.pdb"
  "CMakeFiles/perf_engine.dir/perf_engine.cpp.o"
  "CMakeFiles/perf_engine.dir/perf_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
