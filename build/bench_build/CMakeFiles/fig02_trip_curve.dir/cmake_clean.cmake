file(REMOVE_RECURSE
  "../bench/fig02_trip_curve"
  "../bench/fig02_trip_curve.pdb"
  "CMakeFiles/fig02_trip_curve.dir/fig02_trip_curve.cpp.o"
  "CMakeFiles/fig02_trip_curve.dir/fig02_trip_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_trip_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
