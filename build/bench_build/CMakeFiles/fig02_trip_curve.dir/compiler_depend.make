# Empty compiler generated dependencies file for fig02_trip_curve.
# This may be replaced when dependencies are built.
