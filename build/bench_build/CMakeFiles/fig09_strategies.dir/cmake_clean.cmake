file(REMOVE_RECURSE
  "../bench/fig09_strategies"
  "../bench/fig09_strategies.pdb"
  "CMakeFiles/fig09_strategies.dir/fig09_strategies.cpp.o"
  "CMakeFiles/fig09_strategies.dir/fig09_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
