# Empty dependencies file for fig09_strategies.
# This may be replaced when dependencies are built.
