file(REMOVE_RECURSE
  "../bench/fig07_traces"
  "../bench/fig07_traces.pdb"
  "CMakeFiles/fig07_traces.dir/fig07_traces.cpp.o"
  "CMakeFiles/fig07_traces.dir/fig07_traces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
