# Empty compiler generated dependencies file for fig07_traces.
# This may be replaced when dependencies are built.
