file(REMOVE_RECURSE
  "../bench/ablation_esd"
  "../bench/ablation_esd.pdb"
  "CMakeFiles/ablation_esd.dir/ablation_esd.cpp.o"
  "CMakeFiles/ablation_esd.dir/ablation_esd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_esd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
