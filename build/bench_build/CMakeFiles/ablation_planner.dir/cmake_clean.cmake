file(REMOVE_RECURSE
  "../bench/ablation_planner"
  "../bench/ablation_planner.pdb"
  "CMakeFiles/ablation_planner.dir/ablation_planner.cpp.o"
  "CMakeFiles/ablation_planner.dir/ablation_planner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
