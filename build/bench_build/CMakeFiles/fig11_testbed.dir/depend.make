# Empty dependencies file for fig11_testbed.
# This may be replaced when dependencies are built.
