file(REMOVE_RECURSE
  "../bench/fig11_testbed"
  "../bench/fig11_testbed.pdb"
  "CMakeFiles/fig11_testbed.dir/fig11_testbed.cpp.o"
  "CMakeFiles/fig11_testbed.dir/fig11_testbed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
