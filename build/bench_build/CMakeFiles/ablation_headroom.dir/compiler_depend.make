# Empty compiler generated dependencies file for ablation_headroom.
# This may be replaced when dependencies are built.
