file(REMOVE_RECURSE
  "../bench/ablation_headroom"
  "../bench/ablation_headroom.pdb"
  "CMakeFiles/ablation_headroom.dir/ablation_headroom.cpp.o"
  "CMakeFiles/ablation_headroom.dir/ablation_headroom.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_headroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
