file(REMOVE_RECURSE
  "libdcs_thermal.a"
)
