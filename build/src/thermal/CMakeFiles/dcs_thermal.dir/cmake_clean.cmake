file(REMOVE_RECURSE
  "CMakeFiles/dcs_thermal.dir/cooling_plant.cpp.o"
  "CMakeFiles/dcs_thermal.dir/cooling_plant.cpp.o.d"
  "CMakeFiles/dcs_thermal.dir/room_model.cpp.o"
  "CMakeFiles/dcs_thermal.dir/room_model.cpp.o.d"
  "CMakeFiles/dcs_thermal.dir/tes_tank.cpp.o"
  "CMakeFiles/dcs_thermal.dir/tes_tank.cpp.o.d"
  "libdcs_thermal.a"
  "libdcs_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
