
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/cooling_plant.cpp" "src/thermal/CMakeFiles/dcs_thermal.dir/cooling_plant.cpp.o" "gcc" "src/thermal/CMakeFiles/dcs_thermal.dir/cooling_plant.cpp.o.d"
  "/root/repo/src/thermal/room_model.cpp" "src/thermal/CMakeFiles/dcs_thermal.dir/room_model.cpp.o" "gcc" "src/thermal/CMakeFiles/dcs_thermal.dir/room_model.cpp.o.d"
  "/root/repo/src/thermal/tes_tank.cpp" "src/thermal/CMakeFiles/dcs_thermal.dir/tes_tank.cpp.o" "gcc" "src/thermal/CMakeFiles/dcs_thermal.dir/tes_tank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
