# Empty compiler generated dependencies file for dcs_thermal.
# This may be replaced when dependencies are built.
