# Empty dependencies file for dcs_power.
# This may be replaced when dependencies are built.
