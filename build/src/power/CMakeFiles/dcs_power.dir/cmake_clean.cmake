file(REMOVE_RECURSE
  "CMakeFiles/dcs_power.dir/battery.cpp.o"
  "CMakeFiles/dcs_power.dir/battery.cpp.o.d"
  "CMakeFiles/dcs_power.dir/circuit_breaker.cpp.o"
  "CMakeFiles/dcs_power.dir/circuit_breaker.cpp.o.d"
  "CMakeFiles/dcs_power.dir/generator.cpp.o"
  "CMakeFiles/dcs_power.dir/generator.cpp.o.d"
  "CMakeFiles/dcs_power.dir/lifetime.cpp.o"
  "CMakeFiles/dcs_power.dir/lifetime.cpp.o.d"
  "CMakeFiles/dcs_power.dir/meter.cpp.o"
  "CMakeFiles/dcs_power.dir/meter.cpp.o.d"
  "CMakeFiles/dcs_power.dir/pdu.cpp.o"
  "CMakeFiles/dcs_power.dir/pdu.cpp.o.d"
  "CMakeFiles/dcs_power.dir/relay.cpp.o"
  "CMakeFiles/dcs_power.dir/relay.cpp.o.d"
  "CMakeFiles/dcs_power.dir/topology.cpp.o"
  "CMakeFiles/dcs_power.dir/topology.cpp.o.d"
  "CMakeFiles/dcs_power.dir/trip_curve.cpp.o"
  "CMakeFiles/dcs_power.dir/trip_curve.cpp.o.d"
  "libdcs_power.a"
  "libdcs_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
