file(REMOVE_RECURSE
  "libdcs_power.a"
)
