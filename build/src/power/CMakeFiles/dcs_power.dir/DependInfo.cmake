
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/battery.cpp" "src/power/CMakeFiles/dcs_power.dir/battery.cpp.o" "gcc" "src/power/CMakeFiles/dcs_power.dir/battery.cpp.o.d"
  "/root/repo/src/power/circuit_breaker.cpp" "src/power/CMakeFiles/dcs_power.dir/circuit_breaker.cpp.o" "gcc" "src/power/CMakeFiles/dcs_power.dir/circuit_breaker.cpp.o.d"
  "/root/repo/src/power/generator.cpp" "src/power/CMakeFiles/dcs_power.dir/generator.cpp.o" "gcc" "src/power/CMakeFiles/dcs_power.dir/generator.cpp.o.d"
  "/root/repo/src/power/lifetime.cpp" "src/power/CMakeFiles/dcs_power.dir/lifetime.cpp.o" "gcc" "src/power/CMakeFiles/dcs_power.dir/lifetime.cpp.o.d"
  "/root/repo/src/power/meter.cpp" "src/power/CMakeFiles/dcs_power.dir/meter.cpp.o" "gcc" "src/power/CMakeFiles/dcs_power.dir/meter.cpp.o.d"
  "/root/repo/src/power/pdu.cpp" "src/power/CMakeFiles/dcs_power.dir/pdu.cpp.o" "gcc" "src/power/CMakeFiles/dcs_power.dir/pdu.cpp.o.d"
  "/root/repo/src/power/relay.cpp" "src/power/CMakeFiles/dcs_power.dir/relay.cpp.o" "gcc" "src/power/CMakeFiles/dcs_power.dir/relay.cpp.o.d"
  "/root/repo/src/power/topology.cpp" "src/power/CMakeFiles/dcs_power.dir/topology.cpp.o" "gcc" "src/power/CMakeFiles/dcs_power.dir/topology.cpp.o.d"
  "/root/repo/src/power/trip_curve.cpp" "src/power/CMakeFiles/dcs_power.dir/trip_curve.cpp.o" "gcc" "src/power/CMakeFiles/dcs_power.dir/trip_curve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
