# Empty compiler generated dependencies file for dcs_econ.
# This may be replaced when dependencies are built.
