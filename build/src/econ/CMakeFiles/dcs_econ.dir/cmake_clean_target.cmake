file(REMOVE_RECURSE
  "libdcs_econ.a"
)
