file(REMOVE_RECURSE
  "CMakeFiles/dcs_econ.dir/cost_model.cpp.o"
  "CMakeFiles/dcs_econ.dir/cost_model.cpp.o.d"
  "CMakeFiles/dcs_econ.dir/profitability.cpp.o"
  "CMakeFiles/dcs_econ.dir/profitability.cpp.o.d"
  "CMakeFiles/dcs_econ.dir/revenue_model.cpp.o"
  "CMakeFiles/dcs_econ.dir/revenue_model.cpp.o.d"
  "libdcs_econ.a"
  "libdcs_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
