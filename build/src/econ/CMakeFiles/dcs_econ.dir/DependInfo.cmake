
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/econ/cost_model.cpp" "src/econ/CMakeFiles/dcs_econ.dir/cost_model.cpp.o" "gcc" "src/econ/CMakeFiles/dcs_econ.dir/cost_model.cpp.o.d"
  "/root/repo/src/econ/profitability.cpp" "src/econ/CMakeFiles/dcs_econ.dir/profitability.cpp.o" "gcc" "src/econ/CMakeFiles/dcs_econ.dir/profitability.cpp.o.d"
  "/root/repo/src/econ/revenue_model.cpp" "src/econ/CMakeFiles/dcs_econ.dir/revenue_model.cpp.o" "gcc" "src/econ/CMakeFiles/dcs_econ.dir/revenue_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dcs_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
