file(REMOVE_RECURSE
  "CMakeFiles/dcs_util.dir/config.cpp.o"
  "CMakeFiles/dcs_util.dir/config.cpp.o.d"
  "CMakeFiles/dcs_util.dir/csv.cpp.o"
  "CMakeFiles/dcs_util.dir/csv.cpp.o.d"
  "CMakeFiles/dcs_util.dir/interpolate.cpp.o"
  "CMakeFiles/dcs_util.dir/interpolate.cpp.o.d"
  "CMakeFiles/dcs_util.dir/log.cpp.o"
  "CMakeFiles/dcs_util.dir/log.cpp.o.d"
  "CMakeFiles/dcs_util.dir/rng.cpp.o"
  "CMakeFiles/dcs_util.dir/rng.cpp.o.d"
  "CMakeFiles/dcs_util.dir/stats.cpp.o"
  "CMakeFiles/dcs_util.dir/stats.cpp.o.d"
  "CMakeFiles/dcs_util.dir/table.cpp.o"
  "CMakeFiles/dcs_util.dir/table.cpp.o.d"
  "CMakeFiles/dcs_util.dir/time_series.cpp.o"
  "CMakeFiles/dcs_util.dir/time_series.cpp.o.d"
  "CMakeFiles/dcs_util.dir/units.cpp.o"
  "CMakeFiles/dcs_util.dir/units.cpp.o.d"
  "libdcs_util.a"
  "libdcs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
