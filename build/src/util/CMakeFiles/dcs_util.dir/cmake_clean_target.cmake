file(REMOVE_RECURSE
  "libdcs_util.a"
)
