# Empty compiler generated dependencies file for dcs_util.
# This may be replaced when dependencies are built.
