file(REMOVE_RECURSE
  "CMakeFiles/dcs_workload.dir/admission.cpp.o"
  "CMakeFiles/dcs_workload.dir/admission.cpp.o.d"
  "CMakeFiles/dcs_workload.dir/burst.cpp.o"
  "CMakeFiles/dcs_workload.dir/burst.cpp.o.d"
  "CMakeFiles/dcs_workload.dir/ms_trace.cpp.o"
  "CMakeFiles/dcs_workload.dir/ms_trace.cpp.o.d"
  "CMakeFiles/dcs_workload.dir/online_predictor.cpp.o"
  "CMakeFiles/dcs_workload.dir/online_predictor.cpp.o.d"
  "CMakeFiles/dcs_workload.dir/predictor.cpp.o"
  "CMakeFiles/dcs_workload.dir/predictor.cpp.o.d"
  "CMakeFiles/dcs_workload.dir/trace_io.cpp.o"
  "CMakeFiles/dcs_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/dcs_workload.dir/yahoo_trace.cpp.o"
  "CMakeFiles/dcs_workload.dir/yahoo_trace.cpp.o.d"
  "libdcs_workload.a"
  "libdcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
