
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/admission.cpp" "src/workload/CMakeFiles/dcs_workload.dir/admission.cpp.o" "gcc" "src/workload/CMakeFiles/dcs_workload.dir/admission.cpp.o.d"
  "/root/repo/src/workload/burst.cpp" "src/workload/CMakeFiles/dcs_workload.dir/burst.cpp.o" "gcc" "src/workload/CMakeFiles/dcs_workload.dir/burst.cpp.o.d"
  "/root/repo/src/workload/ms_trace.cpp" "src/workload/CMakeFiles/dcs_workload.dir/ms_trace.cpp.o" "gcc" "src/workload/CMakeFiles/dcs_workload.dir/ms_trace.cpp.o.d"
  "/root/repo/src/workload/online_predictor.cpp" "src/workload/CMakeFiles/dcs_workload.dir/online_predictor.cpp.o" "gcc" "src/workload/CMakeFiles/dcs_workload.dir/online_predictor.cpp.o.d"
  "/root/repo/src/workload/predictor.cpp" "src/workload/CMakeFiles/dcs_workload.dir/predictor.cpp.o" "gcc" "src/workload/CMakeFiles/dcs_workload.dir/predictor.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/dcs_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/dcs_workload.dir/trace_io.cpp.o.d"
  "/root/repo/src/workload/yahoo_trace.cpp" "src/workload/CMakeFiles/dcs_workload.dir/yahoo_trace.cpp.o" "gcc" "src/workload/CMakeFiles/dcs_workload.dir/yahoo_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
