file(REMOVE_RECURSE
  "CMakeFiles/dcs_core.dir/budget_paced_strategy.cpp.o"
  "CMakeFiles/dcs_core.dir/budget_paced_strategy.cpp.o.d"
  "CMakeFiles/dcs_core.dir/cb_budget.cpp.o"
  "CMakeFiles/dcs_core.dir/cb_budget.cpp.o.d"
  "CMakeFiles/dcs_core.dir/config.cpp.o"
  "CMakeFiles/dcs_core.dir/config.cpp.o.d"
  "CMakeFiles/dcs_core.dir/controller.cpp.o"
  "CMakeFiles/dcs_core.dir/controller.cpp.o.d"
  "CMakeFiles/dcs_core.dir/datacenter.cpp.o"
  "CMakeFiles/dcs_core.dir/datacenter.cpp.o.d"
  "CMakeFiles/dcs_core.dir/heuristic_strategy.cpp.o"
  "CMakeFiles/dcs_core.dir/heuristic_strategy.cpp.o.d"
  "CMakeFiles/dcs_core.dir/online_strategy.cpp.o"
  "CMakeFiles/dcs_core.dir/online_strategy.cpp.o.d"
  "CMakeFiles/dcs_core.dir/oracle.cpp.o"
  "CMakeFiles/dcs_core.dir/oracle.cpp.o.d"
  "CMakeFiles/dcs_core.dir/prediction_strategy.cpp.o"
  "CMakeFiles/dcs_core.dir/prediction_strategy.cpp.o.d"
  "CMakeFiles/dcs_core.dir/strategy.cpp.o"
  "CMakeFiles/dcs_core.dir/strategy.cpp.o.d"
  "CMakeFiles/dcs_core.dir/upper_bound_table.cpp.o"
  "CMakeFiles/dcs_core.dir/upper_bound_table.cpp.o.d"
  "CMakeFiles/dcs_core.dir/zonal_controller.cpp.o"
  "CMakeFiles/dcs_core.dir/zonal_controller.cpp.o.d"
  "libdcs_core.a"
  "libdcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
