
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/budget_paced_strategy.cpp" "src/core/CMakeFiles/dcs_core.dir/budget_paced_strategy.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/budget_paced_strategy.cpp.o.d"
  "/root/repo/src/core/cb_budget.cpp" "src/core/CMakeFiles/dcs_core.dir/cb_budget.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/cb_budget.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/dcs_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/config.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/dcs_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/datacenter.cpp" "src/core/CMakeFiles/dcs_core.dir/datacenter.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/datacenter.cpp.o.d"
  "/root/repo/src/core/heuristic_strategy.cpp" "src/core/CMakeFiles/dcs_core.dir/heuristic_strategy.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/heuristic_strategy.cpp.o.d"
  "/root/repo/src/core/online_strategy.cpp" "src/core/CMakeFiles/dcs_core.dir/online_strategy.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/online_strategy.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/core/CMakeFiles/dcs_core.dir/oracle.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/oracle.cpp.o.d"
  "/root/repo/src/core/prediction_strategy.cpp" "src/core/CMakeFiles/dcs_core.dir/prediction_strategy.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/prediction_strategy.cpp.o.d"
  "/root/repo/src/core/strategy.cpp" "src/core/CMakeFiles/dcs_core.dir/strategy.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/strategy.cpp.o.d"
  "/root/repo/src/core/upper_bound_table.cpp" "src/core/CMakeFiles/dcs_core.dir/upper_bound_table.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/upper_bound_table.cpp.o.d"
  "/root/repo/src/core/zonal_controller.cpp" "src/core/CMakeFiles/dcs_core.dir/zonal_controller.cpp.o" "gcc" "src/core/CMakeFiles/dcs_core.dir/zonal_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dcs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/dcs_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/dcs_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dcs_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
