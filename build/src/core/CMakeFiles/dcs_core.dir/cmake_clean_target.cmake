file(REMOVE_RECURSE
  "libdcs_core.a"
)
