# Empty dependencies file for dcs_sim.
# This may be replaced when dependencies are built.
