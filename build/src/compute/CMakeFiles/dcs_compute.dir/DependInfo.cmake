
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compute/chip.cpp" "src/compute/CMakeFiles/dcs_compute.dir/chip.cpp.o" "gcc" "src/compute/CMakeFiles/dcs_compute.dir/chip.cpp.o.d"
  "/root/repo/src/compute/dvfs.cpp" "src/compute/CMakeFiles/dcs_compute.dir/dvfs.cpp.o" "gcc" "src/compute/CMakeFiles/dcs_compute.dir/dvfs.cpp.o.d"
  "/root/repo/src/compute/fleet.cpp" "src/compute/CMakeFiles/dcs_compute.dir/fleet.cpp.o" "gcc" "src/compute/CMakeFiles/dcs_compute.dir/fleet.cpp.o.d"
  "/root/repo/src/compute/pcm_heatsink.cpp" "src/compute/CMakeFiles/dcs_compute.dir/pcm_heatsink.cpp.o" "gcc" "src/compute/CMakeFiles/dcs_compute.dir/pcm_heatsink.cpp.o.d"
  "/root/repo/src/compute/server.cpp" "src/compute/CMakeFiles/dcs_compute.dir/server.cpp.o" "gcc" "src/compute/CMakeFiles/dcs_compute.dir/server.cpp.o.d"
  "/root/repo/src/compute/throughput_model.cpp" "src/compute/CMakeFiles/dcs_compute.dir/throughput_model.cpp.o" "gcc" "src/compute/CMakeFiles/dcs_compute.dir/throughput_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
