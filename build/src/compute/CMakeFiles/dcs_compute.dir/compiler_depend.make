# Empty compiler generated dependencies file for dcs_compute.
# This may be replaced when dependencies are built.
