file(REMOVE_RECURSE
  "libdcs_compute.a"
)
