file(REMOVE_RECURSE
  "CMakeFiles/dcs_compute.dir/chip.cpp.o"
  "CMakeFiles/dcs_compute.dir/chip.cpp.o.d"
  "CMakeFiles/dcs_compute.dir/dvfs.cpp.o"
  "CMakeFiles/dcs_compute.dir/dvfs.cpp.o.d"
  "CMakeFiles/dcs_compute.dir/fleet.cpp.o"
  "CMakeFiles/dcs_compute.dir/fleet.cpp.o.d"
  "CMakeFiles/dcs_compute.dir/pcm_heatsink.cpp.o"
  "CMakeFiles/dcs_compute.dir/pcm_heatsink.cpp.o.d"
  "CMakeFiles/dcs_compute.dir/server.cpp.o"
  "CMakeFiles/dcs_compute.dir/server.cpp.o.d"
  "CMakeFiles/dcs_compute.dir/throughput_model.cpp.o"
  "CMakeFiles/dcs_compute.dir/throughput_model.cpp.o.d"
  "libdcs_compute.a"
  "libdcs_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
