# Empty dependencies file for dcs_testbed.
# This may be replaced when dependencies are built.
