file(REMOVE_RECURSE
  "libdcs_testbed.a"
)
