file(REMOVE_RECURSE
  "CMakeFiles/dcs_testbed.dir/testbed.cpp.o"
  "CMakeFiles/dcs_testbed.dir/testbed.cpp.o.d"
  "libdcs_testbed.a"
  "libdcs_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcs_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
