file(REMOVE_RECURSE
  "CMakeFiles/property_power_test.dir/property_power_test.cpp.o"
  "CMakeFiles/property_power_test.dir/property_power_test.cpp.o.d"
  "property_power_test"
  "property_power_test.pdb"
  "property_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
