# Empty dependencies file for property_power_test.
# This may be replaced when dependencies are built.
