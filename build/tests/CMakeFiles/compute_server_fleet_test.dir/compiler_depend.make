# Empty compiler generated dependencies file for compute_server_fleet_test.
# This may be replaced when dependencies are built.
