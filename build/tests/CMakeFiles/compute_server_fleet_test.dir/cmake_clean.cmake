file(REMOVE_RECURSE
  "CMakeFiles/compute_server_fleet_test.dir/compute_server_fleet_test.cpp.o"
  "CMakeFiles/compute_server_fleet_test.dir/compute_server_fleet_test.cpp.o.d"
  "compute_server_fleet_test"
  "compute_server_fleet_test.pdb"
  "compute_server_fleet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_server_fleet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
