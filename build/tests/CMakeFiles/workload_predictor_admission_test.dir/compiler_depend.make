# Empty compiler generated dependencies file for workload_predictor_admission_test.
# This may be replaced when dependencies are built.
