file(REMOVE_RECURSE
  "CMakeFiles/workload_predictor_admission_test.dir/workload_predictor_admission_test.cpp.o"
  "CMakeFiles/workload_predictor_admission_test.dir/workload_predictor_admission_test.cpp.o.d"
  "workload_predictor_admission_test"
  "workload_predictor_admission_test.pdb"
  "workload_predictor_admission_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_predictor_admission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
