file(REMOVE_RECURSE
  "CMakeFiles/core_datacenter_test.dir/core_datacenter_test.cpp.o"
  "CMakeFiles/core_datacenter_test.dir/core_datacenter_test.cpp.o.d"
  "core_datacenter_test"
  "core_datacenter_test.pdb"
  "core_datacenter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_datacenter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
