# Empty dependencies file for core_datacenter_test.
# This may be replaced when dependencies are built.
