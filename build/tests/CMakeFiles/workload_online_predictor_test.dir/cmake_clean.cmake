file(REMOVE_RECURSE
  "CMakeFiles/workload_online_predictor_test.dir/workload_online_predictor_test.cpp.o"
  "CMakeFiles/workload_online_predictor_test.dir/workload_online_predictor_test.cpp.o.d"
  "workload_online_predictor_test"
  "workload_online_predictor_test.pdb"
  "workload_online_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_online_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
