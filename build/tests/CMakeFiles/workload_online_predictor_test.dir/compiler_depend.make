# Empty compiler generated dependencies file for workload_online_predictor_test.
# This may be replaced when dependencies are built.
