file(REMOVE_RECURSE
  "CMakeFiles/thermal_room_test.dir/thermal_room_test.cpp.o"
  "CMakeFiles/thermal_room_test.dir/thermal_room_test.cpp.o.d"
  "thermal_room_test"
  "thermal_room_test.pdb"
  "thermal_room_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_room_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
