# Empty compiler generated dependencies file for thermal_room_test.
# This may be replaced when dependencies are built.
