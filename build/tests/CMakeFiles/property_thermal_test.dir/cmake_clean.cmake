file(REMOVE_RECURSE
  "CMakeFiles/property_thermal_test.dir/property_thermal_test.cpp.o"
  "CMakeFiles/property_thermal_test.dir/property_thermal_test.cpp.o.d"
  "property_thermal_test"
  "property_thermal_test.pdb"
  "property_thermal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_thermal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
