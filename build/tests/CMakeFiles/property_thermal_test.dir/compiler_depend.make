# Empty compiler generated dependencies file for property_thermal_test.
# This may be replaced when dependencies are built.
