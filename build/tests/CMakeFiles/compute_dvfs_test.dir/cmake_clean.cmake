file(REMOVE_RECURSE
  "CMakeFiles/compute_dvfs_test.dir/compute_dvfs_test.cpp.o"
  "CMakeFiles/compute_dvfs_test.dir/compute_dvfs_test.cpp.o.d"
  "compute_dvfs_test"
  "compute_dvfs_test.pdb"
  "compute_dvfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_dvfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
