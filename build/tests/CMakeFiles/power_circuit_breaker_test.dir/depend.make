# Empty dependencies file for power_circuit_breaker_test.
# This may be replaced when dependencies are built.
