file(REMOVE_RECURSE
  "CMakeFiles/power_circuit_breaker_test.dir/power_circuit_breaker_test.cpp.o"
  "CMakeFiles/power_circuit_breaker_test.dir/power_circuit_breaker_test.cpp.o.d"
  "power_circuit_breaker_test"
  "power_circuit_breaker_test.pdb"
  "power_circuit_breaker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_circuit_breaker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
