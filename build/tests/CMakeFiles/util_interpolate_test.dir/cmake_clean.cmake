file(REMOVE_RECURSE
  "CMakeFiles/util_interpolate_test.dir/util_interpolate_test.cpp.o"
  "CMakeFiles/util_interpolate_test.dir/util_interpolate_test.cpp.o.d"
  "util_interpolate_test"
  "util_interpolate_test.pdb"
  "util_interpolate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_interpolate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
