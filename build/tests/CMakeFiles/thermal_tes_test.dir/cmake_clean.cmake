file(REMOVE_RECURSE
  "CMakeFiles/thermal_tes_test.dir/thermal_tes_test.cpp.o"
  "CMakeFiles/thermal_tes_test.dir/thermal_tes_test.cpp.o.d"
  "thermal_tes_test"
  "thermal_tes_test.pdb"
  "thermal_tes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_tes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
