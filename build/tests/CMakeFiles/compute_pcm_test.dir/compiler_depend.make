# Empty compiler generated dependencies file for compute_pcm_test.
# This may be replaced when dependencies are built.
