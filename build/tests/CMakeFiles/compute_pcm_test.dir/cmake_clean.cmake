file(REMOVE_RECURSE
  "CMakeFiles/compute_pcm_test.dir/compute_pcm_test.cpp.o"
  "CMakeFiles/compute_pcm_test.dir/compute_pcm_test.cpp.o.d"
  "compute_pcm_test"
  "compute_pcm_test.pdb"
  "compute_pcm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_pcm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
