file(REMOVE_RECURSE
  "CMakeFiles/power_generator_lifetime_test.dir/power_generator_lifetime_test.cpp.o"
  "CMakeFiles/power_generator_lifetime_test.dir/power_generator_lifetime_test.cpp.o.d"
  "power_generator_lifetime_test"
  "power_generator_lifetime_test.pdb"
  "power_generator_lifetime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_generator_lifetime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
