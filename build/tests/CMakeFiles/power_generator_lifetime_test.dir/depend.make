# Empty dependencies file for power_generator_lifetime_test.
# This may be replaced when dependencies are built.
