# Empty compiler generated dependencies file for compute_throughput_test.
# This may be replaced when dependencies are built.
