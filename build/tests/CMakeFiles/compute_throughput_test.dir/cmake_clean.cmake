file(REMOVE_RECURSE
  "CMakeFiles/compute_throughput_test.dir/compute_throughput_test.cpp.o"
  "CMakeFiles/compute_throughput_test.dir/compute_throughput_test.cpp.o.d"
  "compute_throughput_test"
  "compute_throughput_test.pdb"
  "compute_throughput_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_throughput_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
