file(REMOVE_RECURSE
  "CMakeFiles/compute_chip_test.dir/compute_chip_test.cpp.o"
  "CMakeFiles/compute_chip_test.dir/compute_chip_test.cpp.o.d"
  "compute_chip_test"
  "compute_chip_test.pdb"
  "compute_chip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
