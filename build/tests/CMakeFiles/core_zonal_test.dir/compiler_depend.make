# Empty compiler generated dependencies file for core_zonal_test.
# This may be replaced when dependencies are built.
