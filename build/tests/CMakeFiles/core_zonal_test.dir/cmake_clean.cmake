file(REMOVE_RECURSE
  "CMakeFiles/core_zonal_test.dir/core_zonal_test.cpp.o"
  "CMakeFiles/core_zonal_test.dir/core_zonal_test.cpp.o.d"
  "core_zonal_test"
  "core_zonal_test.pdb"
  "core_zonal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_zonal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
