
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_zonal_test.cpp" "tests/CMakeFiles/core_zonal_test.dir/core_zonal_test.cpp.o" "gcc" "tests/CMakeFiles/core_zonal_test.dir/core_zonal_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/econ/CMakeFiles/dcs_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/dcs_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/dcs_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dcs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/dcs_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dcs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dcs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
