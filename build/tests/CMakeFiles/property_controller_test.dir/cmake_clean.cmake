file(REMOVE_RECURSE
  "CMakeFiles/property_controller_test.dir/property_controller_test.cpp.o"
  "CMakeFiles/property_controller_test.dir/property_controller_test.cpp.o.d"
  "property_controller_test"
  "property_controller_test.pdb"
  "property_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
