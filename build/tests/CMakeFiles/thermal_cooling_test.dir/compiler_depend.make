# Empty compiler generated dependencies file for thermal_cooling_test.
# This may be replaced when dependencies are built.
