file(REMOVE_RECURSE
  "CMakeFiles/thermal_cooling_test.dir/thermal_cooling_test.cpp.o"
  "CMakeFiles/thermal_cooling_test.dir/thermal_cooling_test.cpp.o.d"
  "thermal_cooling_test"
  "thermal_cooling_test.pdb"
  "thermal_cooling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_cooling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
