# Empty compiler generated dependencies file for workload_traces_test.
# This may be replaced when dependencies are built.
