file(REMOVE_RECURSE
  "CMakeFiles/workload_traces_test.dir/workload_traces_test.cpp.o"
  "CMakeFiles/workload_traces_test.dir/workload_traces_test.cpp.o.d"
  "workload_traces_test"
  "workload_traces_test.pdb"
  "workload_traces_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_traces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
