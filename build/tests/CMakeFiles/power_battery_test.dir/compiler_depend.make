# Empty compiler generated dependencies file for power_battery_test.
# This may be replaced when dependencies are built.
