file(REMOVE_RECURSE
  "CMakeFiles/power_pdu_topology_test.dir/power_pdu_topology_test.cpp.o"
  "CMakeFiles/power_pdu_topology_test.dir/power_pdu_topology_test.cpp.o.d"
  "power_pdu_topology_test"
  "power_pdu_topology_test.pdb"
  "power_pdu_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_pdu_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
