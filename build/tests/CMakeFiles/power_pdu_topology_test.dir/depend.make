# Empty dependencies file for power_pdu_topology_test.
# This may be replaced when dependencies are built.
