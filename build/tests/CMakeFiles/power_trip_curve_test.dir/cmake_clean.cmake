file(REMOVE_RECURSE
  "CMakeFiles/power_trip_curve_test.dir/power_trip_curve_test.cpp.o"
  "CMakeFiles/power_trip_curve_test.dir/power_trip_curve_test.cpp.o.d"
  "power_trip_curve_test"
  "power_trip_curve_test.pdb"
  "power_trip_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_trip_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
