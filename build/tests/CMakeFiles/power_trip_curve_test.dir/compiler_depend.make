# Empty compiler generated dependencies file for power_trip_curve_test.
# This may be replaced when dependencies are built.
