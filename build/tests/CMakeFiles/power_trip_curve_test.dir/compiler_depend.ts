# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for power_trip_curve_test.
