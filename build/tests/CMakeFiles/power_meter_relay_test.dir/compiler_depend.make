# Empty compiler generated dependencies file for power_meter_relay_test.
# This may be replaced when dependencies are built.
