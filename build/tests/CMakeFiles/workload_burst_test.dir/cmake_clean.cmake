file(REMOVE_RECURSE
  "CMakeFiles/workload_burst_test.dir/workload_burst_test.cpp.o"
  "CMakeFiles/workload_burst_test.dir/workload_burst_test.cpp.o.d"
  "workload_burst_test"
  "workload_burst_test.pdb"
  "workload_burst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_burst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
