# Empty dependencies file for workload_burst_test.
# This may be replaced when dependencies are built.
