file(REMOVE_RECURSE
  "CMakeFiles/burst_response.dir/burst_response.cpp.o"
  "CMakeFiles/burst_response.dir/burst_response.cpp.o.d"
  "burst_response"
  "burst_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
