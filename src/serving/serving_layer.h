// The request-level serving layer: a sim::Component that sits between the
// workload traces and the core controller.
//
// Each control period it (1) draws discrete Poisson arrivals from the
// demand trace via RequestSource, (2) applies request admission control —
// arrivals beyond admit_factor x current capacity are dropped, the
// request-level face of workload/admission — (3) places each admitted
// request on a server through the PlacementPolicy, (4) advances every
// server's QueueModel at the service rate implied by the *currently active
// core set* (capacity degree published by the controller through
// set_capacity_degree), and (5) folds the sampled response times into a
// LatencyTracker whose sliding-window p99 feeds the SLO callback (wired to
// core::SloSprintStrategy::observe_latency by the bench/test layer — core
// never links against serving).
//
// Determinism: arrivals are a pure function of (seed, tick); response
// sampling uses Rng forks keyed by (tick, server); placement is
// deterministic. Runs with the same parameters produce bit-identical
// latency histograms regardless of thread count or co-scheduled work.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/decision.h"
#include "obs/metrics.h"
#include "serving/error_budget.h"
#include "serving/latency.h"
#include "serving/placement.h"
#include "serving/queue_model.h"
#include "serving/request_source.h"
#include "sim/component.h"
#include "sim/recorder.h"
#include "util/rng.h"
#include "util/time_series.h"
#include "util/units.h"

namespace dcs::serving {

struct ServingParams {
  /// Modeled servers (queueing stations). The fleet's physical scale
  /// invariance (core/datacenter.h) means this is a modeling knob, not a
  /// hardware count.
  std::size_t servers = 8;
  /// Request rate at demand 1.0.
  double peak_rps = 400.0;
  std::uint64_t seed = 0x5e91ce5eedULL;
  /// Queue model name: "mg1" | "ps" (serving/queue_model.h).
  std::string queue_model = "mg1";
  QueueModelParams queue;
  /// Placement policy name: "round_robin" | "jsq" | "thermal".
  std::string placement = "round_robin";
  /// Admission cap as a multiple of current capacity: arrivals beyond
  /// admit_factor x degree x peak_rps x dt are dropped.
  double admit_factor = 2.0;
  /// Control periods per sliding SLO window (the p99 signal's horizon).
  std::size_t window_ticks = 10;
  /// Time constant of the per-server thermal proxy fed to thermal-aware
  /// placement.
  double heat_tau_s = 30.0;
  /// Demand trace driving the arrivals; must outlive the layer. Same
  /// normalized trace the controller runs.
  const TimeSeries* demand = nullptr;
};

/// Per-tick summary handed to the SLO callback.
struct ServingStats {
  std::size_t offered = 0;   ///< arrivals this period
  std::size_t admitted = 0;  ///< after admission control
  std::size_t dropped = 0;   ///< offered - admitted
  double p99_s = 0.0;        ///< sliding-window p99 (seconds)
  double backlog = 0.0;      ///< total queued requests across servers
};

class ServingLayer final : public sim::Component {
 public:
  explicit ServingLayer(ServingParams params);

  /// Publishes the controller's realized capacity multiplier for the
  /// current period (StepResult::degree); service rates scale with it.
  void set_capacity_degree(double degree) noexcept;

  /// Invoked at the end of every tick with that period's stats — the SLO
  /// feedback path into the sprint strategy.
  void set_slo_callback(std::function<void(const ServingStats&)> callback);

  /// Optional per-tick channels: serving_p50_ms, serving_p99_ms,
  /// serving_p999_ms, serving_backlog, serving_dropped, serving_admitted.
  /// Must outlive the run.
  void set_recorder(sim::Recorder* recorder) noexcept;

  /// Optional decision-provenance log: tick() emits admission-clamp /
  /// admission-release on drop edges and a one-shot slo-budget-exhausted
  /// when the error budget (if enabled) runs out. Must outlive the run.
  void set_decision_log(obs::DecisionLog* decisions) noexcept {
    decisions_ = decisions;
  }

  /// Enables SLO error-budget accounting over the per-tick window p99.
  /// With a recorder attached, adds channels slo_budget_remaining,
  /// slo_burn_fast, slo_burn_slow and the monotone slo_budget_violations.
  void enable_error_budget(ErrorBudgetParams params);
  [[nodiscard]] const ErrorBudget* error_budget() const noexcept {
    return budget_ ? &*budget_ : nullptr;
  }

  void tick(Duration now, Duration dt) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "serving";
  }

  [[nodiscard]] const LatencyTracker& latency() const noexcept {
    return tracker_;
  }
  [[nodiscard]] const std::vector<ServerLoad>& server_loads() const noexcept {
    return loads_;
  }
  [[nodiscard]] std::size_t offered_total() const noexcept {
    return offered_total_;
  }
  [[nodiscard]] std::size_t dropped_total() const noexcept {
    return dropped_total_;
  }
  [[nodiscard]] double drop_fraction() const noexcept;
  [[nodiscard]] double backlog_total() const noexcept;

  /// Latency gauges (serving_ prefix) plus offered/dropped counters.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  ServingParams params_;
  RequestSource source_;
  std::vector<std::unique_ptr<QueueModel>> queues_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::vector<ServerLoad> loads_;
  std::vector<std::size_t> per_server_;
  LatencyTracker tracker_;
  Rng base_;
  std::uint64_t tick_index_ = 0;
  double degree_ = 1.0;
  std::size_t offered_total_ = 0;
  std::size_t dropped_total_ = 0;
  std::function<void(const ServingStats&)> slo_callback_;
  sim::Recorder* recorder_ = nullptr;
  obs::DecisionLog* decisions_ = nullptr;
  std::optional<ErrorBudget> budget_;
  bool clamping_ = false;
  bool budget_exhausted_reported_ = false;
};

}  // namespace dcs::serving
