#include "serving/queue_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs::serving {

double mg1_mean_response_s(double lambda_rps, double mu_rps,
                           double cv2) noexcept {
  const double rho = lambda_rps / mu_rps;
  return 1.0 / mu_rps +
         lambda_rps * (1.0 + cv2) / (2.0 * mu_rps * mu_rps * (1.0 - rho));
}

double ps_mean_response_s(double lambda_rps, double mu_rps) noexcept {
  return 1.0 / (mu_rps - lambda_rps);
}

void AnalyticQueue::step(std::size_t arrivals, double mu_rps, Duration dt,
                         Rng& rng, LatencyTracker& latencies) {
  // A fully shed / powered-off server (mu = 0) cannot serve: every request
  // pends and its modeled response saturates the histogram's top bucket.
  if (mu_rps <= 0.0) {
    backlog_ += static_cast<double>(arrivals);
    for (std::size_t i = 0; i < arrivals; ++i) {
      latencies.observe(LatencyHistogram::kMaxSeconds);
    }
    return;
  }
  const double lambda = static_cast<double>(arrivals) / dt.sec();
  const double rho = lambda / mu_rps;
  if (backlog_ <= 0.0 && rho < params_.rho_max) {
    for (std::size_t i = 0; i < arrivals; ++i) {
      latencies.observe(stationary_response(lambda, mu_rps, rng));
    }
    return;
  }
  // Fluid FIFO overload: request i queues behind the backlog plus the i
  // requests ahead of it this period, all draining at mu.
  for (std::size_t i = 0; i < arrivals; ++i) {
    latencies.observe((backlog_ + static_cast<double>(i) + 1.0) / mu_rps);
  }
  backlog_ = std::max(
      backlog_ + static_cast<double>(arrivals) - mu_rps * dt.sec(), 0.0);
}

double Mg1Queue::stationary_response(double lambda_rps, double mu_rps,
                                     Rng& rng) {
  const double mean = mg1_mean_response_s(lambda_rps, mu_rps, params().cv2);
  return rng.exponential(1.0 / mean);
}

double ProcessorSharingQueue::stationary_response(double lambda_rps,
                                                  double mu_rps, Rng& rng) {
  const double rho = lambda_rps / mu_rps;
  return rng.exponential(mu_rps) / (1.0 - rho);
}

std::unique_ptr<QueueModel> make_queue_model(std::string_view name,
                                             QueueModelParams params) {
  DCS_REQUIRE(params.cv2 >= 0.0, "cv2 must be non-negative");
  DCS_REQUIRE(params.rho_max > 0.0 && params.rho_max < 1.0,
              "rho_max must lie in (0, 1)");
  if (name == "mg1") return std::make_unique<Mg1Queue>(params);
  if (name == "ps") return std::make_unique<ProcessorSharingQueue>(params);
  DCS_REQUIRE(false, "unknown queue model (want mg1 or ps)");
  return nullptr;
}

}  // namespace dcs::serving
