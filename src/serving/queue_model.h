// Per-server analytic queueing models behind the QueueModel interface.
//
// Each control period a server receives `arrivals` placed requests and a
// service rate `mu_rps` derived from the *currently active core set*
// (capacity degree x peak rate / servers) — so sprint, derate and shed
// actions from the controller's degradation ladder immediately reshape the
// latency distribution. Two regimes:
//
//  - Stationary (no backlog, utilization below `rho_max`): each request
//    samples a response time from the model's stationary distribution.
//    M/G/1 uses the Pollaczek-Khinchine mean
//        W = 1/mu + lambda (1 + cv^2) / (2 mu^2 (1 - rho))
//    with an exponential response-time shape (exact for M/M/1, i.e.
//    cv^2 = 1). Processor sharing samples a job size S ~ Exp(mu) and
//    stretches it to T = S / (1 - rho) — PS is insensitive to the size
//    distribution beyond its mean, so its mean response matches M/M/1.
//  - Fluid overload (backlog pending or rho >= rho_max): deterministic
//    FIFO fluid dynamics — request i waits for the backlog plus the i
//    requests ahead of it at rate mu, and the backlog integrates
//    max(B + arrivals - mu dt, 0). Responses are monotone decreasing in
//    mu, which is what makes the p99-vs-sprint-budget curves monotone.
//
// Sampling consumes a caller-provided Rng (the serving layer forks one per
// (tick, server)), so a server's latency stream is a pure function of its
// seed and inputs — bit-identical for any thread count.
#pragma once

#include <memory>
#include <string_view>

#include "serving/latency.h"
#include "util/rng.h"
#include "util/units.h"

namespace dcs::serving {

struct QueueModelParams {
  /// Squared coefficient of variation of service times (M/G/1 only;
  /// 1 = exponential/M/M/1, 0 = deterministic).
  double cv2 = 1.0;
  /// Utilization above which the stationary formulas give way to the fluid
  /// overload regime.
  double rho_max = 0.95;
};

/// Closed-form M/G/1 mean response time (Pollaczek-Khinchine). Requires
/// lambda < mu. Exposed for the serving_queue_test cross-checks.
[[nodiscard]] double mg1_mean_response_s(double lambda_rps, double mu_rps,
                                         double cv2) noexcept;

/// Closed-form M/M/1-PS mean response time 1/(mu - lambda). Requires
/// lambda < mu.
[[nodiscard]] double ps_mean_response_s(double lambda_rps,
                                        double mu_rps) noexcept;

class QueueModel {
 public:
  virtual ~QueueModel() = default;

  /// Serves `arrivals` requests offered this period at service rate
  /// `mu_rps`, recording one response time per request into `latencies`.
  /// Must be called every period (even with zero arrivals) so the backlog
  /// drains.
  virtual void step(std::size_t arrivals, double mu_rps, Duration dt,
                    Rng& rng, LatencyTracker& latencies) = 0;

  /// Requests queued but not yet served (fluid regime), in requests.
  [[nodiscard]] virtual double backlog() const noexcept = 0;

  virtual void reset() = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Shared two-regime skeleton; subclasses provide the stationary response
/// sampler.
class AnalyticQueue : public QueueModel {
 public:
  explicit AnalyticQueue(QueueModelParams params) : params_(params) {}

  void step(std::size_t arrivals, double mu_rps, Duration dt, Rng& rng,
            LatencyTracker& latencies) final;
  [[nodiscard]] double backlog() const noexcept final { return backlog_; }
  void reset() final { backlog_ = 0.0; }

 protected:
  /// One response-time sample under stationary load (lambda < mu).
  [[nodiscard]] virtual double stationary_response(double lambda_rps,
                                                   double mu_rps,
                                                   Rng& rng) = 0;
  [[nodiscard]] const QueueModelParams& params() const noexcept {
    return params_;
  }

 private:
  QueueModelParams params_;
  double backlog_ = 0.0;
};

/// M/G/1 FIFO (Pollaczek-Khinchine mean, exponential shape).
class Mg1Queue final : public AnalyticQueue {
 public:
  explicit Mg1Queue(QueueModelParams params = {}) : AnalyticQueue(params) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "mg1";
  }

 protected:
  [[nodiscard]] double stationary_response(double lambda_rps, double mu_rps,
                                           Rng& rng) override;
};

/// Egalitarian processor sharing over the active core set.
class ProcessorSharingQueue final : public AnalyticQueue {
 public:
  explicit ProcessorSharingQueue(QueueModelParams params = {})
      : AnalyticQueue(params) {}
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ps";
  }

 protected:
  [[nodiscard]] double stationary_response(double lambda_rps, double mu_rps,
                                           Rng& rng) override;
};

/// Factory over the bench `queue_model=` knob: "mg1" | "ps". Aborts on an
/// unknown name.
[[nodiscard]] std::unique_ptr<QueueModel> make_queue_model(
    std::string_view name, QueueModelParams params = {});

}  // namespace dcs::serving
