#include "serving/request_source.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs::serving {
namespace {

/// Knuth's multiplication method is exact but needs exp(-mean) to stay
/// representable; 16 keeps exp(-16) ~ 1.1e-7, far from double underflow.
constexpr double kChunkMean = 16.0;

std::size_t poisson_chunk(Rng& rng, double mean) noexcept {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  std::size_t k = 0;
  double product = 1.0;
  do {
    ++k;
    product *= rng.uniform();
  } while (product > limit);
  return k - 1;
}

}  // namespace

std::size_t poisson_sample(Rng& rng, double mean) noexcept {
  std::size_t total = 0;
  while (mean > kChunkMean) {
    total += poisson_chunk(rng, kChunkMean);
    mean -= kChunkMean;
  }
  return total + poisson_chunk(rng, mean);
}

RequestSource::RequestSource(RequestSourceParams params)
    : params_(params), base_(params.seed) {
  DCS_REQUIRE(params_.peak_rps > 0.0, "peak_rps must be positive");
}

std::size_t RequestSource::arrivals(std::uint64_t tick_index, double demand,
                                    Duration dt) const noexcept {
  const double mean = std::max(demand, 0.0) * params_.peak_rps * dt.sec();
  Rng tick_rng = base_.fork(tick_index);
  return poisson_sample(tick_rng, mean);
}

}  // namespace dcs::serving
