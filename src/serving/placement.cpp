#include "serving/placement.h"

#include "util/check.h"

namespace dcs::serving {
namespace {

double queue_length(const ServerLoad& server) noexcept {
  return server.backlog + static_cast<double>(server.assigned);
}

}  // namespace

std::size_t RoundRobinPlacement::pick(const std::vector<ServerLoad>& servers) {
  const std::size_t index = cursor_ % servers.size();
  cursor_ = (cursor_ + 1) % servers.size();
  return index;
}

std::size_t JoinShortestQueuePlacement::pick(
    const std::vector<ServerLoad>& servers) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < servers.size(); ++i) {
    if (queue_length(servers[i]) < queue_length(servers[best])) best = i;
  }
  return best;
}

std::size_t ThermalAwarePlacement::pick(
    const std::vector<ServerLoad>& servers) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < servers.size(); ++i) {
    if (servers[i].heat < servers[best].heat ||
        (servers[i].heat == servers[best].heat &&
         queue_length(servers[i]) < queue_length(servers[best]))) {
      best = i;
    }
  }
  return best;
}

std::unique_ptr<PlacementPolicy> make_placement(std::string_view name) {
  if (name == "round_robin") return std::make_unique<RoundRobinPlacement>();
  if (name == "jsq") return std::make_unique<JoinShortestQueuePlacement>();
  if (name == "thermal") return std::make_unique<ThermalAwarePlacement>();
  DCS_REQUIRE(false, "unknown placement (want round_robin, jsq or thermal)");
  return nullptr;
}

}  // namespace dcs::serving
