#include "serving/latency.h"

#include <algorithm>
#include <cmath>

namespace dcs::serving {
namespace {

/// log10 spacing of one bucket.
constexpr double kDecadeFraction = 1.0 / static_cast<double>(
    LatencyHistogram::kPerDecade);

std::size_t bucket_index(double seconds) noexcept {
  const double pos = std::log10(seconds / LatencyHistogram::kMinSeconds) *
                     static_cast<double>(LatencyHistogram::kPerDecade);
  const auto index = static_cast<std::size_t>(std::max(pos, 0.0));
  return std::min(index, LatencyHistogram::kBuckets - 1);
}

double bucket_lower_edge(std::size_t index) noexcept {
  return LatencyHistogram::kMinSeconds *
         std::pow(10.0, static_cast<double>(index) * kDecadeFraction);
}

}  // namespace

void LatencyHistogram::observe(double seconds) noexcept {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN / negative guard
  ++count_;
  sum_ += seconds;
  max_ = std::max(max_, seconds);
  if (seconds < kMinSeconds) {
    ++underflow_;
  } else if (seconds >= kMaxSeconds) {
    ++overflow_;
  } else {
    ++buckets_[bucket_index(seconds)];
  }
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return kMinSeconds;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (target <= next) {
      // Geometric interpolation between the bucket edges, matching the log
      // spacing of the buckets themselves.
      const double fraction =
          (target - cumulative) / static_cast<double>(buckets_[i]);
      const double lo = bucket_lower_edge(i);
      return lo * std::pow(10.0, kDecadeFraction * fraction);
    }
    cumulative = next;
  }
  return kMaxSeconds;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() noexcept { *this = LatencyHistogram{}; }

bool LatencyHistogram::operator==(const LatencyHistogram& other) const noexcept {
  return buckets_ == other.buckets_ && underflow_ == other.underflow_ &&
         overflow_ == other.overflow_ && count_ == other.count_ &&
         sum_ == other.sum_ && max_ == other.max_;
}

std::vector<double> LatencyHistogram::prometheus_bounds() {
  std::vector<double> bounds;
  bounds.reserve(1 + kBuckets);
  bounds.push_back(kMinSeconds);  // closes the underflow bucket
  for (std::size_t i = 0; i < kBuckets; ++i) {
    bounds.push_back(bucket_lower_edge(i + 1));
  }
  return bounds;
}

std::vector<std::size_t> LatencyHistogram::bucket_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(2 + kBuckets);
  counts.push_back(underflow_);
  counts.insert(counts.end(), buckets_.begin(), buckets_.end());
  counts.push_back(overflow_);
  return counts;
}

LatencyTracker::LatencyTracker(std::size_t window_ticks)
    : window_ticks_(window_ticks == 0 ? 1 : window_ticks) {}

void LatencyTracker::observe(double seconds) noexcept {
  total_.observe(seconds);
  window_.observe(seconds);
}

void LatencyTracker::end_tick() noexcept {
  if (++ticks_in_window_ < window_ticks_) return;
  if (window_.count() > 0) last_window_p99_ = window_.quantile(0.99);
  window_.reset();
  ticks_in_window_ = 0;
}

double LatencyTracker::window_p99() const noexcept {
  return window_.count() > 0 ? window_.quantile(0.99) : last_window_p99_;
}

void LatencyTracker::export_metrics(obs::MetricsRegistry& registry,
                                    const std::string& prefix) const {
  registry.gauge(prefix + "p50_ms").set(p50() * 1e3);
  registry.gauge(prefix + "p95_ms").set(p95() * 1e3);
  registry.gauge(prefix + "p99_ms").set(p99() * 1e3);
  registry.gauge(prefix + "p999_ms").set(p999() * 1e3);
  registry.gauge(prefix + "mean_ms").set(total_.mean_seconds() * 1e3);
  registry.gauge(prefix + "max_ms").set(total_.max_seconds() * 1e3);
  obs::Counter& requests = registry.counter(prefix + "requests_total");
  requests.inc(static_cast<double>(total_.count()) - requests.value());

  // The full distribution as a registry histogram, so the Prometheus
  // snapshot exposes every bucket count (not just the quantile gauges).
  // Export is idempotent: only the delta against what the registry already
  // holds is imported, each bucket's samples entering at its upper bound
  // (sum is therefore an upper estimate; the exact sum stays in the
  // `mean_ms` gauge and `requests_total`).
  const std::vector<double> bounds = LatencyHistogram::prometheus_bounds();
  obs::Histogram& histogram =
      registry.histogram(prefix + "seconds", bounds);
  const std::vector<std::size_t> have = histogram.cumulative_counts();
  const std::vector<std::size_t> want = total_.bucket_counts();
  for (std::size_t i = 0; i < want.size(); ++i) {
    const std::size_t have_bucket =
        i == 0 ? have[0] : have[i] - have[i - 1];
    if (want[i] <= have_bucket) continue;
    const double representative =
        i < bounds.size() ? bounds[i] : 2.0 * LatencyHistogram::kMaxSeconds;
    histogram.observe_n(representative, want[i] - have_bucket);
  }
}

}  // namespace dcs::serving
