// Streaming latency distributions for the request-level serving layer.
//
// LatencyHistogram is a fixed-bucket log histogram (16 buckets per decade
// over [100 us, 1000 s], plus underflow/overflow) so p50/p95/p99/p999 are
// O(buckets) to read at any point in a run without storing samples.
// Observing is pure integer bucketing over deterministic inputs, and
// merging adds bucket counts, so histograms built from the same sample
// stream are bit-identical regardless of which thread ran the task — the
// same contract as every sweep-runner row.
//
// LatencyTracker wraps two histograms: the run-total distribution (the
// figure metric) and a short sliding window whose p99 is the controller's
// SLO-violation signal (core::SloSprintStrategy::observe_latency).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dcs::serving {

class LatencyHistogram {
 public:
  /// Bucket geometry: kDecades decades above kMinSeconds, kPerDecade
  /// buckets each; samples below kMinSeconds land in the underflow bucket
  /// and samples at or above the top edge in the overflow bucket.
  static constexpr double kMinSeconds = 1e-4;
  static constexpr std::size_t kDecades = 7;  // up to 1000 s
  static constexpr std::size_t kPerDecade = 16;
  static constexpr std::size_t kBuckets = kDecades * kPerDecade;
  static constexpr double kMaxSeconds = 1e3;

  void observe(double seconds) noexcept;

  /// Quantile in seconds, q in [0, 1]; geometric interpolation inside the
  /// winning bucket. Underflow resolves to kMinSeconds, overflow to
  /// kMaxSeconds. 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum_seconds() const noexcept { return sum_; }
  [[nodiscard]] double mean_seconds() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double max_seconds() const noexcept { return max_; }

  /// Adds the other histogram's buckets into this one (commutative on the
  /// counts; sum/max fold exactly for any merge order).
  void merge(const LatencyHistogram& other) noexcept;

  void reset() noexcept;

  /// Bucket-exact equality — the bit-identity check used by the serving
  /// determinism tests.
  [[nodiscard]] bool operator==(const LatencyHistogram& other) const noexcept;

  /// Finite Prometheus `le` bounds matching this geometry (seconds):
  /// kMinSeconds closes the underflow bucket, then every log bucket's
  /// upper edge — 1 + kBuckets entries; the overflow bucket is the
  /// implicit +Inf.
  [[nodiscard]] static std::vector<double> prometheus_bounds();
  /// Per-bucket (non-cumulative) counts aligned with prometheus_bounds(),
  /// overflow last: size 2 + kBuckets.
  [[nodiscard]] std::vector<std::size_t> bucket_counts() const;

 private:
  std::array<std::size_t, kBuckets> buckets_{};
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

class LatencyTracker {
 public:
  /// `window_ticks`: control periods per sliding SLO window (the window
  /// histogram resets every that many end_tick() calls).
  explicit LatencyTracker(std::size_t window_ticks = 10);

  /// Records one request's response time into the run-total and window
  /// histograms.
  void observe(double seconds) noexcept;

  /// Advances the window clock; call once per control period.
  void end_tick() noexcept;

  /// p99 over the current window (falling back to the last completed
  /// window while the current one is still empty) — the SLO signal.
  [[nodiscard]] double window_p99() const noexcept;

  [[nodiscard]] const LatencyHistogram& total() const noexcept { return total_; }
  [[nodiscard]] double p50() const noexcept { return total_.quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return total_.quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return total_.quantile(0.99); }
  [[nodiscard]] double p999() const noexcept { return total_.quantile(0.999); }

  /// Gauges `<prefix>p50_ms`/`p95_ms`/`p99_ms`/`p999_ms`/`mean_ms`/`max_ms`
  /// and counter `<prefix>requests_total` into `registry`.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "latency_") const;

 private:
  std::size_t window_ticks_;
  std::size_t ticks_in_window_ = 0;
  double last_window_p99_ = 0.0;
  LatencyHistogram total_;
  LatencyHistogram window_;
};

}  // namespace dcs::serving
