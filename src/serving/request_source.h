// Converts the per-second normalized demand traces (workload/ms_trace,
// workload/yahoo_trace, ...) into discrete request arrival streams: demand
// d at rate scale `peak_rps` offers Poisson(d * peak_rps * dt) requests per
// control period — a Poisson thinning of the trace rate.
//
// Determinism: each tick's count is drawn from a fresh Rng forked off the
// source seed by tick index, so the arrival stream for tick k is a pure
// function of (seed, k, demand, dt). Two sweep cells sharing a seed see the
// *same* arrivals and differ only in how the plant serves them, which keeps
// p99-vs-budget curves smooth; and the stream never depends on who else ran
// or in what order — the sweep runner's bit-identity contract.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.h"
#include "util/units.h"

namespace dcs::serving {

struct RequestSourceParams {
  /// Request rate corresponding to demand 1.0 (the trace's capacity line).
  double peak_rps = 400.0;
  std::uint64_t seed = 0x5e91ce5eedULL;
};

/// Exact Poisson(mean) sample via chunked Knuth multiplication (chunks keep
/// exp(-mean) well above underflow; a sum of independent Poissons is
/// Poisson with the summed mean, so chunking is exact). Deterministic given
/// the Rng state. Exposed for the serving tests.
[[nodiscard]] std::size_t poisson_sample(Rng& rng, double mean) noexcept;

class RequestSource {
 public:
  explicit RequestSource(RequestSourceParams params);

  /// Requests arriving during control period `tick_index` under normalized
  /// demand `demand`. Stateless per tick (see file comment).
  [[nodiscard]] std::size_t arrivals(std::uint64_t tick_index, double demand,
                                     Duration dt) const noexcept;

  [[nodiscard]] double peak_rps() const noexcept { return params_.peak_rps; }

 private:
  RequestSourceParams params_;
  Rng base_;
};

}  // namespace dcs::serving
