// Pluggable request-placement policies over the serving layer's servers.
//
// Mirrors the job-queue + pluggable-scheduler shape of geedo0's
// miniproject3 (ROADMAP exemplar): the serving layer asks the policy which
// server receives each admitted request, given every server's queue backlog
// and a thermal proxy. Three policies:
//   round_robin - rotate through the servers;
//   jsq         - join the shortest queue (backlog + requests already
//                 placed this period), ties to the lowest index;
//   thermal     - coolest server first (the exemplar's
//                 LowTemperatureFirstSchedulingAlgorithm, reproduced as a
//                 sprint-placement strategy), queue length as tiebreak.
//
// Policies are deterministic pure functions of the server view plus their
// own cursor state, so placement never perturbs the sweep bit-identity
// contract.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace dcs::serving {

/// What a policy may observe about one server when placing a request.
struct ServerLoad {
  /// Requests queued at the server (fluid backlog), in requests.
  double backlog = 0.0;
  /// Thermal proxy in [0, ~2]: utilization smoothed over heat_tau_s.
  double heat = 0.0;
  /// Requests already placed on this server during the current period.
  std::size_t assigned = 0;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Index of the server that receives the next request. `servers` is
  /// never empty.
  [[nodiscard]] virtual std::size_t pick(
      const std::vector<ServerLoad>& servers) = 0;

  virtual void reset() {}

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::size_t pick(
      const std::vector<ServerLoad>& servers) override;
  void reset() override { cursor_ = 0; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "round_robin";
  }

 private:
  std::size_t cursor_ = 0;
};

class JoinShortestQueuePlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::size_t pick(
      const std::vector<ServerLoad>& servers) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "jsq";
  }
};

class ThermalAwarePlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::size_t pick(
      const std::vector<ServerLoad>& servers) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "thermal";
  }
};

/// Factory over the bench `placement=` knob: "round_robin" | "jsq" |
/// "thermal". Aborts on an unknown name.
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_placement(
    std::string_view name);

}  // namespace dcs::serving
