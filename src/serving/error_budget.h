// SRE-style SLO error-budget accounting over the serving layer's per-tick
// violation signal.
//
// The SLO ("window p99 <= target") is allowed to be violated for a bounded
// fraction of the run — the error budget (budget_fraction of control
// periods). Each tick classifies as compliant or violating; the budget
// remaining is
//
//   remaining = max(0, 1 - violations / (budget_fraction * ticks))
//
// so it starts at 1, burns toward 0 as violations accumulate, and recovers
// only by diluting past violations with new compliant ticks (violation
// *counts* never decrease — the monotone counter CI asserts on).
//
// Burn rates follow the multi-window SRE alerting convention: the
// violation fraction inside a sliding window divided by budget_fraction,
// so burn 1.0 means "consuming budget exactly as fast as provisioned",
// above 1 is over-spend. A fast (minutes) and a slow (tens of minutes)
// window pair distinguishes a transient latency spike from a sustained
// breach.
//
// Pure bookkeeping over booleans: no clocks, no allocation after
// construction, bit-identical across thread counts.
#pragma once

#include <cstddef>
#include <vector>

namespace dcs::serving {

struct ErrorBudgetParams {
  /// SLO threshold on the window p99 (seconds).
  double target_p99_s = 0.25;
  /// Fraction of control periods allowed to violate the SLO over the run.
  double budget_fraction = 0.05;
  /// Sliding-window lengths (control periods) for the burn rates.
  std::size_t fast_window = 60;
  std::size_t slow_window = 600;
};

class ErrorBudget {
 public:
  explicit ErrorBudget(ErrorBudgetParams params = {});

  /// Classifies one control period. `p99_s` is the serving layer's sliding
  /// window p99 for the period.
  void observe(double p99_s);

  [[nodiscard]] std::size_t ticks() const noexcept { return ticks_; }
  /// Cumulative violating periods — monotone by construction.
  [[nodiscard]] std::size_t violations() const noexcept { return violations_; }
  /// Remaining budget in [0, 1].
  [[nodiscard]] double remaining() const noexcept;
  /// Burn rate over the fast / slow window (1.0 = spending exactly the
  /// provisioned rate). Windows shorter than their capacity use the ticks
  /// seen so far.
  [[nodiscard]] double burn_fast() const noexcept;
  [[nodiscard]] double burn_slow() const noexcept;
  /// True once the budget hit zero with at least one full fast window of
  /// evidence (a cold start with one early violation is not exhaustion).
  [[nodiscard]] bool exhausted() const noexcept;

  [[nodiscard]] const ErrorBudgetParams& params() const noexcept {
    return params_;
  }

 private:
  ErrorBudgetParams params_;
  std::size_t ticks_ = 0;
  std::size_t violations_ = 0;
  // Ring buffers of per-tick violation flags plus running in-window counts.
  std::vector<bool> fast_;
  std::vector<bool> slow_;
  std::size_t fast_count_ = 0;
  std::size_t slow_count_ = 0;
};

}  // namespace dcs::serving
