#include "serving/serving_layer.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs::serving {

ServingLayer::ServingLayer(ServingParams params)
    : params_(std::move(params)),
      source_(RequestSourceParams{params_.peak_rps, params_.seed}),
      placement_(make_placement(params_.placement)),
      tracker_(params_.window_ticks),
      base_(Rng(params_.seed).fork(0x5e72f1ceULL)) {
  DCS_REQUIRE(params_.servers > 0, "need at least one server");
  DCS_REQUIRE(params_.admit_factor > 0.0, "admit_factor must be positive");
  DCS_REQUIRE(params_.heat_tau_s > 0.0, "heat_tau_s must be positive");
  DCS_REQUIRE(params_.demand != nullptr && !params_.demand->empty(),
              "serving layer needs a demand trace");
  queues_.reserve(params_.servers);
  for (std::size_t i = 0; i < params_.servers; ++i) {
    queues_.push_back(make_queue_model(params_.queue_model, params_.queue));
  }
  loads_.resize(params_.servers);
  per_server_.resize(params_.servers);
}

void ServingLayer::set_capacity_degree(double degree) noexcept {
  degree_ = std::max(degree, 0.0);
}

void ServingLayer::set_slo_callback(
    std::function<void(const ServingStats&)> callback) {
  slo_callback_ = std::move(callback);
}

void ServingLayer::set_recorder(sim::Recorder* recorder) noexcept {
  recorder_ = recorder;
}

void ServingLayer::enable_error_budget(ErrorBudgetParams params) {
  budget_.emplace(params);
  budget_exhausted_reported_ = false;
}

double ServingLayer::drop_fraction() const noexcept {
  return offered_total_ > 0 ? static_cast<double>(dropped_total_) /
                                  static_cast<double>(offered_total_)
                            : 0.0;
}

double ServingLayer::backlog_total() const noexcept {
  double total = 0.0;
  for (const auto& queue : queues_) total += queue->backlog();
  return total;
}

void ServingLayer::tick(Duration now, Duration dt) {
  const double demand = params_.demand->at(now);
  const std::size_t offered = source_.arrivals(tick_index_, demand, dt);

  // Request admission control: the capacity the active core set can absorb
  // this period, with admit_factor of queueing headroom on top. The excess
  // is denied outright (the paper's "last resort") rather than queued into
  // an unbounded backlog.
  const double capacity_rps = degree_ * params_.peak_rps;
  const double cap = params_.admit_factor * capacity_rps * dt.sec();
  const auto admitted = std::min(
      offered, static_cast<std::size_t>(std::max(std::floor(cap), 0.0)));
  offered_total_ += offered;
  dropped_total_ += offered - admitted;

  // Placement: policy picks a server per request against the live view.
  std::fill(per_server_.begin(), per_server_.end(), std::size_t{0});
  for (std::size_t i = 0; i < admitted; ++i) {
    const std::size_t server = placement_->pick(loads_);
    ++loads_[server].assigned;
    ++per_server_[server];
  }

  // Service over the currently active core set, one Rng stream per
  // (tick, server) so the latency sample sequence is reproducible.
  const double mu = capacity_rps / static_cast<double>(params_.servers);
  const Rng tick_rng = base_.fork(tick_index_);
  for (std::size_t s = 0; s < params_.servers; ++s) {
    Rng server_rng = tick_rng.fork(s);
    queues_[s]->step(per_server_[s], mu, dt, server_rng, tracker_);
    loads_[s].backlog = queues_[s]->backlog();
    loads_[s].assigned = 0;
    // Thermal proxy: utilization (arrival pressure against the server's
    // share of capacity) smoothed over heat_tau_s; saturates during
    // overload so thermal-aware placement steers around hot servers.
    const double lambda_s = static_cast<double>(per_server_[s]) / dt.sec();
    const double utilization =
        mu > 0.0 ? std::min(lambda_s / mu + (queues_[s]->backlog() > 0.0
                                                 ? 1.0
                                                 : 0.0),
                            2.0)
                 : 2.0;
    const double alpha = std::min(dt.sec() / params_.heat_tau_s, 1.0);
    loads_[s].heat += (utilization - loads_[s].heat) * alpha;
  }
  tracker_.end_tick();

  ServingStats stats;
  stats.offered = offered;
  stats.admitted = admitted;
  stats.dropped = offered - admitted;
  stats.p99_s = tracker_.window_p99();
  stats.backlog = backlog_total();

  // Admission decisions on the drop edge: the tick request denial starts
  // (clamp) and the tick it stops (release), with the cap that was binding.
  const bool clamping = stats.dropped > 0;
  if (decisions_ != nullptr && clamping != clamping_) {
    decisions_->emit(clamping ? obs::DecisionRule::kAdmissionClamp
                              : obs::DecisionRule::kAdmissionRelease,
                     {{"offered", static_cast<double>(stats.offered)},
                      {"admitted", static_cast<double>(stats.admitted)},
                      {"backlog", stats.backlog}},
                     {{"cap", cap}});
  }
  clamping_ = clamping;

  if (budget_) {
    budget_->observe(stats.p99_s);
    if (decisions_ != nullptr && budget_->exhausted() &&
        !budget_exhausted_reported_) {
      // One-shot: the budget hitting zero is a run-level verdict, not a
      // per-tick condition.
      decisions_->emit(
          obs::DecisionRule::kSloBudgetExhausted,
          {{"burn_fast", budget_->burn_fast()},
           {"burn_slow", budget_->burn_slow()},
           {"violations", static_cast<double>(budget_->violations())}},
          {{"budget_fraction", budget_->params().budget_fraction}});
      budget_exhausted_reported_ = true;
    }
  }

  if (recorder_ != nullptr) {
    recorder_->record("serving_p50_ms", now, tracker_.p50() * 1e3);
    recorder_->record("serving_p99_ms", now, tracker_.p99() * 1e3);
    recorder_->record("serving_p999_ms", now, tracker_.p999() * 1e3);
    recorder_->record("serving_window_p99_ms", now, stats.p99_s * 1e3);
    recorder_->record("serving_backlog", now, stats.backlog);
    recorder_->record("serving_dropped", now,
                      static_cast<double>(stats.dropped));
    recorder_->record("serving_admitted", now,
                      static_cast<double>(stats.admitted));
    if (budget_) {
      recorder_->record("slo_budget_remaining", now, budget_->remaining());
      recorder_->record("slo_burn_fast", now, budget_->burn_fast());
      recorder_->record("slo_burn_slow", now, budget_->burn_slow());
      recorder_->record("slo_budget_violations", now,
                        static_cast<double>(budget_->violations()));
    }
  }
  if (slo_callback_) slo_callback_(stats);
  ++tick_index_;
}

void ServingLayer::export_metrics(obs::MetricsRegistry& registry) const {
  tracker_.export_metrics(registry, "serving_");
  obs::Counter& offered = registry.counter("serving_offered_total");
  offered.inc(static_cast<double>(offered_total_) - offered.value());
  obs::Counter& dropped = registry.counter("serving_dropped_total");
  dropped.inc(static_cast<double>(dropped_total_) - dropped.value());
  registry.gauge("serving_drop_fraction").set(drop_fraction());
  registry.gauge("serving_backlog").set(backlog_total());
  if (budget_) {
    registry.gauge("slo_budget_remaining").set(budget_->remaining());
    registry.gauge("slo_burn_fast").set(budget_->burn_fast());
    registry.gauge("slo_burn_slow").set(budget_->burn_slow());
    obs::Counter& violations = registry.counter("slo_budget_violations_total");
    violations.inc(static_cast<double>(budget_->violations()) -
                   violations.value());
  }
}

}  // namespace dcs::serving
