#include "serving/error_budget.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::serving {

ErrorBudget::ErrorBudget(ErrorBudgetParams params) : params_(params) {
  DCS_REQUIRE(params_.target_p99_s > 0.0, "target_p99_s must be positive");
  DCS_REQUIRE(params_.budget_fraction > 0.0 && params_.budget_fraction <= 1.0,
              "budget_fraction must lie in (0, 1]");
  DCS_REQUIRE(params_.fast_window > 0, "fast_window must be positive");
  DCS_REQUIRE(params_.slow_window >= params_.fast_window,
              "slow_window must be at least fast_window");
  fast_.assign(params_.fast_window, false);
  slow_.assign(params_.slow_window, false);
}

void ErrorBudget::observe(double p99_s) {
  const bool violating = p99_s > params_.target_p99_s;
  if (violating) ++violations_;

  const std::size_t fast_slot = ticks_ % params_.fast_window;
  const std::size_t slow_slot = ticks_ % params_.slow_window;
  if (fast_[fast_slot]) --fast_count_;
  if (slow_[slow_slot]) --slow_count_;
  fast_[fast_slot] = violating;
  slow_[slow_slot] = violating;
  if (violating) {
    ++fast_count_;
    ++slow_count_;
  }
  ++ticks_;
}

double ErrorBudget::remaining() const noexcept {
  if (ticks_ == 0) return 1.0;
  const double allowed =
      params_.budget_fraction * static_cast<double>(ticks_);
  const double spent = static_cast<double>(violations_) / allowed;
  return std::max(0.0, 1.0 - spent);
}

double ErrorBudget::burn_fast() const noexcept {
  const std::size_t filled = std::min(ticks_, params_.fast_window);
  if (filled == 0) return 0.0;
  const double fraction =
      static_cast<double>(fast_count_) / static_cast<double>(filled);
  return fraction / params_.budget_fraction;
}

double ErrorBudget::burn_slow() const noexcept {
  const std::size_t filled = std::min(ticks_, params_.slow_window);
  if (filled == 0) return 0.0;
  const double fraction =
      static_cast<double>(slow_count_) / static_cast<double>(filled);
  return fraction / params_.budget_fraction;
}

bool ErrorBudget::exhausted() const noexcept {
  return ticks_ >= params_.fast_window && remaining() <= 0.0;
}

}  // namespace dcs::serving
