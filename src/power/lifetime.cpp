#include "power/lifetime.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "util/check.h"

namespace dcs::power {
namespace {

// Datasheet-shaped cycle-life knots (DoD -> cycles to failure). The LFP
// figures satisfy the paper's two anchor claims: 10 full discharges/month
// for 8 years = 960 cycles << 3000, and 200 events/month at 26 % DoD for
// 8 years = 19,200 cycles < ~21,000.
PiecewiseCurve make_curve(Chemistry chemistry) {
  switch (chemistry) {
    case Chemistry::kLfp:
      return PiecewiseCurve({{0.10, 60000.0},
                             {0.20, 28000.0},
                             {0.30, 16000.0},
                             {0.50, 8000.0},
                             {0.80, 4200.0},
                             {1.00, 3000.0}},
                            PiecewiseCurve::Scale::kLogLog);
    case Chemistry::kLeadAcid:
      return PiecewiseCurve({{0.10, 5500.0},
                             {0.20, 2800.0},
                             {0.30, 1900.0},
                             {0.50, 1100.0},
                             {0.80, 650.0},
                             {1.00, 500.0}},
                            PiecewiseCurve::Scale::kLogLog);
  }
  throw std::logic_error("unknown chemistry");
}

}  // namespace

BatteryLifetimeModel::BatteryLifetimeModel(Chemistry chemistry)
    : chemistry_(chemistry), cycle_curve_(make_curve(chemistry)) {}

double BatteryLifetimeModel::cycles_to_failure(double depth_of_discharge) const {
  DCS_REQUIRE(depth_of_discharge > 0.0 && depth_of_discharge <= 1.0,
              "depth of discharge in (0, 1]");
  return cycle_curve_(depth_of_discharge);
}

double BatteryLifetimeModel::damage_per_event(double depth_of_discharge) const {
  return 1.0 / cycles_to_failure(depth_of_discharge);
}

double BatteryLifetimeModel::wear_years(double events_per_month,
                                        double depth_of_discharge) const {
  DCS_REQUIRE(events_per_month >= 0.0, "events must be non-negative");
  if (events_per_month == 0.0) return std::numeric_limits<double>::infinity();
  const double damage_per_year =
      12.0 * events_per_month * damage_per_event(depth_of_discharge);
  return 1.0 / damage_per_year;
}

bool BatteryLifetimeModel::lifetime_neutral(double events_per_month,
                                            double depth_of_discharge) const {
  return wear_years(events_per_month, depth_of_discharge) >=
         required_service_life().hrs() / (24.0 * 365.0);
}

Duration BatteryLifetimeModel::required_service_life() const {
  // Paper Section III-B: "4 years for LA and 8 years for LFP".
  const double years = chemistry_ == Chemistry::kLfp ? 8.0 : 4.0;
  return Duration::hours(years * 365.0 * 24.0);
}

}  // namespace dcs::power
