#include "power/topology.h"

#include <cstring>

#include "util/check.h"

namespace dcs::power {

PowerTopology::PowerTopology(const Params& params)
    : dc_breaker_("dc/cb", params.dc_breaker) {
  DCS_REQUIRE(params.pdu_count > 0, "need at least one PDU");
  pdus_.reserve(params.pdu_count);
  for (std::size_t i = 0; i < params.pdu_count; ++i) {
    pdus_.emplace_back("pdu" + std::to_string(i), params.pdu);
  }
  breaker_states_.resize(params.pdu_count);
  battery_states_.resize(params.pdu_count);
  rebind_states();
}

PowerTopology::PowerTopology(const PowerTopology& other)
    : dc_breaker_(other.dc_breaker_) {
  other.materialize();
  pdus_ = other.pdus_;
  breaker_states_.resize(pdus_.size());
  battery_states_.resize(pdus_.size());
  uniform_ = other.uniform_;
  materialized_ = true;
  grid_sum_ = other.grid_sum_;
  ups_sum_ = other.ups_sum_;
  avail_sum_ = other.avail_sum_;
  capacity_sum_ = other.capacity_sum_;
  rebind_states();
}

PowerTopology& PowerTopology::operator=(const PowerTopology& other) {
  if (this != &other) {
    other.materialize();
    pdus_ = other.pdus_;
    breaker_states_.resize(pdus_.size());
    battery_states_.resize(pdus_.size());
    dc_breaker_ = other.dc_breaker_;
    uniform_ = other.uniform_;
    materialized_ = true;
    grid_sum_ = other.grid_sum_;
    ups_sum_ = other.ups_sum_;
    avail_sum_ = other.avail_sum_;
    capacity_sum_ = other.capacity_sum_;
    rebind_states();
  }
  return *this;
}

PowerTopology::PowerTopology(PowerTopology&& other) noexcept
    : pdus_(std::move(other.pdus_)),
      breaker_states_(std::move(other.breaker_states_)),
      battery_states_(std::move(other.battery_states_)),
      dc_breaker_(std::move(other.dc_breaker_)),
      uniform_(other.uniform_),
      materialized_(other.materialized_),
      grid_sum_(other.grid_sum_),
      ups_sum_(other.ups_sum_),
      avail_sum_(other.avail_sum_),
      capacity_sum_(other.capacity_sum_) {
  // Vector moves steal the heap buffers, so the per-PDU views still point at
  // valid slots; rebinding keeps the invariant explicit regardless.
  rebind_states();
}

PowerTopology& PowerTopology::operator=(PowerTopology&& other) noexcept {
  if (this != &other) {
    pdus_ = std::move(other.pdus_);
    breaker_states_ = std::move(other.breaker_states_);
    battery_states_ = std::move(other.battery_states_);
    dc_breaker_ = std::move(other.dc_breaker_);
    uniform_ = other.uniform_;
    materialized_ = other.materialized_;
    grid_sum_ = other.grid_sum_;
    ups_sum_ = other.ups_sum_;
    avail_sum_ = other.avail_sum_;
    capacity_sum_ = other.capacity_sum_;
    rebind_states();
  }
  return *this;
}

void PowerTopology::rebind_states() noexcept {
  for (std::size_t i = 0; i < pdus_.size(); ++i) {
    pdus_[i].bind_states(&breaker_states_[i], &battery_states_[i]);
  }
}

void PowerTopology::materialize() const {
  if (materialized_) return;
  for (std::size_t i = 1; i < pdus_.size(); ++i) {
    pdus_[i].copy_dynamic_state_from(pdus_[0]);
  }
  materialized_ = true;
}

std::vector<Pdu>& PowerTopology::pdus() noexcept {
  materialize();
  uniform_ = false;
  return pdus_;
}

const std::vector<Pdu>& PowerTopology::pdus() const {
  materialize();
  return pdus_;
}

const Pdu& PowerTopology::pdu(std::size_t i) const {
  if (i != 0) materialize();
  return pdus_[i];
}

std::size_t PowerTopology::server_count() const noexcept {
  std::size_t n = 0;
  for (const Pdu& p : pdus_) n += p.server_count();
  return n;
}

double PowerTopology::uniform_sum(SumMemo& memo, double value) const {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  if (!memo.valid || memo.value_bits != bits) {
    // Same sequential accumulation the per-PDU walk performs, so the memo is
    // bit-identical to summing the materialized pool.
    double sum = 0.0;
    for (std::size_t i = 0; i < pdus_.size(); ++i) sum += value;
    memo.value_bits = bits;
    memo.sum = sum;
    memo.valid = true;
  }
  return memo.sum;
}

Flows PowerTopology::step_uniform(Power server_power_per_pdu,
                                  Power ups_request_per_pdu,
                                  Power cooling_power, Duration dt) {
  if (uniform_) {
    pdus_[0].step(server_power_per_pdu, ups_request_per_pdu, dt);
    materialized_ = false;
    return finish_step_uniform(cooling_power, dt);
  }
  for (Pdu& p : pdus_) p.step(server_power_per_pdu, ups_request_per_pdu, dt);
  return finish_step(cooling_power, dt);
}

Flows PowerTopology::step(const std::vector<Power>& server_power,
                          const std::vector<Power>& ups_request,
                          Power cooling_power, Duration dt) {
  DCS_REQUIRE(server_power.size() == pdus_.size(), "one server power per PDU");
  DCS_REQUIRE(ups_request.size() == pdus_.size(), "one ups request per PDU");
  materialize();
  uniform_ = false;
  for (std::size_t i = 0; i < pdus_.size(); ++i) {
    pdus_[i].step(server_power[i], ups_request[i], dt);
  }
  return finish_step(cooling_power, dt);
}

Flows PowerTopology::recharge_uniform(Power server_power_per_pdu,
                                      Power recharge_per_pdu,
                                      Power cooling_power, Duration dt) {
  if (uniform_) {
    pdus_[0].recharge_step(server_power_per_pdu, recharge_per_pdu, dt);
    materialized_ = false;
    return finish_step_uniform(cooling_power, dt);
  }
  for (Pdu& p : pdus_) p.recharge_step(server_power_per_pdu, recharge_per_pdu, dt);
  return finish_step(cooling_power, dt);
}

Flows PowerTopology::finish_step(Power cooling_power, Duration dt) {
  DCS_REQUIRE(cooling_power >= Power::zero(), "cooling power must be non-negative");
  Flows flows{};
  for (const Pdu& p : pdus_) {
    flows.pdu_grid_total += p.last_grid_load();
    flows.ups_total += p.last_ups_power();
    flows.any_pdu_tripped = flows.any_pdu_tripped || p.breaker().tripped();
  }
  flows.cooling = cooling_power;
  flows.dc_load = flows.pdu_grid_total + cooling_power;
  dc_breaker_.apply_load(flows.dc_load, dt);
  flows.dc_tripped = dc_breaker_.tripped();
  return flows;
}

Flows PowerTopology::finish_step_uniform(Power cooling_power, Duration dt) {
  DCS_REQUIRE(cooling_power >= Power::zero(), "cooling power must be non-negative");
  const Pdu& rep = pdus_[0];
  Flows flows{};
  flows.pdu_grid_total = Power::watts(uniform_sum(grid_sum_, rep.last_grid_load().w()));
  flows.ups_total = Power::watts(uniform_sum(ups_sum_, rep.last_ups_power().w()));
  flows.any_pdu_tripped = rep.breaker().tripped();
  flows.cooling = cooling_power;
  flows.dc_load = flows.pdu_grid_total + cooling_power;
  dc_breaker_.apply_load(flows.dc_load, dt);
  flows.dc_tripped = dc_breaker_.tripped();
  return flows;
}

Energy PowerTopology::ups_available() const {
  if (uniform_) {
    return Energy::joules(uniform_sum(avail_sum_, pdus_[0].ups().available().j()));
  }
  Energy total = Energy::zero();
  for (const Pdu& p : pdus_) total += p.ups().available();
  return total;
}

Energy PowerTopology::ups_capacity() const {
  // Capacity ignores injected fade, and all banks are built from identical
  // params, so this sum is constant for the lifetime of the topology.
  return Energy::joules(uniform_sum(capacity_sum_, pdus_[0].ups().capacity().j()));
}

double PowerTopology::max_pdu_breaker_heat() const {
  if (uniform_) return pdus_[0].breaker().thermal_state();
  double max_heat = 0.0;
  for (const Pdu& p : pdus_) {
    max_heat = std::max(max_heat, p.breaker().thermal_state());
  }
  return max_heat;
}

void PowerTopology::set_fault_all(double breaker_rating_factor,
                                  double breaker_trip_bias,
                                  double ups_availability,
                                  double ups_capacity_factor) {
  if (uniform_) {
    pdus_[0].breaker().set_fault(breaker_rating_factor, breaker_trip_bias);
    pdus_[0].ups().set_fault(ups_availability, ups_capacity_factor);
    materialized_ = false;
    return;
  }
  for (Pdu& p : pdus_) {
    p.breaker().set_fault(breaker_rating_factor, breaker_trip_bias);
    p.ups().set_fault(ups_availability, ups_capacity_factor);
  }
}

void PowerTopology::reset_breakers() {
  dc_breaker_.reset();
  if (uniform_) {
    pdus_[0].breaker().reset();
    materialized_ = false;
    return;
  }
  for (Pdu& p : pdus_) p.breaker().reset();
}

}  // namespace dcs::power
