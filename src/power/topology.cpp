#include "power/topology.h"

#include "util/check.h"

namespace dcs::power {

PowerTopology::PowerTopology(const Params& params)
    : dc_breaker_("dc/cb", params.dc_breaker) {
  DCS_REQUIRE(params.pdu_count > 0, "need at least one PDU");
  pdus_.reserve(params.pdu_count);
  for (std::size_t i = 0; i < params.pdu_count; ++i) {
    pdus_.emplace_back("pdu" + std::to_string(i), params.pdu);
  }
}

std::size_t PowerTopology::server_count() const noexcept {
  std::size_t n = 0;
  for (const Pdu& p : pdus_) n += p.server_count();
  return n;
}

Flows PowerTopology::step_uniform(Power server_power_per_pdu,
                                  Power ups_request_per_pdu,
                                  Power cooling_power, Duration dt) {
  for (Pdu& p : pdus_) p.step(server_power_per_pdu, ups_request_per_pdu, dt);
  return finish_step(cooling_power, dt);
}

Flows PowerTopology::step(const std::vector<Power>& server_power,
                          const std::vector<Power>& ups_request,
                          Power cooling_power, Duration dt) {
  DCS_REQUIRE(server_power.size() == pdus_.size(), "one server power per PDU");
  DCS_REQUIRE(ups_request.size() == pdus_.size(), "one ups request per PDU");
  for (std::size_t i = 0; i < pdus_.size(); ++i) {
    pdus_[i].step(server_power[i], ups_request[i], dt);
  }
  return finish_step(cooling_power, dt);
}

Flows PowerTopology::recharge_uniform(Power server_power_per_pdu,
                                      Power recharge_per_pdu,
                                      Power cooling_power, Duration dt) {
  for (Pdu& p : pdus_) p.recharge_step(server_power_per_pdu, recharge_per_pdu, dt);
  return finish_step(cooling_power, dt);
}

Flows PowerTopology::finish_step(Power cooling_power, Duration dt) {
  DCS_REQUIRE(cooling_power >= Power::zero(), "cooling power must be non-negative");
  Flows flows{};
  for (const Pdu& p : pdus_) {
    flows.pdu_grid_total += p.last_grid_load();
    flows.ups_total += p.last_ups_power();
    flows.any_pdu_tripped = flows.any_pdu_tripped || p.breaker().tripped();
  }
  flows.cooling = cooling_power;
  flows.dc_load = flows.pdu_grid_total + cooling_power;
  dc_breaker_.apply_load(flows.dc_load, dt);
  flows.dc_tripped = dc_breaker_.tripped();
  return flows;
}

Energy PowerTopology::ups_available() const {
  Energy total = Energy::zero();
  for (const Pdu& p : pdus_) total += p.ups().available();
  return total;
}

Energy PowerTopology::ups_capacity() const {
  Energy total = Energy::zero();
  for (const Pdu& p : pdus_) total += p.ups().capacity();
  return total;
}

void PowerTopology::reset_breakers() {
  dc_breaker_.reset();
  for (Pdu& p : pdus_) p.breaker().reset();
}

}  // namespace dcs::power
