// Two-level data-center power topology: an on-site substation breaker
// (DC level) feeding identical PDU groups, with the cooling plant hanging
// off the DC level (paper Fig. 4).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "power/circuit_breaker.h"
#include "power/pdu.h"
#include "util/units.h"

namespace dcs::power {

/// The power flows of one control step.
struct Flows {
  Power dc_load;            ///< load on the substation (DC-level) breaker
  Power pdu_grid_total;     ///< total grid power into PDUs
  Power ups_total;          ///< total UPS discharge across PDUs
  Power cooling;            ///< cooling plant power at the DC level
  bool dc_tripped = false;  ///< substation breaker tripped this step or earlier
  bool any_pdu_tripped = false;
};

class PowerTopology {
 public:
  struct Params {
    std::size_t pdu_count = 909;
    Pdu::Params pdu;
    CircuitBreaker::Params dc_breaker;
  };

  explicit PowerTopology(const Params& params);

  /// Advances one step with *uniform* per-PDU server power and UPS request
  /// (the paper's fleet is homogeneous and the workload is spread evenly).
  /// `cooling_power` is applied at the DC level only.
  Flows step_uniform(Power server_power_per_pdu, Power ups_request_per_pdu,
                     Power cooling_power, Duration dt);

  /// Advances one step with per-PDU values (tests exercise skewed loads).
  Flows step(const std::vector<Power>& server_power,
             const std::vector<Power>& ups_request, Power cooling_power,
             Duration dt);

  /// Recharge variant of step_uniform: per-PDU banks absorb up to
  /// `recharge_per_pdu` from the grid.
  Flows recharge_uniform(Power server_power_per_pdu, Power recharge_per_pdu,
                         Power cooling_power, Duration dt);

  [[nodiscard]] CircuitBreaker& dc_breaker() noexcept { return dc_breaker_; }
  [[nodiscard]] const CircuitBreaker& dc_breaker() const noexcept { return dc_breaker_; }
  [[nodiscard]] std::vector<Pdu>& pdus() noexcept { return pdus_; }
  [[nodiscard]] const std::vector<Pdu>& pdus() const noexcept { return pdus_; }
  [[nodiscard]] std::size_t pdu_count() const noexcept { return pdus_.size(); }
  [[nodiscard]] std::size_t server_count() const noexcept;

  /// Total UPS energy still available across all PDU banks.
  [[nodiscard]] Energy ups_available() const;
  /// Total UPS energy capacity across all PDU banks.
  [[nodiscard]] Energy ups_capacity() const;

  void reset_breakers();

 private:
  Flows finish_step(Power cooling_power, Duration dt);

  std::vector<Pdu> pdus_;
  CircuitBreaker dc_breaker_;
};

}  // namespace dcs::power
