// Two-level data-center power topology: an on-site substation breaker
// (DC level) feeding identical PDU groups, with the cooling plant hanging
// off the DC level (paper Fig. 4).
//
// State layout: the mutable breaker/bank state of every PDU lives in two
// contiguous structure-of-arrays pools owned by the topology; each Pdu's
// CircuitBreaker/Battery is a thin view bound into its slot. On top of that
// the topology exploits the paper's homogeneous fleet: the uniform kernels
// (`step_uniform`, `recharge_uniform`) advance only PDU 0 — the
// *representative* — and the remaining slots are materialized (bulk-copied
// from the representative) only when a caller actually asks for per-PDU
// state. The skewed-load path (`step` with per-PDU vectors, or mutation via
// the non-const `pdus()` accessor) permanently drops the topology out of
// uniform mode and every kernel then walks the full pools.
//
// Bit-identity contract: every fast path reproduces the exact floating-point
// results of the plain per-PDU walk (sums over n identical values are
// memoized but recomputed with the same sequential loop whenever the value
// changes), so a uniform run is byte-identical to a materialized one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "power/circuit_breaker.h"
#include "power/pdu.h"
#include "util/units.h"

namespace dcs::power {

/// The power flows of one control step.
struct Flows {
  Power dc_load;            ///< load on the substation (DC-level) breaker
  Power pdu_grid_total;     ///< total grid power into PDUs
  Power ups_total;          ///< total UPS discharge across PDUs
  Power cooling;            ///< cooling plant power at the DC level
  bool dc_tripped = false;  ///< substation breaker tripped this step or earlier
  bool any_pdu_tripped = false;
};

class PowerTopology {
 public:
  struct Params {
    std::size_t pdu_count = 909;
    Pdu::Params pdu;
    CircuitBreaker::Params dc_breaker;
  };

  explicit PowerTopology(const Params& params);

  PowerTopology(const PowerTopology& other);
  PowerTopology& operator=(const PowerTopology& other);
  PowerTopology(PowerTopology&& other) noexcept;
  PowerTopology& operator=(PowerTopology&& other) noexcept;

  /// Advances one step with *uniform* per-PDU server power and UPS request
  /// (the paper's fleet is homogeneous and the workload is spread evenly).
  /// `cooling_power` is applied at the DC level only.
  Flows step_uniform(Power server_power_per_pdu, Power ups_request_per_pdu,
                     Power cooling_power, Duration dt);

  /// Advances one step with per-PDU values (tests exercise skewed loads).
  /// Permanently leaves uniform mode.
  Flows step(const std::vector<Power>& server_power,
             const std::vector<Power>& ups_request, Power cooling_power,
             Duration dt);

  /// Recharge variant of step_uniform: per-PDU banks absorb up to
  /// `recharge_per_pdu` from the grid.
  Flows recharge_uniform(Power server_power_per_pdu, Power recharge_per_pdu,
                         Power cooling_power, Duration dt);

  [[nodiscard]] CircuitBreaker& dc_breaker() noexcept { return dc_breaker_; }
  [[nodiscard]] const CircuitBreaker& dc_breaker() const noexcept { return dc_breaker_; }

  /// Mutable per-PDU access: materializes and permanently leaves uniform
  /// mode (callers may skew individual PDUs). Prefer `pdu(i)` for reads.
  [[nodiscard]] std::vector<Pdu>& pdus() noexcept;
  /// Read access to the full PDU list; materializes lazily but stays in
  /// uniform mode.
  [[nodiscard]] const std::vector<Pdu>& pdus() const;
  /// Read access to one PDU. `pdu(0)` is always cheap (the representative);
  /// other indices materialize first.
  [[nodiscard]] const Pdu& pdu(std::size_t i) const;
  /// True while all PDUs provably share the representative's state.
  [[nodiscard]] bool uniform() const noexcept { return uniform_; }

  [[nodiscard]] std::size_t pdu_count() const noexcept { return pdus_.size(); }
  [[nodiscard]] std::size_t server_count() const noexcept;

  /// Total UPS energy still available across all PDU banks.
  [[nodiscard]] Energy ups_available() const;
  /// Total UPS energy capacity across all PDU banks.
  [[nodiscard]] Energy ups_capacity() const;
  /// Largest trip fraction across the PDU-level breakers (not the DC one).
  [[nodiscard]] double max_pdu_breaker_heat() const;

  /// Applies fault-injection factors to every PDU breaker and UPS bank
  /// (faults::FaultInjector pushes the merged fault state here each tick).
  /// Uniform topologies fault only the representative.
  void set_fault_all(double breaker_rating_factor, double breaker_trip_bias,
                     double ups_availability, double ups_capacity_factor);

  void reset_breakers();

 private:
  /// Memo for a sequential sum of `pdu_count` identical doubles: replays the
  /// exact per-PDU accumulation loop when the summand changes and reuses the
  /// result (bit-identical) while it doesn't.
  struct SumMemo {
    std::uint64_t value_bits = 0;
    double sum = 0.0;
    bool valid = false;
  };

  void rebind_states() noexcept;
  void materialize() const;
  [[nodiscard]] double uniform_sum(SumMemo& memo, double value) const;
  Flows finish_step(Power cooling_power, Duration dt);
  Flows finish_step_uniform(Power cooling_power, Duration dt);

  // The uniform kernels mutate only the representative, so const readers
  // must be able to materialize the rest of the pools on demand.
  mutable std::vector<Pdu> pdus_;
  mutable std::vector<CircuitBreaker::State> breaker_states_;
  mutable std::vector<Battery::State> battery_states_;
  CircuitBreaker dc_breaker_;
  bool uniform_ = true;
  mutable bool materialized_ = true;
  mutable SumMemo grid_sum_;
  mutable SumMemo ups_sum_;
  mutable SumMemo avail_sum_;
  mutable SumMemo capacity_sum_;
};

}  // namespace dcs::power
