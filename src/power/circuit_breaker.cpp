#include "power/circuit_breaker.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs::power {

CircuitBreaker::CircuitBreaker(std::string name, const Params& params)
    : name_(std::move(name)), params_(params) {
  DCS_REQUIRE(params_.rated > Power::zero(), "rated power must be positive");
  DCS_REQUIRE(params_.cooling_tau > Duration::zero(),
              "cooling time constant must be positive");
}

CircuitBreaker::CircuitBreaker(const CircuitBreaker& other)
    : name_(other.name_),
      params_(other.params_),
      own_(*other.s_),
      decay_cache_dt_s_(other.decay_cache_dt_s_),
      decay_cache_(other.decay_cache_) {}

CircuitBreaker& CircuitBreaker::operator=(const CircuitBreaker& other) {
  if (this != &other) {
    name_ = other.name_;
    params_ = other.params_;
    *s_ = *other.s_;
    decay_cache_dt_s_ = other.decay_cache_dt_s_;
    decay_cache_ = other.decay_cache_;
  }
  return *this;
}

CircuitBreaker::CircuitBreaker(CircuitBreaker&& other) noexcept
    : name_(std::move(other.name_)),
      params_(other.params_),
      own_(*other.s_),
      decay_cache_dt_s_(other.decay_cache_dt_s_),
      decay_cache_(other.decay_cache_) {}

CircuitBreaker& CircuitBreaker::operator=(CircuitBreaker&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    params_ = other.params_;
    *s_ = *other.s_;
    decay_cache_dt_s_ = other.decay_cache_dt_s_;
    decay_cache_ = other.decay_cache_;
  }
  return *this;
}

double CircuitBreaker::load_ratio(Power load) const {
  DCS_REQUIRE(load >= Power::zero(), "load must be non-negative");
  return load / effective_rated();
}

void CircuitBreaker::apply_load(Power load, Duration dt) {
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  if (s_->tripped) return;
  const Duration trip_time = params_.curve.time_to_trip(load_ratio(load));
  if (trip_time.is_infinite()) {
    // Cooling: exponential decay toward zero.
    if (dt.sec() != decay_cache_dt_s_) {
      decay_cache_ = std::exp(-(dt / params_.cooling_tau));
      decay_cache_dt_s_ = dt.sec();
    }
    s_->heat *= decay_cache_;
    return;
  }
  s_->heat += dt / trip_time;
  if (s_->heat >= 1.0 - s_->trip_bias) {
    s_->heat = 1.0;
    s_->tripped = true;
  }
}

Duration CircuitBreaker::time_to_trip_at(Power load) const {
  if (s_->tripped) return Duration::zero();
  const Duration trip_time = params_.curve.time_to_trip(load_ratio(load));
  if (trip_time.is_infinite()) return Duration::infinity();
  const double headroom = std::max(0.0, 1.0 - s_->trip_bias - s_->heat);
  return trip_time * headroom;
}

Power CircuitBreaker::max_load_for(Duration hold) const {
  if (s_->tripped) return Power::zero();
  const double headroom = 1.0 - s_->trip_bias - s_->heat;
  // Holding for `hold` from thermal state `heat_` needs a fresh-element trip
  // time of at least hold / headroom.
  Duration required = Duration::infinity();
  if (!hold.is_infinite() && headroom > 0.0) {
    required = hold / headroom;
  }
  const double ratio = params_.curve.max_ratio_for(required);
  return effective_rated() * ratio;
}

void CircuitBreaker::reset() noexcept {
  s_->heat = 0.0;
  s_->tripped = false;
}

void CircuitBreaker::set_fault(double rating_factor, double trip_bias) noexcept {
  s_->rating_factor = rating_factor;
  s_->trip_bias = trip_bias;
}

}  // namespace dcs::power
