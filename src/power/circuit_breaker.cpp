#include "power/circuit_breaker.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs::power {

CircuitBreaker::CircuitBreaker(std::string name, const Params& params)
    : name_(std::move(name)), params_(params) {
  DCS_REQUIRE(params_.rated > Power::zero(), "rated power must be positive");
  DCS_REQUIRE(params_.cooling_tau > Duration::zero(),
              "cooling time constant must be positive");
}

double CircuitBreaker::load_ratio(Power load) const {
  DCS_REQUIRE(load >= Power::zero(), "load must be non-negative");
  return load / effective_rated();
}

void CircuitBreaker::apply_load(Power load, Duration dt) {
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  if (tripped_) return;
  const Duration trip_time = params_.curve.time_to_trip(load_ratio(load));
  if (trip_time.is_infinite()) {
    // Cooling: exponential decay toward zero.
    heat_ *= std::exp(-(dt / params_.cooling_tau));
    return;
  }
  heat_ += dt / trip_time;
  if (heat_ >= 1.0 - trip_bias_) {
    heat_ = 1.0;
    tripped_ = true;
  }
}

Duration CircuitBreaker::time_to_trip_at(Power load) const {
  if (tripped_) return Duration::zero();
  const Duration trip_time = params_.curve.time_to_trip(load_ratio(load));
  if (trip_time.is_infinite()) return Duration::infinity();
  const double headroom = std::max(0.0, 1.0 - trip_bias_ - heat_);
  return trip_time * headroom;
}

Power CircuitBreaker::max_load_for(Duration hold) const {
  if (tripped_) return Power::zero();
  const double headroom = 1.0 - trip_bias_ - heat_;
  // Holding for `hold` from thermal state `heat_` needs a fresh-element trip
  // time of at least hold / headroom.
  Duration required = Duration::infinity();
  if (!hold.is_infinite() && headroom > 0.0) {
    required = hold / headroom;
  }
  const double ratio = params_.curve.max_ratio_for(required);
  return effective_rated() * ratio;
}

void CircuitBreaker::reset() noexcept {
  heat_ = 0.0;
  tripped_ = false;
}

void CircuitBreaker::set_fault(double rating_factor, double trip_bias) noexcept {
  rating_factor_ = rating_factor;
  trip_bias_ = trip_bias;
}

}  // namespace dcs::power
