#include "power/relay.h"

namespace dcs::power {

Relay::Relay(Duration switch_delay, bool initially_closed)
    : switch_delay_(switch_delay), closed_(initially_closed) {}

void Relay::command(bool closed) noexcept {
  if (closed == closed_ && !pending_) return;
  target_ = closed;
  pending_ = true;
  elapsed_ = Duration::zero();
}

void Relay::tick(Duration dt) noexcept {
  if (!pending_) return;
  elapsed_ += dt;
  if (elapsed_ >= switch_delay_) {
    closed_ = target_;
    pending_ = false;
  }
}

}  // namespace dcs::power
