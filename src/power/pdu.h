// A power distribution unit feeding a group of servers (200 by default,
// after [18]), protected by its own breaker, with the group's distributed
// per-server UPS batteries aggregated into one bank.
//
// Aggregation is exact for the paper's control scheme: coordinating
// distributed batteries "to set a desired number of servers to be powered by
// their batteries" shifts a controllable fraction of the group's power from
// the PDU to the batteries, which is precisely a single bank discharging
// that power.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "power/battery.h"
#include "power/circuit_breaker.h"
#include "util/units.h"

namespace dcs::power {

class Pdu {
 public:
  struct Params {
    std::size_t server_count = 200;
    CircuitBreaker::Params breaker;
    /// Per-server battery; the PDU aggregates `server_count` of them.
    Battery::Params battery_per_server;
  };

  Pdu(std::string name, const Params& params);

  /// One control step: the server group demands `server_power`; the
  /// coordinator asks the UPS bank to carry `ups_request` of it. Returns the
  /// power drawn from the PDU (grid side), after the bank supplied what it
  /// could. Also advances the breaker thermal state with that load.
  Power step(Power server_power, Power ups_request, Duration dt);

  /// Recharges the bank with up to `power` from the grid; the grid draw is
  /// added to the breaker load for this step instead of step().
  Power recharge_step(Power server_power, Power recharge_power, Duration dt);

  [[nodiscard]] CircuitBreaker& breaker() noexcept { return breaker_; }
  [[nodiscard]] const CircuitBreaker& breaker() const noexcept { return breaker_; }
  [[nodiscard]] Battery& ups() noexcept { return ups_; }
  [[nodiscard]] const Battery& ups() const noexcept { return ups_; }

  [[nodiscard]] std::size_t server_count() const noexcept { return params_.server_count; }
  /// Grid power drawn in the most recent step.
  [[nodiscard]] Power last_grid_load() const noexcept { return last_grid_load_; }
  /// UPS power supplied in the most recent step.
  [[nodiscard]] Power last_ups_power() const noexcept { return last_ups_power_; }

  [[nodiscard]] std::string_view name() const noexcept { return name_; }

  /// PowerTopology implementation detail: repoints the breaker and bank
  /// states at external structure-of-arrays slots (copying current values
  /// into them).
  void bind_states(CircuitBreaker::State* breaker_slot,
                   Battery::State* battery_slot) noexcept {
    breaker_.bind_state(breaker_slot);
    ups_.bind_state(battery_slot);
  }

  /// PowerTopology implementation detail: copies all mutable per-step state
  /// from `rep` (used to materialize uniform topologies on demand).
  void copy_dynamic_state_from(const Pdu& rep) noexcept {
    breaker_.restore_state(rep.breaker_.state());
    ups_.restore_state(rep.ups_.state());
    last_grid_load_ = rep.last_grid_load_;
    last_ups_power_ = rep.last_ups_power_;
  }

 private:
  static Battery::Params aggregate(const Battery::Params& per_server,
                                   std::size_t count);

  std::string name_;
  Params params_;
  CircuitBreaker breaker_;
  Battery ups_;
  Power last_grid_load_ = Power::zero();
  Power last_ups_power_ = Power::zero();
};

}  // namespace dcs::power
