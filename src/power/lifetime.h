// Battery wear model for the paper's lifetime-neutrality argument
// (Sections III-B, IV-B, V-D, after Kontorinis et al. [18]):
//  * an LFP battery "can be fully discharged 10 times per month without its
//    lifetime being affected" against its 8-year required service life;
//  * lead-acid batteries have a 4-year required service life;
//  * the Fig. 1 workload's ~200 bursts/month at ~26 % depth-of-discharge
//    have "no impact on UPS lifetime".
//
// Model: a cycle-life curve (cycles-to-failure vs depth of discharge,
// straight on log-log axes like manufacturer datasheets) plus linear damage
// accumulation (Miner's rule). A usage pattern is lifetime-neutral when its
// wear life meets the chemistry's required service life.
#pragma once

#include "util/interpolate.h"
#include "util/units.h"

namespace dcs::power {

enum class Chemistry { kLfp, kLeadAcid };

class BatteryLifetimeModel {
 public:
  explicit BatteryLifetimeModel(Chemistry chemistry);

  /// Cycles to failure at a given depth of discharge (0, 1].
  [[nodiscard]] double cycles_to_failure(double depth_of_discharge) const;

  /// Miner's-rule damage of one discharge event.
  [[nodiscard]] double damage_per_event(double depth_of_discharge) const;

  /// Years until accumulated damage reaches 1 under a steady pattern.
  [[nodiscard]] double wear_years(double events_per_month,
                                  double depth_of_discharge) const;

  /// True when the pattern's wear life covers the required service life
  /// (8 years LFP, 4 years lead-acid, per the paper).
  [[nodiscard]] bool lifetime_neutral(double events_per_month,
                                      double depth_of_discharge) const;

  [[nodiscard]] Duration required_service_life() const;
  [[nodiscard]] Chemistry chemistry() const noexcept { return chemistry_; }

 private:
  Chemistry chemistry_;
  PiecewiseCurve cycle_curve_;
};

}  // namespace dcs::power
