#include "power/meter.h"

#include "util/check.h"

namespace dcs::power {

PowerMeter::PowerMeter(std::string name, bool keep_series)
    : name_(std::move(name)), keep_series_(keep_series) {}

void PowerMeter::sample(Duration time, Power value) {
  stats_.add(value.w());
  if (keep_series_) series_.push_back(time, value.w());
}

Energy PowerMeter::energy() const {
  DCS_REQUIRE(keep_series_, "energy() requires series retention");
  if (series_.size() < 2) return Energy::zero();
  return Energy::joules(series_.integral());
}

const TimeSeries& PowerMeter::series() const {
  DCS_REQUIRE(keep_series_, "series retention disabled for this meter");
  return series_;
}

}  // namespace dcs::power
