#include "power/pdu.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::power {

Battery::Params Pdu::aggregate(const Battery::Params& per_server,
                               std::size_t count) {
  DCS_REQUIRE(count > 0, "PDU needs at least one server");
  Battery::Params bank = per_server;
  const auto n = static_cast<double>(count);
  bank.capacity = per_server.capacity * n;
  bank.max_discharge = per_server.max_discharge * n;
  bank.max_recharge = per_server.max_recharge * n;
  return bank;
}

Pdu::Pdu(std::string name, const Params& params)
    : name_(std::move(name)),
      params_(params),
      breaker_(name_ + "/cb", params.breaker),
      ups_(name_ + "/ups", aggregate(params.battery_per_server, params.server_count)) {}

Power Pdu::step(Power server_power, Power ups_request, Duration dt) {
  DCS_REQUIRE(server_power >= Power::zero(), "server power must be non-negative");
  DCS_REQUIRE(ups_request >= Power::zero(), "ups request must be non-negative");
  const Power want = std::min(ups_request, server_power);
  last_ups_power_ = ups_.discharge(want, dt);
  last_grid_load_ = server_power - last_ups_power_;
  breaker_.apply_load(last_grid_load_, dt);
  return last_grid_load_;
}

Power Pdu::recharge_step(Power server_power, Power recharge_power, Duration dt) {
  DCS_REQUIRE(server_power >= Power::zero(), "server power must be non-negative");
  const Power drawn = ups_.recharge(recharge_power, dt);
  last_ups_power_ = Power::zero();
  last_grid_load_ = server_power + drawn;
  breaker_.apply_load(last_grid_load_, dt);
  return last_grid_load_;
}

}  // namespace dcs::power
