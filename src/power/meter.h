// Power meter: samples a power reading each step and keeps both the running
// statistics and (optionally) the full series — the software analogue of the
// Watts Up meters on the paper's testbed.
#pragma once

#include <string>
#include <string_view>

#include "util/stats.h"
#include "util/time_series.h"
#include "util/units.h"

namespace dcs::power {

class PowerMeter {
 public:
  explicit PowerMeter(std::string name, bool keep_series = true);

  void sample(Duration time, Power value);

  [[nodiscard]] Power mean() const noexcept { return Power::watts(stats_.mean()); }
  [[nodiscard]] Power peak() const noexcept { return Power::watts(stats_.max()); }
  [[nodiscard]] Power minimum() const noexcept { return Power::watts(stats_.min()); }
  [[nodiscard]] std::size_t count() const noexcept { return stats_.count(); }
  /// Energy integral assuming the reading holds until the next sample.
  [[nodiscard]] Energy energy() const;

  [[nodiscard]] const TimeSeries& series() const;
  [[nodiscard]] std::string_view name() const noexcept { return name_; }

 private:
  std::string name_;
  bool keep_series_;
  RunningStats stats_;
  TimeSeries series_;
};

}  // namespace dcs::power
