#include "power/trip_curve.h"

#include <cmath>

#include "util/check.h"

namespace dcs::power {

TripCurve::TripCurve(const TripCurveParams& params) : params_(params) {
  DCS_REQUIRE(params_.no_trip_ratio >= 1.0, "no-trip ratio below rating");
  DCS_REQUIRE(params_.magnetic_ratio > params_.no_trip_ratio,
              "magnetic threshold must exceed no-trip ratio");
  DCS_REQUIRE(params_.thermal_coeff_s > 0.0, "thermal coefficient must be positive");
  DCS_REQUIRE(params_.magnetic_trip_time > Duration::zero(),
              "magnetic trip time must be positive");
}

Duration TripCurve::time_to_trip(double load_ratio) const {
  DCS_REQUIRE(load_ratio >= 0.0, "load ratio must be non-negative");
  // Relative tolerance so a load computed as rated * no_trip_ratio compares
  // as not-tripping even when the round trip through watts picks up an ulp
  // (the controller pins the load exactly at this boundary for long spells).
  if (load_ratio <= params_.no_trip_ratio * (1.0 + 1e-9)) {
    return Duration::infinity();
  }
  if (load_ratio >= params_.magnetic_ratio) return params_.magnetic_trip_time;
  const double overload = load_ratio - 1.0;
  const Duration thermal =
      Duration::seconds(params_.thermal_coeff_s / (overload * overload));
  // The thermal element cannot act faster than the magnetic element.
  return thermal < params_.magnetic_trip_time ? params_.magnetic_trip_time
                                              : thermal;
}

double TripCurve::max_ratio_for(Duration hold) const {
  DCS_REQUIRE(hold >= Duration::zero(), "hold time must be non-negative");
  if (hold.is_infinite()) return params_.no_trip_ratio;
  if (hold <= params_.magnetic_trip_time) {
    // Anything below the magnetic threshold survives at least one cycle.
    return params_.magnetic_ratio;
  }
  // Invert t = C / (r-1)^2  =>  r = 1 + sqrt(C / t).
  const double r = 1.0 + std::sqrt(params_.thermal_coeff_s / hold.sec());
  if (r <= params_.no_trip_ratio) return params_.no_trip_ratio;
  if (r >= params_.magnetic_ratio) return params_.magnetic_ratio;
  return r;
}

}  // namespace dcs::power
