#include "power/battery.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::power {

Battery::Battery(std::string name, const Params& params)
    : name_(std::move(name)),
      params_(params),
      capacity_(params.capacity.at_volts(params.bus_voltage)) {
  own_.stored = capacity_;
  DCS_REQUIRE(params_.capacity > Charge::zero(), "capacity must be positive");
  DCS_REQUIRE(params_.bus_voltage > 0.0, "bus voltage must be positive");
  DCS_REQUIRE(params_.max_discharge > Power::zero(), "max discharge must be positive");
  DCS_REQUIRE(params_.max_recharge >= Power::zero(), "max recharge must be non-negative");
  DCS_REQUIRE(params_.recharge_efficiency > 0.0 && params_.recharge_efficiency <= 1.0,
              "recharge efficiency in (0, 1]");
  DCS_REQUIRE(params_.reserve_floor >= 0.0 && params_.reserve_floor < 1.0,
              "reserve floor in [0, 1)");
}

Battery::Battery(const Battery& other)
    : name_(other.name_),
      params_(other.params_),
      capacity_(other.capacity_),
      own_(*other.s_) {}

Battery& Battery::operator=(const Battery& other) {
  if (this != &other) {
    name_ = other.name_;
    params_ = other.params_;
    capacity_ = other.capacity_;
    *s_ = *other.s_;
  }
  return *this;
}

Battery::Battery(Battery&& other) noexcept
    : name_(std::move(other.name_)),
      params_(other.params_),
      capacity_(other.capacity_),
      own_(*other.s_) {}

Battery& Battery::operator=(Battery&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    params_ = other.params_;
    capacity_ = other.capacity_;
    *s_ = *other.s_;
  }
  return *this;
}

Energy Battery::available() const noexcept {
  const Energy floor = effective_capacity() * params_.reserve_floor;
  const Energy above = s_->stored > floor ? s_->stored - floor : Energy::zero();
  return above * s_->availability;
}

double Battery::soc() const noexcept { return s_->stored / capacity_; }

Power Battery::discharge(Power power, Duration dt) {
  DCS_REQUIRE(power >= Power::zero(), "discharge power must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  const Power requested = std::min(power, max_discharge());
  const Energy want = requested * dt;
  const Energy give = std::min(want, available());
  if (give <= Energy::zero()) {
    s_->discharging = false;
    return Power::zero();
  }
  if (!s_->discharging) {
    ++s_->events;
    s_->discharging = true;
  }
  s_->stored -= give;
  s_->total_discharged += give;
  return give / dt;
}

Power Battery::recharge(Power power, Duration dt) {
  DCS_REQUIRE(power >= Power::zero(), "recharge power must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  s_->discharging = false;
  const Power offered = std::min(power, params_.max_recharge * s_->availability);
  const Energy room = effective_capacity() - s_->stored;
  const Energy accept = std::min(offered * dt * params_.recharge_efficiency, room);
  if (accept <= Energy::zero()) return Power::zero();
  s_->stored += accept;
  // Grid power drawn includes conversion losses.
  return accept / params_.recharge_efficiency / dt;
}

double Battery::equivalent_full_cycles() const noexcept {
  return s_->total_discharged / capacity_;
}

void Battery::set_fault(double availability, double capacity_factor) noexcept {
  s_->availability = availability;
  s_->capacity_factor = capacity_factor;
  // Faded capacity loses the charge above it immediately; the charge does
  // not reappear when the fault clears (it must be recharged).
  s_->stored = std::min(s_->stored, effective_capacity());
}

}  // namespace dcs::power
