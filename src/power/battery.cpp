#include "power/battery.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::power {

Battery::Battery(std::string name, const Params& params)
    : name_(std::move(name)),
      params_(params),
      capacity_(params.capacity.at_volts(params.bus_voltage)),
      stored_(capacity_) {
  DCS_REQUIRE(params_.capacity > Charge::zero(), "capacity must be positive");
  DCS_REQUIRE(params_.bus_voltage > 0.0, "bus voltage must be positive");
  DCS_REQUIRE(params_.max_discharge > Power::zero(), "max discharge must be positive");
  DCS_REQUIRE(params_.max_recharge >= Power::zero(), "max recharge must be non-negative");
  DCS_REQUIRE(params_.recharge_efficiency > 0.0 && params_.recharge_efficiency <= 1.0,
              "recharge efficiency in (0, 1]");
  DCS_REQUIRE(params_.reserve_floor >= 0.0 && params_.reserve_floor < 1.0,
              "reserve floor in [0, 1)");
}

Energy Battery::available() const noexcept {
  const Energy floor = effective_capacity() * params_.reserve_floor;
  const Energy above = stored_ > floor ? stored_ - floor : Energy::zero();
  return above * availability_;
}

double Battery::soc() const noexcept { return stored_ / capacity_; }

Power Battery::discharge(Power power, Duration dt) {
  DCS_REQUIRE(power >= Power::zero(), "discharge power must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  const Power requested = std::min(power, max_discharge());
  const Energy want = requested * dt;
  const Energy give = std::min(want, available());
  if (give <= Energy::zero()) {
    discharging_ = false;
    return Power::zero();
  }
  if (!discharging_) {
    ++events_;
    discharging_ = true;
  }
  stored_ -= give;
  total_discharged_ += give;
  return give / dt;
}

Power Battery::recharge(Power power, Duration dt) {
  DCS_REQUIRE(power >= Power::zero(), "recharge power must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  discharging_ = false;
  const Power offered = std::min(power, params_.max_recharge * availability_);
  const Energy room = effective_capacity() - stored_;
  const Energy accept = std::min(offered * dt * params_.recharge_efficiency, room);
  if (accept <= Energy::zero()) return Power::zero();
  stored_ += accept;
  // Grid power drawn includes conversion losses.
  return accept / params_.recharge_efficiency / dt;
}

double Battery::equivalent_full_cycles() const noexcept {
  return total_discharged_ / capacity_;
}

void Battery::set_fault(double availability, double capacity_factor) noexcept {
  availability_ = availability;
  capacity_factor_ = capacity_factor;
  // Faded capacity loses the charge above it immediately; the charge does
  // not reappear when the fault clears (it must be recharged).
  stored_ = std::min(stored_, effective_capacity());
}

}  // namespace dcs::power
