// Backup diesel generator (Section III-B background: the UPS bridges the
// tens of seconds a generator needs to start). Used by the supply-disturbance
// experiments: when the utility feed derates, the controller aborts the
// sprint, requests a generator start, and the UPS carries the gap until the
// generator is online.
#pragma once

#include <string>
#include <string_view>

#include "util/units.h"

namespace dcs::power {

class DieselGenerator {
 public:
  struct Params {
    Power rated;
    /// Crank-to-synchronized delay (typically tens of seconds).
    Duration start_delay = Duration::seconds(45);
  };

  DieselGenerator(std::string name, const Params& params);

  /// Begins the start sequence (idempotent while starting or running).
  void request_start() noexcept;
  /// Shuts the generator down immediately.
  void stop() noexcept;
  /// Advances time; completes the start sequence when due.
  void tick(Duration dt) noexcept;
  /// Returns the generator to a fresh stopped state (clears any injected
  /// fault too). DataCenter::run() calls this at the start of every run so
  /// back-to-back experiments are independent.
  void reset() noexcept;

  /// Fault-injection hook (faults::FaultInjector): while `start_inhibited`
  /// the start sequence never completes; `extra_delay` lengthens it
  /// (a slow crank / failed synchronization retry). Neutral by default.
  void set_fault(bool start_inhibited, Duration extra_delay) noexcept;

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] bool starting() const noexcept { return starting_; }
  /// Power available right now (rated when running, zero otherwise).
  [[nodiscard]] Power available() const noexcept;
  [[nodiscard]] Power rated() const noexcept { return params_.rated; }
  [[nodiscard]] std::string_view name() const noexcept { return name_; }

 private:
  std::string name_;
  Params params_;
  bool starting_ = false;
  bool running_ = false;
  Duration start_elapsed_ = Duration::zero();
  bool start_inhibited_ = false;               // injected start failure
  Duration extra_delay_ = Duration::zero();    // injected start delay
};

}  // namespace dcs::power
