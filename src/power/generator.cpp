#include "power/generator.h"

#include "util/check.h"

namespace dcs::power {

DieselGenerator::DieselGenerator(std::string name, const Params& params)
    : name_(std::move(name)), params_(params) {
  DCS_REQUIRE(params_.rated > Power::zero(), "generator rating must be positive");
  DCS_REQUIRE(params_.start_delay > Duration::zero(),
              "start delay must be positive");
}

void DieselGenerator::request_start() noexcept {
  if (running_ || starting_) return;
  starting_ = true;
  start_elapsed_ = Duration::zero();
}

void DieselGenerator::stop() noexcept {
  running_ = false;
  starting_ = false;
  start_elapsed_ = Duration::zero();
}

void DieselGenerator::tick(Duration dt) noexcept {
  if (!starting_) return;
  start_elapsed_ += dt;
  if (start_inhibited_) return;  // the start sequence cranks but never syncs
  if (start_elapsed_ >= params_.start_delay + extra_delay_) {
    starting_ = false;
    running_ = true;
  }
}

void DieselGenerator::reset() noexcept {
  stop();
  start_inhibited_ = false;
  extra_delay_ = Duration::zero();
}

void DieselGenerator::set_fault(bool start_inhibited,
                                Duration extra_delay) noexcept {
  start_inhibited_ = start_inhibited;
  extra_delay_ = extra_delay;
}

Power DieselGenerator::available() const noexcept {
  return running_ ? params_.rated : Power::zero();
}

}  // namespace dcs::power
