// Server-level UPS battery (distributed UPS architecture, after
// Kontorinis et al. [18], which the paper adopts).
//
// The default 0.5 Ah battery on an ~11 V server bus stores 5.5 Wh and
// sustains a 55 W peak-normal server for about 6 minutes, matching the
// paper's Section VI-A configuration. Cycle accounting tracks equivalent
// full cycles and discharge events so experiments can check the paper's
// lifetime-neutrality argument (<= 10 full discharges per month for LFP).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/units.h"

namespace dcs::power {

class Battery {
 public:
  struct Params {
    Charge capacity = Charge::amp_hours(0.5);
    double bus_voltage = 11.0;
    /// Maximum discharge power (inverter / C-rate limit).
    Power max_discharge = Power::watts(150.0);
    /// Maximum recharge power (~0.5C for the default LFP cell, so a full
    /// recharge takes a couple of hours — consecutive bursts within one
    /// trace window see an essentially un-recharged battery).
    Power max_recharge = Power::watts(2.75);
    /// Round-trip losses are charged on recharge.
    double recharge_efficiency = 0.9;
    /// Fraction of capacity below which the battery refuses to discharge
    /// (protects against deep discharge; 0 allows full discharge as the
    /// paper assumes for LFP).
    double reserve_floor = 0.0;
  };

  /// Mutable per-battery state, separated from the immutable parameters so a
  /// topology can keep the states of many identical banks in one contiguous
  /// array (structure-of-arrays). A battery normally owns its state;
  /// bind_state() repoints it at an external slot.
  struct State {
    Energy stored;
    Energy total_discharged;
    double availability = 1.0;     ///< injected bank outage (1 = all online)
    double capacity_factor = 1.0;  ///< injected capacity fade (1 = nominal)
    std::size_t events = 0;
    bool discharging = false;
  };

  Battery(std::string name, const Params& params);

  /// Copies keep the source's current state but own it themselves.
  Battery(const Battery& other);
  Battery& operator=(const Battery& other);
  Battery(Battery&& other) noexcept;
  Battery& operator=(Battery&& other) noexcept;

  /// Repoints this battery's state at `slot` (copying the current state into
  /// it). The caller guarantees `slot` outlives the battery or is replaced
  /// by another bind_state() call.
  void bind_state(State* slot) noexcept {
    *slot = *s_;
    s_ = slot;
  }
  [[nodiscard]] const State& state() const noexcept { return *s_; }
  void restore_state(const State& s) noexcept { *s_ = s; }

  /// Energy the battery can still deliver (above the reserve floor).
  [[nodiscard]] Energy available() const noexcept;
  /// Stored energy (including any reserve floor).
  [[nodiscard]] Energy stored() const noexcept { return s_->stored; }
  [[nodiscard]] Energy capacity() const noexcept { return capacity_; }
  /// State of charge in [0, 1].
  [[nodiscard]] double soc() const noexcept;

  /// Requests `power` for `dt`; returns the power actually supplied
  /// (limited by the inverter rating and the stored energy). Partial-tick
  /// exhaustion delivers the energy-limited average power for the tick.
  Power discharge(Power power, Duration dt);

  /// Accepts up to `power` for `dt` at the recharge efficiency; returns the
  /// grid power actually drawn.
  Power recharge(Power power, Duration dt);

  /// Equivalent full cycles = total discharged energy / capacity.
  [[nodiscard]] double equivalent_full_cycles() const noexcept;
  /// Number of discharge *events*: transitions from not-discharging to
  /// discharging with at least `deep_fraction` of capacity drawn before the
  /// next recharge-or-idle period.
  [[nodiscard]] std::size_t discharge_events() const noexcept { return s_->events; }
  [[nodiscard]] Energy total_discharged() const noexcept {
    return s_->total_discharged;
  }

  /// Discharge power limit after any injected bank outage.
  [[nodiscard]] Power max_discharge() const noexcept {
    return params_.max_discharge * s_->availability;
  }
  [[nodiscard]] std::string_view name() const noexcept { return name_; }

  /// Fault-injection hook (faults::FaultInjector): `availability` is the
  /// fraction of the bank still online (scales power limits and accessible
  /// energy); `capacity_factor` models capacity fade (stored energy above
  /// the faded capacity is lost and does not come back until recharged).
  /// Both are neutral by default.
  void set_fault(double availability, double capacity_factor) noexcept;
  /// Capacity after any injected fade.
  [[nodiscard]] Energy effective_capacity() const noexcept {
    return capacity_ * s_->capacity_factor;
  }

 private:
  std::string name_;
  Params params_;
  Energy capacity_;
  State own_{};
  State* s_ = &own_;
};

}  // namespace dcs::power
