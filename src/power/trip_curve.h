// Inverse-time trip curve of a molded-case circuit breaker (UL489 class,
// Bulletin 1489-A style, paper Fig. 2).
//
// The long-delay (thermal) region is modeled as t = C / (r - 1)^2 where r is
// the load ratio (load / rated). C = 21.6 s reproduces the two operating
// points quoted in the paper: 60 % overload trips in 1 minute, 30 % overload
// trips in 4 minutes. Below `no_trip_ratio` the breaker never trips (UL489
// requires carrying 100 % of rating indefinitely); at or above
// `magnetic_ratio` the instantaneous (magnetic / short-circuit) element
// opens within one AC cycle.
#pragma once

#include "util/units.h"

namespace dcs::power {

struct TripCurveParams {
  /// Load ratio at or below which the breaker never trips.
  double no_trip_ratio = 1.05;
  /// Thermal-region coefficient C in t = C / (r-1)^2, seconds.
  double thermal_coeff_s = 21.6;
  /// Load ratio at or above which the magnetic element trips instantly.
  double magnetic_ratio = 5.0;
  /// Trip delay in the magnetic region (about one 60 Hz cycle).
  Duration magnetic_trip_time = Duration::seconds(0.016);
};

class TripCurve {
 public:
  TripCurve() : TripCurve(TripCurveParams{}) {}
  explicit TripCurve(const TripCurveParams& params);

  /// Time the breaker sustains a constant load ratio before tripping.
  /// Returns Duration::infinity() at or below the no-trip ratio.
  [[nodiscard]] Duration time_to_trip(double load_ratio) const;

  /// Inverse lookup: the largest load ratio that the thermal element
  /// sustains for at least `hold`. Never exceeds the magnetic threshold.
  /// An infinite (or non-positive... see below) hold returns the no-trip
  /// ratio; hold <= magnetic trip time returns just under magnetic_ratio.
  [[nodiscard]] double max_ratio_for(Duration hold) const;

  [[nodiscard]] const TripCurveParams& params() const noexcept { return params_; }

 private:
  TripCurveParams params_;
};

}  // namespace dcs::power
