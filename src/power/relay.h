// AC-switch-controlled relay from the hardware testbed (Section VI-B): the
// controller commands it open/closed; the contact state follows after a
// short switching delay (< 10 ms on the real hardware, well under the
// server's >30 ms ride-through, so the switch never disturbs the server).
#pragma once

#include "util/units.h"

namespace dcs::power {

class Relay {
 public:
  explicit Relay(Duration switch_delay = Duration::seconds(0.010),
                 bool initially_closed = false);

  /// Commands the target contact state; takes effect after the delay.
  void command(bool closed) noexcept;

  /// Advances time; settles the contact when the delay has elapsed.
  void tick(Duration dt) noexcept;

  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] bool switching() const noexcept { return pending_; }

 private:
  Duration switch_delay_;
  bool closed_;
  bool pending_ = false;
  bool target_ = false;
  Duration elapsed_ = Duration::zero();
};

}  // namespace dcs::power
