// Circuit breaker with a thermal-accumulator trip model.
//
// A bimetal trip element integrates heating: under a time-varying load the
// breaker trips when the accumulated "trip fraction" sum(dt / t_trip(r(t)))
// reaches 1. For a constant load this reduces exactly to the published trip
// curve; for the controller it yields the quantity the paper monitors — the
// *remaining time before the CB trips if the current overload continues*.
// When the load drops back to or below rating the element cools with an
// exponential time constant.
#pragma once

#include <string>
#include <string_view>

#include "power/trip_curve.h"
#include "util/units.h"

namespace dcs::power {

class CircuitBreaker {
 public:
  struct Params {
    Power rated;
    TripCurve curve{};
    /// Exponential cooling time constant of the thermal element when the
    /// load is at or below the no-trip ratio.
    Duration cooling_tau = Duration::minutes(10);
  };

  /// Mutable per-breaker state, separated from the immutable parameters so a
  /// topology can keep the states of many identical breakers in one
  /// contiguous array (structure-of-arrays) and update them in tight loops.
  /// A breaker normally owns its state; bind_state() repoints it at an
  /// external slot.
  struct State {
    double heat = 0.0;            ///< trip fraction in [0, 1]
    double rating_factor = 1.0;   ///< injected derating (1 = nominal)
    double trip_bias = 0.0;       ///< injected trip-threshold bias (0 = nominal)
    bool tripped = false;
  };

  CircuitBreaker(std::string name, const Params& params);

  /// Copies keep the source's current state but own it themselves (a copied
  /// breaker never aliases the source's external state slot).
  CircuitBreaker(const CircuitBreaker& other);
  CircuitBreaker& operator=(const CircuitBreaker& other);
  CircuitBreaker(CircuitBreaker&& other) noexcept;
  CircuitBreaker& operator=(CircuitBreaker&& other) noexcept;

  /// Repoints this breaker's state at `slot` (copying the current state into
  /// it). The caller guarantees `slot` outlives the breaker or is replaced
  /// by another bind_state() call.
  void bind_state(State* slot) noexcept {
    *slot = *s_;
    s_ = slot;
  }
  [[nodiscard]] const State& state() const noexcept { return *s_; }
  void restore_state(const State& s) noexcept { *s_ = s; }

  /// Advances the thermal state under `load` for `dt`. Once the trip
  /// fraction reaches 1 the breaker opens and stays open until reset().
  void apply_load(Power load, Duration dt);

  [[nodiscard]] bool tripped() const noexcept { return s_->tripped; }
  /// Trip fraction in [0, 1]; 1 means tripped.
  [[nodiscard]] double thermal_state() const noexcept { return s_->heat; }

  [[nodiscard]] double load_ratio(Power load) const;

  /// Time until trip if `load` were held constant from the current thermal
  /// state. Infinite when the load cannot trip the breaker.
  [[nodiscard]] Duration time_to_trip_at(Power load) const;

  /// Cheap screen for `!time_to_trip_at(load).is_infinite()`: false exactly
  /// when the load sits at or below the no-trip boundary of a closed
  /// breaker. Inline so per-tick callers (trace edge detection) can skip
  /// the full curve lookup during the long spells the governor pins the
  /// load at this boundary.
  [[nodiscard]] bool can_trip_at(Power load) const noexcept {
    return s_->tripped ||
           load.w() > effective_rated().w() *
                          params_.curve.params().no_trip_ratio * (1.0 + 1e-9);
  }

  /// Inline `time_to_trip_at(load) < horizon` for loads can_trip_at()
  /// admits and horizons above the magnetic trip delay (where the thermal
  /// floor cannot flip the comparison): the thermal-region margin
  /// C * headroom / (r-1)^2 compared against the horizon with
  /// multiplications only — no division, no curve call. Exhausted
  /// headroom and tripped states are unconditionally within the horizon,
  /// matching the full computation.
  [[nodiscard]] bool trips_within(Power load, Duration horizon) const noexcept {
    if (s_->tripped) return true;
    const double headroom = 1.0 - s_->trip_bias - s_->heat;
    if (headroom <= 0.0) return true;
    const double rated_w = effective_rated().w();
    const double over_w = load.w() - rated_w;
    // margin = C * headroom / o^2 with o = over_w / rated_w, so
    // margin < horizon  <=>  over_w^2 * horizon > C * headroom * rated_w^2.
    return over_w * over_w * horizon.sec() >
           params_.curve.params().thermal_coeff_s * headroom * rated_w *
               rated_w;
  }

  /// Largest load sustainable for at least `hold` from the current thermal
  /// state (the controller's overload upper bound). Never below rated power:
  /// rated load is always sustainable.
  [[nodiscard]] Power max_load_for(Duration hold) const;

  /// Closes the breaker again and clears the thermal state (maintenance
  /// action; in the uncontrolled-sprinting experiment a trip is terminal).
  void reset() noexcept;

  /// Fault-injection hook (faults::FaultInjector): `rating_factor` derates
  /// the effective rated power (aging, loose lugs); `trip_bias` lowers the
  /// trip threshold to 1 - bias (a marginal element that nuisance-trips
  /// early). Both are neutral by default and every query above reflects
  /// them, so the governor re-plans against the degraded element.
  void set_fault(double rating_factor, double trip_bias) noexcept;
  /// Rated power after any injected derating.
  [[nodiscard]] Power effective_rated() const noexcept {
    return params_.rated * s_->rating_factor;
  }

  [[nodiscard]] Power rated() const noexcept { return params_.rated; }
  [[nodiscard]] const TripCurve& curve() const noexcept { return params_.curve; }
  [[nodiscard]] std::string_view name() const noexcept { return name_; }

 private:
  std::string name_;
  Params params_;
  State own_{};
  State* s_ = &own_;
  // exp(-(dt / cooling_tau)) keyed on the dt it was computed for: dt is the
  // fixed engine step within a run, so the cooling decay costs one exp per
  // run instead of one per tick. Bit-identical to recomputing.
  double decay_cache_dt_s_ = -1.0;
  double decay_cache_ = 1.0;
};

}  // namespace dcs::power
