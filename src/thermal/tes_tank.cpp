#include "thermal/tes_tank.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::thermal {

TesTank::TesTank(std::string name, const Params& params)
    : name_(std::move(name)), params_(params), stored_(params.capacity) {
  DCS_REQUIRE(params_.capacity > Energy::zero(), "TES capacity must be positive");
  DCS_REQUIRE(params_.max_discharge_rate > Power::zero(),
              "TES discharge rate must be positive");
  DCS_REQUIRE(params_.max_recharge_rate > Power::zero(),
              "TES recharge rate must be positive");
}

Power TesTank::discharge(Power heat, Duration dt) {
  DCS_REQUIRE(heat >= Power::zero(), "heat must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  const Power rate = std::min(heat, max_discharge_rate());
  const Energy want = rate * dt;
  const Energy give = std::min(want, stored_);
  if (give <= Energy::zero()) return Power::zero();
  stored_ -= give;
  total_discharged_ += give;
  return give / dt;
}

Power TesTank::recharge(Power rate, Duration dt) {
  DCS_REQUIRE(rate >= Power::zero(), "rate must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  const Power offered = std::min(rate, params_.max_recharge_rate);
  const Energy room = params_.capacity - stored_;
  const Energy accept = std::min(offered * dt, room);
  if (accept <= Energy::zero()) return Power::zero();
  stored_ += accept;
  return accept / dt;
}

double TesTank::state_of_charge() const noexcept {
  return stored_ / params_.capacity;
}

}  // namespace dcs::thermal
