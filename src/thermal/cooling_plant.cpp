#include "thermal/cooling_plant.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::thermal {

CoolingPlant::CoolingPlant(const Params& params) : params_(params) {
  DCS_REQUIRE(params_.pue > 1.0, "PUE must exceed 1");
  DCS_REQUIRE(params_.chiller_fraction > 0.0 && params_.chiller_fraction < 1.0,
              "chiller fraction in (0, 1)");
  DCS_REQUIRE(params_.nominal_it_load > Power::zero(),
              "nominal IT load must be positive");
}

Power CoolingPlant::electrical_for(Power it_power) const noexcept {
  return it_power * (params_.pue - 1.0);
}

Power CoolingPlant::nominal_electrical() const noexcept {
  return electrical_for(params_.nominal_it_load);
}

Power CoolingPlant::thermal_capacity() const noexcept {
  // The plant is provisioned to remove the nominal IT load's heat; an
  // injected chiller fault removes part of that capacity.
  return params_.nominal_it_load * capacity_factor_;
}

double CoolingPlant::chiller_elec_per_heat() const noexcept {
  return (params_.pue - 1.0) * params_.chiller_fraction * (1.0 + cop_penalty_);
}

Power CoolingPlant::chiller_electrical(Power chiller_heat) const noexcept {
  return chiller_heat * chiller_elec_per_heat();
}

Power CoolingPlant::electrical_projection(Power it_power, bool tes_enabled,
                                          Power relief_elec) const noexcept {
  const Power aux = nominal_electrical() * (1.0 - params_.chiller_fraction);
  const Power chiller_heat = std::min(it_power, thermal_capacity());
  Power chiller = chiller_electrical(chiller_heat);
  if (tes_enabled && params_.tes != nullptr) {
    chiller -= std::min(relief_elec, chiller);
  }
  return aux + chiller;
}

CoolingStep CoolingPlant::step(Power it_power, bool tes_enabled,
                               Power relief_elec, Duration dt) {
  DCS_REQUIRE(it_power >= Power::zero(), "IT power must be non-negative");
  DCS_REQUIRE(relief_elec >= Power::zero(), "relief must be non-negative");
  CoolingStep out{};
  const Power aux = nominal_electrical() * (1.0 - params_.chiller_fraction);
  // The chiller holds its nominal operating point during a sprint (the
  // paper does not raise chiller power in phases 1-2), so its absorption
  // caps at the nominal thermal capacity.
  const Power chiller_heat = std::min(it_power, thermal_capacity());

  if (tes_enabled && params_.tes != nullptr && !params_.tes->empty()) {
    const Power excess = it_power - chiller_heat;  // heat the chiller cannot take
    const Power relief_heat =
        std::min(relief_elec, chiller_electrical(chiller_heat)) /
        chiller_elec_per_heat();
    out.tes_heat = params_.tes->discharge(excess + relief_heat, dt);
    // The tank covers the excess first; only what remains displaces the
    // chiller (shorting the relief just loses breaker slack, while shorting
    // the excess would overheat the room).
    const Power excess_covered = std::min(out.tes_heat, excess);
    const Power relief_covered = out.tes_heat - excess_covered;
    const Power chiller_out = chiller_heat - relief_covered;
    out.relief = chiller_electrical(relief_covered);
    out.electrical = aux + chiller_electrical(chiller_out);
    out.heat_absorbed = chiller_out + out.tes_heat;
    out.tes_active = out.tes_heat > Power::zero();
    return out;
  }

  out.heat_absorbed = chiller_heat;
  out.electrical = aux + chiller_electrical(chiller_heat);
  return out;
}

CoolingStep CoolingPlant::recharge_tes_step(Power it_power, Power rate,
                                            Duration dt) {
  DCS_REQUIRE(rate >= Power::zero(), "recharge rate must be non-negative");
  CoolingStep out = step(it_power, /*tes_enabled=*/false, Power::zero(), dt);
  if (params_.tes == nullptr) return out;
  // Surplus chiller output charges the tank; the chiller draws extra
  // electrical power proportional to the extra heat moved.
  const Power spare_thermal = thermal_capacity() > it_power
                                  ? thermal_capacity() - it_power
                                  : Power::zero();
  const Power stored = params_.tes->recharge(std::min(rate, spare_thermal), dt);
  out.electrical += chiller_electrical(stored);
  return out;
}

}  // namespace dcs::thermal
