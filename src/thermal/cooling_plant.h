// Chiller-based CRAC cooling plant (paper Section III-C).
//
// Electrical model: at steady state the plant draws (PUE - 1) x P_it
// (PUE = 1.53 default, servers + cooling only, after Pelley et al. [30]).
// Of that, the chiller accounts for `chiller_fraction` (2/3 per Iyengar &
// Schmidt [16]); the rest runs pumps, valves and CRAC fans and cannot be
// displaced by the TES.
//
// Thermal model: the chiller's heat-absorption capacity is sized for the
// peak-normal IT load. During a sprint the paper deliberately does NOT
// raise chiller power (there is no spare power for it), so without the TES
// the excess heat accumulates in the room. In phase 3 the TES serves two
// roles (Section V-C, Fig. 4a): it absorbs the heat the chiller cannot
// ("enhance cooling"), and it can additionally displace chiller output to
// cut chiller power and relieve the DC-level breaker ("reduce the chiller
// power to decrease the overload of DC-level CBs") — callers request that
// relief explicitly, up to 2/3 of the cooling power when the chiller is
// fully displaced.
#pragma once

#include "thermal/tes_tank.h"
#include "util/units.h"

namespace dcs::thermal {

/// Result of one cooling-plant step.
struct CoolingStep {
  Power electrical;    ///< grid power drawn by the plant this step
  Power heat_absorbed; ///< heat removed from the room this step
  Power tes_heat;      ///< portion of heat_absorbed carried by the TES
  Power relief;        ///< chiller electrical power displaced by the TES
  bool tes_active = false;
};

class CoolingPlant {
 public:
  struct Params {
    /// Power usage effectiveness counting servers + cooling only.
    double pue = 1.53;
    /// Fraction of cooling power consumed by the chiller (displaceable by
    /// the TES); the remainder is pumps/valves/CRAC fans.
    double chiller_fraction = 2.0 / 3.0;
    /// IT load the chiller's thermal capacity is provisioned for.
    Power nominal_it_load;
    /// Optional TES tank; nullptr means the plant has no TES.
    TesTank* tes = nullptr;
  };

  explicit CoolingPlant(const Params& params);

  /// Advances one step. `it_power` is the current total server power (heat
  /// generation rate). When `tes_enabled`, the tank absorbs the heat beyond
  /// the chiller's capacity and additionally displaces up to `relief_elec`
  /// of chiller electrical power (clamped to what the chiller is drawing
  /// and to the tank's remaining charge).
  CoolingStep step(Power it_power, bool tes_enabled, Power relief_elec,
                   Duration dt);

  /// Recharges the TES with surplus chiller output at up to `rate` (thermal);
  /// the extra electrical power is charged at the chiller's efficiency.
  CoolingStep recharge_tes_step(Power it_power, Power rate, Duration dt);

  /// Steady-state electrical draw for a given IT load (no TES involvement).
  [[nodiscard]] Power electrical_for(Power it_power) const noexcept;

  /// What step() would draw electrically, without mutating state. Assumes
  /// the tank (if enabled) still has charge.
  [[nodiscard]] Power electrical_projection(Power it_power, bool tes_enabled,
                                            Power relief_elec) const noexcept;

  /// Electrical power drawn per watt of heat moved by the chiller:
  /// (PUE - 1) x chiller_fraction.
  [[nodiscard]] double chiller_elec_per_heat() const noexcept;

  /// Cooling electrical power corresponding to the nominal IT load.
  [[nodiscard]] Power nominal_electrical() const noexcept;

  /// Maximum heat the chiller can absorb per unit time.
  [[nodiscard]] Power thermal_capacity() const noexcept;

  /// Chiller electrical draw at a given heat output.
  [[nodiscard]] Power chiller_electrical(Power chiller_heat) const noexcept;

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] bool has_tes() const noexcept { return params_.tes != nullptr; }

  /// Fault-injection hook (faults::FaultInjector): `capacity_factor` scales
  /// the chiller's thermal capacity (partial or total chiller failure);
  /// `cop_penalty` raises the electrical power per watt of heat moved by
  /// (1 + penalty) (a degraded coefficient of performance). Both are
  /// neutral by default; every projection above reflects them, so the
  /// controller re-solves feasibility against the degraded plant.
  void set_fault(double capacity_factor, double cop_penalty) noexcept {
    capacity_factor_ = capacity_factor;
    cop_penalty_ = cop_penalty;
  }
  [[nodiscard]] double capacity_factor() const noexcept {
    return capacity_factor_;
  }

 private:
  Params params_;
  double capacity_factor_ = 1.0;  // injected chiller derating (1 = nominal)
  double cop_penalty_ = 0.0;      // injected COP penalty (0 = nominal)
};

}  // namespace dcs::thermal
