#include "thermal/room_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs::thermal {

RoomModel::RoomModel(const Params& params)
    : params_(params),
      capacitance_(params.calibration_power.w() * params.calibration_time.sec() /
                   params.threshold_rise.c()),
      peak_(params.setpoint) {
  DCS_REQUIRE(params_.calibration_power > Power::zero(),
              "calibration power must be positive");
  DCS_REQUIRE(params_.threshold_rise > Temperature::celsius(0.0),
              "threshold rise must be positive");
  DCS_REQUIRE(params_.calibration_time > Duration::zero(),
              "calibration time must be positive");
  DCS_REQUIRE(params_.recovery_tau > Duration::zero(),
              "recovery tau must be positive");
}

void RoomModel::step(Power generated, Power absorbed, Duration dt) {
  DCS_REQUIRE(generated >= Power::zero(), "generated heat must be non-negative");
  DCS_REQUIRE(absorbed >= Power::zero(), "absorbed heat must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  const Power gap = generated - absorbed;
  if (gap > Power::zero()) {
    rise_ += Temperature::celsius(gap.w() * dt.sec() / capacitance_);
  } else {
    // Overcooling: exponential recovery toward the setpoint. The surplus
    // absorption accelerates recovery but never undershoots the setpoint.
    // The decay factor depends only on dt, which is the fixed engine step on
    // the hot path — memoize the exp for the repeated-dt case.
    if (dt.sec() != decay_cache_dt_s_) {
      decay_cache_ = std::exp(-(dt / params_.recovery_tau));
      decay_cache_dt_s_ = dt.sec();
    }
    const double decay = decay_cache_;
    double r = rise_.c() * decay;
    r += gap.w() * dt.sec() / capacitance_;  // gap is negative here
    rise_ = Temperature::celsius(std::max(0.0, r));
  }
  peak_ = std::max(peak_, temperature());
}

Temperature RoomModel::temperature() const noexcept {
  return params_.setpoint + rise_;
}

bool RoomModel::over_threshold() const noexcept {
  return rise_ > params_.threshold_rise;
}

Duration RoomModel::time_to_threshold(Power gap) const {
  return time_to_threshold_from(rise_, gap);
}

Duration RoomModel::time_to_threshold_from(Temperature rise, Power gap) const {
  if (gap <= Power::zero()) return Duration::infinity();
  const double remaining_c = params_.threshold_rise.c() - rise.c();
  if (remaining_c <= 0.0) return Duration::zero();
  return Duration::seconds(remaining_c * capacitance_ / gap.w());
}

}  // namespace dcs::thermal
