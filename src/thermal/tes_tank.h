// Thermal energy storage (TES) tank: stored cold coolant that can absorb
// data-center heat in place of the chiller (paper Section III-C / Fig. 3).
//
// Capacity follows the paper's Section VI-A setting: the tank can carry the
// cooling load for 12 minutes while the servers draw peak-normal power.
// While discharging, the chiller can be shut down, saving up to 2/3 of the
// cooling power (the remaining 1/3 runs pumps, valves and CRAC fans) [16].
#pragma once

#include <string>
#include <string_view>

#include "util/units.h"

namespace dcs::thermal {

class TesTank {
 public:
  struct Params {
    /// Heat the tank can absorb when full.
    Energy capacity;
    /// Maximum heat-absorption rate (coolant flow limit). Defaults to
    /// "unlimited" relative to data-center loads; the flow path, not the
    /// tank, is usually the binding constraint if set.
    Power max_discharge_rate = Power::megawatts(1e6);
    /// Maximum recharge (chiller surplus) rate.
    Power max_recharge_rate = Power::megawatts(1e6);
  };

  TesTank(std::string name, const Params& params);

  /// Absorbs up to `heat` for `dt`; returns the heat rate actually absorbed.
  Power discharge(Power heat, Duration dt);

  /// Stores surplus chiller output; returns the rate actually stored.
  Power recharge(Power rate, Duration dt);

  [[nodiscard]] Energy stored() const noexcept { return stored_; }
  [[nodiscard]] Energy capacity() const noexcept { return params_.capacity; }
  [[nodiscard]] double state_of_charge() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return stored_ <= Energy::zero(); }
  [[nodiscard]] Energy total_discharged() const noexcept { return total_discharged_; }

  /// Discharge-rate limit after any injected valve fault.
  [[nodiscard]] Power max_discharge_rate() const noexcept {
    return params_.max_discharge_rate * discharge_factor_;
  }

  /// Fault-injection hook (faults::FaultInjector): scales the discharge
  /// rate; 0 models a stuck-closed valve (the stored charge is intact but
  /// unreachable until the fault clears). Neutral by default.
  void set_fault(double discharge_factor) noexcept {
    discharge_factor_ = discharge_factor;
  }

  [[nodiscard]] std::string_view name() const noexcept { return name_; }

 private:
  std::string name_;
  Params params_;
  Energy stored_;
  Energy total_discharged_ = Energy::zero();
  double discharge_factor_ = 1.0;  // injected valve fault (1 = nominal)
};

}  // namespace dcs::thermal
