// Lumped-capacitance room thermal model calibrated to the Schneider
// Electric Data Center Science Center CFD study [22] the paper relies on:
// after a chiller failure the room temperature rises with the gap between
// heat generation (server power) and heat absorption; if the full
// peak-normal heat gap persists, the critical threshold is reached in about
// 10 minutes, and resuming cooling at minute 5 keeps the room below the
// threshold for good.
//
// Calibration: with default threshold_rise = 10 C above setpoint, the
// capacitance is chosen as C = P_peak_normal * 600 s / 10 C, so a gap equal
// to P_peak_normal raises the room 1 C per minute — reproducing both CFD
// properties above.
#pragma once

#include "util/units.h"

namespace dcs::thermal {

class RoomModel {
 public:
  struct Params {
    /// Cold-aisle setpoint.
    Temperature setpoint = Temperature::celsius(25.0);
    /// Rise above setpoint at which IT inlets become critical (ASHRAE
    /// allowable envelope edge).
    Temperature threshold_rise = Temperature::celsius(10.0);
    /// Peak-normal server power used for calibration.
    Power calibration_power;
    /// Time for the calibration gap to reach the threshold (CFD: ~10 min).
    Duration calibration_time = Duration::minutes(10);
    /// Time constant for recovery toward the setpoint when absorption
    /// exceeds generation.
    Duration recovery_tau = Duration::minutes(5);
  };

  explicit RoomModel(const Params& params);

  /// Advances the room state: `generated` is server heat, `absorbed` is the
  /// plant's heat removal this step.
  void step(Power generated, Power absorbed, Duration dt);

  [[nodiscard]] Temperature temperature() const noexcept;
  [[nodiscard]] Temperature rise() const noexcept { return rise_; }
  [[nodiscard]] bool over_threshold() const noexcept;
  /// Highest temperature seen so far.
  [[nodiscard]] Temperature peak_temperature() const noexcept { return peak_; }

  /// Time until the threshold is hit if the given constant heat gap
  /// persists; infinite for non-positive gaps.
  [[nodiscard]] Duration time_to_threshold(Power gap) const;
  /// Same projection from an arbitrary rise (the controller passes its
  /// *measured* rise here, which a faulted sensor may have corrupted).
  [[nodiscard]] Duration time_to_threshold_from(Temperature rise,
                                                Power gap) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Effective thermal capacitance in joules per degree C.
  [[nodiscard]] double capacitance_j_per_c() const noexcept { return capacitance_; }

 private:
  Params params_;
  double capacitance_;  // J / C
  Temperature rise_ = Temperature::celsius(0.0);
  Temperature peak_;
  /// Memoized std::exp(-(dt / recovery_tau)) keyed on dt (fixed on the hot
  /// path), so quiescent overcooled ticks avoid the libm call.
  double decay_cache_dt_s_ = -1.0;
  double decay_cache_ = 1.0;
};

}  // namespace dcs::thermal
