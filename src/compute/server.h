// A server: one many-core chip plus non-CPU components (memory, disk, NIC,
// fans) drawing a constant 20 W (the paper's conservative setting).
// Peak-normal power: 20 + 5 + 12 x 2.5 = 55 W.
#pragma once

#include <cstddef>

#include "compute/chip.h"
#include "util/units.h"

namespace dcs::compute {

class Server {
 public:
  struct Params {
    Chip::Params chip{};
    Power non_cpu = Power::watts(20.0);
  };

  Server() : Server(Params{}) {}
  explicit Server(const Params& params);

  [[nodiscard]] Power power(std::size_t active_cores, double util) const;
  /// Power at the normal core count, fully utilized (55 W default).
  [[nodiscard]] Power peak_normal_power() const;
  /// Power with every core on and fully utilized (sprint ceiling).
  [[nodiscard]] Power peak_sprint_power() const;
  /// Power with the normal core count, idle.
  [[nodiscard]] Power idle_power() const;

  [[nodiscard]] const Chip& chip() const noexcept { return chip_; }
  [[nodiscard]] Power non_cpu() const noexcept { return params_.non_cpu; }

 private:
  Params params_;
  Chip chip_;
};

}  // namespace dcs::compute
