// Chip-level phase-change-material heat sink, after Raghavan et al.'s
// Computational Sprinting work [31][32] — the paper's prerequisite: "the
// chip-level sprinting is already safely enabled … If the chip-level
// sprinting can be no longer sustained, we also finish Data Center
// Sprinting" (Section IV).
//
// Model: the package removes `sustainable` watts continuously; chip power
// above that melts the PCM (absorbing the excess as latent heat), power
// below it re-solidifies the PCM at the spare removal rate. When the PCM is
// fully melted the chip can no longer exceed its sustainable power and the
// data-center controller must end the sprint.
//
// The default capacity is sized generously (a server-grade PCM package
// sustaining a full-degree sprint for ~30 minutes) so that, as the paper
// assumes, the chip level does not bind before the data-center level;
// shrink it to study chip-thermally-limited fleets.
#pragma once

#include "util/units.h"

namespace dcs::compute {

class PcmHeatSink {
 public:
  struct Params {
    /// Latent heat absorbed between fully solid and fully melted.
    Energy latent_capacity = Energy::joules(162000.0);  // 90 W x 30 min
    /// Chip power the package removes continuously (the normal-core TDP).
    Power sustainable = Power::watts(35.0);
  };

  PcmHeatSink() : PcmHeatSink(Params{}) {}
  explicit PcmHeatSink(const Params& params);

  /// Advances the PCM state under `chip_power` for `dt`.
  void step(Power chip_power, Duration dt);

  /// Fraction melted in [0, 1]; 1 means the buffer is exhausted.
  [[nodiscard]] double melted_fraction() const noexcept;
  [[nodiscard]] bool exhausted() const noexcept;

  /// Time until exhaustion at a constant chip power (infinite at or below
  /// the sustainable level).
  [[nodiscard]] Duration time_to_exhaustion(Power chip_power) const;

  /// Resets to fully solid.
  void reset() noexcept { melted_ = Energy::zero(); }

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  Energy melted_ = Energy::zero();
};

}  // namespace dcs::compute
