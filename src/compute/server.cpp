#include "compute/server.h"

#include "util/check.h"

namespace dcs::compute {

Server::Server(const Params& params) : params_(params), chip_(params.chip) {
  DCS_REQUIRE(params_.non_cpu >= Power::zero(), "non-CPU power must be non-negative");
}

Power Server::power(std::size_t active_cores, double util) const {
  return params_.non_cpu + chip_.power(active_cores, util);
}

Power Server::peak_normal_power() const {
  return params_.non_cpu + chip_.normal_peak_power();
}

Power Server::peak_sprint_power() const {
  return params_.non_cpu + chip_.peak_power();
}

Power Server::idle_power() const {
  return power(chip_.params().normal_cores, 0.0);
}

}  // namespace dcs::compute
