// Sub-linear core-count-to-throughput model.
//
// The paper's SPECjbb2005 measurements on a quad-core i5 show per-core
// throughput *decreasing* as cores are added (memory bandwidth, shared
// cache), which is why a constrained sprinting degree can be more
// power-efficient than Greedy. We model aggregate throughput as
// T(n) = n^alpha with alpha in (0, 1]; alpha = 1 is perfect scaling,
// alpha = 0.85 (default) loses ~19 % per-core efficiency from 12 to 48 cores.
//
// All performance numbers are normalized to the throughput of the normal
// core count, matching the paper's "performance normalized to the
// performance without sprinting".
#pragma once

#include <cstddef>

namespace dcs::compute {

class ThroughputModel {
 public:
  struct Params {
    double alpha = 0.85;
    std::size_t normal_cores = 12;
  };

  ThroughputModel() : ThroughputModel(Params{}) {}
  explicit ThroughputModel(const Params& params);

  /// Aggregate throughput of `cores` fully-utilized cores, normalized so
  /// that throughput(normal_cores) == 1.
  [[nodiscard]] double throughput(std::size_t cores) const;

  /// Throughput as a function of (possibly fractional) sprinting degree.
  [[nodiscard]] double throughput_for_degree(double degree) const;

  /// Smallest core count whose throughput covers `demand` (normalized
  /// units). May exceed any physical chip; callers clamp.
  [[nodiscard]] std::size_t cores_for_demand(double demand) const;

  /// Sprinting degree that exactly covers `demand` (continuous relaxation).
  [[nodiscard]] double degree_for_demand(double demand) const;

  /// Per-core throughput relative to a core of the normal configuration.
  [[nodiscard]] double per_core_efficiency(std::size_t cores) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace dcs::compute
