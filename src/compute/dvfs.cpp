#include "compute/dvfs.h"

#include <cmath>

#include "util/check.h"
#include "util/interpolate.h"

namespace dcs::compute {

DvfsModel::DvfsModel(const Params& params) : params_(params) {
  DCS_REQUIRE(params_.min_multiplier > 0.0, "min multiplier must be positive");
  DCS_REQUIRE(params_.max_multiplier >= params_.min_multiplier,
              "max multiplier below min");
  DCS_REQUIRE(params_.dynamic_exponent >= 1.0, "dynamic exponent >= 1");
}

double DvfsModel::power_multiplier(double frequency) const {
  DCS_REQUIRE(frequency >= params_.min_multiplier &&
                  frequency <= params_.max_multiplier,
              "frequency outside the DVFS range");
  return std::pow(frequency, params_.dynamic_exponent);
}

double DvfsModel::max_frequency_for(double power_budget) const {
  DCS_REQUIRE(power_budget >= 0.0, "power budget must be non-negative");
  const double f = std::pow(power_budget, 1.0 / params_.dynamic_exponent);
  return clamp(f, params_.min_multiplier, params_.max_multiplier);
}

double DvfsModel::performance(double frequency) const {
  DCS_REQUIRE(frequency >= params_.min_multiplier &&
                  frequency <= params_.max_multiplier,
              "frequency outside the DVFS range");
  return frequency;
}

}  // namespace dcs::compute
