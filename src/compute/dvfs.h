// DVFS (dynamic voltage and frequency scaling) model, the knob "almost all
// the aforementioned power capping work relies on" (paper Section II). Used
// by the DVFS-capped baseline: instead of waking dark cores, boost the
// frequency of the normally-active cores as far as the ratings allow.
//
// Model: compute-bound performance scales linearly with frequency; the
// cores' dynamic power scales as f^3 (voltage tracks frequency); static
// chip power and non-CPU power are unaffected.
#pragma once

namespace dcs::compute {

class DvfsModel {
 public:
  struct Params {
    double min_multiplier = 0.5;  ///< deepest slow-down vs nominal
    double max_multiplier = 1.3;  ///< overclock ceiling vs nominal
    double dynamic_exponent = 3.0;
  };

  DvfsModel() : DvfsModel(Params{}) {}
  explicit DvfsModel(const Params& params);

  /// Core dynamic-power multiplier at frequency multiplier f.
  [[nodiscard]] double power_multiplier(double frequency) const;

  /// Largest in-range frequency whose dynamic power fits `power_budget`
  /// (a multiple of the nominal dynamic power).
  [[nodiscard]] double max_frequency_for(double power_budget) const;

  /// Compute-bound performance multiplier (== frequency).
  [[nodiscard]] double performance(double frequency) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace dcs::compute
