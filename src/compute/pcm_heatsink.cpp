#include "compute/pcm_heatsink.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::compute {

PcmHeatSink::PcmHeatSink(const Params& params) : params_(params) {
  DCS_REQUIRE(params_.latent_capacity > Energy::zero(),
              "PCM capacity must be positive");
  DCS_REQUIRE(params_.sustainable > Power::zero(),
              "sustainable power must be positive");
}

void PcmHeatSink::step(Power chip_power, Duration dt) {
  DCS_REQUIRE(chip_power >= Power::zero(), "chip power must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  if (chip_power > params_.sustainable) {
    melted_ += (chip_power - params_.sustainable) * dt;
    melted_ = std::min(melted_, params_.latent_capacity);
  } else {
    // Spare removal capacity re-solidifies the PCM.
    const Energy freeze = (params_.sustainable - chip_power) * dt;
    melted_ = melted_ > freeze ? melted_ - freeze : Energy::zero();
  }
}

double PcmHeatSink::melted_fraction() const noexcept {
  return melted_ / params_.latent_capacity;
}

bool PcmHeatSink::exhausted() const noexcept {
  return melted_ >= params_.latent_capacity;
}

Duration PcmHeatSink::time_to_exhaustion(Power chip_power) const {
  DCS_REQUIRE(chip_power >= Power::zero(), "chip power must be non-negative");
  if (chip_power <= params_.sustainable) return Duration::infinity();
  return (params_.latent_capacity - melted_) / (chip_power - params_.sustainable);
}

}  // namespace dcs::compute
