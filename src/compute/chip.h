// Many-core chip power model after Intel's 48-core Single-chip Cloud
// Computer [14], the paper's Section VI-A configuration: 125 W fully
// utilized, 2.5 W per fully-utilized core, 5 W with every core inactive.
// Normally only 12 of the 48 cores are active (dark silicon); chip-level
// sprinting turns more on.
#pragma once

#include <cstddef>

#include "util/units.h"

namespace dcs::compute {

class Chip {
 public:
  struct Params {
    std::size_t total_cores = 48;
    std::size_t normal_cores = 12;
    /// Chip power with all cores inactive.
    Power base = Power::watts(5.0);
    /// Additional power of one fully-utilized core.
    Power per_core = Power::watts(2.5);
    /// Fraction of per-core power an active-but-idle core draws. The paper's
    /// model charges cores only when utilized; 0 reproduces it exactly.
    double active_idle_fraction = 0.0;
  };

  Chip() : Chip(Params{}) {}
  explicit Chip(const Params& params);

  /// Chip power with `active` cores on, each at average utilization `util`.
  [[nodiscard]] Power power(std::size_t active, double util) const;

  /// Power with every core active and fully utilized (sprint peak).
  [[nodiscard]] Power peak_power() const;
  /// Power with the normal core count fully utilized.
  [[nodiscard]] Power normal_peak_power() const;

  /// Maximum sprinting degree = total / normal cores.
  [[nodiscard]] double max_sprint_degree() const noexcept;
  /// Active cores corresponding to a sprinting degree (rounded up, clamped).
  [[nodiscard]] std::size_t cores_for_degree(double degree) const;
  /// Sprinting degree corresponding to a core count.
  [[nodiscard]] double degree_for_cores(std::size_t active) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace dcs::compute
