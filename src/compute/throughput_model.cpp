#include "compute/throughput_model.h"

#include <cmath>

#include "util/check.h"

namespace dcs::compute {

ThroughputModel::ThroughputModel(const Params& params) : params_(params) {
  DCS_REQUIRE(params_.alpha > 0.0 && params_.alpha <= 1.0, "alpha in (0, 1]");
  DCS_REQUIRE(params_.normal_cores > 0, "normal cores must be positive");
}

double ThroughputModel::throughput(std::size_t cores) const {
  const double n = static_cast<double>(cores);
  const double n0 = static_cast<double>(params_.normal_cores);
  return std::pow(n / n0, params_.alpha);
}

double ThroughputModel::throughput_for_degree(double degree) const {
  DCS_REQUIRE(degree >= 0.0, "degree must be non-negative");
  return std::pow(degree, params_.alpha);
}

std::size_t ThroughputModel::cores_for_demand(double demand) const {
  DCS_REQUIRE(demand >= 0.0, "demand must be non-negative");
  if (demand <= 0.0) return 0;
  const double n0 = static_cast<double>(params_.normal_cores);
  const double n = n0 * std::pow(demand, 1.0 / params_.alpha);
  return static_cast<std::size_t>(std::ceil(n - 1e-9));
}

double ThroughputModel::degree_for_demand(double demand) const {
  DCS_REQUIRE(demand >= 0.0, "demand must be non-negative");
  return std::pow(demand, 1.0 / params_.alpha);
}

double ThroughputModel::per_core_efficiency(std::size_t cores) const {
  DCS_REQUIRE(cores > 0, "need at least one core");
  const double n = static_cast<double>(cores);
  const double n0 = static_cast<double>(params_.normal_cores);
  // (T(n)/n) / (T(n0)/n0) = (n/n0)^(alpha-1)
  return std::pow(n / n0, params_.alpha - 1.0);
}

}  // namespace dcs::compute
