// The homogeneous server fleet: translates a normalized workload demand and
// a sprinting-degree decision into active cores, utilization, achieved
// throughput and electrical power at server / PDU / fleet granularity.
//
// Normalization convention (paper Section VI/VII): demand and throughput are
// expressed relative to the fleet's capacity with the normal core count
// (demand 1.0 = "peak computing performance without sprinting").
#pragma once

#include <cstddef>
#include <vector>

#include "compute/server.h"
#include "compute/throughput_model.h"
#include "util/units.h"

namespace dcs::compute {

class Fleet {
 public:
  struct Params {
    Server::Params server{};
    ThroughputModel::Params throughput{};
    std::size_t servers_per_pdu = 200;
    std::size_t pdu_count = 909;
  };

  /// The fleet's operating point for one control step.
  struct Operation {
    std::size_t active_cores = 0;  ///< per server
    double degree = 1.0;           ///< active / normal cores
    double utilization = 0.0;      ///< average utilization of active cores
    double achieved = 0.0;         ///< normalized throughput delivered
    Power per_server;
    Power per_pdu;
    Power fleet_total;
  };

  Fleet() : Fleet(Params{}) {}
  explicit Fleet(const Params& params);

  /// Serves `demand` (normalized) with the sprinting degree capped at
  /// `degree_cap` (>= 1). Activates only as many cores as the demand needs
  /// (the real sprinting degree can be lower than the bound, Section IV-A).
  [[nodiscard]] Operation operate(double demand, double degree_cap) const;

  /// Operating point with an explicit per-server active-core count.
  [[nodiscard]] Operation operate_with_cores(double demand,
                                             std::size_t active_cores) const;

  /// Normalized capacity at a given degree cap.
  [[nodiscard]] double capacity(double degree_cap) const;

  /// Fleet-wide power at the normal peak (degree 1, fully utilized).
  [[nodiscard]] Power peak_normal_power() const;
  /// Fleet-wide power ceiling with every core on and utilized.
  [[nodiscard]] Power peak_sprint_power() const;

  [[nodiscard]] std::size_t server_count() const noexcept;
  [[nodiscard]] const Server& server() const noexcept { return server_; }
  [[nodiscard]] const ThroughputModel& throughput() const noexcept { return throughput_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  Server server_;
  ThroughputModel throughput_;
  /// throughput_.throughput(n) for n in [0, total_cores], precomputed in the
  /// constructor with the model itself (same std::pow, bit-identical) so the
  /// per-tick operating-point math never calls libm. Immutable after
  /// construction, so concurrent reads (oracle threads) stay safe.
  std::vector<double> throughput_by_cores_;
};

}  // namespace dcs::compute
