#include "compute/fleet.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::compute {

Fleet::Fleet(const Params& params)
    : params_(params), server_(params.server), throughput_(params.throughput) {
  DCS_REQUIRE(params_.servers_per_pdu > 0, "servers per PDU must be positive");
  DCS_REQUIRE(params_.pdu_count > 0, "PDU count must be positive");
  DCS_REQUIRE(params_.throughput.normal_cores == params_.server.chip.normal_cores,
              "throughput model and chip must agree on the normal core count");
  throughput_by_cores_.resize(params_.server.chip.total_cores + 1);
  for (std::size_t n = 0; n < throughput_by_cores_.size(); ++n) {
    throughput_by_cores_[n] = throughput_.throughput(n);
  }
}

std::size_t Fleet::server_count() const noexcept {
  return params_.servers_per_pdu * params_.pdu_count;
}

double Fleet::capacity(double degree_cap) const {
  DCS_REQUIRE(degree_cap >= 0.0, "degree cap must be non-negative");
  const Chip& chip = server_.chip();
  const double capped = std::min(degree_cap, chip.max_sprint_degree());
  const std::size_t cores = chip.cores_for_degree(capped);
  return throughput_.throughput(std::max<std::size_t>(cores, 1));
}

Fleet::Operation Fleet::operate(double demand, double degree_cap) const {
  DCS_REQUIRE(demand >= 0.0, "demand must be non-negative");
  DCS_REQUIRE(degree_cap >= 1.0, "degree cap must be at least 1 (normal cores stay on)");
  const Chip& chip = server_.chip();
  const std::size_t normal = chip.params().normal_cores;
  const std::size_t cap_cores =
      std::max(normal, chip.cores_for_degree(
                           std::min(degree_cap, chip.max_sprint_degree())));
  // Activate just enough cores for the demand, never below normal, never
  // above the strategy's bound. With the bound at the normal count the clamp
  // pins the answer regardless of what the demand asks for.
  const std::size_t active =
      cap_cores == normal
          ? normal
          : std::clamp(throughput_.cores_for_demand(demand), normal, cap_cores);
  return operate_with_cores(demand, active);
}

Fleet::Operation Fleet::operate_with_cores(double demand,
                                           std::size_t active_cores) const {
  const Chip& chip = server_.chip();
  DCS_REQUIRE(active_cores >= 1 && active_cores <= chip.params().total_cores,
              "active core count out of range");
  Operation op;
  op.active_cores = active_cores;
  op.degree = chip.degree_for_cores(active_cores);
  const double cap = throughput_by_cores_[active_cores];
  op.achieved = std::min(demand, cap);
  op.utilization = cap > 0.0 ? op.achieved / cap : 0.0;
  op.per_server = server_.power(active_cores, op.utilization);
  op.per_pdu = op.per_server * static_cast<double>(params_.servers_per_pdu);
  op.fleet_total = op.per_pdu * static_cast<double>(params_.pdu_count);
  return op;
}

Power Fleet::peak_normal_power() const {
  return server_.peak_normal_power() * static_cast<double>(server_count());
}

Power Fleet::peak_sprint_power() const {
  return server_.peak_sprint_power() * static_cast<double>(server_count());
}

}  // namespace dcs::compute
