#include "compute/chip.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs::compute {

Chip::Chip(const Params& params) : params_(params) {
  DCS_REQUIRE(params_.total_cores > 0, "chip needs cores");
  DCS_REQUIRE(params_.normal_cores > 0 && params_.normal_cores <= params_.total_cores,
              "normal cores must be in [1, total]");
  DCS_REQUIRE(params_.base >= Power::zero(), "base power must be non-negative");
  DCS_REQUIRE(params_.per_core > Power::zero(), "per-core power must be positive");
  DCS_REQUIRE(params_.active_idle_fraction >= 0.0 && params_.active_idle_fraction <= 1.0,
              "active idle fraction in [0, 1]");
}

Power Chip::power(std::size_t active, double util) const {
  DCS_REQUIRE(active <= params_.total_cores, "more active cores than exist");
  DCS_REQUIRE(util >= 0.0 && util <= 1.0, "utilization in [0, 1]");
  const double idle = params_.active_idle_fraction;
  const double per_core_share = idle + (1.0 - idle) * util;
  return params_.base +
         params_.per_core * (static_cast<double>(active) * per_core_share);
}

Power Chip::peak_power() const { return power(params_.total_cores, 1.0); }

Power Chip::normal_peak_power() const { return power(params_.normal_cores, 1.0); }

double Chip::max_sprint_degree() const noexcept {
  return static_cast<double>(params_.total_cores) /
         static_cast<double>(params_.normal_cores);
}

std::size_t Chip::cores_for_degree(double degree) const {
  DCS_REQUIRE(degree >= 0.0, "degree must be non-negative");
  const double cores = degree * static_cast<double>(params_.normal_cores);
  const auto n = static_cast<std::size_t>(std::ceil(cores - 1e-9));
  return std::min(n, params_.total_cores);
}

double Chip::degree_for_cores(std::size_t active) const {
  DCS_REQUIRE(active <= params_.total_cores, "more active cores than exist");
  return static_cast<double>(active) / static_cast<double>(params_.normal_cores);
}

}  // namespace dcs::compute
