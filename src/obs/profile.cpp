#include "obs/profile.h"

#include <algorithm>
#include <cstring>

namespace dcs::obs {
namespace {

thread_local std::uint32_t t_lane = 0;

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

Profiler::Profiler()
    : epoch_(std::chrono::steady_clock::now()),
      epoch_unix_us_(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count()) {}

void Profiler::set_enabled(bool enabled) noexcept {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Profiler::set_sampling(bool sampling) noexcept {
  sampling_.store(sampling, std::memory_order_relaxed);
}

void Profiler::set_thread_lane(std::uint32_t lane) noexcept { t_lane = lane; }

std::uint32_t Profiler::thread_lane() noexcept { return t_lane; }

double Profiler::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Profiler::Buffer& Profiler::local_buffer() {
  // The profiler is a process singleton, so one thread-local slot suffices.
  thread_local Buffer* buffer = nullptr;
  if (buffer == nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<Buffer>());
    buffer = buffers_.back().get();
  }
  return *buffer;
}

ScopeStack& Profiler::local_stack() {
  // Storage is owned by the process singleton, so the sampler thread can
  // keep reading a stack after its owner thread exits.
  thread_local ScopeStack* stack = nullptr;
  if (stack == nullptr) {
    const std::lock_guard<std::mutex> lock(mu_);
    stacks_.push_back(std::make_unique<ScopeStack>());
    stack = stacks_.back().get();
  }
  return *stack;
}

std::vector<Profiler::StackSample> Profiler::snapshot_stacks() const {
  std::vector<StackSample> out;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& stack : stacks_) {
    const char* frames[ScopeStack::kMaxDepth];
    StackSample sample;
    const std::size_t depth = stack->read(frames, &sample.lane);
    if (depth == 0) continue;
    sample.frames.assign(frames, frames + depth);
    out.push_back(std::move(sample));
  }
  return out;
}

void Profiler::record(const char* name, double start_us, double dur_us) {
  Buffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(ProfileEvent{name, t_lane, start_us, dur_us});
}

std::vector<ProfileEvent> Profiler::collect() const {
  std::vector<ProfileEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  // (lane, start, longest-first) so outer spans precede the spans they
  // enclose and the order is a function of the data alone.
  std::sort(out.begin(), out.end(),
            [](const ProfileEvent& a, const ProfileEvent& b) {
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              return std::strcmp(a.name, b.name) < 0;
            });
  return out;
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

ProfileSummary summarize(const std::vector<ProfileEvent>& events) {
  ProfileSummary summary;
  for (const ProfileEvent& e : events) {
    ScopeStats& stats = summary[e.name];
    ++stats.count;
    stats.total_us += e.dur_us;
    stats.max_us = std::max(stats.max_us, e.dur_us);
  }
  return summary;
}

void export_to(Tracer& tracer, const std::vector<ProfileEvent>& events) {
  for (const ProfileEvent& e : events) {
    TraceEvent t;
    t.domain = Domain::kWall;
    t.phase = 'X';
    t.ts_us = e.start_us;
    t.dur_us = e.dur_us;
    t.lane = e.lane;
    t.cat = "profile";
    t.name = e.name;
    tracer.append(std::move(t));
    tracer.name_lane(Domain::kWall, e.lane,
                     e.lane == 0 ? "main" : "worker-" + std::to_string(e.lane));
  }
}

}  // namespace dcs::obs
