// Streaming trace sinks: bounded-memory, crash-safe file writers behind the
// obs::TraceSink interface, so day-long traces (fig01's 24 h of per-tick
// counter tracks, 100k+-event sweeps) no longer have to fit in the Tracer.
//
// Both sinks buffer at most `buffer_events` events before rendering them to
// the file, so peak memory is O(buffer_events) regardless of trace length.
//
// Crash safety: JSONL is line-oriented and therefore always valid up to the
// last flushed line. The Chrome sink keeps the file a *complete* JSON
// document at every flush by writing the `]}` trailer after each batch,
// flushing, and seeking back over the trailer before the next batch — if
// the process dies mid-sweep the file on disk still loads in Perfetto.
//
// Sinks are not thread-safe (same contract as Tracer): one sink fed by one
// thread, typically the merge thread of a sweep or a single-run bench.
#pragma once

#include <cstddef>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace dcs::obs {

struct StreamSinkOptions {
  /// Events buffered before rendering to the file (bounds peak memory).
  std::size_t buffer_events = 4096;
};

/// Common machinery of the file-backed sinks: bounded event buffer, flush
/// bookkeeping, and open/finalize diagnostics.
class FileStreamSink : public TraceSink {
 public:
  ~FileStreamSink() override;

  void write(const TraceEvent& event) final;
  void finalize() final;

  [[nodiscard]] bool healthy() const override { return ok_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t events_written() const noexcept {
    return events_written_;
  }
  /// High-water mark of the internal buffer — tests assert this stays at or
  /// below StreamSinkOptions::buffer_events.
  [[nodiscard]] std::size_t peak_buffered() const noexcept {
    return peak_buffered_;
  }
  [[nodiscard]] std::size_t flush_count() const noexcept { return flushes_; }

 protected:
  FileStreamSink(std::string path, StreamSinkOptions options);

  /// Renders one buffered event into the file.
  virtual void render(const TraceEvent& event) = 0;
  /// Called once before the first rendered event / once after the last
  /// flush of a finalize.
  virtual void begin() {}
  virtual void end() {}
  /// Called after every intermediate flush batch (crash-safe trailer).
  virtual void after_flush() {}

  std::ofstream out_;
  bool ok_ = false;

 private:
  void flush_buffer(bool final_flush);

  std::string path_;
  StreamSinkOptions options_;
  std::vector<TraceEvent> buffer_;
  std::size_t events_written_ = 0;
  std::size_t peak_buffered_ = 0;
  std::size_t flushes_ = 0;
  bool begun_ = false;
  bool finalized_ = false;
};

/// Streams Chrome trace-event JSON ({"traceEvents": [...]}) to `path`.
/// Lane/process metadata events are emitted inline as they are learned
/// (valid anywhere in the array per the trace-event format).
class ChromeStreamSink final : public FileStreamSink {
 public:
  explicit ChromeStreamSink(std::string path, StreamSinkOptions options = {});
  ~ChromeStreamSink() override;

  /// Queued through the normal event buffer as a synthetic 'M' event, so
  /// ordering, memory bounds and crash safety stay uniform.
  void write_lane_name(Domain domain, std::uint32_t lane,
                       const std::string& name) override;

 private:
  void render(const TraceEvent& event) override;
  void begin() override;
  void end() override;
  void after_flush() override;

  std::ostream& element();
  void ensure_process_metadata(Domain domain);

  bool first_element_ = true;
  bool have_process_[2] = {false, false};
  std::map<std::pair<Domain, std::uint32_t>, std::string> lanes_named_;
};

/// Streams the JSONL export (one object per line, append order) to `path`.
/// Lane names have no JSONL representation and are dropped, matching
/// Tracer::write_jsonl.
class JsonlStreamSink final : public FileStreamSink {
 public:
  explicit JsonlStreamSink(std::string path, StreamSinkOptions options = {});
  ~JsonlStreamSink() override;

  void write_lane_name(Domain domain, std::uint32_t lane,
                       const std::string& name) override;

 private:
  void render(const TraceEvent& event) override;
};

/// Fans one event stream out to several sinks (bench glue writes the Chrome
/// file and the JSONL file from one Tracer). Does not own the sinks.
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}

  void write(const TraceEvent& event) override {
    for (TraceSink* s : sinks_) s->write(event);
  }
  void write_lane_name(Domain domain, std::uint32_t lane,
                       const std::string& name) override {
    for (TraceSink* s : sinks_) s->write_lane_name(domain, lane, name);
  }
  void finalize() override {
    for (TraceSink* s : sinks_) s->finalize();
  }
  /// Unhealthy as soon as any fanned-out sink is: a partial failure (one
  /// file on a full disk) must not read as overall success.
  [[nodiscard]] bool healthy() const override {
    for (const TraceSink* s : sinks_) {
      if (!s->healthy()) return false;
    }
    return true;
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace dcs::obs
