// Worker telemetry streaming: one crash-safe JSONL file per worker attempt
// carrying everything a supervisor needs to watch — and later merge — a
// shard process: trace events, progress heartbeats, metric snapshots and
// sampler folded stacks, under a header that anchors the process's wall
// clock to the Unix epoch (obs::Profiler::epoch_unix_us).
//
// Line schema (`"t"` discriminates; unknown types are skipped by readers so
// the format is forward-extensible):
//
//   {"t":"header","telemetry":1,"name":...,"pid":...,"shard":"i/N",
//    "epoch_unix_us":...}                         exactly once, first line
//   {"t":"ev","domain":...,"ph":...,"ts":...,...} one trace event
//   {"t":"lane","domain":...,"lane":...,"name":...}  lane naming metadata
//   {"t":"hb","wall_us":...,"sweep":...,"done":...,"total":...}
//   {"t":"metric","name":...,"kind":...,"labels":...,"stat":...,"value":...}
//   {"t":"stack","stack":"main;exp.task","count":...}
//   {"t":"end","wall_us":...,"events":...}        clean-shutdown marker
//
// Crash safety is the JSONL property: the file is valid up to the last
// complete line, and TelemetryTail never reads past the last '\n', so a
// worker killed mid-write (the dispatcher's whole job is to kill workers)
// leaves a stream the supervisor still consumes.
//
// Unlike the other file sinks, TelemetrySink is thread-safe: heartbeats
// arrive from sweep worker threads while the merge thread writes events.
// finalize() only flushes — the TraceSink contract's "no writes after
// finalize" is relaxed here because the telemetry stream outlives the trace
// tee it participates in (metrics/stacks/end are appended after the trace
// sinks close). close() writes the end marker and seals the file.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace dcs::obs {

struct TelemetryOptions {
  /// Stream identity written into the header.
  std::string name = "worker";
  /// "i/N" shard designation ("" for unsharded processes).
  std::string shard;
};

class TelemetrySink final : public TraceSink {
 public:
  TelemetrySink(const std::string& path, TelemetryOptions options = {});
  ~TelemetrySink() override;

  // TraceSink: events buffer through the ofstream; structural lines
  // (header/heartbeat/metric/stack/end) flush so a tailing supervisor sees
  // them promptly.
  void write(const TraceEvent& event) override;
  void write_lane_name(Domain domain, std::uint32_t lane,
                       const std::string& name) override;
  void finalize() override;
  [[nodiscard]] bool healthy() const override;

  /// Progress heartbeat: `done` of `total` tasks of `sweep` finished.
  /// Callable from any thread (wired to exp::RunnerOptions::on_progress).
  void heartbeat(const std::string& sweep, std::size_t done,
                 std::size_t total);

  /// One "metric" line per scalar instrument / histogram stat in the
  /// registry, deterministic registry order.
  void write_metrics(const MetricsRegistry& registry);

  /// One "stack" line per folded flame-graph stack.
  void write_stacks(const FoldedStacks& stacks);

  /// Writes the end marker and closes the file. Idempotent; every writer
  /// after close is a silent no-op (drain paths may race process exit).
  void close();

  [[nodiscard]] bool ok() const;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t events_written() const;

 private:
  void line_locked(const std::string& line, bool flush);

  mutable std::mutex mu_;
  std::string path_;
  std::ofstream out_;
  bool ok_ = false;
  bool closed_ = false;
  std::size_t events_ = 0;
};

/// Latest progress heartbeat seen in a telemetry stream.
struct TelemetryHeartbeat {
  double wall_us = 0.0;
  std::string sweep;
  std::size_t done = 0;
  std::size_t total = 0;
};

/// Incremental reader for a telemetry stream another process is appending
/// to. poll() consumes only complete ('\n'-terminated) lines past the last
/// read offset, so a torn trailing line — half-written when the worker was
/// killed, or mid-write right now — is simply not consumed yet; the next
/// poll picks it up once (and if) its newline lands. A missing file is
/// "no data yet", never an error (the worker may not have started). A file
/// that shrank below the read offset was truncated or replaced (worker
/// restart, log rotation): the tail resets to the start and re-reads the
/// new content instead of going silent.
class TelemetryTail {
 public:
  explicit TelemetryTail(std::string path) : path_(std::move(path)) {}

  /// Reads newly completed lines; returns true when anything new arrived.
  bool poll();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool have_header() const noexcept { return have_header_; }
  [[nodiscard]] int pid() const noexcept { return pid_; }
  [[nodiscard]] std::int64_t epoch_unix_us() const noexcept {
    return epoch_unix_us_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool have_heartbeat() const noexcept {
    return have_heartbeat_;
  }
  [[nodiscard]] const TelemetryHeartbeat& heartbeat() const noexcept {
    return heartbeat_;
  }
  /// True once the clean-shutdown end marker was read.
  [[nodiscard]] bool ended() const noexcept { return ended_; }
  /// Complete lines consumed so far (all types).
  [[nodiscard]] std::size_t lines_read() const noexcept { return lines_; }
  /// "ev" lines consumed so far.
  [[nodiscard]] std::size_t events_seen() const noexcept { return events_; }

 private:
  void consume(std::string_view line);

  std::string path_;
  std::streamoff offset_ = 0;
  bool have_header_ = false;
  int pid_ = 0;
  std::int64_t epoch_unix_us_ = 0;
  std::string name_;
  bool have_heartbeat_ = false;
  TelemetryHeartbeat heartbeat_;
  bool ended_ = false;
  std::size_t lines_ = 0;
  std::size_t events_ = 0;
};

}  // namespace dcs::obs
