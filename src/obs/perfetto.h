// Perfetto protobuf trace output: hand-rolled TracePacket/TrackEvent
// encoding (util/proto.h — no protobuf dependency) so traces are
// SQL-queryable in Perfetto's trace_processor, not just viewable via the
// Chrome-JSON path.
//
// A Perfetto trace file is a sequence of length-delimited TracePacket
// records (field 1 of the Trace message). We emit:
//   * TrackDescriptor packets declaring process tracks (pid + name),
//     thread tracks (one per lane) and counter tracks;
//   * TrackEvent packets: TYPE_SLICE_BEGIN/END pairs for 'X' spans,
//     TYPE_INSTANT for 'i' events and TYPE_COUNTER with
//     double_counter_value for 'C' samples.
// Names and categories are emitted inline (no interning) — simpler, and
// these traces are written once and queried offline.
//
// PerfettoWriter is the low-level encoder (exp/timeline.h drives it
// directly to lay many processes on one timeline); PerfettoStreamSink
// adapts it to the TraceSink interface with the repo's sim/wall process
// convention, so benches stream `<name>_trace.perfetto` next to the Chrome
// and JSONL files.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/sink.h"
#include "obs/trace.h"

namespace dcs::obs {

/// Emits Perfetto TracePacket records to a stream. Track uuids are handed
/// out sequentially, so an identical call sequence produces identical
/// bytes (timeline merges rely on this for byte-stable re-merges).
class PerfettoWriter {
 public:
  explicit PerfettoWriter(std::ostream& out) : out_(&out) {}

  /// Declares a process track; returns its uuid (parent for thread tracks).
  std::uint64_t add_process(std::int32_t pid, const std::string& name);
  /// Declares a thread track under `pid` (slices and instants land here).
  std::uint64_t add_thread(std::int32_t pid, std::int32_t tid,
                           const std::string& name);
  /// Re-emits a thread-track descriptor under an existing uuid (renames:
  /// trace_processor keeps the latest descriptor per uuid).
  void redeclare_thread(std::uint64_t uuid, std::int32_t pid, std::int32_t tid,
                        const std::string& name);
  /// Declares a counter track under a process track.
  std::uint64_t add_counter(std::uint64_t parent_uuid, const std::string& name,
                            const std::string& unit = "");

  void slice_begin(std::uint64_t track_uuid, std::uint64_t ts_ns,
                   const std::string& name, const std::string& category);
  void slice_end(std::uint64_t track_uuid, std::uint64_t ts_ns);
  /// `flow_ids` (TrackEvent.flow_ids, repeated fixed64) connect instants
  /// into Perfetto flow arrows — decision records pass hashes of their
  /// id/cause strings so causal chains render as arrows in the UI.
  void instant(std::uint64_t track_uuid, std::uint64_t ts_ns,
               const std::string& name, const std::string& category,
               const std::vector<std::uint64_t>& flow_ids = {});
  void counter(std::uint64_t track_uuid, std::uint64_t ts_ns, double value);

  [[nodiscard]] std::size_t packets_written() const noexcept {
    return packets_;
  }

 private:
  void packet(const std::string& payload);

  std::ostream* out_;
  std::uint64_t next_uuid_ = 1;
  std::size_t packets_ = 0;
};

/// TraceSink that writes a Perfetto protobuf trace with the repo's process
/// convention (pid 1 = "sim", pid 2 = "wall"; one thread track per lane;
/// 'C' events become one counter track per (domain, name), valued from
/// their "value" arg). Rides FileStreamSink for bounded buffering, crash
/// awareness (ok()) and the synthetic-'M' lane-name path.
class PerfettoStreamSink final : public FileStreamSink {
 public:
  explicit PerfettoStreamSink(std::string path, StreamSinkOptions options = {});
  ~PerfettoStreamSink() override;

  void write_lane_name(Domain domain, std::uint32_t lane,
                       const std::string& name) override;

 private:
  void render(const TraceEvent& event) override;
  void begin() override;

  std::uint64_t process_uuid(Domain domain);
  std::uint64_t lane_uuid(Domain domain, std::uint32_t lane);
  std::uint64_t counter_uuid(Domain domain, const std::string& name);

  PerfettoWriter writer_;
  std::uint64_t process_uuids_[2] = {0, 0};
  std::map<std::pair<Domain, std::uint32_t>, std::uint64_t> lane_uuids_;
  std::map<std::pair<Domain, std::uint32_t>, std::string> lane_names_;
  std::map<std::pair<Domain, std::string>, std::uint64_t> counter_uuids_;
};

namespace detail {
/// The numeric value of a counter event: its "value" arg if present, else
/// the first arg whose pre-rendered literal parses as a number. Returns
/// false when the event carries no numeric payload.
[[nodiscard]] bool counter_value(const TraceEvent& event, double* value);

/// Deterministic 64-bit flow id for a decision id/cause token (FNV-1a).
[[nodiscard]] std::uint64_t flow_id_hash(std::string_view token) noexcept;

/// Flow ids for a decision record: hashes of its "id" and "cause" arg
/// values (pre-rendered quoted strings; quotes stripped before hashing).
/// `scope` is prepended to each token ("<scope>/<id>") so merged
/// multi-source timelines keep per-source chains distinct. Empty for
/// events without an "id" arg.
[[nodiscard]] std::vector<std::uint64_t> decision_flow_ids(
    const TraceEvent& event, std::string_view scope = {});
}  // namespace detail

}  // namespace dcs::obs
