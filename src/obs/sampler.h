// Sampling profiler for long sweeps: a wall-domain background thread that
// periodically snapshots every worker's active scope stack (obs/profile.h)
// and accumulates flame-graph-compatible folded stacks
// ("main;exp.task;sim.run" -> sample count).
//
// Cost model: the RAII scopes answer "how long did each scope take"
// exactly, but only at scope granularity and only after the scope exits; a
// day-long sweep wants "where is the time going *right now*" without
// recording millions of spans. Sampling at DCS_OBS_SAMPLER Hz costs
// O(threads) per sample regardless of event rate.
//
// Activation: exp::run_sweep holds a ScopedSamplerRun, which starts the
// process-wide sampler iff the DCS_OBS_SAMPLER environment variable is set
// to a sampling frequency in Hz (e.g. DCS_OBS_SAMPLER=97; prime rates avoid
// lockstep with periodic work). Starts are refcounted, so nested sweeps
// (oracle search inside a task) share one sampling thread.
//
// Everything sampled is wall-domain: folded stacks land in BENCH_*.json
// perf records and *_stacks.folded files, never in simulation results.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "util/units.h"

namespace dcs::obs {

/// Folded flame-graph stacks: "lane;outer;inner" -> sample count. Feed the
/// textual form (write_folded) straight to flamegraph.pl / speedscope.
using FoldedStacks = std::map<std::string, std::size_t>;

class Sampler {
 public:
  static Sampler& instance();

  /// Starts sampling every `period` (refcounted: nested starts share the
  /// thread; the period of the first start wins).
  void start(Duration period);
  /// Decrements the refcount; the last stop joins the sampler thread.
  void stop();
  [[nodiscard]] bool active() const;

  /// Total snapshots taken (including ones where every thread was idle).
  [[nodiscard]] std::size_t sample_count() const;
  /// Copies the accumulated folded stacks.
  [[nodiscard]] FoldedStacks folded() const;
  /// Drops accumulated samples (between runs; keeps the thread if active).
  void reset();

  /// Parses DCS_OBS_SAMPLER as a sampling frequency in Hz; 0 when unset,
  /// unparsable or non-positive.
  [[nodiscard]] static double env_hz();

 private:
  Sampler() = default;

  void loop(Duration period);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::size_t refs_ = 0;
  bool stop_requested_ = false;

  mutable std::mutex samples_mu_;
  FoldedStacks samples_;
  std::size_t sample_count_ = 0;
};

/// Writes folded stacks in the textual flame-graph format, one
/// "stack count" line per entry, sorted by stack (map order).
void write_folded(std::ostream& out, const FoldedStacks& folded);

/// RAII activation used by exp::run_sweep: starts the sampler for this
/// scope when DCS_OBS_SAMPLER is set, no-op otherwise.
class ScopedSamplerRun {
 public:
  ScopedSamplerRun();
  ~ScopedSamplerRun();
  ScopedSamplerRun(const ScopedSamplerRun&) = delete;
  ScopedSamplerRun& operator=(const ScopedSamplerRun&) = delete;

 private:
  bool started_ = false;
};

}  // namespace dcs::obs
