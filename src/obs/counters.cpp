#include "obs/counters.h"

#include <cmath>

namespace dcs::obs {

void export_counter_track(Tracer& tracer, std::string_view cat,
                          std::string_view name, const TimeSeries& series) {
  for (const Sample& s : series.samples()) {
    if (!std::isfinite(s.value)) continue;  // no JSON literal for inf/nan
    tracer.counter(s.time, cat, name, {arg("value", s.value)});
  }
}

}  // namespace dcs::obs
