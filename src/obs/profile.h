// Wall-clock profiling scopes with per-thread buffers.
//
// DCS_OBS_SCOPE("name") times the enclosing block and records a span into a
// buffer owned by the calling thread — no cross-thread contention on the
// hot path beyond one uncontended mutex per record. Threads identify
// themselves with a *lane* (main thread 0; exp::ThreadPool workers register
// lane 1..N), so a sweep's Chrome trace shows one row per worker and pool
// utilization is visible at a glance.
//
// collect() merges the buffers deterministically — sorted by (lane, start,
// longest-span-first) — so the *structure* of the output depends only on
// the recorded data, never on buffer registration order. The recorded
// durations are wall clock and belong in perf records only; simulation
// results must never depend on them (DESIGN.md "Observability").
//
// When the sampling profiler (obs/sampler.h) is active, each scope also
// pushes its name onto a lock-free per-thread ScopeStack that the sampler
// thread snapshots periodically — that is how long sweeps get
// flame-graph-compatible folded stacks without per-event cost.
//
// The profiler is disabled by default; a disabled scope is two relaxed
// atomic loads.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace dcs::obs {

struct ProfileEvent {
  /// Scope name; must point at storage outliving the profiler use (string
  /// literals — the DCS_OBS_SCOPE contract).
  const char* name = nullptr;
  std::uint32_t lane = 0;
  double start_us = 0.0;
  double dur_us = 0.0;
};

/// Lock-free stack of the calling thread's active scope names, readable
/// from the sampler thread. Only the owner thread mutates it; the sampler
/// reads depth (acquire) then frames (relaxed), so a snapshot taken mid
/// push/pop may be one frame stale — sampling tolerance, never UB: every
/// stored pointer is a string literal.
class ScopeStack {
 public:
  static constexpr std::size_t kMaxDepth = 32;

  void push(const char* name, std::uint32_t lane) noexcept {
    const std::size_t d = depth_.load(std::memory_order_relaxed);
    if (d < kMaxDepth) frames_[d].store(name, std::memory_order_relaxed);
    lane_.store(lane, std::memory_order_relaxed);
    depth_.store(d + 1, std::memory_order_release);
  }
  void pop() noexcept {
    const std::size_t d = depth_.load(std::memory_order_relaxed);
    if (d > 0) depth_.store(d - 1, std::memory_order_release);
  }

  /// Sampler-side read: copies up to kMaxDepth frame names bottom-up into
  /// `out`, stores the owner's lane, returns the depth (0 = idle thread).
  std::size_t read(const char* out[], std::uint32_t* lane) const noexcept {
    std::size_t d = depth_.load(std::memory_order_acquire);
    if (d > kMaxDepth) d = kMaxDepth;
    for (std::size_t i = 0; i < d; ++i) {
      out[i] = frames_[i].load(std::memory_order_relaxed);
    }
    *lane = lane_.load(std::memory_order_relaxed);
    return d;
  }

 private:
  std::atomic<const char*> frames_[kMaxDepth] = {};
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::uint32_t> lane_{0};
};

class Profiler {
 public:
  static Profiler& instance();

  void set_enabled(bool enabled) noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Scope-stack maintenance switch, owned by the Sampler (obs/sampler.h).
  void set_sampling(bool sampling) noexcept;
  [[nodiscard]] bool sampling() const noexcept {
    return sampling_.load(std::memory_order_relaxed);
  }

  /// Sets the calling thread's lane (sticky thread-local; main = 0).
  static void set_thread_lane(std::uint32_t lane) noexcept;
  [[nodiscard]] static std::uint32_t thread_lane() noexcept;

  /// Wall microseconds since the process-wide profiler epoch.
  [[nodiscard]] double now_us() const noexcept;

  /// Unix microseconds (system clock) at the profiler epoch — the anchor
  /// that lets cross-process merges (exp/timeline.h) place each process's
  /// wall spans on one shared timeline: a wall event at ts_us in process P
  /// happened at absolute time P.epoch_unix_us() + ts_us. Captured once at
  /// construction together with the steady-clock epoch.
  [[nodiscard]] std::int64_t epoch_unix_us() const noexcept {
    return epoch_unix_us_;
  }

  /// Records one finished span into the calling thread's buffer.
  void record(const char* name, double start_us, double dur_us);

  /// The calling thread's scope stack (registered with the profiler on
  /// first use; storage lives as long as the process).
  ScopeStack& local_stack();

  /// One sampled call stack: the owning thread's lane plus the active
  /// scope names, outermost first.
  struct StackSample {
    std::uint32_t lane = 0;
    std::vector<const char*> frames;
  };
  /// Snapshots every registered thread's scope stack (sampler thread).
  /// Idle (empty) stacks are skipped.
  [[nodiscard]] std::vector<StackSample> snapshot_stacks() const;

  /// Copies every buffered span, merged in (lane, start_us, dur_us desc)
  /// order. Does not clear; pair with reset() between runs.
  [[nodiscard]] std::vector<ProfileEvent> collect() const;
  /// Drops every buffered span.
  void reset();

 private:
  Profiler();

  struct Buffer {
    std::mutex mu;
    std::vector<ProfileEvent> events;
  };
  Buffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> sampling_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::int64_t epoch_unix_us_ = 0;
  mutable std::mutex mu_;  // guards buffers_ and stacks_ (registration,
                           // collect, snapshot)
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::vector<std::unique_ptr<ScopeStack>> stacks_;
};

/// RAII timer behind DCS_OBS_SCOPE. `name` must be a string literal.
class ScopeTimer {
 public:
  explicit ScopeTimer(const char* name) noexcept {
    Profiler& p = Profiler::instance();
    if (p.enabled()) {
      name_ = name;
      start_us_ = p.now_us();
    }
    if (p.sampling()) {
      stack_ = &p.local_stack();
      stack_->push(name, Profiler::thread_lane());
    }
  }
  ~ScopeTimer() {
    if (stack_ != nullptr) stack_->pop();
    if (name_ != nullptr) {
      Profiler& p = Profiler::instance();
      p.record(name_, start_us_, p.now_us() - start_us_);
    }
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  const char* name_ = nullptr;
  ScopeStack* stack_ = nullptr;
  double start_us_ = 0.0;
};

/// Per-scope aggregate for BENCH_*.json perf records.
struct ScopeStats {
  std::size_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
  [[nodiscard]] double mean_us() const noexcept {
    return count > 0 ? total_us / static_cast<double>(count) : 0.0;
  }
};

using ProfileSummary = std::map<std::string, ScopeStats>;

[[nodiscard]] ProfileSummary summarize(const std::vector<ProfileEvent>& events);

/// Appends the spans to `tracer` as wall-domain 'X' events (one Chrome
/// lane per worker) and names the lanes "worker-<lane>" / "main".
void export_to(Tracer& tracer, const std::vector<ProfileEvent>& events);

}  // namespace dcs::obs

#define DCS_OBS_CONCAT_INNER(a, b) a##b
#define DCS_OBS_CONCAT(a, b) DCS_OBS_CONCAT_INNER(a, b)
/// Times the enclosing scope under `name` (a string literal) when the
/// process-wide Profiler is enabled.
#define DCS_OBS_SCOPE(name) \
  ::dcs::obs::ScopeTimer DCS_OBS_CONCAT(dcs_obs_scope_, __LINE__)(name)
