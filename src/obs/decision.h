// Decision provenance records: *why* the controller did what it did, as
// first-class trace data.
//
// The trace plane so far records what happened — phase edges, counter
// tracks, latency histograms — but not which rule fired, what measured
// inputs it evaluated, or what event set it off. A DecisionLog closes that
// gap: every rule firing (sprint onset/end, a degradation-ladder move, the
// SLO violation latch, an admission clamp, reserve arbitration) emits one
// schema-versioned instant event with
//
//   cat  = "decision"
//   name = the rule (to_string(DecisionRule))
//   args = {"schema": 1, "id": "d<lane>-<seq>", "cause": <id>,
//           "in_<name>": <measured input>..., "th_<name>": <threshold>...,
//           <rule-specific string extras>}
//
// so chains like fault -> watchdog -> ladder shed -> degree drop become
// queryable offline (tools/trace_query explain/audit, obs/query.h).
//
// Causality is positional, not guessed: *trigger* rules (fault inject/
// clear, watchdog violation, supply disturbance, burst start/end, the
// breaker screen, the SLO latch) update the log's current cause; every
// subsequent record cites it, and a trigger record itself cites the
// previous cause (a watchdog violation caused by a fault links back to the
// injection). Emission order inside a tick — injector before controller,
// controller edges trigger-first, watchdog after, serving components last —
// guarantees a consequence never precedes its cause in the stream.
//
// Determinism: records ride the owning Tracer's sim-domain stream, ids
// embed the tracer's lane (the sweep task index) plus a per-log sequence
// number, and nothing reads a clock — set_now() is stamped by the run
// driver each control period. A sweep that gives each task its own Tracer
// and DecisionLog therefore produces bit-identical decision streams for
// any thread count or shard split, the same contract as every other sim
// event.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/units.h"

namespace dcs::obs {

/// Decision-record schema version, written into every record's args.
inline constexpr int kDecisionSchema = 1;

/// Every rule that can fire a DecisionRecord. Trigger rules (is_trigger)
/// start causal chains; the rest cite the latest trigger as their cause.
enum class DecisionRule {
  // triggers
  kFaultInject = 0,       ///< a scheduled fault became active
  kFaultClear,            ///< a scheduled fault ended
  kWatchdogViolation,     ///< an invariant-violation episode began
  kSupplyDisturbance,     ///< the utility feed fell below its rating
  kBurstStart,            ///< measured demand crossed above 1
  kBurstEnd,              ///< measured demand fell back to 1
  kBreakerScreen,         ///< the DC breaker's trip margin crossed the watch
  kSloLatchSet,           ///< serving window p99 crossed the SLO target
  // consequences
  kSloLatchRelease,       ///< p99 recovered below hysteresis x target
  kSprintOnset,           ///< realized degree crossed above 1
  kSprintEnd,             ///< realized degree fell back to 1
  kLadderDerate,          ///< ladder: feasibility re-solved on degraded set
  kLadderShed,            ///< ladder: degree shed below the strategy bound
  kLadderSprintEnded,     ///< ladder: a fault/disturbance ended the sprint
  kLadderPowerCap,        ///< ladder: power-cap fallback engaged
  kLadderRecovered,       ///< ladder moved back toward nominal
  kReserveArbitration,    ///< SLO strategy ceded to admission control
  kAdmissionClamp,        ///< serving admission began denying requests
  kAdmissionRelease,      ///< serving admission stopped denying requests
  kSloBudgetExhausted,    ///< the run's SLO error budget ran out
};

[[nodiscard]] std::string_view to_string(DecisionRule rule) noexcept;

/// Trigger rules update the DecisionLog's current cause; consequence rules
/// only cite it.
[[nodiscard]] bool is_trigger(DecisionRule rule) noexcept;

/// One named measured input ("in_<key>") or threshold ("th_<key>").
struct DecisionValue {
  std::string_view key;
  double value = 0.0;
};

/// Emits DecisionRecords into a Tracer's sim-domain stream. Not
/// thread-safe — one DecisionLog per run/task, same ownership rule as the
/// Tracer it writes through.
class DecisionLog {
 public:
  /// `tracer` receives the records and must outlive the log; its lane at
  /// emit time becomes part of every record id.
  explicit DecisionLog(Tracer* tracer);

  /// Stamps the simulated time for subsequently emitted records. The run
  /// driver calls this once per control period, before anything that may
  /// emit (components ticking after the driver share the same stamp).
  void set_now(Duration now) noexcept { now_ = now; }
  [[nodiscard]] Duration now() const noexcept { return now_; }

  /// Emits one record and returns its id. `inputs` are the measured values
  /// the rule evaluated, `thresholds` what they were compared against;
  /// `extras` (pre-rendered via obs::arg) are appended verbatim. A trigger
  /// rule replaces the current cause with the new record's id *after*
  /// emission, so a trigger still cites whatever caused it.
  std::string emit(DecisionRule rule,
                   std::initializer_list<DecisionValue> inputs,
                   std::initializer_list<DecisionValue> thresholds,
                   std::vector<TraceArg> extras = {});

  /// Id of the latest trigger record ("" before the first trigger): the
  /// cause the next consequence record will cite.
  [[nodiscard]] const std::string& current_cause() const noexcept {
    return cause_;
  }
  /// Records emitted so far.
  [[nodiscard]] std::size_t count() const noexcept { return seq_; }

 private:
  Tracer* tracer_;
  Duration now_ = Duration::zero();
  std::uint64_t seq_ = 0;
  std::string cause_;
};

}  // namespace dcs::obs
