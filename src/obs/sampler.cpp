#include "obs/sampler.h"

#include <chrono>
#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/profile.h"
#include "util/check.h"

namespace dcs::obs {
namespace {

std::string lane_label(std::uint32_t lane) {
  return lane == 0 ? "main" : "worker-" + std::to_string(lane);
}

}  // namespace

Sampler& Sampler::instance() {
  static Sampler sampler;
  return sampler;
}

void Sampler::start(Duration period) {
  DCS_REQUIRE(period.sec() > 0.0, "sampler period must be positive");
  const std::lock_guard<std::mutex> lock(mu_);
  if (++refs_ > 1) return;  // nested sweeps share the first thread
  Profiler::instance().set_sampling(true);
  stop_requested_ = false;
  thread_ = std::thread([this, period] { loop(period); });
}

void Sampler::stop() {
  std::thread to_join;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    DCS_REQUIRE(refs_ > 0, "Sampler::stop without a matching start");
    if (--refs_ > 0) return;
    stop_requested_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  to_join.join();
  Profiler::instance().set_sampling(false);
}

bool Sampler::active() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return refs_ > 0;
}

void Sampler::loop(Duration period) {
  const auto wait =
      std::chrono::duration<double>(period.sec());
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, wait, [this] { return stop_requested_; });
    if (stop_requested_) return;
    lock.unlock();
    const std::vector<Profiler::StackSample> stacks =
        Profiler::instance().snapshot_stacks();
    {
      const std::lock_guard<std::mutex> samples_lock(samples_mu_);
      ++sample_count_;
      for (const Profiler::StackSample& s : stacks) {
        std::string key = lane_label(s.lane);
        for (const char* frame : s.frames) {
          key += ';';
          key += frame;
        }
        ++samples_[key];
      }
    }
    lock.lock();
  }
}

std::size_t Sampler::sample_count() const {
  const std::lock_guard<std::mutex> lock(samples_mu_);
  return sample_count_;
}

FoldedStacks Sampler::folded() const {
  const std::lock_guard<std::mutex> lock(samples_mu_);
  return samples_;
}

void Sampler::reset() {
  const std::lock_guard<std::mutex> lock(samples_mu_);
  samples_.clear();
  sample_count_ = 0;
}

double Sampler::env_hz() {
  const char* value = std::getenv("DCS_OBS_SAMPLER");
  if (value == nullptr || *value == '\0') return 0.0;
  char* end = nullptr;
  const double hz = std::strtod(value, &end);
  if (end == value || hz <= 0.0) return 0.0;
  return hz;
}

void write_folded(std::ostream& out, const FoldedStacks& folded) {
  for (const auto& [stack, count] : folded) {
    out << stack << ' ' << count << '\n';
  }
}

ScopedSamplerRun::ScopedSamplerRun() {
  const double hz = Sampler::env_hz();
  if (hz <= 0.0) return;
  Sampler::instance().start(Duration::seconds(1.0 / hz));
  started_ = true;
}

ScopedSamplerRun::~ScopedSamplerRun() {
  if (started_) Sampler::instance().stop();
}

}  // namespace dcs::obs
