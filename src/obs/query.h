// Offline trace analysis behind tools/trace_query: loads any of the repo's
// trace encodings into one flat event list and computes per-scope duration
// stats, counter-track statistics and threshold-crossing windows — the
// questions every sprint trace gets asked ("how long were the sprints",
// "when did cb_trip_margin_s dip below 0.5 s", "which intervals violated
// the serving p99 SLO").
//
// Accepted inputs (auto-detected):
//   * Chrome trace-event JSON   (`*_trace.json`, Tracer/ChromeStreamSink)
//   * trace JSONL               (`*_trace.jsonl`, one event object per line)
//   * telemetry / timeline JSONL (obs/telemetry.h streams and the
//     dispatcher's merged `timeline.jsonl` — "ev" lines carry the events,
//     and the timeline's "src" tag survives into QueryEvent::src so stats
//     can be grouped per shard process)
//
// All results are deterministic: events keep file order, groups iterate in
// sorted key order, so CSV output is byte-stable and diffable across runs
// of the same trace (the perf-gate trend workflow).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dcs::obs::query {

/// One trace event, decoded from any input format. `src` is the producing
/// process ("" for single-process traces; "dispatcher"/"shard0#1"/... in
/// merged timelines).
struct QueryEvent {
  std::string src;
  std::string domain;  // "sim" | "wall"
  char ph = 'i';
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t lane = 0;
  std::string cat;
  std::string name;
  /// Counter payload ('C' events with a numeric "value" arg).
  double value = 0.0;
  bool has_value = false;
  /// Decoded args of instant ('i') events, in sorted key order. Values are
  /// canonical literals: strings raw (unquoted), numbers via
  /// json::number_to_string, bools "true"/"false". Only instants keep
  /// their args — they carry the structured payloads (decision records,
  /// fault injections); span/counter args stay on the cheaper paths.
  std::vector<std::pair<std::string, std::string>> args;
};

struct TraceData {
  std::vector<QueryEvent> events;
};

/// Loads a trace file, auto-detecting the encoding. Throws
/// std::invalid_argument when the file cannot be read or parsed.
[[nodiscard]] TraceData load_trace(const std::string& path);

/// Duration statistics over 'X' span events, grouped by (src, name).
struct ScopeStat {
  std::string src;
  std::string name;
  std::size_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
  [[nodiscard]] double mean_us() const noexcept {
    return count > 0 ? total_us / static_cast<double>(count) : 0.0;
  }
};
[[nodiscard]] std::vector<ScopeStat> scope_stats(const TraceData& trace);

/// Value statistics over 'C' counter samples, grouped by (src, track name).
struct CounterStat {
  std::string src;
  std::string name;
  std::size_t points = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double last = 0.0;
};
[[nodiscard]] std::vector<CounterStat> counter_stats(const TraceData& trace);

/// A maximal interval during which a counter track satisfied the threshold
/// predicate. Counter tracks are step functions: a sample's value holds
/// until the track's next sample; an interval still open at the track's
/// last sample closes there (end_us == last sample's ts). Each (src, lane)
/// pair is an independent track — sweep benches trace every grid task in
/// its own lane, and interleaving those step functions would shred the
/// windows.
struct ThresholdWindow {
  std::string src;
  std::uint32_t lane = 0;
  double start_us = 0.0;
  double end_us = 0.0;
  /// Most extreme value inside the window (min for `below`, max otherwise).
  double extreme = 0.0;
  [[nodiscard]] double duration_us() const noexcept {
    return end_us - start_us;
  }
};

struct ThresholdQuery {
  /// Counter track name (QueryEvent::name of the 'C' samples).
  std::string track;
  double threshold = 0.0;
  /// true: windows where value < threshold; false: value > threshold.
  bool below = true;
  /// Windows shorter than this are dropped (0 keeps everything).
  double min_duration_us = 0.0;
};

/// Threshold-crossing windows per (source process, lane), in
/// (src, lane, start) order.
[[nodiscard]] std::vector<ThresholdWindow> threshold_windows(
    const TraceData& trace, const ThresholdQuery& query);

// ---------------------------------------------------------------------------
// Decision provenance (obs/decision.h records in the trace)

/// One DecisionRecord recovered from a cat="decision" instant event.
struct DecisionRecord {
  /// Index of the backing event in TraceData::events (for args access).
  std::size_t event_index = 0;
  std::string src;
  std::uint32_t lane = 0;
  double ts_us = 0.0;
  std::string rule;   ///< event name, e.g. "sprint-onset"
  std::string id;     ///< "d<lane>-<seq>"
  std::string cause;  ///< cited cause id; "" for chain roots
};

/// Every decision record in the trace, in file order.
[[nodiscard]] std::vector<DecisionRecord> decision_records(
    const TraceData& trace);

/// A reconstructed causal chain: the queried record first, then its cause,
/// its cause's cause, ... back to a root (a record citing no cause).
/// Cause ids resolve to the *latest* earlier record (file order) with that
/// id in the same src — lanes may be reused across sweeps within one file,
/// so "latest earlier" picks the instance actually in scope.
struct ExplainChain {
  /// Indices into the decision_records() vector, target first.
  std::vector<std::size_t> chain;
  /// The cause id the walk could not resolve; "" when the chain is
  /// complete (ends at a root).
  std::string dangling;
  [[nodiscard]] bool complete() const noexcept { return dangling.empty(); }
};

[[nodiscard]] ExplainChain explain_record(
    const std::vector<DecisionRecord>& records, std::size_t target);

/// Per-(src, rule) decision inventory with chain-resolution counts.
struct AuditRow {
  std::string src;
  std::string rule;
  std::size_t count = 0;     ///< records of this rule
  std::size_t roots = 0;     ///< records citing no cause
  std::size_t resolved = 0;  ///< records whose full chain reaches a root
  std::size_t dangling = 0;  ///< records whose chain hits a missing id
};

[[nodiscard]] std::vector<AuditRow> audit(
    const std::vector<DecisionRecord>& records);

/// A decreasing step in a counter track that is contractually monotone
/// (e.g. slo_budget_violations). Tracks are per (src, lane), in time order.
struct MonotoneViolation {
  std::string src;
  std::uint32_t lane = 0;
  double ts_us = 0.0;
  double prev = 0.0;
  double value = 0.0;
};

[[nodiscard]] std::vector<MonotoneViolation> counter_monotone(
    const TraceData& trace, const std::string& track);

// ---------------------------------------------------------------------------
// Writers. CSV: header + one row per entry. JSONL: one object per row with
// a fixed key order. Both byte-stable (numbers via the exact-round-trip
// json::number_to_string renderer).

void write_scope_csv(std::ostream& out, const std::vector<ScopeStat>& stats);
void write_counter_csv(std::ostream& out,
                       const std::vector<CounterStat>& stats);
void write_window_csv(std::ostream& out,
                      const std::vector<ThresholdWindow>& windows);
void write_decision_csv(std::ostream& out,
                        const std::vector<DecisionRecord>& records);
/// One row per chain link: target id, depth (0 = the explained record),
/// then the link's fields; a dangling chain ends with a "missing" row.
void write_explain_csv(std::ostream& out,
                       const std::vector<DecisionRecord>& records,
                       const std::vector<ExplainChain>& chains);
void write_audit_csv(std::ostream& out, const std::vector<AuditRow>& rows);

void write_scope_jsonl(std::ostream& out, const std::vector<ScopeStat>& stats);
void write_counter_jsonl(std::ostream& out,
                         const std::vector<CounterStat>& stats);
void write_window_jsonl(std::ostream& out,
                        const std::vector<ThresholdWindow>& windows);
/// JSONL decision rows include the record's full args object (inputs,
/// thresholds, extras) — the machine-readable face of the audit plane.
void write_decision_jsonl(std::ostream& out, const TraceData& trace,
                          const std::vector<DecisionRecord>& records);
void write_explain_jsonl(std::ostream& out, const TraceData& trace,
                         const std::vector<DecisionRecord>& records,
                         const std::vector<ExplainChain>& chains);
void write_audit_jsonl(std::ostream& out, const std::vector<AuditRow>& rows);

}  // namespace dcs::obs::query
