// Structured trace events for the sprinting stack, exportable as JSONL and
// as Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Two clock domains share one Tracer:
//  * kSim — events stamped with *simulated* time (controller phase
//    transitions, fault injection, watchdog violations, recorder counter
//    tracks). These are part of the deterministic result surface: for a
//    fixed configuration the sim-event stream is bit-identical for any
//    thread count. Sweeps get this by giving each task its own Tracer (the
//    task owns its slot, same contract as the runner's result rows) and
//    merging in task order.
//  * kWall — wall-clock profiling spans from obs/profile.h. They carry
//    "where did the time go", never results, and are not deterministic.
//
// A Tracer either buffers events in memory (the default — events() exposes
// them for tests and task-order merging) or forwards them to a TraceSink
// (obs/sink.h) for bounded-memory streaming of traces larger than RAM.
//
// The Tracer itself is not thread-safe: one Tracer per run/task, merged
// afterwards on one thread.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace dcs::obs {

enum class Domain { kSim = 0, kWall = 1 };

[[nodiscard]] std::string_view to_string(Domain domain) noexcept;

/// One key/value event argument. `value` is a pre-rendered JSON literal
/// (a shortest-round-trip number — strtod recovers the exact bits — or an
/// escaped quoted string), so writers can emit it verbatim.
struct TraceArg {
  std::string key;
  std::string value;
};

[[nodiscard]] TraceArg arg(std::string key, double value);
[[nodiscard]] TraceArg arg(std::string key, std::string_view value);
[[nodiscard]] TraceArg arg(std::string key, bool value);

struct TraceEvent {
  Domain domain = Domain::kSim;
  /// Chrome trace-event phase: 'i' instant, 'X' complete span, 'C' counter.
  char phase = 'i';
  /// Microseconds: simulated time (kSim) or wall time since the profiler
  /// epoch (kWall).
  double ts_us = 0.0;
  /// Span length ('X' events only).
  double dur_us = 0.0;
  /// Lane ("tid" in the Chrome format): sweep task index for sim events,
  /// worker lane for wall events.
  std::uint32_t lane = 0;
  std::string cat;
  std::string name;
  std::vector<TraceArg> args;
};

/// Consumer of a Tracer's event stream. Implementations decide what storing
/// an event means: the Tracer's built-in buffer, a bounded-memory file
/// stream (obs/sink.h), a tee, ... Sinks see events in append order; lane
/// metadata may arrive at any point before finalize().
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
  virtual void write_lane_name(Domain domain, std::uint32_t lane,
                               const std::string& name) = 0;
  /// Flushes buffered events and completes the output (for file sinks: a
  /// valid, loadable trace). Idempotent; writing after finalize() is a
  /// contract violation.
  virtual void finalize() = 0;
  /// False once the sink can no longer store events (file sinks: a write
  /// failed, e.g. disk full). Composite sinks (TeeSink) report unhealthy as
  /// soon as any child does, so one full disk cannot silently truncate one
  /// of several outputs while the run reports success.
  [[nodiscard]] virtual bool healthy() const { return true; }
};

class Tracer {
 public:
  Tracer() = default;
  /// A streaming Tracer: every appended event is forwarded to `sink`
  /// instead of being buffered (events() stays empty, count() still
  /// tracks totals). `sink` must outlive the Tracer; the caller finalizes.
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  /// Lane stamped on subsequently appended sim events (sweeps set this to
  /// the task index so merged traces keep one lane per task).
  void set_lane(std::uint32_t lane) noexcept { lane_ = lane; }
  [[nodiscard]] std::uint32_t lane() const noexcept { return lane_; }

  [[nodiscard]] TraceSink* sink() const noexcept { return sink_; }

  /// Appends a sim-domain instant event at simulated time `t`.
  void instant(Duration t, std::string_view cat, std::string_view name,
               std::vector<TraceArg> args = {});
  /// Appends a sim-domain counter event ('C') at simulated time `t`.
  void counter(Duration t, std::string_view cat, std::string_view name,
               std::vector<TraceArg> args);
  /// Appends a fully-specified event (profiling export, tests).
  void append(TraceEvent event);

  /// Appends every event of `other` in order (task-order sweep merging).
  /// Lane names are merged too; `other` is left empty, so a second merge
  /// from the same source is a no-op rather than a silent duplication.
  /// Self-merge is a precondition violation.
  void merge_from(Tracer&& other);

  /// Names a lane in the Chrome export ("thread_name" metadata).
  void name_lane(Domain domain, std::uint32_t lane, std::string name);

  /// Buffered events (empty in streaming mode — the sink consumed them).
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  /// Lane metadata registered via name_lane, keyed by (domain, lane) —
  /// lets a late-attached sink (telemetry forwarding) replay the names.
  [[nodiscard]] const std::map<std::pair<Domain, std::uint32_t>, std::string>&
  lane_names() const noexcept {
    return lane_names_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return counts_[0] + counts_[1] == 0;
  }
  /// Events appended so far per domain — maintained in both buffered and
  /// streaming mode.
  [[nodiscard]] std::size_t count(Domain domain) const noexcept {
    return counts_[static_cast<int>(domain)];
  }
  void clear();

  /// One JSON object per line, every event in append order.
  void write_jsonl(std::ostream& out) const;
  /// Chrome trace-event JSON: {"traceEvents": [...]} with process/thread
  /// metadata (pid 1 = "sim", pid 2 = "wall"); loads in Perfetto.
  void write_chrome_trace(std::ostream& out) const;

 private:
  std::uint32_t lane_ = 0;
  TraceSink* sink_ = nullptr;
  std::size_t counts_[2] = {0, 0};
  std::vector<TraceEvent> events_;
  std::map<std::pair<Domain, std::uint32_t>, std::string> lane_names_;
};

/// Writes `<dir>/<name>_trace.json` (Chrome) and `<dir>/<name>_trace.jsonl`.
/// Returns false (after a diagnostic on `diag`) when a file cannot open.
bool export_trace(const std::string& dir, const std::string& name,
                  const Tracer& tracer, std::ostream* diag = nullptr);

namespace detail {
// Shared JSON rendering between the buffered writers above and the
// streaming sinks in obs/sink.h. The append_* forms build into a caller
// buffer with std::to_chars — the bulk exporters serialize hundreds of
// thousands of events, where per-event ostream formatting dominated the
// day-long fig01 wall time. The ostream forms delegate to them.
[[nodiscard]] std::string render_number(double v);
[[nodiscard]] std::string render_string(std::string_view s);
[[nodiscard]] int pid_of(Domain domain) noexcept;
void append_number(std::string& out, double v);
void append_json_string(std::string& out, std::string_view s);
void append_event_json(std::string& out, const TraceEvent& e);
void append_jsonl_event(std::string& out, const TraceEvent& e);
void write_event_json(std::ostream& out, const TraceEvent& e);
void write_jsonl_event(std::ostream& out, const TraceEvent& e);
void write_lane_metadata_json(std::ostream& out, Domain domain,
                              std::uint32_t lane, const std::string& name);
void write_process_metadata_json(std::ostream& out, Domain domain);
}  // namespace detail

}  // namespace dcs::obs
