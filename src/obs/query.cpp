#include "obs/query.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace dcs::obs::query {
namespace {

/// The numeric payload of a parsed "args" object: the "value" member if
/// numeric, else the first numeric member (map order).
bool args_value(const json::Value& args, double* out) {
  if (!args.is_object()) return false;
  const auto numeric = [&](const json::Value& v, double* value) {
    if (v.is_number()) {
      *value = v.as_number();
      return true;
    }
    if (v.is_string()) {
      // number_to_string renders non-finite values as marker strings.
      try {
        *value = json::read_number(v);
        return true;
      } catch (const std::exception&) {
        return false;
      }
    }
    return false;
  };
  const json::Value* direct = args.find("value");
  if (direct != nullptr && numeric(*direct, out)) return true;
  for (const auto& [key, v] : args.as_object()) {
    if (numeric(v, out)) return true;
  }
  return false;
}

void load_chrome(const json::Value& doc, TraceData* trace) {
  const json::Value* events = doc.find("traceEvents");
  DCS_REQUIRE(events != nullptr && events->is_array(),
              "chrome trace has no traceEvents array");
  // First pass: process names, so merged timelines ("shard0/sim") resolve
  // to (src, domain) while single-process traces ("sim") keep src empty.
  std::map<int, std::string> process_names;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = (*events)[i];
    const json::Value* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "M") continue;
    const json::Value* name = e.find("name");
    if (name == nullptr || name->as_string() != "process_name") continue;
    process_names[static_cast<int>(e.at("pid").as_number())] =
        e.at("args").at("name").as_string();
  }
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = (*events)[i];
    const std::string& ph = e.at("ph").as_string();
    if (ph.empty() || ph == "M") continue;
    QueryEvent q;
    q.ph = ph[0];
    q.ts_us = e.at("ts").as_number();
    const json::Value* dur = e.find("dur");
    if (dur != nullptr) q.dur_us = dur->as_number();
    const json::Value* tid = e.find("tid");
    if (tid != nullptr) q.lane = static_cast<std::uint32_t>(tid->as_number());
    const json::Value* cat = e.find("cat");
    if (cat != nullptr && cat->is_string()) q.cat = cat->as_string();
    const json::Value* name = e.find("name");
    if (name != nullptr && name->is_string()) q.name = name->as_string();
    const auto it =
        process_names.find(static_cast<int>(e.at("pid").as_number()));
    const std::string process = it != process_names.end() ? it->second : "";
    const std::size_t slash = process.find('/');
    if (slash == std::string::npos) {
      q.domain = process;
    } else {
      q.src = process.substr(0, slash);
      q.domain = process.substr(slash + 1);
    }
    const json::Value* args = e.find("args");
    if (q.ph == 'C' && args != nullptr) {
      q.has_value = args_value(*args, &q.value);
    }
    trace->events.push_back(std::move(q));
  }
}

/// One JSONL line: a plain trace event ({"domain": ..., "ph": ...}) or a
/// telemetry/timeline line ({"t": "ev", ...}); anything else is skipped.
void load_jsonl_line(std::string_view line, TraceData* trace) {
  const json::Value e = json::parse(line);
  if (!e.is_object()) return;
  const json::Value* type = e.find("t");
  if (type != nullptr && (!type->is_string() || type->as_string() != "ev")) {
    return;  // header/hb/metric/stack/end lines carry no events
  }
  const json::Value* domain = e.find("domain");
  const json::Value* ph = e.find("ph");
  if (domain == nullptr || ph == nullptr || !ph->is_string() ||
      ph->as_string().empty()) {
    return;
  }
  QueryEvent q;
  const json::Value* src = e.find("src");
  if (src != nullptr && src->is_string()) q.src = src->as_string();
  q.domain = domain->as_string();
  q.ph = ph->as_string()[0];
  q.ts_us = e.at("ts").as_number();
  const json::Value* dur = e.find("dur");
  if (dur != nullptr) q.dur_us = dur->as_number();
  const json::Value* lane = e.find("lane");
  if (lane != nullptr) q.lane = static_cast<std::uint32_t>(lane->as_number());
  const json::Value* cat = e.find("cat");
  if (cat != nullptr && cat->is_string()) q.cat = cat->as_string();
  const json::Value* name = e.find("name");
  if (name != nullptr && name->is_string()) q.name = name->as_string();
  const json::Value* args = e.find("args");
  if (q.ph == 'C' && args != nullptr) {
    q.has_value = args_value(*args, &q.value);
  }
  trace->events.push_back(std::move(q));
}

}  // namespace

TraceData load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCS_REQUIRE(static_cast<bool>(in), "cannot read trace " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  TraceData trace;
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return trace;

  // A Chrome trace is one document whose first line has no newline-bounded
  // object-per-line shape; detect it by the traceEvents key up front.
  const std::size_t first_nl = text.find('\n', first);
  const std::string_view head(text.data() + first,
                              (first_nl == std::string::npos ? text.size()
                                                             : first_nl) -
                                  first);
  if (head.find("\"traceEvents\"") != std::string_view::npos) {
    load_chrome(json::parse(text), &trace);
    return trace;
  }
  std::size_t begin = first;
  while (begin < text.size()) {
    std::size_t nl = text.find('\n', begin);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line(text.data() + begin, nl - begin);
    if (!line.empty() && line.find_first_not_of(" \t\r") != std::string_view::npos) {
      try {
        load_jsonl_line(line, &trace);
      } catch (const std::exception&) {
        // Torn trailing line of a crashed worker's stream: skip, the rest
        // of the file is still a valid trace.
      }
    }
    begin = nl + 1;
  }
  return trace;
}

std::vector<ScopeStat> scope_stats(const TraceData& trace) {
  std::map<std::pair<std::string, std::string>, ScopeStat> groups;
  for (const QueryEvent& e : trace.events) {
    if (e.ph != 'X') continue;
    ScopeStat& s = groups[{e.src, e.name}];
    if (s.count == 0) {
      s.src = e.src;
      s.name = e.name;
      s.min_us = e.dur_us;
      s.max_us = e.dur_us;
    }
    ++s.count;
    s.total_us += e.dur_us;
    s.min_us = std::min(s.min_us, e.dur_us);
    s.max_us = std::max(s.max_us, e.dur_us);
  }
  std::vector<ScopeStat> out;
  out.reserve(groups.size());
  for (auto& [key, stat] : groups) out.push_back(std::move(stat));
  return out;
}

std::vector<CounterStat> counter_stats(const TraceData& trace) {
  struct Acc {
    CounterStat stat;
    double sum = 0.0;
  };
  std::map<std::pair<std::string, std::string>, Acc> groups;
  for (const QueryEvent& e : trace.events) {
    if (e.ph != 'C' || !e.has_value) continue;
    Acc& a = groups[{e.src, e.name}];
    if (a.stat.points == 0) {
      a.stat.src = e.src;
      a.stat.name = e.name;
      a.stat.min = e.value;
      a.stat.max = e.value;
    }
    ++a.stat.points;
    a.sum += e.value;
    a.stat.min = std::min(a.stat.min, e.value);
    a.stat.max = std::max(a.stat.max, e.value);
    a.stat.last = e.value;
  }
  std::vector<CounterStat> out;
  out.reserve(groups.size());
  for (auto& [key, acc] : groups) {
    acc.stat.mean = acc.sum / static_cast<double>(acc.stat.points);
    out.push_back(std::move(acc.stat));
  }
  return out;
}

std::vector<ThresholdWindow> threshold_windows(const TraceData& trace,
                                               const ThresholdQuery& query) {
  DCS_REQUIRE(!query.track.empty(), "threshold query needs a track name");
  // Samples per (source, lane) track, in trace order; counter exporters
  // emit in time order, but a stable sort keeps merged inputs honest.
  std::map<std::pair<std::string, std::uint32_t>,
           std::vector<std::pair<double, double>>>
      tracks;
  for (const QueryEvent& e : trace.events) {
    if (e.ph != 'C' || !e.has_value || e.name != query.track) continue;
    tracks[{e.src, e.lane}].emplace_back(e.ts_us, e.value);
  }
  std::vector<ThresholdWindow> out;
  for (auto& [key, samples] : tracks) {
    std::stable_sort(samples.begin(), samples.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    bool open = false;
    ThresholdWindow w;
    const auto matches = [&](double v) {
      return query.below ? v < query.threshold : v > query.threshold;
    };
    const auto close_at = [&](double ts) {
      w.end_us = ts;
      if (w.duration_us() >= query.min_duration_us) out.push_back(w);
      open = false;
    };
    for (const auto& [ts, value] : samples) {
      if (matches(value)) {
        if (!open) {
          open = true;
          w = ThresholdWindow{};
          w.src = key.first;
          w.lane = key.second;
          w.start_us = ts;
          w.extreme = value;
        } else {
          w.extreme = query.below ? std::min(w.extreme, value)
                                  : std::max(w.extreme, value);
        }
      } else if (open) {
        // The step function left the region when this sample took effect.
        close_at(ts);
      }
    }
    if (open && !samples.empty()) close_at(samples.back().first);
  }
  return out;
}

void write_scope_csv(std::ostream& out, const std::vector<ScopeStat>& stats) {
  out << "src,name,count,total_us,mean_us,min_us,max_us\n";
  for (const ScopeStat& s : stats) {
    out << s.src << "," << s.name << "," << s.count << ","
        << json::number_to_string(s.total_us) << ","
        << json::number_to_string(s.mean_us()) << ","
        << json::number_to_string(s.min_us) << ","
        << json::number_to_string(s.max_us) << "\n";
  }
}

void write_counter_csv(std::ostream& out,
                       const std::vector<CounterStat>& stats) {
  out << "src,name,points,min,mean,max,last\n";
  for (const CounterStat& s : stats) {
    out << s.src << "," << s.name << "," << s.points << ","
        << json::number_to_string(s.min) << ","
        << json::number_to_string(s.mean) << ","
        << json::number_to_string(s.max) << ","
        << json::number_to_string(s.last) << "\n";
  }
}

void write_window_csv(std::ostream& out,
                      const std::vector<ThresholdWindow>& windows) {
  out << "src,lane,start_us,end_us,duration_us,extreme\n";
  for (const ThresholdWindow& w : windows) {
    out << w.src << "," << w.lane << ","
        << json::number_to_string(w.start_us) << ","
        << json::number_to_string(w.end_us) << ","
        << json::number_to_string(w.duration_us()) << ","
        << json::number_to_string(w.extreme) << "\n";
  }
}

}  // namespace dcs::obs::query
