#include "obs/query.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/trace.h"
#include "util/json.h"

namespace dcs::obs::query {
namespace {

/// The numeric payload of a parsed "args" object: the "value" member if
/// numeric, else the first numeric member (map order).
bool args_value(const json::Value& args, double* out) {
  if (!args.is_object()) return false;
  const auto numeric = [&](const json::Value& v, double* value) {
    if (v.is_number()) {
      *value = v.as_number();
      return true;
    }
    if (v.is_string()) {
      // number_to_string renders non-finite values as marker strings.
      try {
        *value = json::read_number(v);
        return true;
      } catch (const std::exception&) {
        return false;
      }
    }
    return false;
  };
  const json::Value* direct = args.find("value");
  if (direct != nullptr && numeric(*direct, out)) return true;
  for (const auto& [key, v] : args.as_object()) {
    if (numeric(v, out)) return true;
  }
  return false;
}

/// Decodes an instant event's args into canonical (key, literal) pairs.
void capture_args(const json::Value& args, QueryEvent* q) {
  if (!args.is_object()) return;
  for (const auto& [key, v] : args.as_object()) {
    if (v.is_string()) {
      q->args.emplace_back(key, v.as_string());
    } else if (v.is_number()) {
      q->args.emplace_back(key, json::number_to_string(v.as_number()));
    } else if (v.is_bool()) {
      q->args.emplace_back(key, v.as_bool() ? "true" : "false");
    }
  }
}

void load_chrome(const json::Value& doc, TraceData* trace) {
  const json::Value* events = doc.find("traceEvents");
  DCS_REQUIRE(events != nullptr && events->is_array(),
              "chrome trace has no traceEvents array");
  // First pass: process names, so merged timelines ("shard0/sim") resolve
  // to (src, domain) while single-process traces ("sim") keep src empty.
  std::map<int, std::string> process_names;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = (*events)[i];
    const json::Value* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string() || ph->as_string() != "M") continue;
    const json::Value* name = e.find("name");
    if (name == nullptr || name->as_string() != "process_name") continue;
    process_names[static_cast<int>(e.at("pid").as_number())] =
        e.at("args").at("name").as_string();
  }
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = (*events)[i];
    const std::string& ph = e.at("ph").as_string();
    if (ph.empty() || ph == "M") continue;
    QueryEvent q;
    q.ph = ph[0];
    q.ts_us = e.at("ts").as_number();
    const json::Value* dur = e.find("dur");
    if (dur != nullptr) q.dur_us = dur->as_number();
    const json::Value* tid = e.find("tid");
    if (tid != nullptr) q.lane = static_cast<std::uint32_t>(tid->as_number());
    const json::Value* cat = e.find("cat");
    if (cat != nullptr && cat->is_string()) q.cat = cat->as_string();
    const json::Value* name = e.find("name");
    if (name != nullptr && name->is_string()) q.name = name->as_string();
    const auto it =
        process_names.find(static_cast<int>(e.at("pid").as_number()));
    const std::string process = it != process_names.end() ? it->second : "";
    const std::size_t slash = process.find('/');
    if (slash == std::string::npos) {
      q.domain = process;
    } else {
      q.src = process.substr(0, slash);
      q.domain = process.substr(slash + 1);
    }
    const json::Value* args = e.find("args");
    if (q.ph == 'C' && args != nullptr) {
      q.has_value = args_value(*args, &q.value);
    } else if (q.ph == 'i' && args != nullptr) {
      capture_args(*args, &q);
    }
    trace->events.push_back(std::move(q));
  }
}

/// One JSONL line: a plain trace event ({"domain": ..., "ph": ...}) or a
/// telemetry/timeline line ({"t": "ev", ...}); anything else is skipped.
void load_jsonl_line(std::string_view line, TraceData* trace) {
  const json::Value e = json::parse(line);
  if (!e.is_object()) return;
  const json::Value* type = e.find("t");
  if (type != nullptr && (!type->is_string() || type->as_string() != "ev")) {
    return;  // header/hb/metric/stack/end lines carry no events
  }
  const json::Value* domain = e.find("domain");
  const json::Value* ph = e.find("ph");
  if (domain == nullptr || ph == nullptr || !ph->is_string() ||
      ph->as_string().empty()) {
    return;
  }
  QueryEvent q;
  const json::Value* src = e.find("src");
  if (src != nullptr && src->is_string()) q.src = src->as_string();
  q.domain = domain->as_string();
  q.ph = ph->as_string()[0];
  q.ts_us = e.at("ts").as_number();
  const json::Value* dur = e.find("dur");
  if (dur != nullptr) q.dur_us = dur->as_number();
  const json::Value* lane = e.find("lane");
  if (lane != nullptr) q.lane = static_cast<std::uint32_t>(lane->as_number());
  const json::Value* cat = e.find("cat");
  if (cat != nullptr && cat->is_string()) q.cat = cat->as_string();
  const json::Value* name = e.find("name");
  if (name != nullptr && name->is_string()) q.name = name->as_string();
  const json::Value* args = e.find("args");
  if (q.ph == 'C' && args != nullptr) {
    q.has_value = args_value(*args, &q.value);
  } else if (q.ph == 'i' && args != nullptr) {
    capture_args(*args, &q);
  }
  trace->events.push_back(std::move(q));
}

}  // namespace

TraceData load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DCS_REQUIRE(static_cast<bool>(in), "cannot read trace " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  TraceData trace;
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return trace;

  // A Chrome trace is one document whose first line has no newline-bounded
  // object-per-line shape; detect it by the traceEvents key up front.
  const std::size_t first_nl = text.find('\n', first);
  const std::string_view head(text.data() + first,
                              (first_nl == std::string::npos ? text.size()
                                                             : first_nl) -
                                  first);
  if (head.find("\"traceEvents\"") != std::string_view::npos) {
    load_chrome(json::parse(text), &trace);
    return trace;
  }
  std::size_t begin = first;
  while (begin < text.size()) {
    std::size_t nl = text.find('\n', begin);
    if (nl == std::string::npos) nl = text.size();
    const std::string_view line(text.data() + begin, nl - begin);
    if (!line.empty() && line.find_first_not_of(" \t\r") != std::string_view::npos) {
      try {
        load_jsonl_line(line, &trace);
      } catch (const std::exception&) {
        // Torn trailing line of a crashed worker's stream: skip, the rest
        // of the file is still a valid trace.
      }
    }
    begin = nl + 1;
  }
  return trace;
}

std::vector<ScopeStat> scope_stats(const TraceData& trace) {
  std::map<std::pair<std::string, std::string>, ScopeStat> groups;
  for (const QueryEvent& e : trace.events) {
    if (e.ph != 'X') continue;
    ScopeStat& s = groups[{e.src, e.name}];
    if (s.count == 0) {
      s.src = e.src;
      s.name = e.name;
      s.min_us = e.dur_us;
      s.max_us = e.dur_us;
    }
    ++s.count;
    s.total_us += e.dur_us;
    s.min_us = std::min(s.min_us, e.dur_us);
    s.max_us = std::max(s.max_us, e.dur_us);
  }
  std::vector<ScopeStat> out;
  out.reserve(groups.size());
  for (auto& [key, stat] : groups) out.push_back(std::move(stat));
  return out;
}

std::vector<CounterStat> counter_stats(const TraceData& trace) {
  struct Acc {
    CounterStat stat;
    double sum = 0.0;
  };
  std::map<std::pair<std::string, std::string>, Acc> groups;
  for (const QueryEvent& e : trace.events) {
    if (e.ph != 'C' || !e.has_value) continue;
    Acc& a = groups[{e.src, e.name}];
    if (a.stat.points == 0) {
      a.stat.src = e.src;
      a.stat.name = e.name;
      a.stat.min = e.value;
      a.stat.max = e.value;
    }
    ++a.stat.points;
    a.sum += e.value;
    a.stat.min = std::min(a.stat.min, e.value);
    a.stat.max = std::max(a.stat.max, e.value);
    a.stat.last = e.value;
  }
  std::vector<CounterStat> out;
  out.reserve(groups.size());
  for (auto& [key, acc] : groups) {
    acc.stat.mean = acc.sum / static_cast<double>(acc.stat.points);
    out.push_back(std::move(acc.stat));
  }
  return out;
}

std::vector<ThresholdWindow> threshold_windows(const TraceData& trace,
                                               const ThresholdQuery& query) {
  DCS_REQUIRE(!query.track.empty(), "threshold query needs a track name");
  // Samples per (source, lane) track, in trace order; counter exporters
  // emit in time order, but a stable sort keeps merged inputs honest.
  std::map<std::pair<std::string, std::uint32_t>,
           std::vector<std::pair<double, double>>>
      tracks;
  for (const QueryEvent& e : trace.events) {
    if (e.ph != 'C' || !e.has_value || e.name != query.track) continue;
    tracks[{e.src, e.lane}].emplace_back(e.ts_us, e.value);
  }
  std::vector<ThresholdWindow> out;
  for (auto& [key, samples] : tracks) {
    std::stable_sort(samples.begin(), samples.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    bool open = false;
    ThresholdWindow w;
    const auto matches = [&](double v) {
      return query.below ? v < query.threshold : v > query.threshold;
    };
    const auto close_at = [&](double ts) {
      w.end_us = ts;
      if (w.duration_us() >= query.min_duration_us) out.push_back(w);
      open = false;
    };
    for (const auto& [ts, value] : samples) {
      if (matches(value)) {
        if (!open) {
          open = true;
          w = ThresholdWindow{};
          w.src = key.first;
          w.lane = key.second;
          w.start_us = ts;
          w.extreme = value;
        } else {
          w.extreme = query.below ? std::min(w.extreme, value)
                                  : std::max(w.extreme, value);
        }
      } else if (open) {
        // The step function left the region when this sample took effect.
        close_at(ts);
      }
    }
    if (open && !samples.empty()) close_at(samples.back().first);
  }
  return out;
}

namespace {

const std::string* arg_of(const QueryEvent& e, std::string_view key) {
  for (const auto& [k, v] : e.args) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

std::vector<DecisionRecord> decision_records(const TraceData& trace) {
  std::vector<DecisionRecord> out;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const QueryEvent& e = trace.events[i];
    if (e.ph != 'i' || e.cat != "decision") continue;
    const std::string* id = arg_of(e, "id");
    if (id == nullptr) continue;  // not a schema-conforming record
    DecisionRecord r;
    r.event_index = i;
    r.src = e.src;
    r.lane = e.lane;
    r.ts_us = e.ts_us;
    r.rule = e.name;
    r.id = *id;
    const std::string* cause = arg_of(e, "cause");
    if (cause != nullptr) r.cause = *cause;
    out.push_back(std::move(r));
  }
  return out;
}

ExplainChain explain_record(const std::vector<DecisionRecord>& records,
                            std::size_t target) {
  DCS_REQUIRE(target < records.size(), "explain target out of range");
  ExplainChain out;
  std::size_t cur = target;
  out.chain.push_back(cur);
  while (!records[cur].cause.empty()) {
    const std::string& cause = records[cur].cause;
    // Latest earlier record with that id in the same src: lanes (and so
    // ids) may be reused by consecutive sweeps in one file, and the
    // emission contract guarantees a cause precedes its effects — the
    // nearest one looking backward is the instance in scope.
    bool found = false;
    for (std::size_t i = cur; i-- > 0;) {
      if (records[i].id == cause && records[i].src == records[cur].src) {
        cur = i;
        out.chain.push_back(cur);
        found = true;
        break;
      }
    }
    if (!found) {
      out.dangling = cause;
      break;
    }
  }
  return out;
}

std::vector<AuditRow> audit(const std::vector<DecisionRecord>& records) {
  std::map<std::pair<std::string, std::string>, AuditRow> groups;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const DecisionRecord& r = records[i];
    AuditRow& row = groups[{r.src, r.rule}];
    if (row.count == 0) {
      row.src = r.src;
      row.rule = r.rule;
    }
    ++row.count;
    if (r.cause.empty()) {
      ++row.roots;
      ++row.resolved;  // a root is trivially a complete chain
    } else if (explain_record(records, i).complete()) {
      ++row.resolved;
    } else {
      ++row.dangling;
    }
  }
  std::vector<AuditRow> out;
  out.reserve(groups.size());
  for (auto& [key, row] : groups) out.push_back(std::move(row));
  return out;
}

std::vector<MonotoneViolation> counter_monotone(const TraceData& trace,
                                                const std::string& track) {
  DCS_REQUIRE(!track.empty(), "monotone check needs a track name");
  std::map<std::pair<std::string, std::uint32_t>,
           std::vector<std::pair<double, double>>>
      tracks;
  for (const QueryEvent& e : trace.events) {
    if (e.ph != 'C' || !e.has_value || e.name != track) continue;
    tracks[{e.src, e.lane}].emplace_back(e.ts_us, e.value);
  }
  std::vector<MonotoneViolation> out;
  for (auto& [key, samples] : tracks) {
    std::stable_sort(
        samples.begin(), samples.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 1; i < samples.size(); ++i) {
      if (samples[i].second < samples[i - 1].second) {
        MonotoneViolation v;
        v.src = key.first;
        v.lane = key.second;
        v.ts_us = samples[i].first;
        v.prev = samples[i - 1].second;
        v.value = samples[i].second;
        out.push_back(std::move(v));
      }
    }
  }
  return out;
}

void write_scope_csv(std::ostream& out, const std::vector<ScopeStat>& stats) {
  out << "src,name,count,total_us,mean_us,min_us,max_us\n";
  for (const ScopeStat& s : stats) {
    out << s.src << "," << s.name << "," << s.count << ","
        << json::number_to_string(s.total_us) << ","
        << json::number_to_string(s.mean_us()) << ","
        << json::number_to_string(s.min_us) << ","
        << json::number_to_string(s.max_us) << "\n";
  }
}

void write_counter_csv(std::ostream& out,
                       const std::vector<CounterStat>& stats) {
  out << "src,name,points,min,mean,max,last\n";
  for (const CounterStat& s : stats) {
    out << s.src << "," << s.name << "," << s.points << ","
        << json::number_to_string(s.min) << ","
        << json::number_to_string(s.mean) << ","
        << json::number_to_string(s.max) << ","
        << json::number_to_string(s.last) << "\n";
  }
}

void write_window_csv(std::ostream& out,
                      const std::vector<ThresholdWindow>& windows) {
  out << "src,lane,start_us,end_us,duration_us,extreme\n";
  for (const ThresholdWindow& w : windows) {
    out << w.src << "," << w.lane << ","
        << json::number_to_string(w.start_us) << ","
        << json::number_to_string(w.end_us) << ","
        << json::number_to_string(w.duration_us()) << ","
        << json::number_to_string(w.extreme) << "\n";
  }
}

void write_decision_csv(std::ostream& out,
                        const std::vector<DecisionRecord>& records) {
  out << "src,lane,ts_us,rule,id,cause\n";
  for (const DecisionRecord& r : records) {
    out << r.src << "," << r.lane << "," << json::number_to_string(r.ts_us)
        << "," << r.rule << "," << r.id << "," << r.cause << "\n";
  }
}

void write_explain_csv(std::ostream& out,
                       const std::vector<DecisionRecord>& records,
                       const std::vector<ExplainChain>& chains) {
  out << "target,depth,rule,id,cause,ts_us,src,lane,status\n";
  for (const ExplainChain& c : chains) {
    if (c.chain.empty()) continue;
    const DecisionRecord& tgt = records[c.chain.front()];
    for (std::size_t depth = 0; depth < c.chain.size(); ++depth) {
      const DecisionRecord& r = records[c.chain[depth]];
      const bool last = depth + 1 == c.chain.size();
      const char* status =
          !last ? "ok" : (c.complete() ? "root" : "unresolved");
      out << tgt.id << "," << depth << "," << r.rule << "," << r.id << ","
          << r.cause << "," << json::number_to_string(r.ts_us) << "," << r.src
          << "," << r.lane << "," << status << "\n";
    }
    if (!c.complete()) {
      // The id the walk could not find, as an explicit terminal row.
      out << tgt.id << "," << c.chain.size() << ",," << c.dangling << ",,"
          << json::number_to_string(tgt.ts_us) << "," << tgt.src << ","
          << tgt.lane << ",missing\n";
    }
  }
}

void write_audit_csv(std::ostream& out, const std::vector<AuditRow>& rows) {
  out << "src,rule,count,roots,resolved,dangling\n";
  for (const AuditRow& r : rows) {
    out << r.src << "," << r.rule << "," << r.count << "," << r.roots << ","
        << r.resolved << "," << r.dangling << "\n";
  }
}

namespace {

using obs::detail::render_string;

/// Re-renders a captured canonical literal as JSON: numbers and bools pass
/// through raw, everything else is a quoted string.
std::string render_literal(const std::string& literal) {
  if (literal == "true" || literal == "false") return literal;
  char* end = nullptr;
  std::strtod(literal.c_str(), &end);
  if (!literal.empty() && end != nullptr && *end == '\0') return literal;
  return render_string(literal);
}

void write_args_object(std::ostream& out, const QueryEvent& e) {
  out << "{";
  bool first = true;
  for (const auto& [key, value] : e.args) {
    if (!first) out << ",";
    first = false;
    out << render_string(key) << ":" << render_literal(value);
  }
  out << "}";
}

}  // namespace

void write_scope_jsonl(std::ostream& out,
                       const std::vector<ScopeStat>& stats) {
  for (const ScopeStat& s : stats) {
    out << "{\"src\":" << render_string(s.src)
        << ",\"name\":" << render_string(s.name) << ",\"count\":" << s.count
        << ",\"total_us\":" << json::number_to_string(s.total_us)
        << ",\"mean_us\":" << json::number_to_string(s.mean_us())
        << ",\"min_us\":" << json::number_to_string(s.min_us)
        << ",\"max_us\":" << json::number_to_string(s.max_us) << "}\n";
  }
}

void write_counter_jsonl(std::ostream& out,
                         const std::vector<CounterStat>& stats) {
  for (const CounterStat& s : stats) {
    out << "{\"src\":" << render_string(s.src)
        << ",\"name\":" << render_string(s.name) << ",\"points\":" << s.points
        << ",\"min\":" << json::number_to_string(s.min)
        << ",\"mean\":" << json::number_to_string(s.mean)
        << ",\"max\":" << json::number_to_string(s.max)
        << ",\"last\":" << json::number_to_string(s.last) << "}\n";
  }
}

void write_window_jsonl(std::ostream& out,
                        const std::vector<ThresholdWindow>& windows) {
  for (const ThresholdWindow& w : windows) {
    out << "{\"src\":" << render_string(w.src) << ",\"lane\":" << w.lane
        << ",\"start_us\":" << json::number_to_string(w.start_us)
        << ",\"end_us\":" << json::number_to_string(w.end_us)
        << ",\"duration_us\":" << json::number_to_string(w.duration_us())
        << ",\"extreme\":" << json::number_to_string(w.extreme) << "}\n";
  }
}

void write_decision_jsonl(std::ostream& out, const TraceData& trace,
                          const std::vector<DecisionRecord>& records) {
  for (const DecisionRecord& r : records) {
    out << "{\"src\":" << render_string(r.src) << ",\"lane\":" << r.lane
        << ",\"ts_us\":" << json::number_to_string(r.ts_us)
        << ",\"rule\":" << render_string(r.rule)
        << ",\"id\":" << render_string(r.id)
        << ",\"cause\":" << render_string(r.cause) << ",\"args\":";
    write_args_object(out, trace.events[r.event_index]);
    out << "}\n";
  }
}

void write_explain_jsonl(std::ostream& out, const TraceData& trace,
                         const std::vector<DecisionRecord>& records,
                         const std::vector<ExplainChain>& chains) {
  for (const ExplainChain& c : chains) {
    if (c.chain.empty()) continue;
    const DecisionRecord& tgt = records[c.chain.front()];
    for (std::size_t depth = 0; depth < c.chain.size(); ++depth) {
      const DecisionRecord& r = records[c.chain[depth]];
      const bool last = depth + 1 == c.chain.size();
      const char* status =
          !last ? "ok" : (c.complete() ? "root" : "unresolved");
      out << "{\"target\":" << render_string(tgt.id) << ",\"depth\":" << depth
          << ",\"rule\":" << render_string(r.rule)
          << ",\"id\":" << render_string(r.id)
          << ",\"cause\":" << render_string(r.cause)
          << ",\"ts_us\":" << json::number_to_string(r.ts_us)
          << ",\"src\":" << render_string(r.src) << ",\"lane\":" << r.lane
          << ",\"status\":\"" << status << "\",\"args\":";
      write_args_object(out, trace.events[r.event_index]);
      out << "}\n";
    }
    if (!c.complete()) {
      out << "{\"target\":" << render_string(tgt.id)
          << ",\"depth\":" << c.chain.size()
          << ",\"rule\":\"\",\"id\":" << render_string(c.dangling)
          << ",\"cause\":\"\",\"ts_us\":"
          << json::number_to_string(tgt.ts_us)
          << ",\"src\":" << render_string(tgt.src) << ",\"lane\":" << tgt.lane
          << ",\"status\":\"missing\",\"args\":{}}\n";
    }
  }
}

void write_audit_jsonl(std::ostream& out, const std::vector<AuditRow>& rows) {
  for (const AuditRow& r : rows) {
    out << "{\"src\":" << render_string(r.src)
        << ",\"rule\":" << render_string(r.rule) << ",\"count\":" << r.count
        << ",\"roots\":" << r.roots << ",\"resolved\":" << r.resolved
        << ",\"dangling\":" << r.dangling << "}\n";
  }
}

}  // namespace dcs::obs::query
