#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace dcs::obs {
namespace {

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return format_value(v);
}

std::string json_escape(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Prometheus metric/label names: [a-zA-Z_][a-zA-Z0-9_]*.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prom_label_value(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string prom_labels(const Labels& labels, const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += prom_name(k) + "=\"" + prom_label_value(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

/// "k1=v1,k2=v2" for the CSV label column (',' and '=' escaped with '\').
std::string csv_labels(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ",";
    for (const std::string* part : {&k, &v}) {
      for (const char c : *part) {
        if (c == ',' || c == '=' || c == '\\') out += '\\';
        out += c;
      }
      if (part == &k) out += '=';
    }
  }
  return out;
}

const char* kind_name(bool counter, bool gauge) {
  return counter ? "counter" : (gauge ? "gauge" : "histogram");
}

}  // namespace

void Counter::inc(double amount) {
  DCS_REQUIRE(amount >= 0.0, "counters only move forward");
  value_ += amount;
}

void Gauge::set_min(double value) noexcept {
  value_ = std::min(value_, value);
}

void Gauge::set_max(double value) noexcept {
  value_ = std::max(value_, value);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1, 0) {
  DCS_REQUIRE(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
              "histogram bucket bounds must be sorted");
}

void Histogram::observe(double value) { observe_n(value, 1); }

void Histogram::observe_n(double value, std::size_t n) {
  if (n == 0) return;
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - upper_bounds_.begin())] += n;
  count_ += n;
  sum_ += value * static_cast<double>(n);
}

std::vector<std::size_t> Histogram::cumulative_counts() const {
  std::vector<std::size_t> out(buckets_.size(), 0);
  std::size_t acc = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    acc += buckets_[i];
    out[i] = acc;
  }
  return out;
}

MetricsRegistry::Metric& MetricsRegistry::find_or_create(std::string_view name,
                                                         Labels labels,
                                                         Kind kind) {
  std::sort(labels.begin(), labels.end());
  Key key{std::string{name}, std::move(labels)};
  const auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    DCS_REQUIRE(it->second.kind == kind,
                "metric '" + key.first + "' already registered as another kind");
    return it->second;
  }
  Metric metric;
  metric.kind = kind;
  switch (kind) {
    case Kind::kCounter: metric.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: metric.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: break;  // built by histogram() with its bounds
  }
  return metrics_.emplace(std::move(key), std::move(metric)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds,
                                      Labels labels) {
  Metric& metric =
      find_or_create(name, std::move(labels), Kind::kHistogram);
  if (metric.histogram == nullptr) {
    metric.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  } else {
    DCS_REQUIRE(metric.histogram->upper_bounds() == upper_bounds,
                "histogram '" + std::string{name} +
                    "' already registered with different buckets");
  }
  return *metric.histogram;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  out << "metric,kind,labels,stat,value\n";
  for (const auto& [key, metric] : metrics_) {
    const auto row = [&](const char* kind, const std::string& stat,
                         const std::string& value) {
      out << key.first << "," << kind << ",\"" << csv_labels(key.second)
          << "\"," << stat << "," << value << "\n";
    };
    switch (metric.kind) {
      case Kind::kCounter:
        row("counter", "value", format_value(metric.counter->value()));
        break;
      case Kind::kGauge:
        row("gauge", "value", format_value(metric.gauge->value()));
        break;
      case Kind::kHistogram: {
        const Histogram& h = *metric.histogram;
        row("histogram", "count", std::to_string(h.count()));
        row("histogram", "sum", format_value(h.sum()));
        const std::vector<std::size_t> cum = h.cumulative_counts();
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          row("histogram", "le_" + format_value(h.upper_bounds()[i]),
              std::to_string(cum[i]));
        }
        row("histogram", "le_+Inf", std::to_string(cum.back()));
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"metrics\": [\n";
  bool first = true;
  for (const auto& [key, metric] : metrics_) {
    out << (first ? "  " : ",\n  ");
    first = false;
    out << "{\"name\": " << json_escape(key.first) << ", \"kind\": \""
        << kind_name(metric.kind == Kind::kCounter, metric.kind == Kind::kGauge)
        << "\", \"labels\": {";
    for (std::size_t i = 0; i < key.second.size(); ++i) {
      out << (i == 0 ? "" : ", ") << json_escape(key.second[i].first) << ": "
          << json_escape(key.second[i].second);
    }
    out << "}";
    switch (metric.kind) {
      case Kind::kCounter:
        out << ", \"value\": " << json_number(metric.counter->value());
        break;
      case Kind::kGauge:
        out << ", \"value\": " << json_number(metric.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *metric.histogram;
        out << ", \"count\": " << h.count()
            << ", \"sum\": " << json_number(h.sum()) << ", \"buckets\": [";
        const std::vector<std::size_t> cum = h.cumulative_counts();
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          out << (i == 0 ? "" : ", ") << "{\"le\": "
              << json_number(h.upper_bounds()[i]) << ", \"count\": " << cum[i]
              << "}";
        }
        out << (h.upper_bounds().empty() ? "" : ", ")
            << "{\"le\": null, \"count\": " << cum.back() << "}]";
        break;
      }
    }
    out << "}";
  }
  out << "\n]}\n";
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::string last_typed;
  for (const auto& [key, metric] : metrics_) {
    const std::string name = prom_name(key.first);
    const char* kind = kind_name(metric.kind == Kind::kCounter,
                                 metric.kind == Kind::kGauge);
    if (name != last_typed) {
      out << "# TYPE " << name << " " << kind << "\n";
      last_typed = name;
    }
    switch (metric.kind) {
      case Kind::kCounter:
        out << name << prom_labels(key.second) << " "
            << format_value(metric.counter->value()) << "\n";
        break;
      case Kind::kGauge:
        out << name << prom_labels(key.second) << " "
            << format_value(metric.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *metric.histogram;
        const std::vector<std::size_t> cum = h.cumulative_counts();
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          out << name << "_bucket"
              << prom_labels(key.second, "le=\"" +
                                             format_value(h.upper_bounds()[i]) +
                                             "\"")
              << " " << cum[i] << "\n";
        }
        out << name << "_bucket" << prom_labels(key.second, "le=\"+Inf\"")
            << " " << cum.back() << "\n";
        out << name << "_sum" << prom_labels(key.second) << " "
            << format_value(h.sum()) << "\n";
        out << name << "_count" << prom_labels(key.second) << " " << h.count()
            << "\n";
        break;
      }
    }
  }
}

bool export_metrics(const std::string& dir, const std::string& name,
                    const MetricsRegistry& registry, std::ostream* diag) {
  bool ok = true;
  const auto write = [&](const std::string& suffix, auto&& writer) {
    const std::string path = dir + "/" + name + "_metrics" + suffix;
    std::ofstream out(path);
    if (!out) {
      if (diag != nullptr) *diag << "cannot write " << path << "\n";
      ok = false;
      return;
    }
    writer(out);
    if (diag != nullptr) *diag << "[obs] wrote " << path << "\n";
  };
  write(".csv", [&](std::ostream& o) { registry.write_csv(o); });
  write(".json", [&](std::ostream& o) { registry.write_json(o); });
  write(".prom", [&](std::ostream& o) { registry.write_prometheus(o); });
  return ok;
}

}  // namespace dcs::obs
