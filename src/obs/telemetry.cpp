#include "obs/telemetry.h"

#include <unistd.h>

#include <sstream>
#include <utility>

#include "obs/profile.h"
#include "util/json.h"

namespace dcs::obs {
namespace {

/// Renders one trace event as a compact telemetry line (the "ev" analogue
/// of detail::write_jsonl_event, plus the type discriminator).
std::string render_event_line(const TraceEvent& e) {
  std::ostringstream out;
  out << "{\"t\":\"ev\",\"domain\":\"" << to_string(e.domain)
      << "\",\"ph\":\"" << e.phase
      << "\",\"ts\":" << detail::render_number(e.ts_us);
  if (e.phase == 'X') out << ",\"dur\":" << detail::render_number(e.dur_us);
  out << ",\"lane\":" << e.lane << ",\"cat\":" << detail::render_string(e.cat)
      << ",\"name\":" << detail::render_string(e.name);
  if (!e.args.empty()) {
    out << ",\"args\":{";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      out << (i == 0 ? "" : ",") << detail::render_string(e.args[i].key)
          << ":" << e.args[i].value;
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

}  // namespace

TelemetrySink::TelemetrySink(const std::string& path, TelemetryOptions options)
    : path_(path), out_(path, std::ios::trunc) {
  ok_ = static_cast<bool>(out_);
  if (!ok_) return;
  std::ostringstream header;
  header << "{\"t\":\"header\",\"telemetry\":1,\"name\":"
         << detail::render_string(options.name)
         << ",\"pid\":" << ::getpid()
         << ",\"shard\":" << detail::render_string(options.shard)
         << ",\"epoch_unix_us\":" << Profiler::instance().epoch_unix_us()
         << "}";
  const std::lock_guard<std::mutex> lock(mu_);
  line_locked(header.str(), /*flush=*/true);
}

TelemetrySink::~TelemetrySink() { close(); }

void TelemetrySink::write(const TraceEvent& event) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || !ok_) return;
  line_locked(render_event_line(event), /*flush=*/false);
  ++events_;
}

void TelemetrySink::write_lane_name(Domain domain, std::uint32_t lane,
                                    const std::string& name) {
  std::ostringstream line;
  line << "{\"t\":\"lane\",\"domain\":\"" << to_string(domain)
       << "\",\"lane\":" << lane
       << ",\"name\":" << detail::render_string(name) << "}";
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || !ok_) return;
  line_locked(line.str(), /*flush=*/false);
}

void TelemetrySink::finalize() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || !ok_) return;
  out_.flush();
  if (!out_) ok_ = false;
}

bool TelemetrySink::healthy() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ok_;
}

void TelemetrySink::heartbeat(const std::string& sweep, std::size_t done,
                              std::size_t total) {
  std::ostringstream line;
  line << "{\"t\":\"hb\",\"wall_us\":"
       << detail::render_number(Profiler::instance().now_us())
       << ",\"sweep\":" << detail::render_string(sweep) << ",\"done\":" << done
       << ",\"total\":" << total << "}";
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || !ok_) return;
  line_locked(line.str(), /*flush=*/true);
}

void TelemetrySink::write_metrics(const MetricsRegistry& registry) {
  // Reuse the registry's deterministic CSV snapshot as the iteration API:
  // metric,kind,"labels",stat,value — one telemetry line per data row.
  std::ostringstream csv;
  registry.write_csv(csv);
  std::istringstream rows(csv.str());
  std::string row;
  std::getline(rows, row);  // header
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || !ok_) return;
  while (std::getline(rows, row)) {
    const std::size_t c1 = row.find(',');
    const std::size_t c2 = row.find(',', c1 + 1);
    const std::size_t lq = row.find('"', c2);
    const std::size_t rq = row.find("\",", lq + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        lq == std::string::npos || rq == std::string::npos) {
      continue;
    }
    const std::size_t c4 = row.find(',', rq + 2);
    if (c4 == std::string::npos) continue;
    std::ostringstream line;
    line << "{\"t\":\"metric\",\"name\":"
         << detail::render_string(row.substr(0, c1)) << ",\"kind\":"
         << detail::render_string(row.substr(c1 + 1, c2 - c1 - 1))
         << ",\"labels\":"
         << detail::render_string(row.substr(lq + 1, rq - lq - 1))
         << ",\"stat\":"
         << detail::render_string(row.substr(rq + 2, c4 - rq - 2))
         << ",\"value\":" << detail::render_string(row.substr(c4 + 1)) << "}";
    line_locked(line.str(), /*flush=*/false);
  }
  out_.flush();
  if (!out_) ok_ = false;
}

void TelemetrySink::write_stacks(const FoldedStacks& stacks) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || !ok_) return;
  for (const auto& [stack, count] : stacks) {
    std::ostringstream line;
    line << "{\"t\":\"stack\",\"stack\":" << detail::render_string(stack)
         << ",\"count\":" << count << "}";
    line_locked(line.str(), /*flush=*/false);
  }
  out_.flush();
  if (!out_) ok_ = false;
}

void TelemetrySink::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  if (!ok_) return;
  std::ostringstream line;
  line << "{\"t\":\"end\",\"wall_us\":"
       << detail::render_number(Profiler::instance().now_us())
       << ",\"events\":" << events_ << "}";
  line_locked(line.str(), /*flush=*/true);
  out_.close();
}

bool TelemetrySink::ok() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ok_;
}

std::size_t TelemetrySink::events_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TelemetrySink::line_locked(const std::string& line, bool flush) {
  out_ << line << '\n';
  if (flush) out_.flush();
  if (!out_) ok_ = false;
}

bool TelemetryTail::poll() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < offset_) {
    // The stream shrank below our read offset: the file was truncated or
    // replaced (worker restart, log rotation). Restart from the beginning
    // rather than silently going quiet on the new content.
    offset_ = 0;
  }
  if (size <= offset_) return false;
  in.seekg(offset_);
  std::string chunk(static_cast<std::size_t>(size - offset_), '\0');
  in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  chunk.resize(static_cast<std::size_t>(in.gcount()));
  // Consume only complete lines; a torn trailing line stays unread until
  // its newline arrives.
  const std::size_t last_nl = chunk.rfind('\n');
  if (last_nl == std::string::npos) return false;
  std::size_t begin = 0;
  while (begin <= last_nl) {
    const std::size_t nl = chunk.find('\n', begin);
    consume(std::string_view(chunk).substr(begin, nl - begin));
    begin = nl + 1;
  }
  offset_ += static_cast<std::streamoff>(last_nl + 1);
  return true;
}

void TelemetryTail::consume(std::string_view line) {
  ++lines_;
  const auto has_type = [&](std::string_view type) {
    return line.size() > 7 + type.size() &&
           line.compare(0, 6, "{\"t\":\"") == 0 &&
           line.compare(6, type.size(), type) == 0 && line[6 + type.size()] == '"';
  };
  if (has_type("ev")) {
    ++events_;
    return;
  }
  // Structural lines are rare and small; full parses keep them robust.
  try {
    if (has_type("header")) {
      const json::Value v = json::parse(line);
      pid_ = static_cast<int>(v.at("pid").as_number());
      epoch_unix_us_ = static_cast<std::int64_t>(
          v.at("epoch_unix_us").as_number());
      name_ = v.at("name").as_string();
      have_header_ = true;
    } else if (has_type("hb")) {
      const json::Value v = json::parse(line);
      heartbeat_.wall_us = v.at("wall_us").as_number();
      heartbeat_.sweep = v.at("sweep").as_string();
      heartbeat_.done = static_cast<std::size_t>(v.at("done").as_number());
      heartbeat_.total = static_cast<std::size_t>(v.at("total").as_number());
      have_heartbeat_ = true;
    } else if (has_type("end")) {
      ended_ = true;
    }
  } catch (const std::exception&) {
    // A malformed structural line is dropped, not fatal: the stream belongs
    // to a process the supervisor is expected to outlive and distrust.
  }
}

}  // namespace dcs::obs
