#include "obs/perfetto.h"

#include <cstdlib>
#include <utility>

#include "util/proto.h"

namespace dcs::obs {
namespace {

// Perfetto protos, field numbers as of the stable TrackEvent schema.
// Trace
constexpr std::uint32_t kTracePacketField = 1;
// TracePacket
constexpr std::uint32_t kPacketTimestamp = 8;
constexpr std::uint32_t kPacketSequenceId = 10;
constexpr std::uint32_t kPacketTrackEvent = 11;
constexpr std::uint32_t kPacketTrackDescriptor = 60;
// TrackDescriptor
constexpr std::uint32_t kTrackUuid = 1;
constexpr std::uint32_t kTrackName = 2;
constexpr std::uint32_t kTrackProcess = 3;
constexpr std::uint32_t kTrackThread = 4;
constexpr std::uint32_t kTrackParentUuid = 5;
constexpr std::uint32_t kTrackCounter = 8;
// ProcessDescriptor
constexpr std::uint32_t kProcessPid = 1;
constexpr std::uint32_t kProcessName = 6;
// ThreadDescriptor
constexpr std::uint32_t kThreadPid = 1;
constexpr std::uint32_t kThreadTid = 2;
constexpr std::uint32_t kThreadName = 5;
// CounterDescriptor
constexpr std::uint32_t kCounterUnitName = 6;
// TrackEvent
constexpr std::uint32_t kEventCategories = 22;
constexpr std::uint32_t kEventType = 9;
constexpr std::uint32_t kEventTrackUuid = 11;
constexpr std::uint32_t kEventName = 23;
constexpr std::uint32_t kEventDoubleCounterValue = 44;
constexpr std::uint32_t kEventFlowIds = 47;  // repeated fixed64 flow_ids
// TrackEvent.Type
constexpr std::uint64_t kTypeSliceBegin = 1;
constexpr std::uint64_t kTypeSliceEnd = 2;
constexpr std::uint64_t kTypeInstant = 3;
constexpr std::uint64_t kTypeCounter = 4;

/// One writer per file; a fixed sequence id is enough because we never
/// intern state.
constexpr std::uint64_t kSequenceId = 1;

proto::ProtoWriter track_event(std::uint64_t type, std::uint64_t track_uuid) {
  proto::ProtoWriter event;
  event.varint(kEventType, type);
  event.varint(kEventTrackUuid, track_uuid);
  return event;
}

}  // namespace

void PerfettoWriter::packet(const std::string& payload) {
  std::string framed;
  framed.reserve(payload.size() + 4);
  proto::append_varint(framed, (kTracePacketField << 3) | 2u);
  proto::append_varint(framed, payload.size());
  out_->write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out_->write(payload.data(), static_cast<std::streamsize>(payload.size()));
  ++packets_;
}

std::uint64_t PerfettoWriter::add_process(std::int32_t pid,
                                          const std::string& name) {
  const std::uint64_t uuid = next_uuid_++;
  proto::ProtoWriter process;
  process.int64(kProcessPid, pid);
  process.string(kProcessName, name);
  proto::ProtoWriter track;
  track.varint(kTrackUuid, uuid);
  track.message(kTrackProcess, process);
  proto::ProtoWriter pkt;
  pkt.varint(kPacketSequenceId, kSequenceId);
  pkt.message(kPacketTrackDescriptor, track);
  packet(pkt.bytes());
  return uuid;
}

std::uint64_t PerfettoWriter::add_thread(std::int32_t pid, std::int32_t tid,
                                         const std::string& name) {
  const std::uint64_t uuid = next_uuid_++;
  redeclare_thread(uuid, pid, tid, name);
  return uuid;
}

void PerfettoWriter::redeclare_thread(std::uint64_t uuid, std::int32_t pid,
                                      std::int32_t tid,
                                      const std::string& name) {
  proto::ProtoWriter thread;
  thread.int64(kThreadPid, pid);
  thread.int64(kThreadTid, tid);
  thread.string(kThreadName, name);
  proto::ProtoWriter track;
  track.varint(kTrackUuid, uuid);
  track.message(kTrackThread, thread);
  proto::ProtoWriter pkt;
  pkt.varint(kPacketSequenceId, kSequenceId);
  pkt.message(kPacketTrackDescriptor, track);
  packet(pkt.bytes());
}

std::uint64_t PerfettoWriter::add_counter(std::uint64_t parent_uuid,
                                          const std::string& name,
                                          const std::string& unit) {
  const std::uint64_t uuid = next_uuid_++;
  proto::ProtoWriter counter;
  if (!unit.empty()) counter.string(kCounterUnitName, unit);
  proto::ProtoWriter track;
  track.varint(kTrackUuid, uuid);
  track.string(kTrackName, name);
  track.varint(kTrackParentUuid, parent_uuid);
  track.message(kTrackCounter, counter);
  proto::ProtoWriter pkt;
  pkt.varint(kPacketSequenceId, kSequenceId);
  pkt.message(kPacketTrackDescriptor, track);
  packet(pkt.bytes());
  return uuid;
}

void PerfettoWriter::slice_begin(std::uint64_t track_uuid, std::uint64_t ts_ns,
                                 const std::string& name,
                                 const std::string& category) {
  proto::ProtoWriter event = track_event(kTypeSliceBegin, track_uuid);
  event.string(kEventName, name);
  if (!category.empty()) event.string(kEventCategories, category);
  proto::ProtoWriter pkt;
  pkt.varint(kPacketTimestamp, ts_ns);
  pkt.varint(kPacketSequenceId, kSequenceId);
  pkt.message(kPacketTrackEvent, event);
  packet(pkt.bytes());
}

void PerfettoWriter::slice_end(std::uint64_t track_uuid, std::uint64_t ts_ns) {
  const proto::ProtoWriter event = track_event(kTypeSliceEnd, track_uuid);
  proto::ProtoWriter pkt;
  pkt.varint(kPacketTimestamp, ts_ns);
  pkt.varint(kPacketSequenceId, kSequenceId);
  pkt.message(kPacketTrackEvent, event);
  packet(pkt.bytes());
}

void PerfettoWriter::instant(std::uint64_t track_uuid, std::uint64_t ts_ns,
                             const std::string& name,
                             const std::string& category,
                             const std::vector<std::uint64_t>& flow_ids) {
  proto::ProtoWriter event = track_event(kTypeInstant, track_uuid);
  event.string(kEventName, name);
  if (!category.empty()) event.string(kEventCategories, category);
  for (const std::uint64_t flow : flow_ids) {
    event.fixed64(kEventFlowIds, flow);
  }
  proto::ProtoWriter pkt;
  pkt.varint(kPacketTimestamp, ts_ns);
  pkt.varint(kPacketSequenceId, kSequenceId);
  pkt.message(kPacketTrackEvent, event);
  packet(pkt.bytes());
}

void PerfettoWriter::counter(std::uint64_t track_uuid, std::uint64_t ts_ns,
                             double value) {
  proto::ProtoWriter event = track_event(kTypeCounter, track_uuid);
  event.fixed64_double(kEventDoubleCounterValue, value);
  proto::ProtoWriter pkt;
  pkt.varint(kPacketTimestamp, ts_ns);
  pkt.varint(kPacketSequenceId, kSequenceId);
  pkt.message(kPacketTrackEvent, event);
  packet(pkt.bytes());
}

namespace detail {

bool counter_value(const TraceEvent& event, double* value) {
  const TraceArg* fallback = nullptr;
  for (const TraceArg& a : event.args) {
    if (a.key == "value") {
      fallback = &a;
      break;
    }
    if (fallback == nullptr) fallback = &a;
  }
  if (fallback == nullptr) return false;
  // Args hold pre-rendered JSON literals; only numeric ones qualify.
  char* end = nullptr;
  const double parsed = std::strtod(fallback->value.c_str(), &end);
  if (end == fallback->value.c_str() || end == nullptr || *end != '\0') {
    return false;
  }
  *value = parsed;
  return true;
}

std::uint64_t flow_id_hash(std::string_view token) noexcept {
  // FNV-1a, 64-bit: deterministic across platforms, no allocation.
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : token) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {

/// Unwraps a pre-rendered JSON string literal ("d0-1" with quotes) to the
/// raw token; non-string literals pass through unchanged.
std::string_view unquote(std::string_view literal) noexcept {
  if (literal.size() >= 2 && literal.front() == '"' && literal.back() == '"') {
    return literal.substr(1, literal.size() - 2);
  }
  return literal;
}

}  // namespace

std::vector<std::uint64_t> decision_flow_ids(const TraceEvent& event,
                                             std::string_view scope) {
  std::vector<std::uint64_t> flows;
  for (const TraceArg& a : event.args) {
    if (a.key != "id" && a.key != "cause") continue;
    std::string token(scope);
    if (!token.empty()) token.push_back('/');
    token.append(unquote(a.value));
    flows.push_back(flow_id_hash(token));
  }
  return flows;
}

}  // namespace detail

namespace {

std::uint64_t to_ns(double ts_us) {
  return ts_us <= 0.0 ? 0 : static_cast<std::uint64_t>(ts_us * 1e3);
}

}  // namespace

PerfettoStreamSink::PerfettoStreamSink(std::string path,
                                       StreamSinkOptions options)
    : FileStreamSink(std::move(path), options), writer_(out_) {}

PerfettoStreamSink::~PerfettoStreamSink() { finalize(); }

void PerfettoStreamSink::begin() {}

std::uint64_t PerfettoStreamSink::process_uuid(Domain domain) {
  std::uint64_t& uuid = process_uuids_[static_cast<int>(domain)];
  if (uuid == 0) {
    uuid = writer_.add_process(obs::detail::pid_of(domain),
                               std::string(to_string(domain)));
  }
  return uuid;
}

std::uint64_t PerfettoStreamSink::lane_uuid(Domain domain, std::uint32_t lane) {
  const auto key = std::make_pair(domain, lane);
  const auto it = lane_uuids_.find(key);
  if (it != lane_uuids_.end()) return it->second;
  process_uuid(domain);  // declare the process before its first thread
  const auto named = lane_names_.find(key);
  const std::string name = named != lane_names_.end()
                               ? named->second
                               : "lane-" + std::to_string(lane);
  const std::uint64_t uuid = writer_.add_thread(
      obs::detail::pid_of(domain), static_cast<std::int32_t>(lane), name);
  lane_uuids_.emplace(key, uuid);
  return uuid;
}

std::uint64_t PerfettoStreamSink::counter_uuid(Domain domain,
                                               const std::string& name) {
  const auto key = std::make_pair(domain, name);
  const auto it = counter_uuids_.find(key);
  if (it != counter_uuids_.end()) return it->second;
  const std::uint64_t uuid = writer_.add_counter(process_uuid(domain), name);
  counter_uuids_.emplace(key, uuid);
  return uuid;
}

void PerfettoStreamSink::write_lane_name(Domain domain, std::uint32_t lane,
                                         const std::string& name) {
  // Queue through the event buffer as a synthetic 'M' event, matching
  // ChromeStreamSink, so descriptor order follows append order.
  const auto key = std::make_pair(domain, lane);
  const auto it = lane_names_.find(key);
  if (it != lane_names_.end() && it->second == name) return;
  lane_names_.insert_or_assign(key, name);
  TraceEvent meta;
  meta.domain = domain;
  meta.phase = 'M';
  meta.lane = lane;
  meta.name = name;
  write(meta);
}

void PerfettoStreamSink::render(const TraceEvent& event) {
  switch (event.phase) {
    case 'M': {
      // Lane renamed: re-emit the thread descriptor under the same uuid
      // (trace_processor keeps the latest name) or just record the name for
      // the lazily created track.
      const auto key = std::make_pair(event.domain, event.lane);
      const auto it = lane_uuids_.find(key);
      if (it != lane_uuids_.end()) {
        writer_.redeclare_thread(it->second,
                                 obs::detail::pid_of(event.domain),
                                 static_cast<std::int32_t>(event.lane),
                                 event.name);
      }
      return;
    }
    case 'C': {
      double value = 0.0;
      if (!detail::counter_value(event, &value)) return;
      writer_.counter(counter_uuid(event.domain, event.name),
                      to_ns(event.ts_us), value);
      return;
    }
    case 'X': {
      const std::uint64_t track = lane_uuid(event.domain, event.lane);
      writer_.slice_begin(track, to_ns(event.ts_us), event.name, event.cat);
      writer_.slice_end(track, to_ns(event.ts_us + event.dur_us));
      return;
    }
    default:
      if (event.cat == "decision") {
        writer_.instant(lane_uuid(event.domain, event.lane),
                        to_ns(event.ts_us), event.name, event.cat,
                        detail::decision_flow_ids(event));
        return;
      }
      writer_.instant(lane_uuid(event.domain, event.lane), to_ns(event.ts_us),
                      event.name, event.cat);
      return;
  }
}

}  // namespace dcs::obs
