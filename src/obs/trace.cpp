#include "obs/trace.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <system_error>
#include <utility>

#include "util/check.h"

namespace dcs::obs {
namespace detail {

std::string render_number(double v) {
  // Shortest round-trip form (strtod recovers the exact bits, like %.17g)
  // via to_chars: ~7x cheaper than snprintf, which matters because arg()
  // renders eagerly on the controller's tracing hot path.
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec != std::errc()) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  return std::string(buf, res.ptr);
}

std::string render_string(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

constexpr int kSimPid = 1;
constexpr int kWallPid = 2;

void write_args(std::ostream& out, const std::vector<TraceArg>& args) {
  out << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    out << (i == 0 ? "" : ", ") << render_string(args[i].key) << ": "
        << args[i].value;
  }
  out << "}";
}

}  // namespace

int pid_of(Domain domain) noexcept {
  return domain == Domain::kSim ? kSimPid : kWallPid;
}

void write_event_json(std::ostream& out, const TraceEvent& e) {
  out << "{\"ph\": \"" << e.phase << "\", \"ts\": " << render_number(e.ts_us);
  if (e.phase == 'X') out << ", \"dur\": " << render_number(e.dur_us);
  out << ", \"pid\": " << pid_of(e.domain) << ", \"tid\": " << e.lane
      << ", \"cat\": " << render_string(e.cat)
      << ", \"name\": " << render_string(e.name);
  if (e.phase == 'i') out << ", \"s\": \"t\"";
  if (!e.args.empty()) {
    out << ", \"args\": ";
    write_args(out, e.args);
  }
  out << "}";
}

void write_jsonl_event(std::ostream& out, const TraceEvent& e) {
  out << "{\"domain\": \"" << to_string(e.domain) << "\", "
      << "\"ph\": \"" << e.phase << "\", \"ts\": " << render_number(e.ts_us);
  if (e.phase == 'X') out << ", \"dur\": " << render_number(e.dur_us);
  out << ", \"lane\": " << e.lane << ", \"cat\": " << render_string(e.cat)
      << ", \"name\": " << render_string(e.name);
  if (!e.args.empty()) {
    out << ", \"args\": ";
    write_args(out, e.args);
  }
  out << "}\n";
}

void write_lane_metadata_json(std::ostream& out, Domain domain,
                              std::uint32_t lane, const std::string& name) {
  out << "{\"ph\": \"M\", \"pid\": " << pid_of(domain) << ", \"tid\": " << lane
      << ", \"name\": \"thread_name\", \"args\": {\"name\": "
      << render_string(name) << "}}";
}

void write_process_metadata_json(std::ostream& out, Domain domain) {
  out << "{\"ph\": \"M\", \"pid\": " << pid_of(domain)
      << ", \"name\": \"process_name\", \"args\": {\"name\": "
      << render_string(to_string(domain)) << "}}";
}

}  // namespace detail

std::string_view to_string(Domain domain) noexcept {
  return domain == Domain::kSim ? "sim" : "wall";
}

TraceArg arg(std::string key, double value) {
  return TraceArg{std::move(key), detail::render_number(value)};
}

TraceArg arg(std::string key, std::string_view value) {
  return TraceArg{std::move(key), detail::render_string(value)};
}

TraceArg arg(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false"};
}

void Tracer::instant(Duration t, std::string_view cat, std::string_view name,
                     std::vector<TraceArg> args) {
  TraceEvent e;
  e.domain = Domain::kSim;
  e.phase = 'i';
  e.ts_us = t.sec() * 1e6;
  e.lane = lane_;
  e.cat = cat;
  e.name = name;
  e.args = std::move(args);
  append(std::move(e));
}

void Tracer::counter(Duration t, std::string_view cat, std::string_view name,
                     std::vector<TraceArg> args) {
  TraceEvent e;
  e.domain = Domain::kSim;
  e.phase = 'C';
  e.ts_us = t.sec() * 1e6;
  e.lane = lane_;
  e.cat = cat;
  e.name = name;
  e.args = std::move(args);
  append(std::move(e));
}

void Tracer::append(TraceEvent event) {
  ++counts_[static_cast<int>(event.domain)];
  if (sink_ != nullptr) {
    sink_->write(event);
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::merge_from(Tracer&& other) {
  DCS_REQUIRE(&other != this, "cannot merge a tracer into itself");
  if (sink_ == nullptr) {
    events_.reserve(events_.size() + other.events_.size());
  }
  for (TraceEvent& e : other.events_) append(std::move(e));
  for (auto& [key, name] : other.lane_names_) {
    name_lane(key.first, key.second, std::move(name));
  }
  // Leave the source empty so a double merge cannot silently duplicate the
  // stream (it would previously re-append every event).
  other.clear();
}

void Tracer::name_lane(Domain domain, std::uint32_t lane, std::string name) {
  if (sink_ != nullptr) {
    sink_->write_lane_name(domain, lane, name);
    return;
  }
  lane_names_.insert_or_assign({domain, lane}, std::move(name));
}

void Tracer::clear() {
  events_.clear();
  lane_names_.clear();
  counts_[0] = counts_[1] = 0;
}

void Tracer::write_jsonl(std::ostream& out) const {
  for (const TraceEvent& e : events_) detail::write_jsonl_event(out, e);
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&]() -> std::ostream& {
    out << (first ? "  " : ",\n  ");
    first = false;
    return out;
  };
  for (const Domain domain : {Domain::kSim, Domain::kWall}) {
    bool have = count(domain) > 0;
    for (const auto& [key, name] : lane_names_) {
      have = have || key.first == domain;
    }
    if (!have) continue;
    detail::write_process_metadata_json(sep(), domain);
  }
  for (const auto& [key, name] : lane_names_) {
    detail::write_lane_metadata_json(sep(), key.first, key.second, name);
  }
  for (const TraceEvent& e : events_) {
    detail::write_event_json(sep(), e);
  }
  out << "\n]}\n";
}

bool export_trace(const std::string& dir, const std::string& name,
                  const Tracer& tracer, std::ostream* diag) {
  bool ok = true;
  const auto write = [&](const std::string& path, auto&& writer) {
    std::ofstream out(path);
    if (!out) {
      if (diag != nullptr) *diag << "cannot write " << path << "\n";
      ok = false;
      return;
    }
    writer(out);
    if (diag != nullptr) *diag << "[obs] wrote " << path << "\n";
  };
  write(dir + "/" + name + "_trace.json",
        [&](std::ostream& o) { tracer.write_chrome_trace(o); });
  write(dir + "/" + name + "_trace.jsonl",
        [&](std::ostream& o) { tracer.write_jsonl(o); });
  return ok;
}

}  // namespace dcs::obs
