#include "obs/trace.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "util/check.h"

namespace dcs::obs {
namespace detail {

void append_number(std::string& out, double v) {
  // Shortest round-trip form (strtod recovers the exact bits, like %.17g)
  // via to_chars: ~7x cheaper than snprintf, which matters because arg()
  // renders eagerly on the controller's tracing hot path.
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec != std::errc()) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
    return;
  }
  out.append(buf, res.ptr);
}

std::string render_number(double v) {
  std::string out;
  append_number(out, v);
  return out;
}

namespace {

[[nodiscard]] bool needs_escaping(char c) noexcept {
  return c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20;
}

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  // Fast path: event categories, names and arg keys are almost always plain
  // identifiers — copy verbatim, escape only on demand.
  std::size_t plain = 0;
  while (plain < s.size() && !needs_escaping(s[plain])) ++plain;
  out.append(s.data(), plain);
  for (std::size_t i = plain; i < s.size(); ++i) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string render_string(std::string_view s) {
  std::string out;
  append_json_string(out, s);
  return out;
}

namespace {

constexpr int kSimPid = 1;
constexpr int kWallPid = 2;

void append_args(std::string& out, const std::vector<TraceArg>& args) {
  out += '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ", ";
    append_json_string(out, args[i].key);
    out += ": ";
    out += args[i].value;
  }
  out += '}';
}

}  // namespace

int pid_of(Domain domain) noexcept {
  return domain == Domain::kSim ? kSimPid : kWallPid;
}

void append_event_json(std::string& out, const TraceEvent& e) {
  out += "{\"ph\": \"";
  out += e.phase;
  out += "\", \"ts\": ";
  append_number(out, e.ts_us);
  if (e.phase == 'X') {
    out += ", \"dur\": ";
    append_number(out, e.dur_us);
  }
  out += ", \"pid\": ";
  append_uint(out, static_cast<std::uint64_t>(pid_of(e.domain)));
  out += ", \"tid\": ";
  append_uint(out, e.lane);
  out += ", \"cat\": ";
  append_json_string(out, e.cat);
  out += ", \"name\": ";
  append_json_string(out, e.name);
  if (e.phase == 'i') out += ", \"s\": \"t\"";
  if (!e.args.empty()) {
    out += ", \"args\": ";
    append_args(out, e.args);
  }
  out += '}';
}

void append_jsonl_event(std::string& out, const TraceEvent& e) {
  out += "{\"domain\": \"";
  out += to_string(e.domain);
  out += "\", \"ph\": \"";
  out += e.phase;
  out += "\", \"ts\": ";
  append_number(out, e.ts_us);
  if (e.phase == 'X') {
    out += ", \"dur\": ";
    append_number(out, e.dur_us);
  }
  out += ", \"lane\": ";
  append_uint(out, e.lane);
  out += ", \"cat\": ";
  append_json_string(out, e.cat);
  out += ", \"name\": ";
  append_json_string(out, e.name);
  if (!e.args.empty()) {
    out += ", \"args\": ";
    append_args(out, e.args);
  }
  out += "}\n";
}

void write_event_json(std::ostream& out, const TraceEvent& e) {
  std::string buf;
  append_event_json(buf, e);
  out << buf;
}

void write_jsonl_event(std::ostream& out, const TraceEvent& e) {
  std::string buf;
  append_jsonl_event(buf, e);
  out << buf;
}

void write_lane_metadata_json(std::ostream& out, Domain domain,
                              std::uint32_t lane, const std::string& name) {
  out << "{\"ph\": \"M\", \"pid\": " << pid_of(domain) << ", \"tid\": " << lane
      << ", \"name\": \"thread_name\", \"args\": {\"name\": "
      << render_string(name) << "}}";
}

void write_process_metadata_json(std::ostream& out, Domain domain) {
  out << "{\"ph\": \"M\", \"pid\": " << pid_of(domain)
      << ", \"name\": \"process_name\", \"args\": {\"name\": "
      << render_string(to_string(domain)) << "}}";
}

}  // namespace detail

std::string_view to_string(Domain domain) noexcept {
  return domain == Domain::kSim ? "sim" : "wall";
}

TraceArg arg(std::string key, double value) {
  return TraceArg{std::move(key), detail::render_number(value)};
}

TraceArg arg(std::string key, std::string_view value) {
  return TraceArg{std::move(key), detail::render_string(value)};
}

TraceArg arg(std::string key, bool value) {
  return TraceArg{std::move(key), value ? "true" : "false"};
}

void Tracer::instant(Duration t, std::string_view cat, std::string_view name,
                     std::vector<TraceArg> args) {
  TraceEvent e;
  e.domain = Domain::kSim;
  e.phase = 'i';
  e.ts_us = t.sec() * 1e6;
  e.lane = lane_;
  e.cat = cat;
  e.name = name;
  e.args = std::move(args);
  append(std::move(e));
}

void Tracer::counter(Duration t, std::string_view cat, std::string_view name,
                     std::vector<TraceArg> args) {
  TraceEvent e;
  e.domain = Domain::kSim;
  e.phase = 'C';
  e.ts_us = t.sec() * 1e6;
  e.lane = lane_;
  e.cat = cat;
  e.name = name;
  e.args = std::move(args);
  append(std::move(e));
}

void Tracer::append(TraceEvent event) {
  ++counts_[static_cast<int>(event.domain)];
  if (sink_ != nullptr) {
    sink_->write(event);
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::merge_from(Tracer&& other) {
  DCS_REQUIRE(&other != this, "cannot merge a tracer into itself");
  if (sink_ == nullptr) {
    events_.reserve(events_.size() + other.events_.size());
  }
  for (TraceEvent& e : other.events_) append(std::move(e));
  for (auto& [key, name] : other.lane_names_) {
    name_lane(key.first, key.second, std::move(name));
  }
  // Leave the source empty so a double merge cannot silently duplicate the
  // stream (it would previously re-append every event).
  other.clear();
}

void Tracer::name_lane(Domain domain, std::uint32_t lane, std::string name) {
  if (sink_ != nullptr) {
    sink_->write_lane_name(domain, lane, name);
    return;
  }
  lane_names_.insert_or_assign({domain, lane}, std::move(name));
}

void Tracer::clear() {
  events_.clear();
  lane_names_.clear();
  counts_[0] = counts_[1] = 0;
}

namespace {

/// Serialization chunk size: build events into a string and flush in large
/// blocks — per-event ostream writes dominated the bulk exporters.
constexpr std::size_t kFlushBytes = 1 << 20;

}  // namespace

void Tracer::write_jsonl(std::ostream& out) const {
  std::string buf;
  buf.reserve(kFlushBytes + 512);
  for (const TraceEvent& e : events_) {
    detail::append_jsonl_event(buf, e);
    if (buf.size() >= kFlushBytes) {
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::string buf;
  buf.reserve(kFlushBytes + 512);
  buf += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&]() -> std::string& {
    buf += first ? "  " : ",\n  ";
    first = false;
    return buf;
  };
  for (const Domain domain : {Domain::kSim, Domain::kWall}) {
    bool have = count(domain) > 0;
    for (const auto& [key, name] : lane_names_) {
      have = have || key.first == domain;
    }
    if (!have) continue;
    std::ostringstream meta;
    detail::write_process_metadata_json(meta, domain);
    sep() += meta.str();
  }
  for (const auto& [key, name] : lane_names_) {
    std::ostringstream meta;
    detail::write_lane_metadata_json(meta, key.first, key.second, name);
    sep() += meta.str();
  }
  for (const TraceEvent& e : events_) {
    detail::append_event_json(sep(), e);
    if (buf.size() >= kFlushBytes) {
      out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  buf += "\n]}\n";
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

bool export_trace(const std::string& dir, const std::string& name,
                  const Tracer& tracer, std::ostream* diag) {
  bool ok = true;
  const auto write = [&](const std::string& path, auto&& writer) {
    std::ofstream out(path);
    if (!out) {
      if (diag != nullptr) *diag << "cannot write " << path << "\n";
      ok = false;
      return;
    }
    writer(out);
    if (diag != nullptr) *diag << "[obs] wrote " << path << "\n";
  };
  write(dir + "/" + name + "_trace.json",
        [&](std::ostream& o) { tracer.write_chrome_trace(o); });
  write(dir + "/" + name + "_trace.jsonl",
        [&](std::ostream& o) { tracer.write_jsonl(o); });
  return ok;
}

}  // namespace dcs::obs
