// Labeled metrics registry: counters (monotone), gauges (last value) and
// fixed-bucket histograms, snapshotable to CSV, JSON and a Prometheus-style
// text format.
//
// Metrics are identified by (name, label set); asking for the same identity
// returns the same instrument, so call sites need no registration phase.
// The registry iterates in deterministic (name, labels) order, so every
// snapshot format is byte-stable for a given set of recorded values. Like
// Tracer, a registry is not thread-safe: one registry per run/task, merged
// by the owner.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dcs::obs {

/// Sorted (key, value) label pairs.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(double amount = 1.0);
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  /// set(min(current, value)) — for "worst margin seen" style gauges.
  void set_min(double value) noexcept;
  /// set(max(current, value)).
  void set_max(double value) noexcept;
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);
  /// observe(value) repeated n times in O(1) — the bulk-import path for
  /// re-exporting an externally bucketed distribution (serving's
  /// LatencyTracker) without replaying every sample.
  void observe_n(double value, std::size_t n);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Finite bucket upper bounds (an implicit +Inf bucket follows).
  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return upper_bounds_;
  }
  /// Cumulative counts per bound, Prometheus-style; the final entry (+Inf)
  /// equals count().
  [[nodiscard]] std::vector<std::size_t> cumulative_counts() const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::size_t> buckets_;  // per-bucket (non-cumulative), +Inf last
  std::size_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;

  /// Returns the instrument with this identity, creating it on first use.
  /// Throws std::invalid_argument if the identity exists as another kind
  /// (or, for histograms, with different buckets).
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds,
                       Labels labels = {});

  [[nodiscard]] bool empty() const noexcept { return metrics_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }
  void clear() { metrics_.clear(); }

  /// Long-format CSV: metric,kind,labels,stat,value. Scalars are one
  /// "value" row; histograms emit count, sum and cumulative bucket rows.
  void write_csv(std::ostream& out) const;
  /// {"metrics": [{"name", "kind", "labels", ...}, ...]}.
  void write_json(std::ostream& out) const;
  /// Prometheus text exposition format (# TYPE headers, {label="v"} pairs).
  void write_prometheus(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, Labels>;

  Metric& find_or_create(std::string_view name, Labels labels, Kind kind);

  std::map<Key, Metric> metrics_;
};

/// Writes `<dir>/<name>_metrics.csv`, `.json` and `.prom`. Returns false
/// (after a diagnostic on `diag`) when a file cannot open.
bool export_metrics(const std::string& dir, const std::string& name,
                    const MetricsRegistry& registry,
                    std::ostream* diag = nullptr);

}  // namespace dcs::obs
