#include "obs/sink.h"

#include <utility>

namespace dcs::obs {
namespace {

// The Chrome sink's crash-safe trailer: written after every flush, then
// seeked back over so the next batch overwrites it.
constexpr const char kChromeTrailer[] = "\n]}\n";
constexpr std::streamoff kChromeTrailerLen =
    static_cast<std::streamoff>(sizeof(kChromeTrailer) - 1);

}  // namespace

FileStreamSink::FileStreamSink(std::string path, StreamSinkOptions options)
    : path_(std::move(path)), options_(options) {
  if (options_.buffer_events == 0) options_.buffer_events = 1;
  out_.open(path_);
  ok_ = static_cast<bool>(out_);
  buffer_.reserve(options_.buffer_events);
}

FileStreamSink::~FileStreamSink() {
  // Derived destructors call finalize() while their vtable is still live;
  // by the time the base destructor runs only closing can be left to do.
  if (out_.is_open()) out_.close();
}

void FileStreamSink::write(const TraceEvent& event) {
  if (!ok_ || finalized_) return;
  buffer_.push_back(event);
  if (buffer_.size() > peak_buffered_) peak_buffered_ = buffer_.size();
  if (buffer_.size() >= options_.buffer_events) flush_buffer(false);
}

void FileStreamSink::flush_buffer(bool final_flush) {
  if (!ok_) return;
  if (!begun_) {
    begin();
    begun_ = true;
  }
  for (const TraceEvent& e : buffer_) render(e);
  events_written_ += buffer_.size();
  buffer_.clear();
  ++flushes_;
  if (!final_flush) {
    after_flush();
    out_.flush();
  }
  // Re-check the stream at every flush boundary: a failed write (disk
  // full, unlinked directory) must drop the sink to the failed state now —
  // otherwise it keeps buffering and rendering forever and ok() reports
  // healthy until finalize().
  if (!out_) ok_ = false;
}

void FileStreamSink::finalize() {
  if (finalized_) return;
  if (!ok_) {
    finalized_ = true;
    return;
  }
  flush_buffer(true);
  finalized_ = true;
  end();
  out_.flush();
  ok_ = static_cast<bool>(out_);
  out_.close();
}

ChromeStreamSink::ChromeStreamSink(std::string path, StreamSinkOptions options)
    : FileStreamSink(std::move(path), options) {}

ChromeStreamSink::~ChromeStreamSink() { finalize(); }

void ChromeStreamSink::begin() {
  out_ << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
}

std::ostream& ChromeStreamSink::element() {
  out_ << (first_element_ ? "  " : ",\n  ");
  first_element_ = false;
  return out_;
}

void ChromeStreamSink::ensure_process_metadata(Domain domain) {
  bool& have = have_process_[static_cast<int>(domain)];
  if (have) return;
  have = true;
  detail::write_process_metadata_json(element(), domain);
}

void ChromeStreamSink::render(const TraceEvent& event) {
  ensure_process_metadata(event.domain);
  if (event.phase == 'M') {
    // Synthetic lane-metadata event queued by write_lane_name: `name`
    // carries the lane label.
    detail::write_lane_metadata_json(element(), event.domain, event.lane,
                                     event.name);
    return;
  }
  detail::write_event_json(element(), event);
}

void ChromeStreamSink::write_lane_name(Domain domain, std::uint32_t lane,
                                       const std::string& name) {
  // Metadata events are valid anywhere in the trace-event array. Routing
  // them through the normal buffer keeps append order, memory bounds and
  // crash safety uniform; dedupe repeats so task-order merging can
  // re-register lanes for free.
  const auto key = std::make_pair(domain, lane);
  const auto it = lanes_named_.find(key);
  if (it != lanes_named_.end() && it->second == name) return;
  lanes_named_.insert_or_assign(key, name);
  TraceEvent meta;
  meta.domain = domain;
  meta.phase = 'M';
  meta.lane = lane;
  meta.name = name;
  write(meta);
}

void ChromeStreamSink::after_flush() {
  // Crash safety: the file is a complete JSON document between batches.
  out_ << kChromeTrailer;
  out_.flush();
  out_.seekp(-kChromeTrailerLen, std::ios::cur);
}

void ChromeStreamSink::end() { out_ << kChromeTrailer; }

JsonlStreamSink::JsonlStreamSink(std::string path, StreamSinkOptions options)
    : FileStreamSink(std::move(path), options) {}

JsonlStreamSink::~JsonlStreamSink() { finalize(); }

void JsonlStreamSink::render(const TraceEvent& event) {
  if (event.phase == 'M') return;  // no JSONL representation of lane names
  detail::write_jsonl_event(out_, event);
}

void JsonlStreamSink::write_lane_name(Domain, std::uint32_t,
                                      const std::string&) {}

}  // namespace dcs::obs
