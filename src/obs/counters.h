// Counter-track export: bridges recorded per-tick channels (UPS/TES state
// of charge, breaker trip margin, room temperature, sprint degree, chiller
// power, ...) into Chrome trace-event `"ph": "C"` counter events, so
// Perfetto plots the physical trajectories in lanes next to the
// controller's phase-transition instants.
//
// Layering: dcs_obs sits below dcs_sim, so `export_counters` is a template
// over any Recorder-shaped type (channels() / has() / series()) instead of
// naming sim::Recorder — callers in the sim/core/bench layers instantiate
// it with the real recorder.
//
// Determinism: channels are exported in the (sorted) order the recorder
// reports them and samples in time order, entirely from recorded sim-domain
// data — emit into each sweep task's own Tracer and the merged counter
// stream is bit-identical for any thread count, same contract as every
// other sim event.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/time_series.h"

namespace dcs::obs {

struct CounterExportOptions {
  /// Channels to export; empty = every channel the recorder holds.
  /// Channels the recorder does not have are skipped (e.g. `tes_soc` on a
  /// TES-less configuration), so one list serves every configuration.
  std::vector<std::string> channels;
  /// Chrome category stamped on the counter events.
  std::string cat = "recorder";
  /// Prepended to every track name (e.g. "prediction/" when one task runs
  /// several strategies into the same lane).
  std::string name_prefix;
};

/// Emits one 'C' event per sample of `series`, named `name`, carrying the
/// sample value under the "value" arg (Perfetto renders one counter track
/// per name). Non-finite samples have no JSON literal and are skipped.
void export_counter_track(Tracer& tracer, std::string_view cat,
                          std::string_view name, const TimeSeries& series);

/// Per-zone channel suffixes recorded by core::ZonalController (under a
/// `zone<k>/` prefix) — kept here so exporters and the controller agree on
/// one spelling.
inline const std::vector<std::string> kZonalChannelSuffixes = {
    "demand", "degree", "grid_mw", "ups_soc", "cb_trip_margin_s"};

/// Expands a channel selection with the per-zone (per-PDU-group) channels
/// for `zones` zones: `zone0/demand`, `zone0/degree`, `zone0/grid_mw`,
/// `zone0/ups_soc`, `zone0/cb_trip_margin_s`, `zone1/...`, ... appended to
/// `channels`. Feed the result to CounterExportOptions::channels so zonal
/// runs show one Perfetto counter track per zone per quantity (e.g. each
/// zone's breaker margin side by side).
[[nodiscard]] inline std::vector<std::string> with_zonal_channels(
    std::vector<std::string> channels, std::size_t zones) {
  for (std::size_t z = 0; z < zones; ++z) {
    const std::string prefix = "zone" + std::to_string(z) + "/";
    for (const std::string& suffix : kZonalChannelSuffixes) {
      channels.push_back(prefix + suffix);
    }
  }
  return channels;
}

/// Bridges a recorder's channels into `tracer` as counter tracks; see the
/// file comment for the determinism contract. `RecorderT` is any type with
/// `channels() -> vector<string>`, `has(name) -> bool` and
/// `series(name) -> const TimeSeries&` (i.e. `sim::Recorder`).
template <class RecorderT>
void export_counters(const RecorderT& recorder, Tracer& tracer,
                     const CounterExportOptions& options = {}) {
  const std::vector<std::string> selected =
      options.channels.empty() ? recorder.channels() : options.channels;
  for (const std::string& channel : selected) {
    if (!recorder.has(channel)) continue;
    export_counter_track(tracer, options.cat, options.name_prefix + channel,
                         recorder.series(channel));
  }
}

}  // namespace dcs::obs
