// Counter-track export: bridges recorded per-tick channels (UPS/TES state
// of charge, breaker trip margin, room temperature, sprint degree, chiller
// power, ...) into Chrome trace-event `"ph": "C"` counter events, so
// Perfetto plots the physical trajectories in lanes next to the
// controller's phase-transition instants.
//
// Layering: dcs_obs sits below dcs_sim, so `export_counters` is a template
// over any Recorder-shaped type (channels() / has() / series()) instead of
// naming sim::Recorder — callers in the sim/core/bench layers instantiate
// it with the real recorder.
//
// Determinism: channels are exported in the (sorted) order the recorder
// reports them and samples in time order, entirely from recorded sim-domain
// data — emit into each sweep task's own Tracer and the merged counter
// stream is bit-identical for any thread count, same contract as every
// other sim event.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/time_series.h"

namespace dcs::obs {

struct CounterExportOptions {
  /// Channels to export; empty = every channel the recorder holds.
  /// Channels the recorder does not have are skipped (e.g. `tes_soc` on a
  /// TES-less configuration), so one list serves every configuration.
  std::vector<std::string> channels;
  /// Chrome category stamped on the counter events.
  std::string cat = "recorder";
  /// Prepended to every track name (e.g. "prediction/" when one task runs
  /// several strategies into the same lane).
  std::string name_prefix;
};

/// Emits one 'C' event per sample of `series`, named `name`, carrying the
/// sample value under the "value" arg (Perfetto renders one counter track
/// per name). Non-finite samples have no JSON literal and are skipped.
void export_counter_track(Tracer& tracer, std::string_view cat,
                          std::string_view name, const TimeSeries& series);

/// Bridges a recorder's channels into `tracer` as counter tracks; see the
/// file comment for the determinism contract. `RecorderT` is any type with
/// `channels() -> vector<string>`, `has(name) -> bool` and
/// `series(name) -> const TimeSeries&` (i.e. `sim::Recorder`).
template <class RecorderT>
void export_counters(const RecorderT& recorder, Tracer& tracer,
                     const CounterExportOptions& options = {}) {
  const std::vector<std::string> selected =
      options.channels.empty() ? recorder.channels() : options.channels;
  for (const std::string& channel : selected) {
    if (!recorder.has(channel)) continue;
    export_counter_track(tracer, options.cat, options.name_prefix + channel,
                         recorder.series(channel));
  }
}

}  // namespace dcs::obs
