#include "obs/decision.h"

#include <cassert>
#include <utility>

namespace dcs::obs {

std::string_view to_string(DecisionRule rule) noexcept {
  switch (rule) {
    case DecisionRule::kFaultInject:
      return "fault-inject";
    case DecisionRule::kFaultClear:
      return "fault-clear";
    case DecisionRule::kWatchdogViolation:
      return "watchdog-violation";
    case DecisionRule::kSupplyDisturbance:
      return "supply-disturbance";
    case DecisionRule::kBurstStart:
      return "burst-start";
    case DecisionRule::kBurstEnd:
      return "burst-end";
    case DecisionRule::kBreakerScreen:
      return "breaker-screen";
    case DecisionRule::kSloLatchSet:
      return "slo-latch-set";
    case DecisionRule::kSloLatchRelease:
      return "slo-latch-release";
    case DecisionRule::kSprintOnset:
      return "sprint-onset";
    case DecisionRule::kSprintEnd:
      return "sprint-end";
    case DecisionRule::kLadderDerate:
      return "ladder-derate";
    case DecisionRule::kLadderShed:
      return "ladder-shed";
    case DecisionRule::kLadderSprintEnded:
      return "ladder-sprint-ended";
    case DecisionRule::kLadderPowerCap:
      return "ladder-power-cap";
    case DecisionRule::kLadderRecovered:
      return "ladder-recovered";
    case DecisionRule::kReserveArbitration:
      return "reserve-arbitration";
    case DecisionRule::kAdmissionClamp:
      return "admission-clamp";
    case DecisionRule::kAdmissionRelease:
      return "admission-release";
    case DecisionRule::kSloBudgetExhausted:
      return "slo-budget-exhausted";
  }
  return "unknown";
}

bool is_trigger(DecisionRule rule) noexcept {
  switch (rule) {
    case DecisionRule::kFaultInject:
    case DecisionRule::kFaultClear:
    case DecisionRule::kWatchdogViolation:
    case DecisionRule::kSupplyDisturbance:
    case DecisionRule::kBurstStart:
    case DecisionRule::kBurstEnd:
    case DecisionRule::kBreakerScreen:
    case DecisionRule::kSloLatchSet:
      return true;
    default:
      return false;
  }
}

DecisionLog::DecisionLog(Tracer* tracer) : tracer_(tracer) {
  assert(tracer_ != nullptr && "DecisionLog needs a Tracer to emit into");
}

std::string DecisionLog::emit(DecisionRule rule,
                              std::initializer_list<DecisionValue> inputs,
                              std::initializer_list<DecisionValue> thresholds,
                              std::vector<TraceArg> extras) {
  std::string id = "d" + std::to_string(tracer_->lane()) + "-" +
                   std::to_string(++seq_);

  std::vector<TraceArg> args;
  args.reserve(2 + (cause_.empty() ? 0 : 1) + inputs.size() +
               thresholds.size() + extras.size());
  args.push_back(arg("schema", static_cast<double>(kDecisionSchema)));
  args.push_back(arg("id", std::string_view(id)));
  if (!cause_.empty()) {
    args.push_back(arg("cause", std::string_view(cause_)));
  }
  for (const DecisionValue& in : inputs) {
    args.push_back(arg("in_" + std::string(in.key), in.value));
  }
  for (const DecisionValue& th : thresholds) {
    args.push_back(arg("th_" + std::string(th.key), th.value));
  }
  for (TraceArg& extra : extras) {
    args.push_back(std::move(extra));
  }

  tracer_->instant(now_, "decision", to_string(rule), std::move(args));

  if (is_trigger(rule)) {
    cause_ = id;
  }
  return id;
}

}  // namespace dcs::obs
