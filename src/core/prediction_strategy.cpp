#include "core/prediction_strategy.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::core {

PredictionStrategy::PredictionStrategy(Duration predicted_duration,
                                       const UpperBoundTable* table)
    : predicted_duration_(predicted_duration), table_(table) {
  DCS_REQUIRE(predicted_duration >= Duration::zero(),
              "predicted duration must be non-negative");
  DCS_REQUIRE(table != nullptr, "prediction strategy needs the upper-bound table");
}

double PredictionStrategy::upper_bound(const SprintContext& ctx) {
  // Eq. (1): BDu_e(t) = BDu_p * (SDe_max / SDe_avg(t)). Early in the burst
  // SDe_avg is ~1 which inflates the equivalent duration and keeps the bound
  // conservative; as the fleet actually sprints, SDe_avg -> bound and the
  // equivalent duration approaches the prediction.
  const double avg = std::max(1.0, ctx.avg_degree);
  last_equivalent_ = predicted_duration_ * (ctx.max_degree / avg);
  const double bound = table_->lookup(last_equivalent_, ctx.max_demand_in_burst);
  return std::clamp(bound, 1.0, ctx.max_degree);
}

}  // namespace dcs::core
