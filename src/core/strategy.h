// Sprinting-degree strategies (paper Section V-A).
//
// Each control period the strategy returns an *upper bound* on the
// sprinting degree; the controller activates at most that many cores (and
// fewer when the demand does not need them or the power/cooling plant
// cannot feed them). Four strategies are provided across this and the
// sibling headers:
//   Greedy      - no bound beyond the hardware maximum;
//   Oracle      - the best constant bound, found by exhaustive search with
//                 perfect burst knowledge (core/oracle.h);
//   Prediction  - Eq. (1): equivalent burst duration -> table lookup;
//   Heuristic   - Eq. (2)-(3): remaining-energy / remaining-time scaling.
#pragma once

#include <string_view>

#include "util/units.h"

namespace dcs::core {

/// Everything a strategy may observe at one control period.
struct SprintContext {
  /// Time since the current burst (demand > 1) began.
  Duration elapsed_in_burst = Duration::zero();
  /// Current normalized demand.
  double demand = 0.0;
  /// Hardware maximum sprinting degree (total / normal cores).
  double max_degree = 1.0;
  /// Maximum demand observed since the burst began.
  double max_demand_in_burst = 1.0;
  /// Time-average of the real sprinting degree since the burst began
  /// (SDe_avg(t) in Eq. (1)); 1 before any sprinting happened.
  double avg_degree = 1.0;
  /// Remaining / total additional-energy budget (RE(t) in Eq. (3)).
  double remaining_energy_fraction = 1.0;
  /// Width of this control period.
  Duration period = Duration::seconds(1);
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Upper bound of the sprinting degree for this control period (>= 1).
  [[nodiscard]] virtual double upper_bound(const SprintContext& ctx) = 0;

  /// Notifies the strategy that a new burst began (demand crossed 1).
  virtual void on_burst_start() {}

  /// Called every control period, in and out of bursts, so adaptive
  /// strategies can learn the workload (upper_bound() is only consulted
  /// while a burst is being sprinted).
  virtual void observe(const SprintContext& ctx) { (void)ctx; }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Greedy: activate just enough cores for the demand, with no bound other
/// than the hardware maximum.
class GreedyStrategy final : public Strategy {
 public:
  [[nodiscard]] double upper_bound(const SprintContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "greedy"; }
};

/// A fixed upper bound. The Oracle strategy is a ConstantBoundStrategy whose
/// bound came from exhaustive search (see core/oracle.h).
class ConstantBoundStrategy final : public Strategy {
 public:
  explicit ConstantBoundStrategy(double bound, std::string_view name = "constant");

  [[nodiscard]] double upper_bound(const SprintContext& ctx) override;
  [[nodiscard]] double bound() const noexcept { return bound_; }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

 private:
  double bound_;
  std::string_view name_;
};

}  // namespace dcs::core
