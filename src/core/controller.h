// The Data Center Sprinting controller (paper Sections IV-V).
//
// Each control period (1 s) the controller:
//  1. detects bursts (normalized demand > 1) and asks the strategy for the
//     sprinting-degree upper bound;
//  2. finds the largest feasible active-core count under that bound given
//     the breaker governor (keep every breaker's remaining trip time at or
//     above the reserve — Section V-B's shrinking overload bound), the UPS
//     banks' power/energy limits, and the DC-level budget including cooling;
//  3. coordinates the three phases: CB overload only (phase 1), UPS
//     discharge for the gap the breakers may no longer carry (phase 2), and
//     TES-backed cooling from the CFD-derived activation time (phase 3);
//  4. commits the loads to the physical models (breaker thermal state,
//     battery/tank charge, room temperature) and enforces the terminal
//     rules: room over threshold or TES exhausted in phase 3 ends the
//     sprint (Section V-C).
//
// Modes: the same stepping core also implements the paper's baselines —
// uncontrolled chip-level sprinting (no governor, no ESDs; breakers trip
// and the data center goes dark, Fig. 8a), no-sprint, and a conventional
// power-capping baseline that never exceeds any rating.
#pragma once

#include <cstddef>
#include <string_view>

#include "compute/dvfs.h"
#include "compute/fleet.h"
#include "core/config.h"
#include "core/strategy.h"
#include "faults/injector.h"
#include "obs/decision.h"
#include "obs/trace.h"
#include "power/generator.h"
#include "power/topology.h"
#include "util/time_series.h"
#include "thermal/cooling_plant.h"
#include "thermal/room_model.h"
#include "thermal/tes_tank.h"
#include "util/units.h"

namespace dcs::core {

enum class Mode {
  kControlled,    ///< full Data Center Sprinting
  kUncontrolled,  ///< chip-level sprinting with no DC-level control (Fig. 8a)
  kNoSprint,      ///< normal cores only
  kPowerCapped,   ///< extra cores only within ratings; no overload, no ESDs
  kDvfsCapped,    ///< conventional DVFS capping: boost frequency, not cores
};

[[nodiscard]] std::string_view to_string(Mode mode) noexcept;

enum class SprintPhase {
  kNormal = 0,    ///< not sprinting
  kCbOverload = 1,///< phase 1: breaker tolerance only
  kUpsAssist = 2, ///< phase 2: UPS carrying part of the load
  kTesCooling = 3,///< phase 3: TES carrying the cooling load
  kShutdown = 4,  ///< a breaker tripped (uncontrolled mode only)
};

[[nodiscard]] std::string_view to_string(SprintPhase phase) noexcept;

/// Where the controller sits on the graceful-degradation ladder this step
/// (Section IV-A's reactive safety actions, generalized to injected faults).
/// Levels are ordered by how much sprinting capability has been given up.
enum class DegradationLevel {
  kNominal = 0,   ///< no active fault, full capability
  kDerated = 1,   ///< faults active; feasibility re-solved on the degraded set
  kShedding = 2,  ///< the degree was shed below the strategy's bound
  kSprintEnded = 3,      ///< the sprint was ended by a fault/disturbance
  kPowerCapFallback = 4, ///< last resort: stepping as power-capped
};

[[nodiscard]] std::string_view to_string(DegradationLevel level) noexcept;

/// Everything one control step produced (for recording and tests).
struct StepResult {
  double demand = 0.0;
  double achieved = 0.0;        ///< normalized throughput delivered
  double degree = 1.0;          ///< realized sprinting degree
  double upper_bound = 1.0;     ///< strategy bound after clamping
  std::size_t active_cores = 0; ///< per server
  SprintPhase phase = SprintPhase::kNormal;
  Power server_power;           ///< fleet-wide IT power
  Power cooling_power;          ///< cooling electrical power
  Power ups_power;              ///< fleet-wide UPS discharge
  Power dc_load;                ///< substation breaker load
  double supply_fraction = 1.0; ///< utility feed health this step
  Power tes_heat;               ///< heat absorbed by the TES
  Power tes_relief;             ///< chiller electrical displaced by the TES
  Temperature room;
  bool tripped = false;
  /// Demand as the controller saw it (differs from `demand` only under an
  /// injected sensor fault).
  double measured_demand = 0.0;
  /// Faults active this step (0 without a fault injector).
  std::size_t faults_active = 0;
  DegradationLevel degradation = DegradationLevel::kNominal;
};

class SprintingController {
 public:
  struct Deps {
    compute::Fleet* fleet = nullptr;
    power::PowerTopology* topology = nullptr;
    thermal::CoolingPlant* cooling = nullptr;
    thermal::TesTank* tes = nullptr;  // may be null (no-TES ablation)
    thermal::RoomModel* room = nullptr;
    /// Representative chip PCM heat sink (uniform fleet); may be null to
    /// skip chip-level thermal limits.
    compute::PcmHeatSink* pcm = nullptr;
  };

  SprintingController(const DataCenterConfig& config, const Deps& deps,
                      Strategy* strategy, Mode mode);

  /// Advances one control period.
  StepResult step(Duration now, double demand, Duration dt);

  /// Utility-feed health over time as a fraction of the DC rating in [0, 1]
  /// (1 = healthy; below 1 models the paper's "unexpected power spikes in
  /// the utility power supply", which immediately end the sprint). The
  /// series must outlive the controller; nullptr restores a healthy feed.
  void set_supply_fraction(const TimeSeries* fraction) noexcept {
    supply_fraction_ = fraction;
  }
  /// Optional backup generator, started automatically on a disturbance.
  void attach_generator(power::DieselGenerator* generator) noexcept {
    generator_ = generator;
  }
  /// Optional fault injector: the controller reads demand/power/temperature
  /// through its sensor filters and climbs the degradation ladder on its
  /// active-fault state. The injector must outlive the controller; null
  /// (the default) keeps the fault-free fast path.
  void set_fault_injector(faults::FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  /// Optional structured-trace sink. step() emits one instant per state
  /// transition: sprint-phase changes, degradation-ladder moves, DC-breaker
  /// overload entry/exit, remaining-trip-time threshold crossings, and
  /// UPS/TES activation edges. Must outlive the controller.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  /// Optional decision-provenance log (obs/decision.h). step() emits one
  /// DecisionRecord per rule firing — burst/supply/breaker-screen triggers,
  /// sprint onset/end, ladder moves — with the measured inputs and
  /// thresholds each rule evaluated. Must outlive the controller.
  void set_decision_log(obs::DecisionLog* decisions) noexcept {
    decisions_ = decisions;
  }

  // --- accumulated accounting (for RunResult) ---
  [[nodiscard]] Energy ups_energy() const noexcept { return ups_energy_; }
  /// Chiller electrical energy displaced by the TES.
  [[nodiscard]] Energy tes_saved_energy() const noexcept { return tes_saved_; }
  /// Above-rating energy carried by the PDU breakers.
  [[nodiscard]] Energy pdu_overload_energy() const noexcept { return pdu_overload_; }
  /// Above-rating energy carried by the DC breaker.
  [[nodiscard]] Energy dc_overload_energy() const noexcept { return dc_overload_; }
  /// Aggregated time spent sprinting (degree > 1).
  [[nodiscard]] Duration sprint_time() const noexcept { return sprint_time_; }
  /// Aggregated time spent in each phase (indexed by SprintPhase) — the
  /// T1..T4 structure of the paper's Fig. 4.
  [[nodiscard]] Duration phase_time(SprintPhase phase) const noexcept {
    return phase_time_[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] bool shutdown() const noexcept { return shutdown_; }
  [[nodiscard]] Duration trip_time() const noexcept { return trip_time_; }
  /// Highest degradation-ladder level reached so far.
  [[nodiscard]] DegradationLevel max_degradation() const noexcept {
    return max_degradation_;
  }
  /// Aggregated time spent at each DegradationLevel.
  [[nodiscard]] Duration degradation_time(DegradationLevel level) const noexcept {
    return degradation_time_[static_cast<std::size_t>(level)];
  }
  /// Remaining / total additional-energy budget (drives the Heuristic).
  [[nodiscard]] double remaining_energy_fraction() const;
  /// Total additional-energy budget in degree-seconds (for HeuristicStrategy).
  [[nodiscard]] double total_budget_degree_seconds() const noexcept {
    return budget_total_ds_;
  }

 private:
  struct Feasible {
    std::size_t cores;
    Power ups_per_pdu;
    Power tes_relief;  ///< chiller electrical displaced to relieve the DC CB
    bool tes_active;
    std::size_t desired = 0;  ///< cores the bound asked for (pre-shedding)
  };

  [[nodiscard]] bool burst_active(double demand) const noexcept {
    return demand > 1.0 + 1e-9;
  }
  [[nodiscard]] SprintContext make_context(double demand,
                                           double energy_fraction) const;
  [[nodiscard]] bool should_activate_tes() const;
  [[nodiscard]] Feasible find_feasible(double demand, double bound, Duration dt) const;
  [[nodiscard]] bool check_cores(std::size_t cores, double demand, bool tes_active,
                                 Duration dt, Power* ups_per_pdu,
                                 Power* tes_relief) const;
  StepResult step_controlled(Duration now, double demand, Duration dt);
  StepResult step_uncontrolled(double demand, Duration dt);
  StepResult step_capped(double demand, Duration dt, bool allow_extra_cores);
  StepResult step_dvfs(double demand, Duration dt);
  /// Ladder last resort: margins critically tight under faults.
  [[nodiscard]] bool should_fall_back() const;
  void account(const StepResult& result, Duration dt);
  void trace_transitions(Duration now, const StepResult& result);
  [[nodiscard]] Energy cb_budget_estimate() const;
  [[nodiscard]] Power power_per_degree() const;

  DataCenterConfig config_;
  Deps deps_;
  Strategy* strategy_;
  Mode mode_;
  /// Cached config-derived ratings: the DataCenterConfig accessors build a
  /// throwaway compute::Fleet per call, far too heavy for the per-tick
  /// paths (grid cap, feasibility checks, overload accounting, tracing).
  Power dc_rated_;
  Power pdu_rated_;
  Power fleet_peak_sprint_;
  Power power_per_degree_;
  Duration tes_activation_time_ = Duration::zero();
  Energy budget_total_energy_ = Energy::zero();
  compute::DvfsModel dvfs_{};
  const TimeSeries* supply_fraction_ = nullptr;
  TimeSeries::Cursor supply_cursor_;
  power::DieselGenerator* generator_ = nullptr;
  faults::FaultInjector* injector_ = nullptr;
  /// Utility + generator power available this step (set in step_controlled,
  /// consumed by check_cores).
  Power grid_cap_;
  bool grid_limited_ = false;

  // burst / sprint state
  bool in_burst_ = false;
  bool sprint_terminated_ = false;
  Duration burst_elapsed_ = Duration::zero();   // aggregated demand>1 time
  Duration sprint_elapsed_ = Duration::zero();  // aggregated degree>1 time
  double degree_time_integral_ = 0.0;           // for SDe_avg
  double max_demand_in_burst_ = 1.0;

  // accounting
  Energy ups_energy_ = Energy::zero();
  Energy tes_saved_ = Energy::zero();
  Energy pdu_overload_ = Energy::zero();
  Energy dc_overload_ = Energy::zero();
  Duration sprint_time_ = Duration::zero();
  Duration phase_time_[5] = {};
  bool shutdown_ = false;
  Duration trip_time_ = Duration::infinity();
  double budget_total_ds_ = 0.0;
  Energy cb_budget_initial_ = Energy::zero();

  // degradation ladder
  bool fallback_ = false;  // latched power-cap fallback (with hysteresis)
  DegradationLevel max_degradation_ = DegradationLevel::kNominal;
  Duration degradation_time_[5] = {};

  // transition tracing (previous-step state for edge detection)
  obs::Tracer* tracer_ = nullptr;
  obs::DecisionLog* decisions_ = nullptr;
  SprintPhase prev_phase_ = SprintPhase::kNormal;
  DegradationLevel prev_degradation_ = DegradationLevel::kNominal;
  bool prev_ups_active_ = false;
  bool prev_tes_active_ = false;
  bool prev_dc_overload_ = false;
  bool prev_margin_low_ = false;
  bool prev_in_burst_ = false;
  bool prev_sprinting_ = false;
  bool prev_grid_limited_ = false;
};

}  // namespace dcs::core
