#include "core/budget_paced_strategy.h"

#include <algorithm>

#include "util/check.h"
#include "workload/burst.h"

namespace dcs::core {

BudgetPacedStrategy::BudgetPacedStrategy(const TimeSeries& demand,
                                         const DataCenterConfig& config) {
  DCS_REQUIRE(!demand.empty(), "planner needs a demand trace");
  const workload::BurstStats stats = workload::analyze_bursts(demand, 1.0);
  if (stats.over_capacity_time <= Duration::zero()) {
    cap_ = 1.0;  // nothing to plan
    return;
  }
  // Plan for the longest contiguous episode: the pools recharge (slowly)
  // between episodes, so per-episode planning is the right granularity for
  // multi-burst traces; for a single burst this equals the total.
  const Duration burst = stats.longest_burst;
  const double burst_demand = std::max(1.0, stats.mean_burst_demand);

  const compute::Fleet fleet(config.fleet);
  const compute::Chip& chip = fleet.server().chip();
  const std::size_t normal = chip.params().normal_cores;
  const std::size_t total = chip.params().total_cores;
  const auto n_pdus = static_cast<double>(config.fleet.pdu_count);
  const auto servers = static_cast<double>(config.fleet.servers_per_pdu);

  // Stored-energy pools (a small exhaustion margin mirrors the controller's
  // 2 % cut-off).
  const Energy ups_per_pdu =
      config.battery_per_server.capacity.at_volts(
          config.battery_per_server.bus_voltage) *
      servers * 0.98;
  const Energy tes = config.has_tes
                         ? config.tes_params().capacity * 0.98
                         : Energy::zero();
  // Sustained breaker floor: the no-trip ratio holds indefinitely.
  const Power pdu_floor = config.pdu_rated() * config.trip_curve.no_trip_ratio;
  const Power thermal_cap = config.fleet_peak_normal();
  const Duration t_act = config.tes_activation_time();

  double best_value = -1.0;
  for (std::size_t cores = normal; cores <= total; ++cores) {
    const double b = chip.degree_for_cores(cores);
    const double thr =
        std::min(fleet.throughput().throughput(cores), burst_demand);
    // During the burst the demand exceeds the cap's capacity, so the active
    // cores run fully utilized.
    const Power per_pdu = fleet.server().power(cores, 1.0) * servers;

    Duration dur = burst;
    const Power ups_rate =
        per_pdu > pdu_floor ? per_pdu - pdu_floor : Power::zero();
    if (ups_rate > Power::zero()) {
      dur = std::min(dur, ups_per_pdu / ups_rate);
    }
    const Power fleet_power = per_pdu * n_pdus;
    const Power excess =
        fleet_power > thermal_cap ? fleet_power - thermal_cap : Power::zero();
    if (excess > Power::zero()) {
      dur = std::min(dur, config.has_tes ? t_act + tes / excess : t_act);
    }
    // Served throughput: thr while the sprint lasts, the normal capacity
    // for the remainder of the burst after exhaustion.
    const double value = thr * dur.sec() + 1.0 * (burst - dur).sec();
    if (value > best_value) {
      best_value = value;
      cap_ = b;
      duration_ = dur;
    }
  }
}

double BudgetPacedStrategy::upper_bound(const SprintContext& ctx) {
  return std::clamp(cap_, 1.0, ctx.max_degree);
}

}  // namespace dcs::core
