// The DataCenter facade: wires every substrate from a DataCenterConfig and
// runs a demand trace through the sprinting controller, producing the
// metrics the paper's figures report.
//
// Each run() builds fresh subsystem state (breakers cold, batteries and TES
// full, room at setpoint), so a DataCenter is a reusable experiment factory.
//
// Scale note: the fleet is homogeneous and the workload uniform, so every
// result is invariant to `fleet.pdu_count` (all per-PDU state evolves
// identically and every rating scales linearly). Experiments may lower the
// PDU count for speed without changing any normalized output; the default
// stays at the paper's 909.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include <cstdint>

#include "compute/fleet.h"
#include "core/config.h"
#include "core/controller.h"
#include "core/strategy.h"
#include "faults/schedule.h"
#include "faults/watchdog.h"
#include "obs/decision.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/component.h"
#include "sim/recorder.h"
#include "util/time_series.h"
#include "util/units.h"

namespace dcs::core {

struct RunOptions {
  Mode mode = Mode::kControlled;
  /// Record full per-tick channels into RunResult::recorder.
  bool record = false;
  /// Optional utility-feed health over time (fraction of the DC rating in
  /// [0, 1]); must outlive the run. See
  /// SprintingController::set_supply_fraction.
  const TimeSeries* supply_fraction = nullptr;
  /// Optional backup generator used during supply disturbances; it is reset
  /// to a stopped, fault-free state at the start of every run.
  power::DieselGenerator* generator = nullptr;
  /// Optional fault schedule; must outlive the run. Null or empty keeps the
  /// fault-free fast path (bit-identical metrics to a build without faults).
  const faults::FaultSchedule* faults = nullptr;
  /// Seed for the injector's sensor-noise stream.
  std::uint64_t fault_seed = 0x5eedu;
  /// Engine span skipping (sim/engine.h). On by default; results are
  /// bit-identical either way — the bit-identity tests run both and
  /// byte-compare every channel. Off forces the plain per-tick loop.
  bool span_skip = true;
  /// Optional structured-trace sink wired through the engine, controller,
  /// injector and watchdog; must outlive the run. All events carry sim
  /// time, so the stream is bit-identical regardless of who else runs in
  /// parallel. Null keeps the untraced fast path.
  obs::Tracer* tracer = nullptr;
  /// Optional decision-provenance log (obs/decision.h), usually built over
  /// the same tracer. The run driver stamps its sim time each control
  /// period and wires it through the controller, the fault injector and
  /// the watchdog, so every rule firing lands in the trace as a causal
  /// DecisionRecord. Must outlive the run.
  obs::DecisionLog* decisions = nullptr;
  /// Optional metrics registry updated every tick (sprint_degree histogram,
  /// ups_soc / tes_soc / cb_trip_margin_s gauges, degradation and phase
  /// transition counters, ...); must outlive the run. Registries are not
  /// thread-safe — give each concurrent run its own.
  obs::MetricsRegistry* metrics = nullptr;
  /// Extra components registered with the run's engine *after* the control
  /// driver, so each ticks with the period's committed StepResult already
  /// published through on_step (e.g. a serving::ServingLayer whose service
  /// rates follow the active core set). Must outlive the run.
  std::vector<sim::Component*> components;
  /// Invoked at the end of every control period with the committed step —
  /// the hook that feeds the realized capacity degree (and anything else in
  /// StepResult) to the extra components without core depending on them.
  std::function<void(Duration now, Duration dt, const StepResult& step)>
      on_step;
};

struct RunResult {
  /// Time-weighted mean achieved (normalized) throughput.
  double avg_achieved = 0.0;
  /// Same metric for the analytic no-sprint baseline min(demand, 1).
  double avg_achieved_nosprint = 0.0;
  /// avg_achieved / avg_achieved_nosprint — the paper's "average
  /// performance normalized to the performance without sprinting".
  double performance_factor = 0.0;
  /// Fraction of offered demand dropped.
  double drop_fraction = 0.0;
  /// Time-average realized sprinting degree over the burst (demand > 1)
  /// time — the Oracle run's value is the Heuristic's "real best average
  /// sprinting degree". 1 when the trace has no burst.
  double avg_sprint_degree = 1.0;
  Duration sprint_time = Duration::zero();
  /// Time spent in each SprintPhase (normal, cb-overload, ups-assist,
  /// tes-cooling, shutdown) — the paper's Fig. 4 T1..T4 structure.
  std::array<Duration, 5> phase_time{};
  bool tripped = false;
  Duration trip_time = Duration::infinity();
  Energy ups_energy;
  Energy tes_saved_energy;
  Energy pdu_overload_energy;
  Energy dc_overload_energy;
  Temperature peak_room_temperature;
  double min_ups_soc = 1.0;
  double min_tes_soc = 1.0;
  /// Battery wear counters of a representative per-PDU bank (uniform fleet):
  /// discharge events, equivalent full cycles, and the deepest
  /// depth-of-discharge reached — inputs to power::BatteryLifetimeModel.
  std::size_t ups_discharge_events = 0;
  double ups_equivalent_cycles = 0.0;
  double ups_max_depth = 0.0;
  /// Highest degradation-ladder level the controller reached, and the time
  /// spent at each level (indexed by DegradationLevel). Nominal/zero-filled
  /// for non-controlled modes and fault-free runs.
  DegradationLevel max_degradation = DegradationLevel::kNominal;
  std::array<Duration, 5> degradation_time{};
  /// Invariant-watchdog diagnostics: DESIGN.md Section 6 invariants checked
  /// every tick against the *true* plant state.
  faults::WatchdogReport watchdog;
  /// Engine span-skipping observability: leaps taken and ticks replayed
  /// inside leaps. Zero with RunOptions::span_skip off, or when the inputs
  /// change every tick. These are scheduling counters, not results — every
  /// other RunResult field is bit-identical regardless.
  std::size_t engine_leaps = 0;
  std::size_t engine_leaped_ticks = 0;
  /// Per-tick channels (only when RunOptions::record): demand, achieved,
  /// achieved_nosprint, degree, bound, cores, phase, server_mw, cooling_mw,
  /// ups_mw, dc_load_mw, room_c, ups_soc, tes_soc, dc_cb_heat, pdu_cb_heat,
  /// cb_trip_margin_s (time-to-trip at the tick's load, capped at 3600 s so
  /// the channel stays finite), supply, degradation; plus faults_active and
  /// measured_demand when a fault schedule is attached.
  sim::Recorder recorder;
};

class DataCenter {
 public:
  explicit DataCenter(DataCenterConfig config);

  /// Runs `demand` (normalized trace) under `strategy`. The strategy may be
  /// null for the baseline modes.
  [[nodiscard]] RunResult run(const TimeSeries& demand, Strategy* strategy,
                              const RunOptions& options = {});

  /// EB_tot in degree-seconds with fresh subsystems — the Heuristic
  /// strategy's budget input.
  [[nodiscard]] double budget_degree_seconds() const;

  [[nodiscard]] const DataCenterConfig& config() const noexcept { return config_; }

 private:
  struct Plant;  // fresh-per-run subsystem bundle
  [[nodiscard]] std::unique_ptr<Plant> make_plant() const;

  DataCenterConfig config_;
  compute::Fleet fleet_;
};

}  // namespace dcs::core
