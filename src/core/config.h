// Full data-center configuration (paper Section VI-A defaults) plus the
// derived parameter builders for every substrate.
//
// Defaults:
//  * 48-core SCC-style chips, 12 cores normally active, 55 W peak-normal
//    server power, 20 W non-CPU;
//  * 909 PDUs x 200 servers = 181,800 servers = ~10 MW peak-normal IT power;
//  * PDU breaker rated at 25 % above the group's peak-normal power
//    (13.75 kW, the NEC provisioning rule);
//  * DC breaker rated at `dc_headroom` (10 % default, swept 0-20 %) above
//    the peak-normal *total* (IT + cooling at PUE 1.53) power —
//    under-provisioning leaves less than the NEC 25 %;
//  * 0.5 Ah / 11 V per-server UPS (~6 min at peak-normal draw);
//  * TES sized to carry the cooling load for 12 minutes at peak-normal IT
//    power; chiller is 2/3 of cooling power;
//  * 1-minute reserved CB trip time, 1 s control period.
#pragma once

#include <optional>

#include "compute/fleet.h"
#include "compute/pcm_heatsink.h"
#include "power/battery.h"
#include "power/topology.h"
#include "power/trip_curve.h"
#include "thermal/cooling_plant.h"
#include "thermal/room_model.h"
#include "thermal/tes_tank.h"
#include "util/units.h"

namespace dcs::core {

struct DataCenterConfig {
  compute::Fleet::Params fleet{};
  /// Chip-level PCM heat sink (the paper's prerequisite, refs [31][32]).
  /// The default capacity does not bind before the data-center level.
  compute::PcmHeatSink::Params chip_pcm{};

  // --- power infrastructure ---
  double pue = 1.53;
  /// Available headroom of the DC-level breaker over peak-normal total power.
  double dc_headroom = 0.10;
  /// Headroom of each PDU breaker over its group's peak-normal power.
  double pdu_headroom = 0.25;
  power::TripCurveParams trip_curve{};
  Duration cb_cooling_tau = Duration::minutes(10);
  power::Battery::Params battery_per_server{};

  // --- thermal plant ---
  bool has_tes = true;
  /// TES capacity in minutes of cooling at peak-normal IT power.
  double tes_capacity_minutes = 12.0;
  double chiller_fraction = 2.0 / 3.0;
  thermal::RoomModel::Params room{};  // calibration power filled by room_params()

  // --- controller ---
  /// Minimum remaining CB trip time the controller preserves (Section V-B's
  /// user-defined 1 minute).
  Duration cb_reserve = Duration::minutes(1);
  Duration control_period = Duration::seconds(1);
  /// Demand level below which idle capacity recharges the ESDs.
  double recharge_demand_threshold = 0.9;
  /// CFD rule constant: TES activates at 5 min scaled by the ratio of
  /// peak-normal to maximum-additional server power (Section V-C).
  Duration tes_rule_base = Duration::minutes(5);

  // --- derived builders ---
  [[nodiscard]] Power server_peak_normal() const;
  [[nodiscard]] Power fleet_peak_normal() const;
  [[nodiscard]] Power fleet_peak_sprint() const;
  /// Peak-normal total (IT + cooling) power.
  [[nodiscard]] Power total_peak_normal() const;
  [[nodiscard]] Power pdu_rated() const;
  [[nodiscard]] Power dc_rated() const;
  /// Paper Section V-C: time after sprint start at which the TES activates.
  [[nodiscard]] Duration tes_activation_time() const;

  [[nodiscard]] power::PowerTopology::Params topology_params() const;
  [[nodiscard]] thermal::TesTank::Params tes_params() const;
  [[nodiscard]] thermal::CoolingPlant::Params cooling_params(
      thermal::TesTank* tes) const;
  [[nodiscard]] thermal::RoomModel::Params room_params() const;

  /// Throws std::invalid_argument when the configuration is inconsistent.
  void validate() const;
};

}  // namespace dcs::core
