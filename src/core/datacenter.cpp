#include "core/datacenter.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "faults/injector.h"
#include "sim/engine.h"
#include "util/check.h"
#include "workload/admission.h"

namespace dcs::core {
namespace {

/// Cap for the recorded cb_trip_margin_s channel: an infinite time-to-trip
/// (load below the breaker threshold) records as one hour.
constexpr double kTripMarginCapSec = 3600.0;

/// Adapts the per-tick run body to the simulation engine's Component
/// interface, so experiment runs share the engine's clock/event machinery.
/// The optional `hint` reports the next change point of the driver's inputs
/// (demand/supply samples, fault edges) so the engine's span skipping can
/// replay quiescent spans in its tight loop; without one the driver
/// declines skipping (the conservative Component default).
class RunDriver final : public sim::Component {
 public:
  explicit RunDriver(std::function<void(Duration, Duration)> body,
                     std::function<Duration(Duration)> hint = nullptr)
      : body_(std::move(body)), hint_(std::move(hint)) {}
  void tick(Duration now, Duration dt) override { body_(now, dt); }
  [[nodiscard]] Duration next_event_hint(Duration now) const override {
    return hint_ ? hint_(now) : now;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "run-driver";
  }

 private:
  std::function<void(Duration, Duration)> body_;
  std::function<Duration(Duration)> hint_;
};

}  // namespace

struct DataCenter::Plant {
  power::PowerTopology topology;
  std::unique_ptr<thermal::TesTank> tes;  // null when has_tes is false
  thermal::CoolingPlant cooling;
  thermal::RoomModel room;
  compute::PcmHeatSink pcm;  // representative chip package (uniform fleet)

  Plant(const DataCenterConfig& config)
      : topology(config.topology_params()),
        tes(config.has_tes
                ? std::make_unique<thermal::TesTank>("dc/tes", config.tes_params())
                : nullptr),
        cooling(config.cooling_params(tes.get())),
        room(config.room_params()),
        pcm(config.chip_pcm) {}
};

DataCenter::DataCenter(DataCenterConfig config)
    : config_(std::move(config)), fleet_(config_.fleet) {
  config_.validate();
}

std::unique_ptr<DataCenter::Plant> DataCenter::make_plant() const {
  return std::make_unique<Plant>(config_);
}

double DataCenter::budget_degree_seconds() const {
  auto plant = make_plant();
  compute::Fleet fleet(config_.fleet);
  SprintingController::Deps deps{&fleet, &plant->topology, &plant->cooling,
                                 plant->tes.get(), &plant->room, &plant->pcm};
  const SprintingController controller(config_, deps, nullptr, Mode::kNoSprint);
  return controller.total_budget_degree_seconds();
}

RunResult DataCenter::run(const TimeSeries& demand, Strategy* strategy,
                          const RunOptions& options) {
  DCS_REQUIRE(!demand.empty(), "demand trace is empty");
  auto plant = make_plant();
  SprintingController::Deps deps{&fleet_, &plant->topology, &plant->cooling,
                                 plant->tes.get(), &plant->room, &plant->pcm};
  SprintingController controller(config_, deps, strategy, options.mode);
  controller.set_supply_fraction(options.supply_fraction);
  controller.set_tracer(options.tracer);
  controller.set_decision_log(options.decisions);
  if (options.generator != nullptr) {
    options.generator->reset();
    controller.attach_generator(options.generator);
  }

  // Fault injection is strictly opt-in: without a non-empty schedule no
  // injector exists and the run takes the fault-free fast path.
  std::unique_ptr<faults::FaultInjector> injector;
  if (options.faults != nullptr && !options.faults->empty()) {
    injector = std::make_unique<faults::FaultInjector>(
        *options.faults,
        faults::FaultInjector::Bindings{&plant->topology, &plant->cooling,
                                        plant->tes.get(), options.generator},
        options.fault_seed);
    injector->set_tracer(options.tracer);
    injector->set_decision_log(options.decisions);
    controller.set_fault_injector(injector.get());
  }
  faults::Watchdog watchdog(faults::Watchdog::Options{
      config_.battery_per_server.reserve_floor,
      /*check_breakers=*/options.mode != Mode::kUncontrolled,
      /*check_room=*/options.mode != Mode::kUncontrolled});
  watchdog.set_tracer(options.tracer);
  watchdog.set_decision_log(options.decisions);

  RunResult result;
  workload::AdmissionController sprint_admission;
  workload::AdmissionController baseline_admission;
  const Duration dt = config_.control_period;
  const Duration end = demand.end_time();

  double achieved_integral = 0.0;
  double baseline_integral = 0.0;
  double burst_degree_integral = 0.0;
  double burst_seconds = 0.0;
  SprintPhase prev_phase = SprintPhase::kNormal;
  DegradationLevel prev_degradation = DegradationLevel::kNominal;
  sim::Engine engine(dt);
  engine.set_tracer(options.tracer);
  engine.set_span_skip(options.span_skip);

  // Hot-path channel handles, bound lazily on the first recorded tick so a
  // zero-tick run leaves the recorder exactly as empty as it always was.
  struct RecHandles {
    bool ready = false;
    sim::Recorder::Handle demand, achieved, achieved_nosprint, degree, bound,
        cores, phase, server_mw, cooling_mw, ups_mw, dc_load_mw, room_c,
        ups_soc, tes_soc, dc_cb_heat, pdu_cb_heat, cb_trip_margin_s, supply,
        degradation, faults_active, measured_demand;
  } rh;

  // Cursor-based trace reads: the run visits times monotonically, so every
  // sample lookup is O(1) amortized instead of a binary search per tick.
  TimeSeries::Cursor demand_cursor;
  TimeSeries::Cursor supply_cursor;

  RunDriver driver([&](Duration now, Duration tick_dt) {
    // One time stamp per control period: everything that emits decisions
    // this tick (injector, controller, watchdog, and the serving
    // components ticking after the driver) shares it.
    if (options.decisions != nullptr) options.decisions->set_now(now);
    const double d = demand.at(now, demand_cursor);
    if (injector != nullptr) injector->apply(now);
    const StepResult step = controller.step(now, d, tick_dt);
    watchdog.check(now, plant->topology, plant->room, plant->tes.get());

    if (options.metrics != nullptr) {
      obs::MetricsRegistry& m = *options.metrics;
      m.counter("ticks_total").inc();
      m.histogram("sprint_degree", {1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0})
          .observe(step.degree);
      m.gauge("ups_soc").set(plant->topology.pdu(0).ups().soc());
      m.gauge("ups_soc_min").set_min(plant->topology.pdu(0).ups().soc());
      if (plant->tes != nullptr) {
        m.gauge("tes_soc").set(plant->tes->state_of_charge());
        m.gauge("tes_soc_min").set_min(plant->tes->state_of_charge());
      }
      const Duration margin =
          plant->topology.dc_breaker().time_to_trip_at(step.dc_load);
      if (!margin.is_infinite()) {
        m.gauge("cb_trip_margin_s").set(margin.sec());
        m.gauge("cb_trip_margin_s_min").set_min(margin.sec());
      }
      m.gauge("faults_active").set(static_cast<double>(step.faults_active));
      m.gauge("room_rise_c_max").set_max(plant->room.rise().c());
      if (step.phase != prev_phase) {
        m.counter("phase_transitions_total").inc();
        prev_phase = step.phase;
      }
      if (step.degradation != prev_degradation) {
        m.counter("degradation_steps_total").inc();
        prev_degradation = step.degradation;
      }
    }

    achieved_integral += step.achieved * dt.sec();
    baseline_integral += std::min(d, 1.0) * dt.sec();
    if (d > 1.0) {
      burst_degree_integral += step.degree * dt.sec();
      burst_seconds += dt.sec();
    }
    sprint_admission.admit(d, step.achieved, dt);
    baseline_admission.admit(d, 1.0, dt);

    result.min_ups_soc =
        std::min(result.min_ups_soc, plant->topology.pdu(0).ups().soc());
    if (plant->tes != nullptr) {
      result.min_tes_soc =
          std::min(result.min_tes_soc, plant->tes->state_of_charge());
    }

    if (options.record) {
      auto& rec = result.recorder;
      if (!rh.ready) {
        rh.demand = rec.handle("demand");
        rh.achieved = rec.handle("achieved");
        rh.achieved_nosprint = rec.handle("achieved_nosprint");
        rh.degree = rec.handle("degree");
        rh.bound = rec.handle("bound");
        rh.cores = rec.handle("cores");
        rh.phase = rec.handle("phase");
        rh.server_mw = rec.handle("server_mw");
        rh.cooling_mw = rec.handle("cooling_mw");
        rh.ups_mw = rec.handle("ups_mw");
        rh.dc_load_mw = rec.handle("dc_load_mw");
        rh.room_c = rec.handle("room_c");
        rh.ups_soc = rec.handle("ups_soc");
        rh.tes_soc = rec.handle("tes_soc");
        rh.dc_cb_heat = rec.handle("dc_cb_heat");
        rh.pdu_cb_heat = rec.handle("pdu_cb_heat");
        rh.cb_trip_margin_s = rec.handle("cb_trip_margin_s");
        rh.supply = rec.handle("supply");
        rh.degradation = rec.handle("degradation");
        if (injector != nullptr) {
          rh.faults_active = rec.handle("faults_active");
          rh.measured_demand = rec.handle("measured_demand");
        }
        rh.ready = true;
      }
      rec.record(rh.demand, now, d);
      rec.record(rh.achieved, now, step.achieved);
      rec.record(rh.achieved_nosprint, now, std::min(d, 1.0));
      rec.record(rh.degree, now, step.degree);
      rec.record(rh.bound, now, step.upper_bound);
      rec.record(rh.cores, now, static_cast<double>(step.active_cores));
      rec.record(rh.phase, now, static_cast<double>(step.phase));
      rec.record(rh.server_mw, now, step.server_power.mw());
      rec.record(rh.cooling_mw, now, step.cooling_power.mw());
      rec.record(rh.ups_mw, now, step.ups_power.mw());
      rec.record(rh.dc_load_mw, now, step.dc_load.mw());
      rec.record(rh.room_c, now, step.room.c());
      rec.record(rh.ups_soc, now, plant->topology.pdu(0).ups().soc());
      rec.record(rh.tes_soc, now,
                 plant->tes != nullptr ? plant->tes->state_of_charge() : 0.0);
      rec.record(rh.dc_cb_heat, now,
                 plant->topology.dc_breaker().thermal_state());
      rec.record(rh.pdu_cb_heat, now,
                 plant->topology.pdu(0).breaker().thermal_state());
      // Time-to-trip margin at the current load, clamped so the channel
      // stays finite (infinity has no JSON literal for trace export); an
      // hour of margin is indistinguishable from "safe" on every figure.
      const Duration trip_margin =
          plant->topology.dc_breaker().time_to_trip_at(step.dc_load);
      rec.record(rh.cb_trip_margin_s, now,
                 trip_margin.is_infinite()
                     ? kTripMarginCapSec
                     : std::min(trip_margin.sec(), kTripMarginCapSec));
      rec.record(rh.supply, now, step.supply_fraction);
      rec.record(rh.degradation, now, static_cast<double>(step.degradation));
      if (injector != nullptr) {
        rec.record(rh.faults_active, now,
                   static_cast<double>(step.faults_active));
        rec.record(rh.measured_demand, now, step.measured_demand);
      }
    }

    if (options.on_step) options.on_step(now, tick_dt, step);
  },
  // The driver's only time-varying inputs are the demand trace, the supply
  // trace and the fault schedule; their next change point bounds the span
  // the engine may replay in its leap loop. The leap replays every tick
  // verbatim, so the hint affects scheduling only — never results.
  [&](Duration now) {
    Duration hint = demand.next_time_after(now, demand_cursor);
    if (options.supply_fraction != nullptr) {
      hint = std::min(hint,
                      options.supply_fraction->next_time_after(now, supply_cursor));
    }
    if (injector != nullptr) {
      hint = std::min(hint, injector->schedule().next_edge_after(now));
    }
    return hint;
  });
  engine.add(&driver);
  // Extra components (e.g. the request-level serving layer) tick after the
  // driver, so they see the period's committed StepResult via on_step.
  for (sim::Component* component : options.components) {
    engine.add(component);
  }
  engine.run_until(end);
  result.engine_leaps = engine.leap_count();
  result.engine_leaped_ticks = engine.leaped_ticks();

  const double total_sec = (end - Duration::zero()).sec();
  result.avg_achieved = achieved_integral / total_sec;
  result.avg_achieved_nosprint = baseline_integral / total_sec;
  result.performance_factor =
      result.avg_achieved_nosprint > 0.0
          ? result.avg_achieved / result.avg_achieved_nosprint
          : 0.0;
  result.drop_fraction = sprint_admission.drop_fraction();
  result.avg_sprint_degree =
      burst_seconds > 0.0 ? burst_degree_integral / burst_seconds : 1.0;
  result.sprint_time = controller.sprint_time();
  for (std::size_t i = 0; i < result.phase_time.size(); ++i) {
    result.phase_time[i] = controller.phase_time(static_cast<SprintPhase>(i));
  }
  result.tripped = controller.shutdown();
  result.trip_time = controller.trip_time();
  result.ups_energy = controller.ups_energy();
  result.tes_saved_energy = controller.tes_saved_energy();
  result.pdu_overload_energy = controller.pdu_overload_energy();
  result.dc_overload_energy = controller.dc_overload_energy();
  result.peak_room_temperature = plant->room.peak_temperature();
  result.max_degradation = controller.max_degradation();
  for (std::size_t i = 0; i < result.degradation_time.size(); ++i) {
    result.degradation_time[i] =
        controller.degradation_time(static_cast<DegradationLevel>(i));
  }
  result.watchdog = watchdog.report();
  if (options.metrics != nullptr) {
    options.metrics->counter("watchdog_violations_total")
        .inc(static_cast<double>(watchdog.report().violations));
  }
  const power::Battery& bank = plant->topology.pdu(0).ups();
  result.ups_discharge_events = bank.discharge_events();
  result.ups_equivalent_cycles = bank.equivalent_full_cycles();
  result.ups_max_depth = 1.0 - result.min_ups_soc;
  return result;
}

}  // namespace dcs::core
