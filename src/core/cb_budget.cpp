#include "core/cb_budget.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::core {

std::vector<Power> allocate_cb_budget(
    Power parent_allow, const std::vector<CbBudgetRequest>& children) {
  DCS_REQUIRE(parent_allow >= Power::zero(), "parent bound must be non-negative");
  std::vector<Power> wants;
  wants.reserve(children.size());
  Power total = Power::zero();
  for (const CbBudgetRequest& c : children) {
    DCS_REQUIRE(c.demand >= Power::zero(), "demand must be non-negative");
    DCS_REQUIRE(c.child_allow >= Power::zero(), "child bound must be non-negative");
    wants.push_back(std::min(c.demand, c.child_allow));
    total += wants.back();
  }
  if (total <= parent_allow) return wants;  // everyone fits

  // Max-min fairness: find the water level L such that
  // sum(min(want_i, L)) == parent_allow, by sweeping the sorted wants.
  std::vector<Power> sorted = wants;
  std::sort(sorted.begin(), sorted.end());
  Power granted_below = Power::zero();
  Power level = Power::zero();
  std::size_t remaining = sorted.size();
  for (std::size_t i = 0; i < sorted.size(); ++i, --remaining) {
    // Everyone still above the level shares what is left equally.
    const Power candidate =
        (parent_allow - granted_below) / static_cast<double>(remaining);
    if (candidate <= sorted[i]) {
      level = candidate;
      break;
    }
    granted_below += sorted[i];
    level = sorted[i];
  }
  std::vector<Power> grants;
  grants.reserve(wants.size());
  for (const Power w : wants) grants.push_back(std::min(w, level));
  return grants;
}

}  // namespace dcs::core
