// The Oracle-built table of optimal sprinting-degree upper bounds, indexed
// by (burst duration, maximum burst degree) — paper Section V-A: "We can
// also use the Oracle strategy to make an upper bound table, listing the
// optimal upper bounds for different burst durations and maximum burst
// degree." The Prediction strategy looks its bound up here.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace dcs::core {

class UpperBoundTable {
 public:
  /// `durations` and `degrees` are the grid axes (strictly increasing);
  /// `bounds[i * degrees.size() + j]` is the optimal bound for
  /// (durations[i], degrees[j]).
  UpperBoundTable(std::vector<Duration> durations, std::vector<double> degrees,
                  std::vector<double> bounds);

  /// Bilinear interpolation, clamped to the grid edges.
  [[nodiscard]] double lookup(Duration burst_duration, double max_degree) const;

  [[nodiscard]] const std::vector<Duration>& durations() const noexcept {
    return durations_;
  }
  [[nodiscard]] const std::vector<double>& degrees() const noexcept {
    return degrees_;
  }
  [[nodiscard]] double bound_at(std::size_t duration_idx,
                                std::size_t degree_idx) const;

 private:
  std::vector<Duration> durations_;
  std::vector<double> degrees_;
  std::vector<double> bounds_;
};

}  // namespace dcs::core
