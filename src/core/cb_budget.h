// Parent/child circuit-breaker budget coordination (paper Section V-B):
// "if the power overload of a parent CB has already reached its upper
// bound, then a power increase on any of its child CBs demands a power
// decrease on some other child CBs, in order to keep their sum unchanged.
// Therefore, we never trip a CB at the substation level by overloading the
// CBs at the PDU level."
//
// allocate_cb_budget() grants each child the most it asked for, subject to
// its own breaker bound and to the parent's aggregate bound, using max-min
// fairness (a water level) so no child is starved in favour of a hungrier
// sibling. The uniform-fleet controller gets this for free (all children
// identical); this module is for heterogeneous / skewed deployments.
#pragma once

#include <vector>

#include "util/units.h"

namespace dcs::core {

struct CbBudgetRequest {
  Power demand;       ///< power the child's servers want to draw
  Power child_allow;  ///< the child breaker governor's current bound
};

/// Grants per child. Invariants (verified by tests):
///  * grant_i <= min(demand_i, child_allow_i)
///  * sum(grants) <= parent_allow
///  * max-min fair: a child below the water level receives its full demand.
[[nodiscard]] std::vector<Power> allocate_cb_budget(
    Power parent_allow, const std::vector<CbBudgetRequest>& children);

}  // namespace dcs::core
