#include "core/online_strategy.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::core {

OnlineAdaptiveStrategy::OnlineAdaptiveStrategy(
    const UpperBoundTable* table,
    const workload::OnlineBurstPredictor::Params& predictor_params)
    : table_(table), predictor_(predictor_params) {
  DCS_REQUIRE(table != nullptr, "online strategy needs the upper-bound table");
}

void OnlineAdaptiveStrategy::observe(const SprintContext& ctx) {
  predictor_.observe(ctx.demand, ctx.period);
}

double OnlineAdaptiveStrategy::upper_bound(const SprintContext& ctx) {
  // Same equivalent-duration trick as PredictionStrategy (Eq. (1)), with
  // the learned duration forecast in place of BDu_p.
  const double avg = std::max(1.0, ctx.avg_degree);
  const Duration equivalent =
      predictor_.predicted_duration() * (ctx.max_degree / avg);
  const double bound =
      table_->lookup(equivalent, predictor_.predicted_max_degree());
  return std::clamp(bound, 1.0, ctx.max_degree);
}

}  // namespace dcs::core
