#include "core/slo_strategy.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::core {

SloSprintStrategy::SloSprintStrategy(SloSprintParams params)
    : params_(params) {
  DCS_REQUIRE(params_.target_p99_s > 0.0, "target_p99_s must be positive");
  DCS_REQUIRE(params_.gain >= 0.0, "gain must be non-negative");
  DCS_REQUIRE(params_.reserve_fraction >= 0.0 && params_.reserve_fraction < 1.0,
              "reserve_fraction must lie in [0, 1)");
  DCS_REQUIRE(params_.hysteresis > 0.0 && params_.hysteresis <= 1.0,
              "hysteresis must lie in (0, 1]");
}

void SloSprintStrategy::observe_latency(double p99_s) noexcept {
  const bool was_violating = violating_;
  p99_ = std::max(p99_s, 0.0);
  if (p99_ > params_.target_p99_s) {
    violating_ = true;
  } else if (p99_ < params_.hysteresis * params_.target_p99_s) {
    violating_ = false;
  }
  if (decisions_ != nullptr && violating_ != was_violating) {
    if (violating_) {
      decisions_->emit(obs::DecisionRule::kSloLatchSet,
                       {{"p99_s", p99_}}, {{"target_s", params_.target_p99_s}});
    } else {
      decisions_->emit(
          obs::DecisionRule::kSloLatchRelease, {{"p99_s", p99_}},
          {{"release_s", params_.hysteresis * params_.target_p99_s}});
    }
  }
}

void SloSprintStrategy::on_burst_start() {
  // Latency, not demand, decides onset: a burst that the queues absorb
  // within the SLO never sprints. Nothing to reset here — the latch
  // carries across bursts by design.
}

double SloSprintStrategy::upper_bound(const SprintContext& ctx) {
  // Energy arbitration: below the reserve, degrade via admission control
  // (request drops) instead of spending the budget needed for a safe burst
  // tail.
  if (ctx.remaining_energy_fraction < params_.reserve_fraction) {
    // The decision only matters (and only fires) when the floor actually
    // overrides a latched violation — the edge where latency loses the
    // arbitration to energy safety.
    if (decisions_ != nullptr && violating_ && !ceding_) {
      decisions_->emit(obs::DecisionRule::kReserveArbitration,
                       {{"energy_fraction", ctx.remaining_energy_fraction},
                        {"p99_s", p99_}},
                       {{"reserve_fraction", params_.reserve_fraction}});
    }
    ceding_ = violating_;
    return 1.0;
  }
  ceding_ = false;
  if (!violating_) return 1.0;
  // While latched, cover at least the demand (so the backlog that caused
  // the violation stops growing and the latch can release without
  // chattering); the pressure term asks for extra headroom in proportion
  // to how far past the target the p99 currently is.
  const double pressure = p99_ / params_.target_p99_s - 1.0;
  const double bound = std::max(ctx.demand,
                                1.0 + params_.gain * std::max(pressure, 0.0));
  return std::clamp(bound, 1.0, ctx.max_degree);
}

}  // namespace dcs::core
