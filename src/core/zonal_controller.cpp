#include "core/zonal_controller.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace dcs::core {
namespace {
const Power kPowerEps = Power::watts(1e-6);

/// Cap for the recorded zone<k>/cb_trip_margin_s channels, matching the
/// facility-wide channel in datacenter.cpp: an infinite time-to-trip
/// records as one hour.
constexpr double kTripMarginCapSec = 3600.0;
}

ZonalController::ZonalController(const DataCenterConfig& config,
                                 std::vector<ZoneSpec> zones)
    : config_(config),
      fleet_(config.fleet),
      topology_(config.topology_params()),
      tes_(config.has_tes
               ? std::make_unique<thermal::TesTank>("dc/tes", config.tes_params())
               : nullptr),
      cooling_(config.cooling_params(tes_.get())),
      room_(config.room_params()) {
  config_.validate();
  DCS_REQUIRE(!zones.empty(), "need at least one zone");
  if (tes_ != nullptr) tes_activation_time_ = config_.tes_activation_time();
  std::size_t first = 0;
  for (const ZoneSpec& spec : zones) {
    DCS_REQUIRE(spec.pdu_count > 0, "zone must own at least one PDU");
    DCS_REQUIRE(spec.demand != nullptr && !spec.demand->empty(),
                "zone needs a demand trace");
    ZoneRuntime rt;
    rt.spec = spec;
    rt.first_pdu = first;
    first += spec.pdu_count;
    zones_.push_back(rt);
  }
  DCS_REQUIRE(first == topology_.pdu_count(),
              "zones must tile the topology exactly");
}

std::size_t ZonalController::shed_to_grant(double demand, Power grant,
                                           Power ups_max, Duration dt,
                                           std::size_t first_pdu) const {
  (void)dt;
  const compute::Chip& chip = fleet_.server().chip();
  const std::size_t normal = chip.params().normal_cores;
  const double max_degree = chip.max_sprint_degree();
  const std::size_t desired = fleet_.operate(demand, max_degree).active_cores;
  const Power pdu_allow =
      topology_.pdu(first_pdu).breaker().max_load_for(config_.cb_reserve);
  for (std::size_t cores = desired; cores > normal; --cores) {
    const auto op = fleet_.operate_with_cores(demand, cores);
    const Power over =
        op.per_pdu > pdu_allow ? op.per_pdu - pdu_allow : Power::zero();
    const Power ups_use = std::min(over, ups_max);
    const Power grid = op.per_pdu - ups_use;
    if (grid <= pdu_allow + kPowerEps && grid <= grant + kPowerEps) {
      return cores;
    }
  }
  return normal;
}

ZonalStepResult ZonalController::step(Duration now, Duration dt) {
  const compute::Chip& chip = fleet_.server().chip();
  const double max_degree = chip.max_sprint_degree();

  // Facility-wide burst clock drives the TES activation rule.
  bool any_burst = false;
  std::vector<double> demand(zones_.size());
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    demand[z] = zones_[z].spec.demand->at(now);
    any_burst = any_burst || demand[z] > 1.0;
  }
  if (any_burst) {
    first_burst_elapsed_ += dt;
    any_burst_seen_ = true;
  }
  const bool tes_active = tes_ != nullptr && !tes_->empty() && any_burst &&
                          first_burst_elapsed_ >= tes_activation_time_;

  // Desired operating point per zone (greedy within the zone).
  struct ZoneWant {
    compute::Fleet::Operation op;
    Power ups_max;        // per PDU
    Power pdu_allow;      // per PDU
  };
  std::vector<ZoneWant> wants(zones_.size());
  Power fleet_power = Power::zero();
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    const ZoneRuntime& rt = zones_[z];
    const power::Pdu& rep = topology_.pdu(rt.first_pdu);
    ZoneWant w;
    w.op = fleet_.operate(demand[z], max_degree);
    w.ups_max = std::min(rep.ups().max_discharge(), rep.ups().available() / dt);
    w.pdu_allow = rep.breaker().max_load_for(config_.cb_reserve);
    wants[z] = w;
    fleet_power += w.op.per_pdu * static_cast<double>(rt.spec.pdu_count);
  }

  // Substation budget after cooling, shared max-min fairly (Section V-B).
  Power cooling_elec =
      cooling_.electrical_projection(fleet_power, tes_active, Power::zero());
  const Power dc_allow =
      topology_.dc_breaker().max_load_for(config_.cb_reserve);
  Power parent = dc_allow > cooling_elec ? dc_allow - cooling_elec : Power::zero();

  std::vector<CbBudgetRequest> requests(zones_.size());
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    const auto n = static_cast<double>(zones_[z].spec.pdu_count);
    const Power over = wants[z].op.per_pdu > wants[z].pdu_allow
                           ? wants[z].op.per_pdu - wants[z].pdu_allow
                           : Power::zero();
    const Power ups_use = std::min(over, wants[z].ups_max);
    requests[z].demand = (wants[z].op.per_pdu - ups_use) * n;
    requests[z].child_allow = wants[z].pdu_allow * n;
  }
  // TES chiller relief raises the parent budget when the zones ask for more
  // than the substation may carry (phase 3's "reduce the chiller power").
  {
    Power total_ask = Power::zero();
    for (const auto& r : requests) total_ask += std::min(r.demand, r.child_allow);
    if (total_ask > parent && tes_active) {
      const Power chiller = cooling_.chiller_electrical(
          std::min(fleet_power, cooling_.thermal_capacity()));
      Power tes_rate_left = tes_->stored() / dt;
      const Power excess = fleet_power > cooling_.thermal_capacity()
                               ? fleet_power - cooling_.thermal_capacity()
                               : Power::zero();
      tes_rate_left = tes_rate_left > excess ? tes_rate_left - excess
                                             : Power::zero();
      const Power relief =
          std::min({total_ask - parent, chiller,
                    tes_rate_left * cooling_.chiller_elec_per_heat()});
      parent += relief;
      cooling_elec -= relief;  // projection of the relieved plant
    }
  }
  const std::vector<Power> grants = allocate_cb_budget(parent, requests);

  // Shed each zone to its grant, then commit.
  ZonalStepResult result;
  result.zones.resize(zones_.size());
  std::vector<Power> server_power(topology_.pdu_count());
  std::vector<Power> ups_request(topology_.pdu_count());
  Power committed_fleet = Power::zero();
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    ZoneRuntime& rt = zones_[z];
    const auto n = static_cast<double>(rt.spec.pdu_count);
    const Power grant_per_pdu = grants[z] / n;
    const std::size_t cores = shed_to_grant(demand[z], grant_per_pdu,
                                            wants[z].ups_max, dt, rt.first_pdu);
    const auto op = fleet_.operate_with_cores(demand[z], cores);
    const Power over = op.per_pdu > wants[z].pdu_allow
                           ? op.per_pdu - wants[z].pdu_allow
                           : Power::zero();
    const Power ups_use = std::min(over, wants[z].ups_max);
    for (std::size_t i = 0; i < rt.spec.pdu_count; ++i) {
      server_power[rt.first_pdu + i] = op.per_pdu;
      ups_request[rt.first_pdu + i] = ups_use;
    }
    committed_fleet += op.per_pdu * n;

    ZoneState& state = result.zones[z];
    state.demand = demand[z];
    state.achieved = op.achieved;
    state.degree = op.degree;
    state.active_cores = op.active_cores;
    state.grid_power = (op.per_pdu - ups_use) * n;
    state.ups_power = ups_use * n;
    if (op.degree > 1.0 + 1e-9) {
      sprint_time_ += dt / static_cast<double>(zones_.size());
    }
    if (demand[z] > 1.0) {
      rt.in_burst = true;
      rt.burst_elapsed += dt;
    } else {
      rt.in_burst = false;
    }
  }

  // Physical commit: cooling (with the relief it can actually deliver),
  // then the power topology, then the room.
  Power relief_commit = Power::zero();
  {
    Power grid_total = Power::zero();
    for (std::size_t z = 0; z < zones_.size(); ++z) {
      grid_total += result.zones[z].grid_power;
    }
    const Power no_relief_cooling =
        cooling_.electrical_projection(committed_fleet, tes_active, Power::zero());
    const Power dc_load = grid_total + no_relief_cooling;
    if (dc_load > dc_allow && tes_active) {
      relief_commit = dc_load - dc_allow;
    }
  }
  const thermal::CoolingStep cstep =
      cooling_.step(committed_fleet, tes_active, relief_commit, dt);
  const power::Flows flows =
      topology_.step(server_power, ups_request, cstep.electrical, dt);
  room_.step(committed_fleet, cstep.heat_absorbed, dt);

  ups_energy_ += flows.ups_total * dt;
  result.dc_load = flows.dc_load;
  result.cooling_power = cstep.electrical;
  result.tes_active = cstep.tes_active;
  result.tripped = flows.dc_tripped || flows.any_pdu_tripped;
  DCS_ENSURE(!result.tripped, "zonal sprinting must never trip a breaker");

  if (recorder_ != nullptr) {
    // Per-zone breakdown after the physical commit, so the breaker margin
    // reflects this tick's thermal state at this tick's committed load.
    for (std::size_t z = 0; z < zones_.size(); ++z) {
      const ZoneRuntime& rt = zones_[z];
      const ZoneState& state = result.zones[z];
      const std::string prefix = "zone" + std::to_string(z) + "/";
      recorder_->record(prefix + "demand", now, state.demand);
      recorder_->record(prefix + "degree", now, state.degree);
      recorder_->record(prefix + "grid_mw", now, state.grid_power.mw());
      recorder_->record(prefix + "ups_soc", now,
                        topology_.pdu(rt.first_pdu).ups().soc());
      const auto n = static_cast<double>(rt.spec.pdu_count);
      const Duration margin =
          topology_.pdu(rt.first_pdu).breaker().time_to_trip_at(
              state.grid_power / n);
      recorder_->record(prefix + "cb_trip_margin_s", now,
                        margin.is_infinite()
                            ? kTripMarginCapSec
                            : std::min(margin.sec(), kTripMarginCapSec));
    }
    recorder_->record("dc_load_mw", now, result.dc_load.mw());
    recorder_->record("cooling_mw", now, result.cooling_power.mw());
  }
  return result;
}

ZonalRunResult ZonalController::run() {
  const Duration end = zones_.front().spec.demand->end_time();
  for (const ZoneRuntime& rt : zones_) {
    DCS_REQUIRE(rt.spec.demand->end_time() == end,
                "all zones must share the trace horizon");
  }
  const Duration dt = config_.control_period;
  std::vector<double> achieved(zones_.size(), 0.0);
  std::vector<double> baseline(zones_.size(), 0.0);
  ZonalRunResult out;
  for (Duration now = Duration::zero(); now < end; now += dt) {
    const ZonalStepResult step_result = step(now, dt);
    for (std::size_t z = 0; z < zones_.size(); ++z) {
      achieved[z] += step_result.zones[z].achieved * dt.sec();
      baseline[z] += std::min(step_result.zones[z].demand, 1.0) * dt.sec();
    }
    out.tripped = out.tripped || step_result.tripped;
  }
  double total_achieved = 0.0, total_baseline = 0.0;
  out.performance_factor.resize(zones_.size());
  for (std::size_t z = 0; z < zones_.size(); ++z) {
    out.performance_factor[z] =
        baseline[z] > 0.0 ? achieved[z] / baseline[z] : 1.0;
    const auto weight = static_cast<double>(zones_[z].spec.pdu_count);
    total_achieved += achieved[z] * weight;
    total_baseline += baseline[z] * weight;
  }
  out.total_performance_factor =
      total_baseline > 0.0 ? total_achieved / total_baseline : 1.0;
  out.sprint_time = sprint_time_;
  out.ups_energy = ups_energy_;
  return out;
}

}  // namespace dcs::core
