#include "core/config.h"

#include "util/check.h"

namespace dcs::core {

Power DataCenterConfig::server_peak_normal() const {
  return compute::Server(fleet.server).peak_normal_power();
}

Power DataCenterConfig::fleet_peak_normal() const {
  // Same arithmetic as Fleet::peak_normal_power(), without paying the Fleet
  // constructor (its throughput table) on a config query.
  return compute::Server(fleet.server).peak_normal_power() *
         static_cast<double>(fleet.servers_per_pdu * fleet.pdu_count);
}

Power DataCenterConfig::fleet_peak_sprint() const {
  return compute::Server(fleet.server).peak_sprint_power() *
         static_cast<double>(fleet.servers_per_pdu * fleet.pdu_count);
}

Power DataCenterConfig::total_peak_normal() const {
  return fleet_peak_normal() * pue;
}

Power DataCenterConfig::pdu_rated() const {
  return server_peak_normal() *
         static_cast<double>(fleet.servers_per_pdu) * (1.0 + pdu_headroom);
}

Power DataCenterConfig::dc_rated() const {
  return total_peak_normal() * (1.0 + dc_headroom);
}

Duration DataCenterConfig::tes_activation_time() const {
  // Section V-C: "5 minute x normal peak server power / maximum additional
  // server power" — the CFD gap scales with the additional heat.
  const Power normal = fleet_peak_normal();
  const Power additional = fleet_peak_sprint() - normal;
  DCS_ENSURE(additional > Power::zero(), "sprinting adds no power?");
  return tes_rule_base * (normal / additional);
}

power::PowerTopology::Params DataCenterConfig::topology_params() const {
  power::PowerTopology::Params p;
  p.pdu_count = fleet.pdu_count;
  p.pdu.server_count = fleet.servers_per_pdu;
  p.pdu.breaker.rated = pdu_rated();
  p.pdu.breaker.curve = power::TripCurve{trip_curve};
  p.pdu.breaker.cooling_tau = cb_cooling_tau;
  p.pdu.battery_per_server = battery_per_server;
  p.dc_breaker.rated = dc_rated();
  p.dc_breaker.curve = power::TripCurve{trip_curve};
  p.dc_breaker.cooling_tau = cb_cooling_tau;
  return p;
}

thermal::TesTank::Params DataCenterConfig::tes_params() const {
  thermal::TesTank::Params p;
  p.capacity = fleet_peak_normal() * Duration::minutes(tes_capacity_minutes);
  return p;
}

thermal::CoolingPlant::Params DataCenterConfig::cooling_params(
    thermal::TesTank* tes) const {
  thermal::CoolingPlant::Params p;
  p.pue = pue;
  p.chiller_fraction = chiller_fraction;
  p.nominal_it_load = fleet_peak_normal();
  p.tes = tes;
  return p;
}

thermal::RoomModel::Params DataCenterConfig::room_params() const {
  thermal::RoomModel::Params p = room;
  p.calibration_power = fleet_peak_normal();
  return p;
}

void DataCenterConfig::validate() const {
  DCS_REQUIRE(pue > 1.0, "PUE must exceed 1");
  DCS_REQUIRE(dc_headroom >= 0.0 && dc_headroom <= 1.0, "dc headroom in [0, 1]");
  DCS_REQUIRE(pdu_headroom >= 0.0 && pdu_headroom <= 1.0, "pdu headroom in [0, 1]");
  DCS_REQUIRE(tes_capacity_minutes > 0.0, "TES capacity must be positive");
  DCS_REQUIRE(chiller_fraction > 0.0 && chiller_fraction < 1.0,
              "chiller fraction in (0, 1)");
  DCS_REQUIRE(cb_reserve > Duration::zero(), "CB reserve must be positive");
  DCS_REQUIRE(control_period > Duration::zero(), "control period must be positive");
  DCS_REQUIRE(recharge_demand_threshold > 0.0 && recharge_demand_threshold <= 1.0,
              "recharge threshold in (0, 1]");

  // --- structural hardening ---
  DCS_REQUIRE(fleet.pdu_count > 0, "fleet needs at least one PDU");
  DCS_REQUIRE(fleet.servers_per_pdu > 0, "each PDU needs at least one server");
  const auto& chip = fleet.server.chip;
  DCS_REQUIRE(chip.normal_cores >= 1, "chip needs at least one normal core");
  DCS_REQUIRE(chip.total_cores > chip.normal_cores,
              "chip needs dark cores to sprint with (total > normal)");
  DCS_REQUIRE(battery_per_server.capacity > Charge::zero(),
              "UPS battery capacity must be positive");
  DCS_REQUIRE(battery_per_server.reserve_floor >= 0.0 &&
                  battery_per_server.reserve_floor < 1.0,
              "UPS reserve floor in [0, 1)");
  DCS_REQUIRE(trip_curve.thermal_coeff_s > 0.0,
              "trip-curve thermal coefficient must be positive");
  DCS_REQUIRE(cb_cooling_tau > Duration::zero(),
              "breaker cooling tau must be positive");

  // The reserved trip time must leave the governor *some* overload to grant:
  // a reserve at or beyond the curve's no-trip asymptote (21.6 / 0.05^2 =
  // 8640 s for the defaults) admits no load above the no-trip ratio, so the
  // controller could never sprint at the data-center level.
  const power::TripCurve curve{trip_curve};
  DCS_REQUIRE(curve.max_ratio_for(cb_reserve) >
                  trip_curve.no_trip_ratio + 1e-12,
              "cb_reserve too long: the trip curve admits no overload that "
              "can be held for the reserved trip time");

  // Instantiating the substrates runs their own precondition checks.
  (void)compute::Fleet(fleet);
  (void)topology_params();
  (void)tes_params();
  (void)room_params();
}

}  // namespace dcs::core
