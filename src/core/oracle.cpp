#include "core/oracle.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::core {

OracleResult oracle_search(DataCenter& dc, const TimeSeries& demand,
                           std::size_t core_stride) {
  DCS_REQUIRE(core_stride >= 1, "core stride must be at least 1");
  const auto& chip = dc.config().fleet.server.chip;
  const std::size_t normal = chip.normal_cores;
  const std::size_t total = chip.total_cores;

  OracleResult out;
  for (std::size_t cores = normal; cores <= total;
       cores = std::min(cores + core_stride, total + 1)) {
    const double bound =
        static_cast<double>(cores) / static_cast<double>(normal);
    ConstantBoundStrategy strategy(bound, "oracle");
    const RunResult run = dc.run(demand, &strategy);
    out.sweep.emplace_back(bound, run.performance_factor);
    if (run.performance_factor > out.best_performance) {
      out.best_performance = run.performance_factor;
      out.best_bound = bound;
    }
    if (cores == total) break;
  }
  return out;
}

UpperBoundTable build_upper_bound_table(DataCenter& dc,
                                        std::span<const Duration> durations,
                                        std::span<const double> degrees,
                                        const workload::YahooTraceParams& base,
                                        std::size_t core_stride) {
  DCS_REQUIRE(durations.size() >= 2, "need at least two durations");
  DCS_REQUIRE(degrees.size() >= 2, "need at least two degrees");
  std::vector<double> bounds;
  bounds.reserve(durations.size() * degrees.size());
  for (const Duration d : durations) {
    for (const double degree : degrees) {
      workload::YahooTraceParams params = base;
      params.burst_duration = d;
      params.burst_degree = degree;
      // Keep the burst inside the trace window.
      if (params.burst_start + params.burst_duration > params.length) {
        params.length = params.burst_start + params.burst_duration +
                        Duration::minutes(5);
      }
      const TimeSeries trace = workload::generate_yahoo_trace(params);
      bounds.push_back(oracle_search(dc, trace, core_stride).best_bound);
    }
  }
  return UpperBoundTable(std::vector<Duration>(durations.begin(), durations.end()),
                         std::vector<double>(degrees.begin(), degrees.end()),
                         std::move(bounds));
}

}  // namespace dcs::core
