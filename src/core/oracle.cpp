#include "core/oracle.h"

#include <algorithm>
#include <utility>

#include "exp/thread_pool.h"
#include "obs/profile.h"
#include "util/check.h"

namespace dcs::core {

OracleResult oracle_search(const DataCenter& dc, const TimeSeries& demand,
                           std::size_t core_stride, std::size_t threads) {
  DCS_REQUIRE(core_stride >= 1, "core stride must be at least 1");
  const auto& chip = dc.config().fleet.server.chip;
  const std::size_t normal = chip.normal_cores;
  const std::size_t total = chip.total_cores;

  std::vector<double> bounds;
  for (std::size_t cores = normal; cores <= total;
       cores = std::min(cores + core_stride, total + 1)) {
    bounds.push_back(static_cast<double>(cores) / static_cast<double>(normal));
    if (cores == total) break;
  }

  OracleResult out;
  out.sweep.assign(bounds.size(), {});
  exp::parallel_for(bounds.size(), threads, [&](std::size_t i) {
    DCS_OBS_SCOPE("oracle.candidate");
    DataCenter task_dc(dc.config());
    ConstantBoundStrategy strategy(bounds[i], "oracle");
    const RunResult run = task_dc.run(demand, &strategy);
    out.sweep[i] = {bounds[i], run.performance_factor};
  });

  // Combine in candidate order: identical to the serial scan (strict '>'
  // keeps the lowest best bound on ties).
  for (const auto& [bound, performance] : out.sweep) {
    if (performance > out.best_performance) {
      out.best_performance = performance;
      out.best_bound = bound;
    }
  }
  return out;
}

UpperBoundTable build_upper_bound_table(const DataCenter& dc,
                                        std::span<const Duration> durations,
                                        std::span<const double> degrees,
                                        const workload::YahooTraceParams& base,
                                        std::size_t core_stride,
                                        std::size_t threads) {
  DCS_REQUIRE(durations.size() >= 2, "need at least two durations");
  DCS_REQUIRE(degrees.size() >= 2, "need at least two degrees");

  std::vector<workload::YahooTraceParams> cells;
  cells.reserve(durations.size() * degrees.size());
  for (const Duration d : durations) {
    for (const double degree : degrees) {
      workload::YahooTraceParams params = base;
      params.burst_duration = d;
      params.burst_degree = degree;
      // Keep the burst inside the trace window.
      if (params.burst_start + params.burst_duration > params.length) {
        params.length = params.burst_start + params.burst_duration +
                        Duration::minutes(5);
      }
      cells.push_back(params);
    }
  }

  std::vector<double> bounds(cells.size(), 1.0);
  exp::parallel_for(cells.size(), threads, [&](std::size_t i) {
    const TimeSeries trace = workload::generate_yahoo_trace(cells[i]);
    bounds[i] = oracle_search(dc, trace, core_stride, /*threads=*/1).best_bound;
  });

  return UpperBoundTable(std::vector<Duration>(durations.begin(), durations.end()),
                         std::vector<double>(degrees.begin(), degrees.end()),
                         std::move(bounds));
}

}  // namespace dcs::core
