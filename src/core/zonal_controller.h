// Zonal sprinting: non-uniform bursts across PDU groups.
//
// The paper's experiments spread load evenly, but its Section V-B breaker
// rule is written for the general case: "if the power overload of a parent
// CB has already reached its upper bound, then a power increase on any of
// its child CBs demands a power decrease on some other child CBs". This
// controller implements that case — the fleet is partitioned into zones
// (contiguous runs of PDUs) with independent demand streams (each
// normalized to its own zone's sprint-free capacity), and each control
// period the substation budget left after cooling is divided across zones
// max-min fairly (core/cb_budget.h). A zone whose grant cannot feed its
// desired cores sheds cores; UPS banks cover each zone's gap above its own
// breaker bound. The TES phase stays facility-wide.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "compute/fleet.h"
#include "core/cb_budget.h"
#include "core/config.h"
#include "power/topology.h"
#include "sim/recorder.h"
#include "thermal/cooling_plant.h"
#include "thermal/room_model.h"
#include "thermal/tes_tank.h"
#include "util/time_series.h"
#include "util/units.h"

namespace dcs::core {

struct ZoneSpec {
  std::size_t pdu_count = 0;        ///< PDUs in this zone (contiguous)
  const TimeSeries* demand = nullptr;  ///< normalized to the zone's capacity
};

struct ZoneState {
  double demand = 0.0;
  double achieved = 0.0;
  double degree = 1.0;
  std::size_t active_cores = 0;
  Power grid_power;  ///< zone total grid draw
  Power ups_power;   ///< zone total UPS discharge
};

struct ZonalStepResult {
  std::vector<ZoneState> zones;
  Power dc_load;
  Power cooling_power;
  bool tes_active = false;
  bool tripped = false;
};

struct ZonalRunResult {
  /// Per-zone time-weighted mean achieved / no-sprint baseline.
  std::vector<double> performance_factor;
  /// Aggregate performance over all zones (capacity-weighted).
  double total_performance_factor = 0.0;
  bool tripped = false;
  Duration sprint_time = Duration::zero();
  Energy ups_energy;
};

class ZonalController {
 public:
  /// The zones must tile the topology exactly (sum of pdu_count == PDUs).
  ZonalController(const DataCenterConfig& config, std::vector<ZoneSpec> zones);

  /// Runs the zones' demand traces (all must share the same end time).
  [[nodiscard]] ZonalRunResult run();

  /// One control period (exposed for tests).
  [[nodiscard]] ZonalStepResult step(Duration now, Duration dt);

  /// Optional per-tick channel sink (must outlive the controller). Each
  /// step then records, per zone k, `zone<k>/demand`, `zone<k>/degree`,
  /// `zone<k>/grid_mw`, `zone<k>/ups_soc` and `zone<k>/cb_trip_margin_s`
  /// (the zone's representative PDU breaker time-to-trip at its committed
  /// load, capped at 3600 s), plus facility-wide `dc_load_mw` /
  /// `cooling_mw` — the channels obs::with_zonal_channels names for
  /// Perfetto counter-track export. Null (the default) keeps the unrecorded
  /// fast path.
  void set_recorder(sim::Recorder* recorder) noexcept { recorder_ = recorder; }

 private:
  struct ZoneRuntime {
    ZoneSpec spec;
    std::size_t first_pdu = 0;
    bool in_burst = false;
    Duration burst_elapsed = Duration::zero();
  };

  [[nodiscard]] std::size_t shed_to_grant(double demand, Power grant,
                                          Power ups_max, Duration dt,
                                          std::size_t first_pdu) const;

  DataCenterConfig config_;
  compute::Fleet fleet_;
  power::PowerTopology topology_;
  std::unique_ptr<thermal::TesTank> tes_;
  thermal::CoolingPlant cooling_;
  thermal::RoomModel room_;
  std::vector<ZoneRuntime> zones_;
  sim::Recorder* recorder_ = nullptr;
  Duration sprint_time_ = Duration::zero();
  Energy ups_energy_ = Energy::zero();
  bool any_burst_seen_ = false;
  Duration first_burst_elapsed_ = Duration::zero();
  /// Cached config_.tes_activation_time() (a run constant) — the accessor
  /// rebuilds the peak-power arithmetic per call, too heavy for every step.
  Duration tes_activation_time_ = Duration::zero();
};

}  // namespace dcs::core
