#include "core/heuristic_strategy.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::core {

HeuristicStrategy::HeuristicStrategy(double estimated_avg_degree,
                                     double total_budget_degree_seconds,
                                     double flexibility)
    : estimated_avg_degree_(std::max(1.0, estimated_avg_degree)),
      initial_bound_(estimated_avg_degree_ * (1.0 + flexibility)),
      planned_duration_(
          Duration::seconds(total_budget_degree_seconds / estimated_avg_degree_)) {
  DCS_REQUIRE(total_budget_degree_seconds > 0.0, "energy budget must be positive");
  DCS_REQUIRE(flexibility >= 0.0 && flexibility <= 1.0, "flexibility in [0, 1]");
}

double HeuristicStrategy::upper_bound(const SprintContext& ctx) {
  // RT(t) = (SDu_p - t) / SDu_p, floored so a burst outlasting the plan
  // does not divide by ~0 (the RE numerator is near 0 there anyway).
  const double rt = std::max(
      0.02, (planned_duration_ - ctx.elapsed_in_burst) / planned_duration_);
  const double re = std::clamp(ctx.remaining_energy_fraction, 0.0, 1.0);
  const double bound = initial_bound_ * (re / rt);
  return std::clamp(bound, 1.0, ctx.max_degree);
}

}  // namespace dcs::core
