// SLO-driven sprinting: triggers sprint onset on tail-latency-violation
// pressure instead of raw throughput deficit.
//
// The serving layer (src/serving) publishes its sliding-window p99 through
// observe_latency() — wired by the bench/test layer, so core never links
// against serving. While the p99 meets the SLO the strategy returns bound
// 1.0 even during a burst: queueing and admission control absorb the load
// and the energy budget is preserved. When the p99 crosses the target the
// violation latch opens and the bound scales with the violation pressure
// (p99 / target - 1), releasing only after the p99 recovers below
// hysteresis x target so the sprint does not chatter around the threshold.
//
// Arbitration against admission control: once the remaining additional-
// energy budget falls below reserve_fraction, the strategy stops sprinting
// regardless of latency — from there the system degrades by dropping
// requests (workload/admission, the paper's "last resort") instead of
// spending energy it may need to end the burst safely.
#pragma once

#include "core/strategy.h"
#include "obs/decision.h"

namespace dcs::core {

struct SloSprintParams {
  /// Tail-latency objective for the serving layer's window p99 (seconds).
  double target_p99_s = 0.25;
  /// Bound slope per unit of violation pressure (p99 / target - 1).
  double gain = 4.0;
  /// Energy floor: below this remaining-budget fraction the strategy
  /// cedes to admission control and never sprints.
  double reserve_fraction = 0.10;
  /// The violation latch releases at hysteresis x target (in (0, 1]).
  double hysteresis = 0.9;
};

class SloSprintStrategy final : public Strategy {
 public:
  explicit SloSprintStrategy(SloSprintParams params = {});

  /// Feeds the serving layer's current window p99 (seconds); updates the
  /// violation latch. Call every control period.
  void observe_latency(double p99_s) noexcept;

  [[nodiscard]] double upper_bound(const SprintContext& ctx) override;
  void on_burst_start() override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "slo";
  }

  [[nodiscard]] bool violating() const noexcept { return violating_; }
  [[nodiscard]] double last_p99_s() const noexcept { return p99_; }

  /// Optional decision-provenance log: observe_latency() emits
  /// slo-latch-set/-release on latch edges (triggers for subsequent sprint
  /// onsets) and upper_bound() emits reserve-arbitration when the energy
  /// floor forces ceding to admission control. Must outlive the strategy.
  void set_decision_log(obs::DecisionLog* decisions) noexcept {
    decisions_ = decisions;
  }

 private:
  SloSprintParams params_;
  double p99_ = 0.0;
  bool violating_ = false;
  bool ceding_ = false;
  obs::DecisionLog* decisions_ = nullptr;
};

}  // namespace dcs::core
