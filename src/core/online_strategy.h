// Fully-online sprinting strategy: the Prediction strategy's table lookup
// driven by a self-learned burst forecast instead of an oracle-supplied
// BDu_p — the practical deployment the paper's Section V-A sketches via the
// workload-prediction literature. Needs nothing but the demand stream and
// the (offline-built) upper-bound table.
#pragma once

#include "core/strategy.h"
#include "core/upper_bound_table.h"
#include "workload/online_predictor.h"

namespace dcs::core {

class OnlineAdaptiveStrategy final : public Strategy {
 public:
  /// The table is shared and must outlive the strategy.
  explicit OnlineAdaptiveStrategy(
      const UpperBoundTable* table,
      const workload::OnlineBurstPredictor::Params& predictor_params = {});

  void observe(const SprintContext& ctx) override;
  [[nodiscard]] double upper_bound(const SprintContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "online-adaptive";
  }

  [[nodiscard]] const workload::OnlineBurstPredictor& predictor() const noexcept {
    return predictor_;
  }

 private:
  const UpperBoundTable* table_;
  workload::OnlineBurstPredictor predictor_;
};

}  // namespace dcs::core
