// The Heuristic strategy (paper Section V-A, Eqs. (2)-(3)).
//
// Given an estimated best average sprinting degree SDe_p (possibly
// errorful), the initial bound is SDe_ini = SDe_p * (1 + K%) with the
// user-defined flexibility factor K% (10 % in the paper's experiments).
// The bound is then scaled online by how fast the additional-energy budget
// is actually draining:
//   SDe_u(t) = SDe_ini * RE(t) / RT(t),
//   RE(t) = EB(t) / EB_tot,   RT(t) = (SDu_p - t) / SDu_p,
// where the planned sprinting duration SDu_p = EB_tot / SDe_p converts the
// total budget (expressed in degree-seconds, see controller.h) into time.
// Draining faster than planned (RE < RT) tightens the bound; slower
// loosens it.
#pragma once

#include "core/strategy.h"
#include "util/units.h"

namespace dcs::core {

class HeuristicStrategy final : public Strategy {
 public:
  /// `estimated_avg_degree` is SDe_p; `total_budget_degree_seconds` is
  /// EB_tot expressed in sprint-degree-seconds; `flexibility` is K% (0.10
  /// default).
  HeuristicStrategy(double estimated_avg_degree,
                    double total_budget_degree_seconds,
                    double flexibility = 0.10);

  [[nodiscard]] double upper_bound(const SprintContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "heuristic"; }

  [[nodiscard]] double initial_bound() const noexcept { return initial_bound_; }
  [[nodiscard]] Duration planned_duration() const noexcept { return planned_duration_; }

 private:
  double estimated_avg_degree_;
  double initial_bound_;
  Duration planned_duration_;
};

}  // namespace dcs::core
