#include "core/strategy.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::core {

double GreedyStrategy::upper_bound(const SprintContext& ctx) {
  return ctx.max_degree;
}

ConstantBoundStrategy::ConstantBoundStrategy(double bound, std::string_view name)
    : bound_(bound), name_(name) {
  DCS_REQUIRE(bound >= 1.0, "bound must be at least 1");
}

double ConstantBoundStrategy::upper_bound(const SprintContext& ctx) {
  return std::min(bound_, ctx.max_degree);
}

}  // namespace dcs::core
