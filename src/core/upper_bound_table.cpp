#include "core/upper_bound_table.h"

#include <algorithm>

#include "util/check.h"
#include "util/interpolate.h"

namespace dcs::core {
namespace {

/// Index of the interval containing x (clamped), plus the within-interval
/// fraction for interpolation.
template <class T, class ToDouble>
std::pair<std::size_t, double> locate(const std::vector<T>& axis, double x,
                                      ToDouble to_double) {
  if (x <= to_double(axis.front())) return {0, 0.0};
  if (x >= to_double(axis.back())) return {axis.size() - 2, 1.0};
  std::size_t i = 0;
  while (i + 2 < axis.size() && to_double(axis[i + 1]) <= x) ++i;
  const double lo = to_double(axis[i]);
  const double hi = to_double(axis[i + 1]);
  return {i, (x - lo) / (hi - lo)};
}

}  // namespace

UpperBoundTable::UpperBoundTable(std::vector<Duration> durations,
                                 std::vector<double> degrees,
                                 std::vector<double> bounds)
    : durations_(std::move(durations)),
      degrees_(std::move(degrees)),
      bounds_(std::move(bounds)) {
  DCS_REQUIRE(durations_.size() >= 2, "need at least two durations");
  DCS_REQUIRE(degrees_.size() >= 2, "need at least two degrees");
  DCS_REQUIRE(bounds_.size() == durations_.size() * degrees_.size(),
              "bounds grid size mismatch");
  for (std::size_t i = 1; i < durations_.size(); ++i) {
    DCS_REQUIRE(durations_[i - 1] < durations_[i], "durations must increase");
  }
  for (std::size_t i = 1; i < degrees_.size(); ++i) {
    DCS_REQUIRE(degrees_[i - 1] < degrees_[i], "degrees must increase");
  }
  for (double b : bounds_) DCS_REQUIRE(b >= 1.0, "bounds must be at least 1");
}

double UpperBoundTable::bound_at(std::size_t duration_idx,
                                 std::size_t degree_idx) const {
  DCS_REQUIRE(duration_idx < durations_.size(), "duration index out of range");
  DCS_REQUIRE(degree_idx < degrees_.size(), "degree index out of range");
  return bounds_[duration_idx * degrees_.size() + degree_idx];
}

double UpperBoundTable::lookup(Duration burst_duration, double max_degree) const {
  const auto [i, fi] =
      locate(durations_, burst_duration.sec(),
             [](Duration d) { return d.sec(); });
  const auto [j, fj] = locate(degrees_, max_degree, [](double d) { return d; });
  const double v00 = bound_at(i, j);
  const double v01 = bound_at(i, j + 1);
  const double v10 = bound_at(i + 1, j);
  const double v11 = bound_at(i + 1, j + 1);
  return lerp(lerp(v00, v01, fj), lerp(v10, v11, fj), fi);
}

}  // namespace dcs::core
