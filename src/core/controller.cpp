#include "core/controller.h"

#include <algorithm>
#include <cmath>

#include "obs/profile.h"
#include "util/check.h"
#include "util/log.h"

namespace dcs::core {
namespace {

constexpr double kDegreeEps = 1e-9;
const Power kPowerEps = Power::watts(1e-6);

/// Active-fault severity at or above which an ongoing sprint ends outright
/// (the ladder's kSprintEnded rung); milder faults shed degree instead.
constexpr double kSevereFaultSeverity = 0.5;

/// Release band of the trip-margin watch edge: once low, the margin must
/// recover past watch * this factor before a recovered instant fires.
constexpr double kMarginReleaseFactor = 1.25;

}  // namespace

std::string_view to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kControlled: return "controlled";
    case Mode::kUncontrolled: return "uncontrolled";
    case Mode::kNoSprint: return "no-sprint";
    case Mode::kPowerCapped: return "power-capped";
    case Mode::kDvfsCapped: return "dvfs-capped";
  }
  return "?";
}

std::string_view to_string(SprintPhase phase) noexcept {
  switch (phase) {
    case SprintPhase::kNormal: return "normal";
    case SprintPhase::kCbOverload: return "cb-overload";
    case SprintPhase::kUpsAssist: return "ups-assist";
    case SprintPhase::kTesCooling: return "tes-cooling";
    case SprintPhase::kShutdown: return "shutdown";
  }
  return "?";
}

std::string_view to_string(DegradationLevel level) noexcept {
  switch (level) {
    case DegradationLevel::kNominal: return "nominal";
    case DegradationLevel::kDerated: return "derated";
    case DegradationLevel::kShedding: return "shedding";
    case DegradationLevel::kSprintEnded: return "sprint-ended";
    case DegradationLevel::kPowerCapFallback: return "power-cap-fallback";
  }
  return "?";
}

SprintingController::SprintingController(const DataCenterConfig& config,
                                         const Deps& deps, Strategy* strategy,
                                         Mode mode)
    : config_(config), deps_(deps), strategy_(strategy), mode_(mode) {
  DCS_REQUIRE(deps_.fleet != nullptr, "controller needs a fleet");
  DCS_REQUIRE(deps_.topology != nullptr, "controller needs a power topology");
  DCS_REQUIRE(deps_.cooling != nullptr, "controller needs a cooling plant");
  DCS_REQUIRE(deps_.room != nullptr, "controller needs a room model");
  DCS_REQUIRE(mode_ != Mode::kControlled || strategy_ != nullptr,
              "controlled mode needs a strategy");
  dc_rated_ = config_.dc_rated();
  pdu_rated_ = config_.pdu_rated();
  fleet_peak_sprint_ = config_.fleet_peak_sprint();

  // Total additional-energy budget EB_tot (Section V-A): stored UPS energy,
  // the chiller electrical energy the TES can displace, and the transient
  // above-rating energy the breakers can carry.
  cb_budget_initial_ = cb_budget_estimate();
  Energy total = deps_.topology->ups_available() + cb_budget_initial_;
  if (deps_.tes != nullptr) {
    // The TES enables additional IT energy roughly 1:1 — every joule of
    // additional server heat beyond the chiller's capacity must come out of
    // the tank once phase 3 starts.
    total += deps_.tes->stored();
  }
  // power_per_degree() and tes_activation_time() are run constants derived
  // from the config; cache them (and the budget they imply) so the per-tick
  // paths (remaining_energy_fraction, should_activate_tes) never recompute.
  power_per_degree_ = power_per_degree();
  budget_total_ds_ = total.j() / power_per_degree_.w();
  budget_total_energy_ = Energy::joules(budget_total_ds_ * power_per_degree_.w());
  if (deps_.tes != nullptr) {
    tes_activation_time_ = config_.tes_activation_time();
  }
}

Power SprintingController::power_per_degree() const {
  const Power normal = config_.fleet_peak_normal();
  const Power sprint = fleet_peak_sprint_;
  const double span =
      deps_.fleet->server().chip().max_sprint_degree() - 1.0;
  DCS_ENSURE(span > 0.0, "chip has no dark cores to sprint with");
  return (sprint - normal) / span;
}

Energy SprintingController::cb_budget_estimate() const {
  // Holding a constant overload o for its full trip time T = C / o^2
  // delivers P_rated * o * T = P_rated * sqrt(C * T) extra joules; we plan
  // for a T of ten minutes (the order of the paper's bursts). The binding
  // level is whichever tier can carry less in aggregate.
  const double c = config_.trip_curve.thermal_coeff_s;
  const double t_plan = Duration::minutes(10).sec();
  const double factor = std::sqrt(c * t_plan);
  const Power pdu_total = pdu_rated_ *
                          static_cast<double>(deps_.topology->pdu_count());
  const Power binding = std::min(dc_rated_, pdu_total);
  return Energy::joules(binding.w() * factor);
}

double SprintingController::remaining_energy_fraction() const {
  Energy remaining = deps_.topology->ups_available();
  if (deps_.tes != nullptr) {
    remaining += deps_.tes->stored();
  }
  // Breaker transient budget shrinks as the hottest element heats up.
  const double max_heat = std::max(deps_.topology->dc_breaker().thermal_state(),
                                   deps_.topology->max_pdu_breaker_heat());
  remaining += cb_budget_initial_ * (1.0 - max_heat);
  const Energy total = budget_total_energy_;
  return total > Energy::zero() ? std::clamp(remaining / total, 0.0, 1.0) : 0.0;
}

SprintContext SprintingController::make_context(double demand,
                                                double energy_fraction) const {
  SprintContext ctx;
  ctx.elapsed_in_burst = burst_elapsed_;
  ctx.demand = demand;
  ctx.max_degree = deps_.fleet->server().chip().max_sprint_degree();
  ctx.max_demand_in_burst = std::max(max_demand_in_burst_, demand);
  ctx.avg_degree = burst_elapsed_ > Duration::zero()
                       ? degree_time_integral_ / burst_elapsed_.sec()
                       : 1.0;
  ctx.remaining_energy_fraction = energy_fraction;
  ctx.period = config_.control_period;
  return ctx;
}

bool SprintingController::should_activate_tes() const {
  if (mode_ != Mode::kControlled || deps_.tes == nullptr) return false;
  if (deps_.tes->empty()) return false;
  // Graceful degradation: while the chiller is derated by a fault, the tank
  // covers the cooling shortfall even outside the phase-3 window, keeping
  // the room below threshold for as long as the charge lasts.
  if (injector_ != nullptr &&
      injector_->state().chiller_capacity_factor < 1.0 - 1e-12) {
    return true;
  }
  return in_burst_ && !sprint_terminated_ &&
         burst_elapsed_ >= tes_activation_time_;
}

bool SprintingController::check_cores(std::size_t cores, double demand,
                                      bool tes_active, Duration dt,
                                      Power* ups_per_pdu,
                                      Power* tes_relief) const {
  const auto op = deps_.fleet->operate_with_cores(demand, cores);
  const auto& topo = *deps_.topology;
  const power::Pdu& pdu = topo.pdu(0);  // fleet is homogeneous

  if (pdu.breaker().tripped() || topo.dc_breaker().tripped()) return false;

  // Thermal tier: once phase 3 is due, the additional heat (beyond the
  // chiller's capacity) must fit in the tank for this step; otherwise the
  // room heats toward the threshold and the sprint would terminate.
  const Power excess_heat =
      op.fleet_total > deps_.cooling->thermal_capacity()
          ? op.fleet_total - deps_.cooling->thermal_capacity()
          : Power::zero();
  Power tes_rate_left = Power::zero();
  if (tes_active && deps_.tes != nullptr) {
    tes_rate_left =
        std::min(deps_.tes->stored() / dt, deps_.tes->max_discharge_rate());
    if (excess_heat > tes_rate_left + kPowerEps) return false;
    tes_rate_left -= excess_heat;
  }

  // PDU tier: the breaker may carry up to the governor's bound; the UPS
  // bank covers the rest, limited by inverter power and stored energy.
  // Screen: max_load_for() never returns less than the effective rating of
  // an untripped breaker (the curve's no-trip ratio exceeds 1), so a load
  // at or below rating needs no UPS assist — skip the curve inversion.
  const auto ups_limit = [&] {
    return std::min(pdu.ups().max_discharge(), pdu.ups().available() / dt);
  };
  Power ups = Power::zero();
  Power ups_max = Power::zero();
  bool ups_max_known = false;
  if (op.per_pdu.w() > pdu.breaker().effective_rated().w()) {
    const Power pdu_allow = pdu.breaker().max_load_for(config_.cb_reserve);
    ups_max = ups_limit();
    ups_max_known = true;
    ups = op.per_pdu > pdu_allow ? op.per_pdu - pdu_allow : Power::zero();
    if (ups > ups_max + kPowerEps) return false;
  }

  // DC tier: grid-side PDU flows plus cooling must fit the substation
  // governor's bound and the utility feed's current capability. In phase 3
  // the TES displaces chiller power first ("reduce the chiller power to
  // decrease the overload of DC-level CBs"); extra UPS discharge relieves
  // whatever remains. Same screen as the PDU tier: when the grid is not
  // limited and the DC load sits at or below the substation rating, the
  // overload branches cannot engage.
  const Power cooling = deps_.cooling->electrical_projection(
      op.fleet_total, tes_active, Power::zero());
  const double n = static_cast<double>(topo.pdu_count());
  Power dc_load = (op.per_pdu - ups) * n + cooling;
  Power relief = Power::zero();
  if (grid_limited_ || dc_load.w() > topo.dc_breaker().effective_rated().w()) {
    Power dc_allow = topo.dc_breaker().max_load_for(config_.cb_reserve);
    if (grid_limited_) dc_allow = std::min(dc_allow, grid_cap_);
    if (dc_load > dc_allow + kPowerEps && tes_active && deps_.tes != nullptr) {
      const Power chiller_now = deps_.cooling->chiller_electrical(
          std::min(op.fleet_total, deps_.cooling->thermal_capacity()));
      const Power relief_max = std::min(
          chiller_now, tes_rate_left * deps_.cooling->chiller_elec_per_heat());
      relief = std::min(dc_load - dc_allow, relief_max);
      dc_load -= relief;
    }
    if (dc_load > dc_allow + kPowerEps) {
      const Power extra_per_pdu = (dc_load - dc_allow) / n;
      ups += extra_per_pdu;
      if (!ups_max_known) ups_max = ups_limit();
      if (ups > ups_max + kPowerEps) return false;
      if (ups > op.per_pdu) return false;  // cannot discharge more than the load
    }
  }
  if (ups_per_pdu != nullptr) *ups_per_pdu = ups;
  if (tes_relief != nullptr) *tes_relief = relief;
  return true;
}

SprintingController::Feasible SprintingController::find_feasible(
    double demand, double bound, Duration dt) const {
  const bool tes_active = should_activate_tes();
  const std::size_t normal =
      deps_.fleet->server().chip().params().normal_cores;
  const std::size_t desired =
      deps_.fleet->operate(demand, std::max(1.0, bound)).active_cores;

  Feasible best{normal, Power::zero(), Power::zero(), tes_active, desired};
  // check_cores() is monotone in the core count (power grows with cores),
  // so binary-search the largest feasible count in [normal, desired].
  Power ups = Power::zero();
  Power relief = Power::zero();
  if (check_cores(desired, demand, tes_active, dt, &ups, &relief)) {
    return Feasible{desired, ups, relief, tes_active, desired};
  }
  std::size_t lo = normal, hi = desired;
  // Invariant: lo feasible (rated load always is), hi infeasible.
  if (!check_cores(lo, demand, tes_active, dt, &ups, &relief)) {
    // Breakers too hot even for normal load (possible right after heavy
    // overload): shed to normal cores anyway — rated load cannot trip.
    return best;
  }
  best.ups_per_pdu = ups;
  best.tes_relief = relief;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (check_cores(mid, demand, tes_active, dt, &ups, &relief)) {
      lo = mid;
      best.cores = mid;
      best.ups_per_pdu = ups;
      best.tes_relief = relief;
    } else {
      hi = mid;
    }
  }
  return best;
}

StepResult SprintingController::step(Duration now, double demand, Duration dt) {
  DCS_OBS_SCOPE("controller.step");
  DCS_REQUIRE(demand >= 0.0, "demand must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  StepResult result;
  switch (mode_) {
    case Mode::kControlled:
      result = step_controlled(now, demand, dt);
      break;
    case Mode::kUncontrolled:
      result = step_uncontrolled(demand, dt);
      break;
    case Mode::kNoSprint:
    case Mode::kPowerCapped:
      result = step_capped(demand, dt, mode_ == Mode::kPowerCapped);
      break;
    case Mode::kDvfsCapped:
      result = step_dvfs(demand, dt);
      break;
  }
  if (mode_ != Mode::kControlled) result.measured_demand = demand;
  if (result.tripped && trip_time_.is_infinite()) trip_time_ = now;
  trace_transitions(now, result);
  account(result, dt);
  return result;
}

StepResult SprintingController::step_controlled(Duration now, double demand,
                                                Duration dt) {
  if (shutdown_) {
    // A fault-induced trip earlier in the run: the data center is dark
    // (mirrors the uncontrolled baseline's post-trip behaviour).
    StepResult result;
    result.demand = demand;
    result.measured_demand = demand;
    result.phase = SprintPhase::kShutdown;
    result.tripped = true;
    result.degradation = DegradationLevel::kPowerCapFallback;
    deps_.room->step(Power::zero(), Power::zero(), dt);
    result.room = deps_.room->temperature();
    return result;
  }

  // Utility-feed health: a disturbance immediately ends the sprint
  // (Section IV-A) and brings the backup generator online; the UPS banks
  // bridge whatever the derated feed cannot carry.
  double supply = 1.0;
  if (supply_fraction_ != nullptr) {
    supply = std::clamp(supply_fraction_->at(now, supply_cursor_), 0.0, 1.0);
  }
  grid_limited_ = supply < 1.0 - 1e-9;
  if (generator_ != nullptr) {
    if (grid_limited_) generator_->request_start();
    generator_->tick(dt);
  }
  grid_cap_ = dc_rated_ * supply +
              (generator_ != nullptr ? generator_->available() : Power::zero());

  // The controller plans on *measured* values; the plant commits the true
  // ones. Without an injector the two are the same doubles, bit for bit.
  double measured = demand;
  double measured_rise_c = deps_.room->rise().c();
  double energy_fraction = remaining_energy_fraction();
  if (injector_ != nullptr) {
    measured = injector_->measure(faults::SensorChannel::kDemand, now, demand);
    measured_rise_c = injector_->measure(faults::SensorChannel::kTemperature,
                                         now, measured_rise_c);
    energy_fraction = std::clamp(
        injector_->measure(faults::SensorChannel::kPower, now, energy_fraction),
        0.0, 1.0);
  }

  const bool active = burst_active(measured);
  if (active && !in_burst_) {
    in_burst_ = true;
    if (strategy_ != nullptr) strategy_->on_burst_start();
  }
  if (strategy_ != nullptr) {
    strategy_->observe(make_context(measured, energy_fraction));
  }
  if (!active && in_burst_) {
    in_burst_ = false;
    sprint_terminated_ = false;  // a future burst starts a fresh sprint
  }

  if (grid_limited_ && in_burst_) sprint_terminated_ = true;

  // Degradation ladder (Section IV-A: "lower the sprinting degree or end
  // sprinting"): any active fault re-solves feasibility on the degraded
  // component set (kDerated); severe faults end an ongoing sprint outright.
  DegradationLevel level = DegradationLevel::kNominal;
  double severity = 0.0;
  if (injector_ != nullptr) {
    const faults::FaultInjector::State& fs = injector_->state();
    severity = fs.severity;
    if (fs.active_count > 0) level = DegradationLevel::kDerated;
    if (in_burst_ && severity >= kSevereFaultSeverity) {
      sprint_terminated_ = true;
    }
  }

  // Pre-emptive thermal cut-off: if even one more control period at the
  // worst-case heat gap could cross the room threshold, end the sprint now
  // rather than let the peak overshoot by a tick. Projects from the
  // *measured* rise — a faulted temperature sensor can blind this check;
  // the watchdog still sees the true room state.
  if (active && !sprint_terminated_) {
    const Power max_gap =
        fleet_peak_sprint_ - deps_.cooling->thermal_capacity();
    if (deps_.room->time_to_threshold_from(Temperature::celsius(measured_rise_c),
                                           max_gap) <= dt) {
      sprint_terminated_ = true;
    }
  }

  double bound = 1.0;
  if (active && !sprint_terminated_) {
    bound = std::clamp(strategy_->upper_bound(make_context(measured,
                                                           energy_fraction)),
                       1.0, deps_.fleet->server().chip().max_sprint_degree());
    // Ladder: shed degree in proportion to the active faults' aggregate
    // severity — milder than ending the sprint, free at severity zero.
    if (injector_ != nullptr && severity > 0.0) {
      const double shed = 1.0 + (bound - 1.0) * (1.0 - severity);
      if (shed < bound - kDegreeEps) {
        level = std::max(level, DegradationLevel::kShedding);
      }
      bound = shed;
    }
  }

  StepResult result;
  result.demand = demand;
  result.measured_demand = measured;
  result.upper_bound = bound;
  result.supply_fraction = supply;
  if (injector_ != nullptr) {
    result.faults_active = injector_->state().active_count;
  }

  // Ladder last resort: when safety margins are critically tight the
  // controller abandons sprinting altogether and steps like the
  // conventional power-capped baseline until the margins recover.
  if (injector_ != nullptr) {
    fallback_ = should_fall_back();
    if (fallback_) {
      if (in_burst_) sprint_terminated_ = true;
      StepResult capped = step_capped(demand, dt, /*allow_extra_cores=*/false);
      capped.measured_demand = measured;
      capped.supply_fraction = supply;
      capped.faults_active = result.faults_active;
      capped.degradation = DegradationLevel::kPowerCapFallback;
      if (active) {
        burst_elapsed_ += dt;
        max_demand_in_burst_ = std::max(max_demand_in_burst_, measured);
        degree_time_integral_ += capped.degree * dt.sec();
      }
      return capped;
    }
  }

  // No ESD recharging while the feed is disturbed.
  const bool recharging = !grid_limited_ && !active &&
                          measured <= config_.recharge_demand_threshold;

  const Feasible f = find_feasible(measured, bound, dt);
  if (injector_ != nullptr && injector_->state().active_count > 0 &&
      f.cores < f.desired) {
    level = std::max(level, DegradationLevel::kShedding);
  }
  // Commit with the chosen core count against the *true* demand: under a
  // demand-sensor fault the plan and reality can differ, which is exactly
  // the hazard the ladder and the watchdog guard against.
  const auto op = deps_.fleet->operate_with_cores(demand, f.cores);

  thermal::CoolingStep cooling{};
  power::Flows flows{};
  if (recharging) {
    // Idle headroom recharges the ESDs: UPS banks first, then the TES, all
    // while every breaker stays at or below its rating.
    const double n = static_cast<double>(deps_.topology->pdu_count());
    const Power nominal_cooling = deps_.cooling->electrical_projection(
        op.fleet_total, false, Power::zero());
    const Power dc_used = op.per_pdu * n + nominal_cooling;
    Power dc_room =
        dc_rated_ > dc_used ? dc_rated_ - dc_used : Power::zero();
    const Power pdu_room = pdu_rated_ > op.per_pdu
                               ? pdu_rated_ - op.per_pdu
                               : Power::zero();
    const Power ups_recharge = std::min(pdu_room, dc_room / n);
    // ups_recharge * n can round one ulp above dc_room when the min picked
    // dc_room / n (seen at the paper's n = 909); clamp so the leftover room
    // — and the TES rate derived from it — cannot go negative.
    dc_room = std::max(dc_room - ups_recharge * n, Power::zero());
    Power tes_rate = Power::zero();
    if (deps_.tes != nullptr) {
      // Convert the remaining electrical room into a thermal recharge rate.
      tes_rate = dc_room / deps_.cooling->chiller_elec_per_heat();
    }
    cooling = deps_.cooling->recharge_tes_step(op.fleet_total, tes_rate, dt);
    flows = deps_.topology->recharge_uniform(op.per_pdu, ups_recharge,
                                             cooling.electrical, dt);
  } else {
    cooling = deps_.cooling->step(op.fleet_total, f.tes_active, f.tes_relief, dt);
    flows = deps_.topology->step_uniform(op.per_pdu, f.ups_per_pdu,
                                         cooling.electrical, dt);
  }
  deps_.room->step(op.fleet_total, cooling.heat_absorbed, dt);

  if (flows.dc_tripped || flows.any_pdu_tripped) {
    // Without injected faults this is unreachable — keep the hard contract.
    DCS_ENSURE(injector_ != nullptr,
               "controlled sprinting must never trip a breaker");
    // Under faults (e.g. a nuisance-trip bias landing mid-overload) a trip
    // is a survivable-but-terminal event for the run: report it as a
    // structured shutdown instead of aborting the simulation.
    shutdown_ = true;
    sprint_terminated_ = true;
    result.achieved = 0.0;
    result.degree = op.degree;
    result.active_cores = op.active_cores;
    result.server_power = op.fleet_total;
    result.cooling_power = cooling.electrical;
    result.ups_power = flows.ups_total;
    result.dc_load = flows.dc_load;
    result.room = deps_.room->temperature();
    result.tripped = true;
    result.phase = SprintPhase::kShutdown;
    result.degradation = DegradationLevel::kPowerCapFallback;
    return result;
  }

  // Chip-level PCM: melted by chip power above the sustainable level; an
  // exhausted buffer means chip sprinting itself is over ("If the
  // chip-level sprinting can be no longer sustained, we also finish Data
  // Center Sprinting", Section IV).
  if (deps_.pcm != nullptr) {
    const Power chip = op.per_server - deps_.fleet->server().non_cpu();
    deps_.pcm->step(chip, dt);
    if (deps_.pcm->exhausted() && op.degree > 1.0 + kDegreeEps) {
      sprint_terminated_ = true;
    }
  }

  // Terminal rules (Sections IV-A, V-C): overheating, the TES running dry
  // while carrying the cooling load, or the stored energy being exhausted
  // altogether, end the sprint — the additional cores go back to inactive
  // until the burst is over.
  if (deps_.room->over_threshold()) sprint_terminated_ = true;
  if (in_burst_ && f.tes_active && deps_.tes != nullptr && deps_.tes->empty()) {
    sprint_terminated_ = true;
  }
  if (active && op.degree > 1.0 + kDegreeEps) {
    // "The additional power or cooling can no longer be provided": the UPS
    // running dry ends phase 2, the TES running dry ends phase 3 — either
    // way the sprint is over (Section IV-A).
    constexpr double kExhausted = 0.02;
    const bool ups_out =
        deps_.topology->ups_available() <=
        deps_.topology->ups_capacity() * kExhausted;
    const bool tes_out =
        f.tes_active && deps_.tes != nullptr &&
        deps_.tes->stored() <= deps_.tes->capacity() * kExhausted;
    if (ups_out || tes_out) sprint_terminated_ = true;
  }

  // Burst bookkeeping for the strategies.
  if (active) {
    burst_elapsed_ += dt;
    max_demand_in_burst_ = std::max(max_demand_in_burst_, measured);
    degree_time_integral_ += op.degree * dt.sec();
  }

  // Ladder: a sprint ended by a fault or feed disturbance (not by the
  // paper's ordinary energy/thermal exhaustion rules) is kSprintEnded.
  if (in_burst_ && sprint_terminated_ &&
      (grid_limited_ ||
       (injector_ != nullptr && injector_->state().active_count > 0))) {
    level = std::max(level, DegradationLevel::kSprintEnded);
  }
  result.degradation = level;

  result.achieved = op.achieved;
  result.degree = op.degree;
  result.active_cores = op.active_cores;
  result.server_power = op.fleet_total;
  result.cooling_power = cooling.electrical;
  result.ups_power = flows.ups_total;
  result.dc_load = flows.dc_load;
  result.tes_heat = cooling.tes_heat;
  result.tes_relief = cooling.relief;
  result.room = deps_.room->temperature();
  if (op.degree <= 1.0 + kDegreeEps) {
    result.phase = SprintPhase::kNormal;
  } else if (cooling.tes_active) {
    result.phase = SprintPhase::kTesCooling;
  } else if (flows.ups_total > kPowerEps) {
    result.phase = SprintPhase::kUpsAssist;
  } else {
    result.phase = SprintPhase::kCbOverload;
  }
  return result;
}

StepResult SprintingController::step_uncontrolled(double demand, Duration dt) {
  StepResult result;
  result.demand = demand;
  if (shutdown_) {
    // Breaker tripped earlier: the data center is dark.
    result.phase = SprintPhase::kShutdown;
    result.tripped = true;
    result.room = deps_.room->temperature();
    deps_.room->step(Power::zero(), Power::zero(), dt);
    return result;
  }
  // Chip-level sprinting with no data-center-level coordination: every chip
  // turns on whatever the demand asks for.
  const double max_degree = deps_.fleet->server().chip().max_sprint_degree();
  const auto op = deps_.fleet->operate(demand, max_degree);
  const auto cooling =
      deps_.cooling->step(op.fleet_total, false, Power::zero(), dt);
  const auto flows = deps_.topology->step_uniform(op.per_pdu, Power::zero(),
                                                  cooling.electrical, dt);
  deps_.room->step(op.fleet_total, cooling.heat_absorbed, dt);

  result.achieved = op.achieved;
  result.degree = op.degree;
  result.active_cores = op.active_cores;
  result.upper_bound = max_degree;
  result.server_power = op.fleet_total;
  result.cooling_power = cooling.electrical;
  result.dc_load = flows.dc_load;
  result.room = deps_.room->temperature();
  result.phase = op.degree > 1.0 + kDegreeEps ? SprintPhase::kCbOverload
                                              : SprintPhase::kNormal;
  if (flows.dc_tripped || flows.any_pdu_tripped) {
    shutdown_ = true;
    result.tripped = true;
    result.achieved = 0.0;  // the trip kills the service within this step
    result.phase = SprintPhase::kShutdown;
  }
  return result;
}

StepResult SprintingController::step_capped(double demand, Duration dt,
                                            bool allow_extra_cores) {
  StepResult result;
  result.demand = demand;
  const std::size_t normal = deps_.fleet->server().chip().params().normal_cores;
  std::size_t cores = normal;
  if (allow_extra_cores) {
    // Conventional power capping: activate extra cores only while every
    // rating is respected — no overload, no stored energy. The *effective*
    // ratings equal the nameplate ones unless a fault derated a breaker.
    const std::size_t total = deps_.fleet->server().chip().params().total_cores;
    const double max_degree = deps_.fleet->server().chip().max_sprint_degree();
    const std::size_t desired =
        deps_.fleet->operate(demand, max_degree).active_cores;
    const Power pdu_limit =
        deps_.topology->pdu(0).breaker().effective_rated();
    const Power dc_limit = deps_.topology->dc_breaker().effective_rated();
    for (std::size_t n = desired; n >= normal; --n) {
      const auto op = deps_.fleet->operate_with_cores(demand, n);
      const Power cooling = deps_.cooling->electrical_projection(
          op.fleet_total, false, Power::zero());
      const Power dc_load =
          op.per_pdu * static_cast<double>(deps_.topology->pdu_count()) + cooling;
      if (op.per_pdu <= pdu_limit && dc_load <= dc_limit) {
        cores = n;
        break;
      }
      if (n == normal) break;
    }
    DCS_ENSURE(cores <= total, "core search overflow");
  }
  const auto op = deps_.fleet->operate_with_cores(demand, cores);
  const auto cooling =
      deps_.cooling->step(op.fleet_total, false, Power::zero(), dt);
  const auto flows = deps_.topology->step_uniform(op.per_pdu, Power::zero(),
                                                  cooling.electrical, dt);
  deps_.room->step(op.fleet_total, cooling.heat_absorbed, dt);
  result.achieved = op.achieved;
  result.degree = op.degree;
  result.active_cores = op.active_cores;
  result.upper_bound = op.degree;
  result.server_power = op.fleet_total;
  result.cooling_power = cooling.electrical;
  result.dc_load = flows.dc_load;
  result.room = deps_.room->temperature();
  result.phase = op.degree > 1.0 + kDegreeEps ? SprintPhase::kCbOverload
                                              : SprintPhase::kNormal;
  return result;
}

StepResult SprintingController::step_dvfs(double demand, Duration dt) {
  // Conventional DVFS power capping: the normal cores overclock as far as
  // every rating allows — no dark cores, no overload, no stored energy.
  StepResult result;
  result.demand = demand;
  const compute::Chip& chip = deps_.fleet->server().chip();
  const std::size_t n0 = chip.params().normal_cores;
  const double n_pdus = static_cast<double>(deps_.topology->pdu_count());
  const auto servers = static_cast<double>(
      deps_.fleet->params().servers_per_pdu);

  // Server power at frequency multiplier f serving `demand`:
  // utilization u = min(1, demand / f); dynamic power scales as f^3.
  const auto server_power = [&](double f) {
    const double u = std::min(1.0, demand / f);
    return deps_.fleet->server().non_cpu() + chip.params().base +
           chip.params().per_core *
               (static_cast<double>(n0) * u * dvfs_.power_multiplier(f));
  };
  const auto fits = [&](double f) {
    const Power per_pdu = server_power(f) * servers;
    if (per_pdu > pdu_rated_) return false;
    const Power fleet_power = per_pdu * n_pdus;
    const Power cooling = deps_.cooling->electrical_projection(
        fleet_power, false, Power::zero());
    return fleet_power + cooling <= dc_rated_;
  };

  double f = 1.0;
  if (demand > 1.0 && fits(1.0)) {
    double lo = 1.0, hi = dvfs_.params().max_multiplier;
    if (fits(hi)) {
      f = hi;
    } else {
      for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (fits(mid) ? lo : hi) = mid;
      }
      f = lo;
    }
  }

  const Power per_server = server_power(f);
  const auto cooling = deps_.cooling->step(per_server * servers * n_pdus,
                                           false, Power::zero(), dt);
  const auto flows = deps_.topology->step_uniform(
      per_server * servers, Power::zero(), cooling.electrical, dt);
  deps_.room->step(per_server * servers * n_pdus, cooling.heat_absorbed, dt);

  result.achieved = std::min(demand, dvfs_.performance(f));
  result.degree = f;  // frequency multiplier reported as the "degree"
  result.active_cores = n0;
  result.upper_bound = dvfs_.params().max_multiplier;
  result.server_power = per_server * servers * n_pdus;
  result.cooling_power = cooling.electrical;
  result.dc_load = flows.dc_load;
  result.room = deps_.room->temperature();
  result.phase = f > 1.0 + kDegreeEps ? SprintPhase::kCbOverload
                                      : SprintPhase::kNormal;
  return result;
}

bool SprintingController::should_fall_back() const {
  const faults::FaultInjector::State& fs = injector_->state();
  const double room_frac =
      deps_.room->rise().c() / deps_.room->params().threshold_rise.c();
  // A severe chiller loss with no usable thermal storage left means every
  // extra watt shortens the time to the room threshold: cap now.
  const bool tes_dry = deps_.tes == nullptr || deps_.tes->empty() ||
                       fs.tes_discharge_factor <= 0.0;
  const bool chiller_critical = fs.chiller_capacity_factor <= 0.5 && tes_dry;
  if (!fallback_) {
    return room_frac >= 0.90 || chiller_critical;
  }
  // Hysteresis: leave the fallback only once the room has genuinely
  // recovered, so the controller does not oscillate across the boundary.
  return room_frac >= 0.60 || chiller_critical;
}

void SprintingController::trace_transitions(Duration now,
                                            const StepResult& result) {
  const DegradationLevel prev_level = prev_degradation_;
  if (result.degradation != prev_level) {
    // Ladder moves are the reactive safety actions of Section IV-A: rare,
    // and worth a log line even without a tracer attached.
    DCS_LOG_INFO << "degradation " << to_string(prev_level) << " -> "
                 << to_string(result.degradation) << " at t=" << now.sec()
                 << "s (degree " << result.degree << ")";
    if (tracer_ != nullptr) {
      tracer_->instant(now, "controller", "degradation",
                       {obs::arg("from", to_string(prev_level)),
                        obs::arg("to", to_string(result.degradation)),
                        obs::arg("degree", result.degree)});
    }
  }
  prev_degradation_ = result.degradation;

  const bool sprinting = result.degree > 1.0 + kDegreeEps;
  if (tracer_ == nullptr && decisions_ == nullptr) {
    prev_phase_ = result.phase;
    prev_in_burst_ = in_burst_;
    prev_sprinting_ = sprinting;
    prev_grid_limited_ = grid_limited_;
    return;
  }

  // Trigger decisions first: a consequence emitted later this tick (sprint
  // onset, a ladder move) cites the latest trigger as its cause, so causes
  // must hit the stream before their effects.
  if (decisions_ != nullptr && grid_limited_ && !prev_grid_limited_) {
    decisions_->emit(obs::DecisionRule::kSupplyDisturbance,
                     {{"supply", result.supply_fraction}}, {{"supply", 1.0}});
  }
  prev_grid_limited_ = grid_limited_;

  if (decisions_ != nullptr && in_burst_ != prev_in_burst_) {
    decisions_->emit(in_burst_ ? obs::DecisionRule::kBurstStart
                               : obs::DecisionRule::kBurstEnd,
                     {{"demand", result.measured_demand}}, {{"demand", 1.0}});
  }
  prev_in_burst_ = in_burst_;

  if (tracer_ != nullptr && result.phase != prev_phase_) {
    tracer_->instant(
        now, "controller", "phase",
        {obs::arg("from", to_string(prev_phase_)),
         obs::arg("to", to_string(result.phase)),
         obs::arg("degree", result.degree),
         obs::arg("cores", static_cast<double>(result.active_cores))});
  }
  prev_phase_ = result.phase;

  const bool dc_overload = result.dc_load > dc_rated_ + kPowerEps;
  if (dc_overload != prev_dc_overload_) {
    if (tracer_ != nullptr) {
      tracer_->instant(now, "controller",
                       dc_overload ? "dc-overload-enter" : "dc-overload-exit",
                       {obs::arg("dc_load_w", result.dc_load.w()),
                        obs::arg("rated_w", dc_rated_.w())});
    }
    prev_dc_overload_ = dc_overload;
  }

  // Remaining-trip-time margin on the substation breaker: crossing below
  // twice the governor's reserve is the early warning that the shrinking
  // overload bound is about to bind. Two guards keep this off the hot
  // path: the inline can_trip_at screen skips the curve lookup while the
  // load is pinned at or below the no-trip boundary (the common case),
  // and a Schmitt-trigger release band stops the edge from chattering —
  // the governor holds the load right where the margin hovers at the
  // watch threshold, which would otherwise toggle an instant every tick.
  const power::CircuitBreaker& dc_breaker = deps_.topology->dc_breaker();
  const Duration watch = config_.cb_reserve * 2.0;
  bool margin_low = false;
  if (dc_breaker.can_trip_at(result.dc_load)) {
    margin_low = dc_breaker.trips_within(
        result.dc_load,
        prev_margin_low_ ? watch * kMarginReleaseFactor : watch);
  }
  if (margin_low != prev_margin_low_) {
    const Duration margin = dc_breaker.time_to_trip_at(result.dc_load);
    const double margin_s = margin.is_infinite() ? -1.0 : margin.sec();
    if (tracer_ != nullptr) {
      tracer_->instant(now, "controller",
                       margin_low ? "trip-margin-low" : "trip-margin-recovered",
                       {obs::arg("margin_s", margin_s),
                        obs::arg("reserve_s", config_.cb_reserve.sec())});
    }
    if (decisions_ != nullptr && margin_low) {
      decisions_->emit(obs::DecisionRule::kBreakerScreen,
                       {{"margin_s", margin_s}}, {{"watch_s", watch.sec()}});
    }
    prev_margin_low_ = margin_low;
  }

  if (decisions_ != nullptr && sprinting != prev_sprinting_) {
    if (sprinting) {
      decisions_->emit(obs::DecisionRule::kSprintOnset,
                       {{"degree", result.degree},
                        {"bound", result.upper_bound},
                        {"demand", result.measured_demand},
                        {"energy_fraction", remaining_energy_fraction()}},
                       {{"degree", 1.0}},
                       {obs::arg("phase", to_string(result.phase))});
    } else {
      decisions_->emit(obs::DecisionRule::kSprintEnd,
                       {{"degree", result.degree},
                        {"demand", result.measured_demand}},
                       {{"degree", 1.0}},
                       {obs::arg("terminated", sprint_terminated_)});
    }
  }
  prev_sprinting_ = sprinting;

  if (decisions_ != nullptr && result.degradation != prev_level) {
    obs::DecisionRule rule = obs::DecisionRule::kLadderRecovered;
    if (result.degradation > prev_level) {
      switch (result.degradation) {
        case DegradationLevel::kDerated:
          rule = obs::DecisionRule::kLadderDerate;
          break;
        case DegradationLevel::kShedding:
          rule = obs::DecisionRule::kLadderShed;
          break;
        case DegradationLevel::kSprintEnded:
          rule = obs::DecisionRule::kLadderSprintEnded;
          break;
        default:
          rule = obs::DecisionRule::kLadderPowerCap;
          break;
      }
    }
    const double severity =
        injector_ != nullptr ? injector_->state().severity : 0.0;
    decisions_->emit(
        rule,
        {{"severity", severity},
         {"faults_active", static_cast<double>(result.faults_active)},
         {"degree", result.degree}},
        {{"severe_severity", kSevereFaultSeverity}},
        {obs::arg("from", to_string(prev_level)),
         obs::arg("to", to_string(result.degradation))});
  }

  const bool ups_active = result.ups_power > kPowerEps;
  if (ups_active != prev_ups_active_) {
    if (tracer_ != nullptr) {
      tracer_->instant(now, "controller",
                       ups_active ? "ups-activate" : "ups-idle",
                       {obs::arg("ups_w", result.ups_power.w())});
    }
    prev_ups_active_ = ups_active;
  }

  const bool tes_active =
      result.tes_heat > kPowerEps || result.tes_relief > kPowerEps;
  if (tes_active != prev_tes_active_) {
    if (tracer_ != nullptr) {
      tracer_->instant(now, "controller",
                       tes_active ? "tes-activate" : "tes-idle",
                       {obs::arg("tes_heat_w", result.tes_heat.w()),
                        obs::arg("tes_relief_w", result.tes_relief.w())});
    }
    prev_tes_active_ = tes_active;
  }
}

void SprintingController::account(const StepResult& result, Duration dt) {
  max_degradation_ = std::max(max_degradation_, result.degradation);
  degradation_time_[static_cast<std::size_t>(result.degradation)] += dt;
  ups_energy_ += result.ups_power * dt;
  if (result.degree > 1.0 + kDegreeEps) sprint_time_ += dt;
  phase_time_[static_cast<std::size_t>(result.phase)] += dt;
  tes_saved_ += result.tes_relief * dt;
  const Power pdu_rated_total =
      pdu_rated_ * static_cast<double>(deps_.topology->pdu_count());
  const Power pdu_grid = result.dc_load - result.cooling_power;
  if (pdu_grid > pdu_rated_total) {
    pdu_overload_ += (pdu_grid - pdu_rated_total) * dt;
  }
  if (result.dc_load > dc_rated_) {
    dc_overload_ += (result.dc_load - dc_rated_) * dt;
  }
}

}  // namespace dcs::core
