// The Oracle strategy (paper Section V-A): with perfect knowledge of the
// burst, exhaustively search the constant sprinting-degree upper bound that
// maximizes average performance. Impractical online, it serves as the
// reference the other strategies are compared against, and it populates the
// upper-bound table the Prediction strategy consults.
#pragma once

#include <span>
#include <vector>

#include "core/datacenter.h"
#include "core/strategy.h"
#include "core/upper_bound_table.h"
#include "util/time_series.h"
#include "workload/yahoo_trace.h"

namespace dcs::core {

struct OracleResult {
  double best_bound = 1.0;
  double best_performance = 1.0;
  /// Every (bound, performance) point evaluated.
  std::vector<std::pair<double, double>> sweep;
};

/// Exhaustive search over constant upper bounds (one candidate per
/// `core_stride` cores between the normal and total core count).
///
/// The candidates are independent full simulations, so they run on the
/// `src/exp` parallel runner: each task owns a fresh DataCenter built from
/// `dc.config()` (run() builds fresh plant state per call, so this is
/// bit-identical to reusing `dc`), and candidates are combined in index
/// order — the result is bit-identical for any `threads` value
/// (0 = all hardware threads).
[[nodiscard]] OracleResult oracle_search(const DataCenter& dc,
                                         const TimeSeries& demand,
                                         std::size_t core_stride = 2,
                                         std::size_t threads = 0);

/// Builds the (burst duration x max burst degree) -> optimal bound table by
/// running the oracle search on synthetic Yahoo-style bursts (`base` sets
/// everything but the burst duration/degree). The grid cells are
/// parallelized (the per-cell searches then run serially to avoid
/// oversubscription); results are bit-identical for any `threads` value.
[[nodiscard]] UpperBoundTable build_upper_bound_table(
    const DataCenter& dc, std::span<const Duration> durations,
    std::span<const double> degrees, const workload::YahooTraceParams& base,
    std::size_t core_stride = 2, std::size_t threads = 0);

}  // namespace dcs::core
