// Budget-paced planner — the paper's future-work direction ("formulate
// optimization problems to minimize the performance degradation",
// Section V-A) made concrete.
//
// For a burst served at a constant degree cap b, the drain rates of the two
// stored-energy pools have closed forms:
//   * the UPS banks carry the per-PDU power above the breakers' sustained
//     floor (the no-trip ratio), so dur_ups(b) = E_ups / ups_rate(b);
//   * the TES absorbs the heat above the chiller's thermal capacity from
//     its activation time on, so dur_tes(b) = t_act + E_tes / excess(b);
// and the sprint ends when either pool empties (Section IV-A). The planner
// therefore evaluates, for every candidate cap, the sustained duration
//   T(b) = min(dur_ups, dur_tes, burst duration)
// and the resulting average throughput min(thr(b), burst demand) * T(b) +
// 1 * (burst - T(b)), picking the best cap — an O(cores) closed-form
// computation that lands within a few percent of the Oracle's exhaustive
// simulation sweep.
#pragma once

#include "compute/fleet.h"
#include "core/config.h"
#include "core/strategy.h"
#include "util/time_series.h"

namespace dcs::core {

class BudgetPacedStrategy final : public Strategy {
 public:
  /// Plans against `demand` for the data center described by `config`.
  BudgetPacedStrategy(const TimeSeries& demand, const DataCenterConfig& config);

  [[nodiscard]] double upper_bound(const SprintContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "budget-paced";
  }

  /// The cap the plan selected.
  [[nodiscard]] double planned_cap() const noexcept { return cap_; }
  /// The sustained sprint duration the plan expects at that cap.
  [[nodiscard]] Duration planned_duration() const noexcept { return duration_; }

 private:
  double cap_ = 1.0;
  Duration duration_ = Duration::zero();
};

}  // namespace dcs::core
