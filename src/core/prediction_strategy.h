// The Prediction strategy (paper Section V-A, Eq. (1)).
//
// Given a predicted burst duration BDu_p, it tracks the average sprinting
// degree since the burst began and derives the *equivalent* burst duration
//   BDu_e(t) = BDu_p * (SDe_max / SDe_avg(t)),
// then selects the optimal upper bound for BDu_e from the Oracle-built
// upper-bound table. Intuition: if the fleet has been sprinting below the
// maximum degree, the energy budget stretches over a proportionally longer
// equivalent burst, so a more generous bound is affordable.
#pragma once

#include "core/strategy.h"
#include "core/upper_bound_table.h"
#include "util/units.h"

namespace dcs::core {

class PredictionStrategy final : public Strategy {
 public:
  /// `predicted_duration` is BDu_p (possibly errorful). The table is shared
  /// and must outlive the strategy.
  PredictionStrategy(Duration predicted_duration, const UpperBoundTable* table);

  [[nodiscard]] double upper_bound(const SprintContext& ctx) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "prediction"; }

  /// Equivalent burst duration computed at the last upper_bound() call.
  [[nodiscard]] Duration last_equivalent_duration() const noexcept {
    return last_equivalent_;
  }

 private:
  Duration predicted_duration_;
  const UpperBoundTable* table_;
  Duration last_equivalent_ = Duration::zero();
};

}  // namespace dcs::core
