#include "econ/revenue_model.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::econ {

RevenueModel::RevenueModel(const Params& params) : params_(params) {
  DCS_REQUIRE(params_.downtime_usd_per_min >= 0.0,
              "downtime cost must be non-negative");
  DCS_REQUIRE(params_.minutes_per_month > 0.0, "month length must be positive");
  DCS_REQUIRE(params_.user_loss_fraction >= 0.0 && params_.user_loss_fraction <= 1.0,
              "user loss fraction in [0, 1]");
}

double RevenueModel::request_revenue_usd(double burst_minutes, double magnitude,
                                         int bursts) const {
  DCS_REQUIRE(burst_minutes >= 0.0, "burst minutes must be non-negative");
  DCS_REQUIRE(bursts >= 0, "burst count must be non-negative");
  if (magnitude <= 1.0) return 0.0;
  return params_.downtime_usd_per_min * burst_minutes * (magnitude - 1.0) *
         static_cast<double>(bursts);
}

double RevenueModel::retention_revenue_usd(double magnitude, int bursts,
                                           double ut_over_u0) const {
  DCS_REQUIRE(ut_over_u0 > 0.0, "Ut/U0 must be positive");
  DCS_REQUIRE(bursts >= 0, "burst count must be non-negative");
  if (magnitude <= 1.0) return 0.0;
  const double affected_fraction =
      std::min((magnitude - 1.0) * static_cast<double>(bursts) / ut_over_u0, 1.0);
  return monthly_user_loss_value_usd() * affected_fraction;
}

double RevenueModel::monthly_user_loss_value_usd() const {
  return params_.downtime_usd_per_min * params_.minutes_per_month *
         params_.user_loss_fraction;
}

}  // namespace dcs::econ
