// Revenue side of the paper's Section V-D analysis.
//
// Two components:
//  1. Request revenue — denying requests is equivalent to partial downtime,
//     priced at $7,900 per minute for an average-scale data center [40]:
//     R_req = $7,900 * L * (M - 1) * K for K bursts of L minutes at burst
//     magnitude M (normalized to the no-sprint maximum; M <= 1 needs no
//     sprinting).
//  2. Retention revenue — Google measured 0.2 % permanent user loss from a
//     0.4 s slowdown [9]. The monthly revenue of 0.2 % of users is
//     $7,900 * 43,200 * 0.2 % = $682,560; the fraction of users affected by
//     the K bursts is min[U0 (M - 1) K, Ut] / Ut.
#pragma once

namespace dcs::econ {

class RevenueModel {
 public:
  struct Params {
    double downtime_usd_per_min = 7900.0;
    double minutes_per_month = 43200.0;
    double user_loss_fraction = 0.002;
  };

  RevenueModel() : RevenueModel(Params{}) {}
  explicit RevenueModel(const Params& params);

  /// Revenue from serving the excess requests of K bursts of `burst_minutes`
  /// at magnitude M (normalized; returns 0 for M <= 1).
  [[nodiscard]] double request_revenue_usd(double burst_minutes, double magnitude,
                                           int bursts) const;

  /// Monthly revenue of the would-be-lost user fraction:
  /// ($682,560 / Ut) * min[U0 (M-1) K, Ut], expressed via ut_over_u0 = Ut/U0.
  [[nodiscard]] double retention_revenue_usd(double magnitude, int bursts,
                                             double ut_over_u0) const;

  /// Monthly revenue equivalent of 0.2 % of all users ($682,560 default).
  [[nodiscard]] double monthly_user_loss_value_usd() const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace dcs::econ
