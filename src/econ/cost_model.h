// Cost side of the paper's Section V-D analysis: provisioning cores that
// are normally dark.
//
// Defaults follow the paper: $40 per additional core [37], amortized over
// 48 months, 10 normally-active cores per server (Intel Xeon 10-core, as in
// Amazon EC2 [1]), and an average-scale data center of 18,750 servers
// ((25,000 + 12,500) / 2, after [26], [27], [28], [40]).
#pragma once

#include <cstddef>

namespace dcs::econ {

class CostModel {
 public:
  struct Params {
    double core_cost_usd = 40.0;
    int amortization_months = 48;
    std::size_t normal_cores_per_server = 10;
    std::size_t servers = 18750;
  };

  CostModel() : CostModel(Params{}) {}
  explicit CostModel(const Params& params);

  /// Monthly per-server cost of the dark cores for a maximum sprinting
  /// degree N (total cores / normal cores): $40 * 10(N-1) / 48 = $8.3(N-1).
  [[nodiscard]] double monthly_per_server_usd(double max_sprint_degree) const;

  /// Monthly data-center-wide cost: $156,250 (N-1) with the defaults.
  [[nodiscard]] double monthly_total_usd(double max_sprint_degree) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace dcs::econ
