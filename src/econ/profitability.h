// Combines cost and revenue into the paper's Fig. 5 analysis and the
// trace-driven monthly-revenue estimate of Section V-D.
#pragma once

#include "econ/cost_model.h"
#include "econ/revenue_model.h"
#include "util/time_series.h"

namespace dcs::econ {

struct ProfitBreakdown {
  double cost_usd = 0.0;
  double request_revenue_usd = 0.0;
  double retention_revenue_usd = 0.0;

  [[nodiscard]] double total_revenue_usd() const noexcept {
    return request_revenue_usd + retention_revenue_usd;
  }
  [[nodiscard]] double profit_usd() const noexcept {
    return total_revenue_usd() - cost_usd;
  }
};

class ProfitabilityAnalysis {
 public:
  ProfitabilityAnalysis(CostModel cost, RevenueModel revenue);

  /// Fig. 5 point: K bursts of `burst_minutes` per month whose magnitude
  /// utilizes `utilization` (0.5 / 0.75 / 1.0 for R50/R75/R100) of the
  /// additional cores at max sprinting degree N, with Ut/U0 users.
  [[nodiscard]] ProfitBreakdown analyze(double max_sprint_degree,
                                        double burst_minutes, int bursts,
                                        double utilization,
                                        double ut_over_u0) const;

  /// Trace-driven variant (the "$19 M" example): integrates the excess
  /// demand of a month-long demand trace (normalized to the no-sprint
  /// capacity) and prices it; demand above N is unserveable even when
  /// sprinting. `bursts` is the number of over-capacity episodes, used for
  /// the retention term.
  [[nodiscard]] ProfitBreakdown analyze_trace(const TimeSeries& demand,
                                              double max_sprint_degree,
                                              double ut_over_u0,
                                              double months_spanned) const;

  [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }
  [[nodiscard]] const RevenueModel& revenue() const noexcept { return revenue_; }

 private:
  CostModel cost_;
  RevenueModel revenue_;
};

}  // namespace dcs::econ
