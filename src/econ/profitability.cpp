#include "econ/profitability.h"

#include <algorithm>

#include "util/check.h"
#include "workload/burst.h"

namespace dcs::econ {

ProfitabilityAnalysis::ProfitabilityAnalysis(CostModel cost, RevenueModel revenue)
    : cost_(std::move(cost)), revenue_(std::move(revenue)) {}

ProfitBreakdown ProfitabilityAnalysis::analyze(double max_sprint_degree,
                                               double burst_minutes, int bursts,
                                               double utilization,
                                               double ut_over_u0) const {
  DCS_REQUIRE(utilization > 0.0 && utilization <= 1.0, "utilization in (0, 1]");
  ProfitBreakdown out;
  out.cost_usd = cost_.monthly_total_usd(max_sprint_degree);
  // Burst magnitude that utilizes the given fraction of the extra cores.
  const double magnitude = 1.0 + utilization * (max_sprint_degree - 1.0);
  out.request_revenue_usd =
      revenue_.request_revenue_usd(burst_minutes, magnitude, bursts);
  out.retention_revenue_usd =
      revenue_.retention_revenue_usd(magnitude, bursts, ut_over_u0);
  return out;
}

ProfitBreakdown ProfitabilityAnalysis::analyze_trace(const TimeSeries& demand,
                                                     double max_sprint_degree,
                                                     double ut_over_u0,
                                                     double months_spanned) const {
  DCS_REQUIRE(months_spanned > 0.0, "months spanned must be positive");
  ProfitBreakdown out;
  out.cost_usd = cost_.monthly_total_usd(max_sprint_degree);

  // Integrate the excess demand that sprinting serves: min(d, N) - 1 when
  // d > 1, expressed in magnitude-minutes.
  double magnitude_minutes = 0.0;
  const auto& samples = demand.samples();
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    const double d = samples[i].value;
    if (d <= 1.0) continue;
    const double served_excess = std::min(d, max_sprint_degree) - 1.0;
    magnitude_minutes += served_excess * (samples[i + 1].time - samples[i].time).min();
  }
  out.request_revenue_usd = revenue_.params().downtime_usd_per_min *
                            magnitude_minutes / months_spanned;

  const workload::BurstStats stats = workload::analyze_bursts(demand, 1.0);
  const double mean_magnitude = std::max(1.0, stats.mean_burst_demand);
  const auto bursts_per_month = static_cast<int>(
      static_cast<double>(stats.burst_count) / months_spanned + 0.5);
  out.retention_revenue_usd = revenue_.retention_revenue_usd(
      std::min(mean_magnitude, max_sprint_degree), bursts_per_month, ut_over_u0);
  return out;
}

}  // namespace dcs::econ
