#include "econ/cost_model.h"

#include "util/check.h"

namespace dcs::econ {

CostModel::CostModel(const Params& params) : params_(params) {
  DCS_REQUIRE(params_.core_cost_usd >= 0.0, "core cost must be non-negative");
  DCS_REQUIRE(params_.amortization_months > 0, "amortization must be positive");
  DCS_REQUIRE(params_.normal_cores_per_server > 0, "need normally-active cores");
  DCS_REQUIRE(params_.servers > 0, "need at least one server");
}

double CostModel::monthly_per_server_usd(double max_sprint_degree) const {
  DCS_REQUIRE(max_sprint_degree >= 1.0, "sprint degree must be at least 1");
  const double extra_cores =
      static_cast<double>(params_.normal_cores_per_server) *
      (max_sprint_degree - 1.0);
  return params_.core_cost_usd * extra_cores /
         static_cast<double>(params_.amortization_months);
}

double CostModel::monthly_total_usd(double max_sprint_degree) const {
  return monthly_per_server_usd(max_sprint_degree) *
         static_cast<double>(params_.servers);
}

}  // namespace dcs::econ
