#include "exp/aggregator.h"

#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace dcs::exp {

SweepSummary aggregate(const SweepSpec& spec, const SweepRun& run) {
  DCS_REQUIRE(run.rows.size() == spec.task_count(),
              "run does not match the spec's task count");
  const std::size_t reps = spec.replicates();

  SweepSummary summary;
  summary.name = spec.name();
  summary.axes = spec.axes();
  summary.metrics = run.metrics;
  summary.replicates = reps;
  summary.task_count = run.rows.size();
  summary.threads_used = run.threads_used;
  summary.wall_seconds = run.wall_seconds;
  summary.executed_tasks = run.executed_tasks;
  summary.resumed_tasks = run.resumed_tasks;
  summary.shard_index = run.shard_index;
  summary.shard_count = run.shard_count;

  summary.cells.reserve(spec.cell_count());
  for (std::size_t cell = 0; cell < spec.cell_count(); ++cell) {
    CellSummary cs;
    cs.cell = cell;
    cs.level = spec.cell_levels(cell);
    cs.labels.reserve(cs.level.size());
    for (std::size_t a = 0; a < cs.level.size(); ++a) {
      cs.labels.push_back(summary.axes[a].labels[cs.level[a]]);
    }
    cs.metrics.reserve(run.metrics.size());
    for (std::size_t m = 0; m < run.metrics.size(); ++m) {
      RunningStats stats;
      std::vector<double> values;
      values.reserve(reps);
      for (std::size_t rep = 0; rep < reps; ++rep) {
        // Empty slots (task outside the executed shard / not yet resumed)
        // contribute nothing; count reflects the replicates that ran.
        const std::vector<double>& row = run.rows[cell * reps + rep];
        if (row.empty()) continue;
        stats.add(row[m]);
        values.push_back(row[m]);
      }
      MetricSummary ms;
      if (!values.empty()) {
        ms.count = stats.count();
        ms.mean = stats.mean();
        ms.stddev = stats.stddev();
        ms.min = stats.min();
        ms.max = stats.max();
        ms.p50 = percentile(values, 50.0);
        ms.p95 = percentile(std::move(values), 95.0);
        ms.ci95 = ms.count >= 2 ? 1.96 * ms.stddev /
                                      std::sqrt(static_cast<double>(ms.count))
                                : 0.0;
      }
      cs.metrics.push_back(ms);
    }
    summary.cells.push_back(std::move(cs));
  }
  return summary;
}

}  // namespace dcs::exp
