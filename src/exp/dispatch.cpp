#include "exp/dispatch.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "exp/checkpoint.h"
#include "exp/runner.h"
#include "exp/timeline.h"
#include "obs/profile.h"
#include "obs/telemetry.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"

namespace dcs::exp {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string shard_dir(const std::string& work_dir, std::size_t shard) {
  return work_dir + "/shard_" + std::to_string(shard);
}

/// Total bytes of checkpoint files in a shard dir — the progress signal.
/// Every completed row is one flushed JSONL line, so a live worker grows
/// this monotonically; a missing dir reads as zero.
std::uint64_t checkpoint_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".jsonl") continue;
    total += static_cast<std::uint64_t>(entry.file_size(ec));
  }
  return total;
}

/// Per-attempt telemetry stream path; zero-padded so a lexical sort of the
/// shard dir lists attempts in order (the timeline merge relies on this).
std::string telemetry_path(const std::string& dir, std::size_t attempt) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04zu", attempt);
  return dir + "/telemetry_" + buf + ".jsonl";
}

/// Spawns one worker: command + `shard=i/N checkpoint=<dir>` (and
/// `telemetry=<path>` when streaming), stdout and stderr redirected to an
/// attempt log. Returns -1 when fork fails.
pid_t spawn_worker(const std::vector<std::string>& command, std::size_t shard,
                   std::size_t shards, const std::string& dir,
                   const std::string& log_path,
                   const std::string& telemetry) {
  std::vector<std::string> argv_strings = command;
  argv_strings.push_back("shard=" + std::to_string(shard) + "/" +
                         std::to_string(shards));
  argv_strings.push_back("checkpoint=" + dir);
  if (!telemetry.empty()) argv_strings.push_back("telemetry=" + telemetry);

  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure: -1)

  // Child: only async-signal-safe calls between fork and exec.
  const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    if (fd > STDERR_FILENO) ::close(fd);
  }
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (std::string& s : argv_strings) argv.push_back(s.data());
  argv.push_back(nullptr);
  ::execvp(argv[0], argv.data());
  ::_exit(127);  // exec failed: surfaces as a crash with exit code 127
}

struct Worker {
  enum class State { kPending, kRunning, kBackoff, kCompleted, kFailed,
                     kInterrupted };

  std::size_t shard = 0;
  State state = State::kPending;
  pid_t pid = -1;
  std::size_t restarts = 0;
  std::size_t chaos_kills = 0;
  Clock::time_point attempt_start;
  Clock::time_point last_progress;
  Clock::time_point restart_at;
  std::uint64_t last_bytes = 0;
  /// Why the supervisor killed the current attempt ("" = it was not us).
  std::string kill_reason;
  std::vector<AttemptResult> attempts;
  /// Telemetry mode: tail of the current attempt's stream.
  std::unique_ptr<obs::TelemetryTail> tail;
  /// Last heartbeat across attempts + the status tick's rate baseline.
  std::size_t tasks_done = 0;
  std::size_t tasks_total = 0;
  std::size_t status_done = 0;

  [[nodiscard]] bool live() const noexcept {
    return state == State::kPending || state == State::kRunning ||
           state == State::kBackoff;
  }
};

const char* state_name(Worker::State s) {
  switch (s) {
    case Worker::State::kCompleted: return "completed";
    case Worker::State::kFailed: return "failed";
    case Worker::State::kInterrupted: return "interrupted";
    default: return "live";
  }
}

/// Supervisor: the poll loop plus per-shard bookkeeping.
class Dispatcher {
 public:
  explicit Dispatcher(const DispatchOptions& options)
      : options_(options), chaos_(options.chaos_seed) {}

  DispatchReport run() {
    const auto start = Clock::now();
    prepare();
    if (!options_.resume_report_path.empty()) seed_from_report();
    supervise();
    DispatchReport report = finalize();
    report.wall_s = seconds_since(start);
    return report;
  }

 private:
  void log(const std::string& line) {
    if (options_.log != nullptr) *options_.log << "[dispatch] " << line << "\n";
  }

  /// Dispatcher self-telemetry: one wall-clock instant in the supervision
  /// stream (spawn/exit/kill/restart/merge), so the merged timeline shows
  /// what the supervisor did between worker attempts.
  void note(const std::string& name, std::vector<obs::TraceArg> args) {
    if (self_ == nullptr) return;
    obs::TraceEvent e;
    e.domain = obs::Domain::kWall;
    e.phase = 'i';
    e.ts_us = obs::Profiler::instance().now_us();
    e.cat = "dispatch";
    e.name = name;
    e.args = std::move(args);
    self_->write(e);
  }

  void prepare() {
    workers_.resize(options_.shards);
    for (std::size_t i = 0; i < options_.shards; ++i) {
      workers_[i].shard = i;
      workers_[i].restart_at = Clock::now();
      std::error_code ec;
      fs::create_directories(shard_dir(options_.work_dir, i), ec);
      DCS_REQUIRE(!ec, "dispatch: cannot create " +
                           shard_dir(options_.work_dir, i) + ": " +
                           ec.message());
    }
    if (options_.telemetry) {
      obs::TelemetryOptions topt;
      topt.name = "dispatcher";
      self_ = std::make_unique<obs::TelemetrySink>(
          options_.work_dir + "/dispatcher_telemetry.jsonl", topt);
      self_->write_lane_name(obs::Domain::kWall, 0, "supervisor");
      last_status_ = Clock::now();
    }
  }

  /// Drains a worker's telemetry stream and records its latest heartbeat.
  void poll_tail(Worker& w) {
    if (w.tail == nullptr || !w.tail->poll()) return;
    if (w.tail->have_heartbeat()) {
      w.tasks_done = w.tail->heartbeat().done;
      w.tasks_total = w.tail->heartbeat().total;
    }
  }

  /// Aggregated per-shard status line: done/total, throughput since the
  /// previous tick, ETA at that rate, restart counts.
  void status_tick() {
    if (self_ == nullptr || options_.log == nullptr ||
        options_.status_interval_s <= 0.0) {
      return;
    }
    const double elapsed = seconds_since(last_status_);
    if (elapsed < options_.status_interval_s) return;
    last_status_ = Clock::now();
    std::ostringstream line;
    line << "status:";
    for (Worker& w : workers_) {
      line << " shard" << w.shard << "=";
      switch (w.state) {
        case Worker::State::kRunning: {
          const double rate =
              static_cast<double>(w.tasks_done - w.status_done) / elapsed;
          line << w.tasks_done << "/" << w.tasks_total;
          if (rate > 0.0 && w.tasks_total >= w.tasks_done) {
            char buf[48];
            std::snprintf(buf, sizeof(buf), " (%.1f/s, eta %.0fs)", rate,
                          static_cast<double>(w.tasks_total - w.tasks_done) /
                              rate);
            line << buf;
          }
          break;
        }
        case Worker::State::kBackoff:
          line << "backoff";
          break;
        default:
          line << state_name(w.state);
          break;
      }
      if (w.restarts > 0) line << " restarts=" << w.restarts;
      w.status_done = w.tasks_done;
    }
    log(line.str());
  }

  /// Resume support: seed every cleanly merged sweep checkpoint from a prior
  /// run's dispatch report into the new shard dirs, then skip shards whose
  /// task slice has nothing left to do.
  ///
  /// The merged checkpoint is a superset of any single shard's rows, so
  /// copying it into every shard dir is always safe: workers resume from it
  /// (RunnerOptions checkpoint load) and only compute rows absent from it.
  /// Missing task indices in the report are global, so they remain valid even
  /// when this run uses a different shard count than the degraded one.
  void seed_from_report() {
    const json::Value report = json::parse_file(options_.resume_report_path);
    DCS_REQUIRE(report.find("dispatch_report") != nullptr,
                "dispatch: " + options_.resume_report_path +
                    " is not a dispatch report");
    const json::Value* merged = report.find("merged");
    DCS_REQUIRE(merged != nullptr && merged->is_array(),
                "dispatch: report has no merged[] array");

    // Per shard, whether any seeded sweep still has pending tasks in its
    // slice. A sweep that could not be seeded cleanly (merge error, missing
    // checkpoint file) forces every shard to run: we cannot prove any slice
    // is done.
    std::vector<bool> has_pending(options_.shards, false);
    bool all_sweeps_seeded = !merged->as_array().empty();
    for (std::size_t m = 0; m < merged->size(); ++m) {
      const json::Value& sweep = (*merged)[m];
      const std::string& name = sweep.at("sweep").as_string();
      const std::string& path = sweep.at("path").as_string();
      const auto task_count =
          static_cast<std::size_t>(sweep.at("task_count").as_number());
      std::error_code ec;
      if (sweep.find("error") != nullptr || path.empty() ||
          !fs::is_regular_file(path, ec) || task_count == 0) {
        log("resume: sweep " + name +
            " has no clean merged checkpoint; all shards must run");
        all_sweeps_seeded = false;
        std::fill(has_pending.begin(), has_pending.end(), true);
        continue;
      }
      std::size_t seeded = 0;
      for (std::size_t i = 0; i < options_.shards; ++i) {
        fs::copy_file(path,
                      shard_dir(options_.work_dir, i) + "/" + name +
                          ".ckpt.jsonl",
                      fs::copy_options::overwrite_existing, ec);
        DCS_REQUIRE(!ec, "dispatch: cannot seed " + path + " into shard " +
                             std::to_string(i) + ": " + ec.message());
        ++seeded;
      }
      const json::Value& missing = sweep.at("missing");
      std::size_t pending_total = 0;
      for (std::size_t t = 0; t < missing.size(); ++t) {
        const auto task = static_cast<std::size_t>(missing[t].as_number());
        for (std::size_t i = 0; i < options_.shards; ++i) {
          const auto [first, last] =
              shard_range(task_count, Shard{i, options_.shards});
          if (task >= first && task < last) has_pending[i] = true;
        }
        ++pending_total;
      }
      log("resume: seeded " + name + " into " + std::to_string(seeded) +
          " shard dir(s), " + std::to_string(pending_total) + "/" +
          std::to_string(task_count) + " task(s) pending");
    }

    if (!all_sweeps_seeded) return;
    for (Worker& w : workers_) {
      if (!has_pending[w.shard]) {
        w.state = Worker::State::kCompleted;
        log("shard " + std::to_string(w.shard) +
            ": nothing pending after resume seed, skipping");
      }
    }
  }

  void start(Worker& w) {
    const std::string dir = shard_dir(options_.work_dir, w.shard);
    const std::size_t attempt = w.attempts.size() + 1;
    const std::string log_path =
        dir + "/attempt_" + std::to_string(attempt) + ".log";
    const std::string telemetry =
        options_.telemetry ? telemetry_path(dir, attempt) : "";
    w.pid = spawn_worker(options_.command, w.shard, options_.shards, dir,
                         log_path, telemetry);
    w.tail = telemetry.empty()
                 ? nullptr
                 : std::make_unique<obs::TelemetryTail>(telemetry);
    w.kill_reason.clear();
    w.attempt_start = w.last_progress = Clock::now();
    w.last_bytes = checkpoint_bytes(dir);
    if (w.pid < 0) {
      // fork failed: record a zero-length attempt and route it through the
      // ordinary crash path (budget + backoff).
      AttemptResult attempt;
      attempt.outcome = "spawn-failed";
      attempt.checkpoint_bytes = w.last_bytes;
      w.attempts.push_back(attempt);
      log("shard " + std::to_string(w.shard) + ": fork failed");
      schedule_restart(w, /*chaos=*/false);
      return;
    }
    w.state = Worker::State::kRunning;
    log("shard " + std::to_string(w.shard) + ": attempt " +
        std::to_string(w.attempts.size() + 1) + " started (pid " +
        std::to_string(w.pid) + ")");
    note("spawn", {obs::arg("shard", static_cast<double>(w.shard)),
                   obs::arg("attempt", static_cast<double>(attempt)),
                   obs::arg("pid", static_cast<double>(w.pid))});
  }

  void schedule_restart(Worker& w, bool chaos) {
    if (chaos) {
      // Self-inflicted: the supervisor killed a healthy worker to test
      // itself, so the restart is free and immediate.
      w.restart_at = Clock::now();
      w.state = Worker::State::kBackoff;
      return;
    }
    // Check the budget before counting: a shard that fails with no budget
    // left reports restarts == attempts - 1, never a restart that did not
    // actually happen.
    if (w.restarts >= options_.max_restarts) {
      w.state = Worker::State::kFailed;
      log("shard " + std::to_string(w.shard) + ": retry budget exhausted (" +
          std::to_string(options_.max_restarts) + " restart(s))");
      return;
    }
    ++w.restarts;
    const double delay = std::min(
        options_.backoff_base_s *
            static_cast<double>(std::uint64_t{1} << (w.restarts - 1)),
        options_.backoff_max_s);
    w.restart_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(delay));
    w.state = Worker::State::kBackoff;
    log("shard " + std::to_string(w.shard) + ": restart " +
        std::to_string(w.restarts) + "/" +
        std::to_string(options_.max_restarts) + " in " +
        std::to_string(delay) + " s");
    note("restart", {obs::arg("shard", static_cast<double>(w.shard)),
                     obs::arg("restarts", static_cast<double>(w.restarts)),
                     obs::arg("backoff_s", delay)});
  }

  /// Reaps an exited worker and routes it to completed/backoff/failed.
  void handle_exit(Worker& w, int status) {
    poll_tail(w);  // drain the attempt's final telemetry lines
    AttemptResult attempt;
    attempt.wall_s = seconds_since(w.attempt_start);
    attempt.checkpoint_bytes =
        checkpoint_bytes(shard_dir(options_.work_dir, w.shard));
    if (WIFEXITED(status)) attempt.exit_code = WEXITSTATUS(status);
    if (WIFSIGNALED(status)) attempt.term_signal = WTERMSIG(status);

    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    const bool chaos = w.kill_reason == "chaos";
    if (!w.kill_reason.empty()) {
      attempt.outcome = w.kill_reason;
    } else if (clean) {
      attempt.outcome = "completed";
    } else {
      attempt.outcome = "crashed";
    }
    w.attempts.push_back(attempt);
    w.pid = -1;
    note("exit", {obs::arg("shard", static_cast<double>(w.shard)),
                  obs::arg("outcome", attempt.outcome),
                  obs::arg("exit_code", static_cast<double>(attempt.exit_code)),
                  obs::arg("signal",
                           static_cast<double>(attempt.term_signal))});

    if (draining_) {
      // Whatever the exit status, a drain ends the shard here; the
      // checkpoint rows it flushed are the resumable state we report.
      w.state = clean ? Worker::State::kCompleted : Worker::State::kInterrupted;
      return;
    }
    if (clean) {
      w.state = Worker::State::kCompleted;
      log("shard " + std::to_string(w.shard) + ": completed after " +
          std::to_string(w.attempts.size()) + " attempt(s)");
      return;
    }
    log("shard " + std::to_string(w.shard) + ": attempt " +
        std::to_string(w.attempts.size()) + " " + attempt.outcome +
        (attempt.term_signal != 0
             ? " (signal " + std::to_string(attempt.term_signal) + ")"
             : " (exit " + std::to_string(attempt.exit_code) + ")"));
    schedule_restart(w, chaos);
  }

  void kill_worker(Worker& w, const std::string& reason, int sig) {
    w.kill_reason = reason;
    ::kill(w.pid, sig);
    note("kill", {obs::arg("shard", static_cast<double>(w.shard)),
                  obs::arg("reason", reason),
                  obs::arg("signal", static_cast<double>(sig))});
    log("shard " + std::to_string(w.shard) + ": " + reason + ", sent " +
        (sig == SIGKILL ? "SIGKILL" : "SIGTERM") + " to pid " +
        std::to_string(w.pid));
  }

  void begin_drain() {
    draining_ = true;
    drain_start_ = Clock::now();
    log("drain requested: forwarding SIGTERM, grace " +
        std::to_string(options_.grace_period_s) + " s");
    for (Worker& w : workers_) {
      if (w.state == Worker::State::kRunning) {
        kill_worker(w, "drained", SIGTERM);
      } else if (w.state == Worker::State::kPending ||
                 w.state == Worker::State::kBackoff) {
        w.state = Worker::State::kInterrupted;
      }
    }
  }

  void poll_running(Worker& w) {
    int status = 0;
    const pid_t reaped = ::waitpid(w.pid, &status, WNOHANG);
    if (reaped == w.pid) {
      handle_exit(w, status);
      return;
    }
    poll_tail(w);
    if (draining_) {
      if (seconds_since(drain_start_) > options_.grace_period_s) {
        ::kill(w.pid, SIGKILL);  // grace expired; checkpoint is still valid
      }
      return;
    }
    // Liveness: checkpoint growth resets the stall clock.
    const std::uint64_t bytes =
        checkpoint_bytes(shard_dir(options_.work_dir, w.shard));
    if (bytes != w.last_bytes) {
      w.last_bytes = bytes;
      w.last_progress = Clock::now();
    } else if (options_.stall_timeout_s > 0.0 &&
               seconds_since(w.last_progress) > options_.stall_timeout_s) {
      kill_worker(w, "stalled", SIGKILL);
      return;
    }
    if (options_.attempt_deadline_s > 0.0 &&
        seconds_since(w.attempt_start) > options_.attempt_deadline_s) {
      kill_worker(w, "deadline", SIGKILL);
      return;
    }
    // Chaos: self-inflicted kills, seeded, optionally capped.
    if (options_.chaos_kill_prob > 0.0 &&
        (options_.chaos_kill_limit == 0 ||
         total_chaos_kills_ < options_.chaos_kill_limit) &&
        chaos_.uniform() < options_.chaos_kill_prob) {
      ++total_chaos_kills_;
      ++w.chaos_kills;
      kill_worker(w, "chaos", SIGKILL);
    }
  }

  void supervise() {
    while (true) {
      if (!draining_ && options_.stop != nullptr &&
          options_.stop->load(std::memory_order_relaxed)) {
        begin_drain();
      }
      bool any_live = false;
      for (Worker& w : workers_) {
        switch (w.state) {
          case Worker::State::kPending:
          case Worker::State::kBackoff:
            if (Clock::now() >= w.restart_at) start(w);
            break;
          case Worker::State::kRunning:
            poll_running(w);
            break;
          default:
            break;
        }
        any_live = any_live || w.live();
      }
      if (!any_live) return;
      status_tick();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.poll_interval_s));
    }
  }

  /// Merges every checkpoint file name seen across the shard dirs and
  /// assembles the report. Merge errors degrade, they never throw.
  DispatchReport finalize() {
    DispatchReport report;
    report.shards = options_.shards;

    std::set<std::string> names;
    std::vector<std::size_t> shard_rows(options_.shards, 0);
    for (std::size_t i = 0; i < options_.shards; ++i) {
      std::error_code ec;
      for (const fs::directory_entry& entry :
           fs::directory_iterator(shard_dir(options_.work_dir, i), ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 11 &&
            name.compare(name.size() - 11, 11, ".ckpt.jsonl") == 0) {
          names.insert(name);
        }
      }
    }

    const std::string merged_dir = options_.work_dir + "/merged";
    std::error_code ec;
    fs::create_directories(merged_dir, ec);
    for (const std::string& name : names) {
      MergedSweep sweep;
      sweep.sweep = name.substr(0, name.size() - 11);
      try {
        std::vector<CheckpointData> shards;
        for (std::size_t i = 0; i < options_.shards; ++i) {
          CheckpointData data =
              load_checkpoint(shard_dir(options_.work_dir, i) + "/" + name);
          // A shard killed before its header flushed contributes nothing
          // (present == false for missing and for empty files).
          if (!data.present) continue;
          shard_rows[i] += data.rows.size();
          shards.push_back(std::move(data));
        }
        if (shards.empty()) {
          sweep.error = "no shard produced a readable checkpoint";
        } else {
          const CheckpointData merged = merge_checkpoints(shards);
          sweep.rows = merged.rows.size();
          sweep.task_count = merged.task_count;
          for (std::size_t t = 0; t < merged.task_count; ++t) {
            if (merged.rows.count(t) == 0) sweep.missing.push_back(t);
          }
          const std::string out_path = merged_dir + "/" + name;
          if (write_checkpoint_atomic(out_path, merged)) {
            sweep.path = out_path;
          } else {
            sweep.error = "cannot write " + out_path;
          }
        }
      } catch (const std::exception& e) {
        sweep.error = e.what();
      }
      if (!sweep.error.empty()) {
        log("merge " + name + ": " + sweep.error);
      } else {
        log("merged " + name + ": " + std::to_string(sweep.rows) + "/" +
            std::to_string(sweep.task_count) + " rows -> " + sweep.path);
      }
      note("merge", {obs::arg("sweep", sweep.sweep),
                     obs::arg("rows", static_cast<double>(sweep.rows)),
                     obs::arg("ok", sweep.error.empty())});
      report.merged.push_back(std::move(sweep));
    }

    bool all_completed = true;
    for (Worker& w : workers_) {
      poll_tail(w);  // any lines flushed after the final supervision poll
      ShardStatus status;
      status.shard = w.shard;
      status.state = state_name(w.state);
      status.restarts = w.restarts;
      status.chaos_kills = w.chaos_kills;
      status.rows = shard_rows[w.shard];
      status.tasks_done = w.tasks_done;
      status.tasks_total = w.tasks_total;
      status.attempts = w.attempts;
      all_completed = all_completed && w.state == Worker::State::kCompleted;
      report.shard_status.push_back(std::move(status));
      report.chaos_kills += w.chaos_kills;
    }
    const bool all_merged =
        !report.merged.empty() &&
        std::all_of(report.merged.begin(), report.merged.end(),
                    [](const MergedSweep& m) { return m.complete(); });
    report.status = draining_              ? "interrupted"
                    : all_completed && all_merged ? "complete"
                                                  : "degraded";

    // Timeline merge last: the dispatcher's own stream must be sealed
    // before it becomes an input.
    if (options_.telemetry) {
      report.telemetry = true;
      if (self_ != nullptr) self_->close();
      TimelineOptions topt;
      topt.work_dir = options_.work_dir;
      topt.shards = options_.shards;
      topt.log = options_.log;
      report.timeline = merge_timeline(topt);
      if (!report.timeline.ok()) log(report.timeline.error);
    }
    return report;
  }

  const DispatchOptions& options_;
  Rng chaos_;
  std::vector<Worker> workers_;
  bool draining_ = false;
  Clock::time_point drain_start_;
  std::size_t total_chaos_kills_ = 0;
  std::unique_ptr<obs::TelemetrySink> self_;
  Clock::time_point last_status_;
};

void append_attempt_json(std::ostringstream& out, const AttemptResult& a) {
  out << "{\"outcome\": " << json_escape(a.outcome)
      << ", \"exit_code\": " << a.exit_code
      << ", \"term_signal\": " << a.term_signal << ", \"wall_s\": "
      << json::number_to_string(a.wall_s)
      << ", \"checkpoint_bytes\": " << a.checkpoint_bytes << "}";
}

}  // namespace

DispatchReport dispatch_sweep(const DispatchOptions& options) {
  DCS_REQUIRE(!options.command.empty(), "dispatch: empty worker command");
  DCS_REQUIRE(options.shards >= 1, "dispatch: need at least one shard");
  DCS_REQUIRE(!options.work_dir.empty(), "dispatch: work_dir is required");
  DCS_REQUIRE(options.poll_interval_s > 0.0,
              "dispatch: poll interval must be positive");
  Dispatcher dispatcher(options);
  return dispatcher.run();
}

std::string dispatch_report_json(const DispatchReport& report) {
  std::ostringstream out;
  out << "{\"dispatch_report\": 1, \"status\": " << json_escape(report.status)
      << ", \"shards\": " << report.shards
      << ", \"chaos_kills\": " << report.chaos_kills
      << ", \"wall_s\": " << json::number_to_string(report.wall_s)
      << ", \"telemetry\": " << (report.telemetry ? "true" : "false")
      << ",\n \"shard_status\": [";
  for (std::size_t i = 0; i < report.shard_status.size(); ++i) {
    const ShardStatus& s = report.shard_status[i];
    out << (i == 0 ? "" : ",") << "\n  {\"shard\": " << s.shard
        << ", \"state\": " << json_escape(s.state)
        << ", \"restarts\": " << s.restarts
        << ", \"chaos_kills\": " << s.chaos_kills << ", \"rows\": " << s.rows
        << ", \"tasks_done\": " << s.tasks_done
        << ", \"tasks_total\": " << s.tasks_total << ", \"attempts\": [";
    for (std::size_t a = 0; a < s.attempts.size(); ++a) {
      out << (a == 0 ? "" : ", ");
      append_attempt_json(out, s.attempts[a]);
    }
    out << "]}";
  }
  out << "],\n \"merged\": [";
  for (std::size_t i = 0; i < report.merged.size(); ++i) {
    const MergedSweep& m = report.merged[i];
    out << (i == 0 ? "" : ",") << "\n  {\"sweep\": " << json_escape(m.sweep)
        << ", \"path\": " << json_escape(m.path) << ", \"rows\": " << m.rows
        << ", \"task_count\": " << m.task_count << ", \"complete\": "
        << (m.complete() ? "true" : "false") << ", \"missing\": [";
    for (std::size_t t = 0; t < m.missing.size(); ++t) {
      out << (t == 0 ? "" : ", ") << m.missing[t];
    }
    out << "]";
    if (!m.error.empty()) out << ", \"error\": " << json_escape(m.error);
    out << "}";
  }
  out << "]";
  if (report.telemetry) {
    const TimelineSummary& t = report.timeline;
    out << ",\n \"timeline\": {\"sources\": " << t.sources
        << ", \"aligned_sources\": " << t.aligned_sources
        << ", \"events\": " << t.events << ", \"stacks\": " << t.stacks
        << ", \"base_epoch_unix_us\": " << t.base_epoch_unix_us
        << ", \"jsonl\": " << json_escape(t.jsonl_path)
        << ", \"chrome\": " << json_escape(t.chrome_path)
        << ", \"perfetto\": " << json_escape(t.perfetto_path)
        << ", \"stacks_path\": " << json_escape(t.stacks_path);
    if (!t.error.empty()) out << ", \"error\": " << json_escape(t.error);
    out << "}";
  }
  out << "}\n";
  return out.str();
}

bool write_dispatch_report(const std::string& path,
                           const DispatchReport& report) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << dispatch_report_json(report);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace dcs::exp
