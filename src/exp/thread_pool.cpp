#include "exp/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "obs/profile.h"

namespace dcs::exp {

std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_threads(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      obs::Profiler::set_thread_lane(static_cast<int>(i) + 1);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers = std::min(resolve_threads(threads), count);

  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::size_t first_error_index = count;
  std::exception_ptr first_error;

  const auto drain = [&] {
    for (std::size_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back([&drain, w] {
      obs::Profiler::set_thread_lane(static_cast<int>(w));
      drain();
    });
  }
  drain();
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dcs::exp
