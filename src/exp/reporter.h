// Result reporting for sweeps: CSV tables (raw per-task rows and per-cell
// summaries), a machine-readable JSON summary, and BENCH_*.json perf
// records (wall time, runs/sec, thread count) so the repo accumulates a
// perf trajectory. Centralizes the per-bench CSV glue that used to be
// copy-pasted around `maybe_export_csv`.
#pragma once

#include <ostream>
#include <string>

#include "exp/aggregator.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "util/time_series.h"

namespace dcs::exp {

/// One CSV line per task: axis labels, replicate, seed, metric values.
void write_rows_csv(std::ostream& out, const SweepSpec& spec,
                    const SweepRun& run);

/// One CSV line per cell: axis labels plus per-metric statistics columns.
void write_summary_csv(std::ostream& out, const SweepSummary& summary);

/// Machine-readable summary: sweep name, axes, per-cell statistics, and the
/// perf record of the producing run.
void write_summary_json(std::ostream& out, const SweepSummary& summary);

/// BENCH_*-style perf record: {"bench", "wall_seconds", "tasks",
/// "runs_per_second", "threads", "cells", "replicates"} plus the
/// provenance of partitioned runs ("shard": "i/N", "executed_tasks",
/// "resumed_tasks" — 0/1 and 0 for a plain single-process run). When `scopes` is
/// non-null a "scopes" object is appended with per-scope wall-clock
/// aggregates (count, total_us, max_us, mean_us). When `folded` is non-null
/// and non-empty a "folded_stacks" object is appended mapping
/// "lane;outer;inner" stacks to sampling-profiler hit counts.
void write_perf_record_json(std::ostream& out, const SweepSummary& summary,
                            const obs::ProfileSummary* scopes = nullptr,
                            const obs::FoldedStacks* folded = nullptr);

/// Folds a sweep summary into a metrics registry: one gauge per
/// (cell, metric, stat in {mean, min, max}), named after the sweep metric
/// and labeled with the sweep name, the cell's axis labels, and the stat.
void metrics_from_summary(obs::MetricsRegistry& registry,
                          const SweepSummary& summary);

/// Writes `<dir>/<name>.csv` as "time_s,value" rows (the old per-bench
/// `maybe_export_csv` glue, deduplicated here). Returns false (after a
/// diagnostic on `diag`) when the file cannot be opened.
bool export_time_series_csv(const std::string& dir, const std::string& name,
                            const TimeSeries& series,
                            std::ostream* diag = nullptr);

/// Writes `<dir>/<name>_rows.csv`, `<dir>/<name>_summary.csv` and
/// `<dir>/<name>_summary.json` for one sweep.
bool export_sweep(const std::string& dir, const SweepSpec& spec,
                  const SweepRun& run, const SweepSummary& summary,
                  std::ostream* diag = nullptr);

/// Writes `<dir>/BENCH_<name>.json`. With folded stacks, also writes
/// `<dir>/<name>_stacks.folded` in the textual flame-graph format.
bool export_perf_record(const std::string& dir, const SweepSummary& summary,
                        std::ostream* diag = nullptr,
                        const obs::ProfileSummary* scopes = nullptr,
                        const obs::FoldedStacks* folded = nullptr);

}  // namespace dcs::exp
