#include "exp/reporter.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/csv.h"

namespace dcs::exp {
namespace {

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_number(double v) {
  // JSON has no inf/nan literals; report them as null.
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

bool open_or_diag(std::ofstream& out, const std::string& path,
                  std::ostream* diag) {
  out.open(path);
  if (!out) {
    if (diag != nullptr) *diag << "cannot write " << path << "\n";
    return false;
  }
  return true;
}

void wrote(const std::string& path, std::ostream* diag) {
  if (diag != nullptr) *diag << "[exp] wrote " << path << "\n";
}

}  // namespace

void write_rows_csv(std::ostream& out, const SweepSpec& spec,
                    const SweepRun& run) {
  CsvWriter csv(out);
  std::vector<std::string> header;
  for (const Axis& axis : spec.axes()) header.push_back(axis.name);
  header.push_back("replicate");
  header.push_back("seed");
  for (const std::string& m : run.metrics) header.push_back(m);
  csv.write_row(header);

  const std::vector<SweepSpec::Task> tasks = spec.tasks();
  for (const SweepSpec::Task& task : tasks) {
    // Sharded / partially resumed runs leave unexecuted slots empty; their
    // rows live in other shards' files until merged.
    if (run.rows[task.index].empty()) continue;
    std::vector<std::string> row;
    for (std::size_t a = 0; a < spec.axes().size(); ++a) {
      row.push_back(spec.label(task, a));
    }
    row.push_back(std::to_string(task.replicate));
    row.push_back(std::to_string(task.seed));
    for (const double v : run.rows[task.index]) row.push_back(format_value(v));
    csv.write_row(row);
  }
}

void write_summary_csv(std::ostream& out, const SweepSummary& summary) {
  CsvWriter csv(out);
  std::vector<std::string> header;
  for (const Axis& axis : summary.axes) header.push_back(axis.name);
  header.push_back("n");
  for (const std::string& m : summary.metrics) {
    for (const char* stat :
         {"mean", "stddev", "min", "max", "p50", "p95", "ci95"}) {
      header.push_back(m + "_" + stat);
    }
  }
  csv.write_row(header);

  for (const CellSummary& cell : summary.cells) {
    std::vector<std::string> row = cell.labels;
    row.push_back(std::to_string(summary.replicates));
    for (const MetricSummary& ms : cell.metrics) {
      for (const double v :
           {ms.mean, ms.stddev, ms.min, ms.max, ms.p50, ms.p95, ms.ci95}) {
        row.push_back(format_value(v));
      }
    }
    csv.write_row(row);
  }
}

void write_summary_json(std::ostream& out, const SweepSummary& summary) {
  out << "{\n  \"sweep\": " << json_escape(summary.name) << ",\n  \"axes\": [";
  for (std::size_t a = 0; a < summary.axes.size(); ++a) {
    const Axis& axis = summary.axes[a];
    out << (a == 0 ? "" : ", ") << "{\"name\": " << json_escape(axis.name)
        << ", \"labels\": [";
    for (std::size_t i = 0; i < axis.labels.size(); ++i) {
      out << (i == 0 ? "" : ", ") << json_escape(axis.labels[i]);
    }
    out << "]}";
  }
  out << "],\n  \"metrics\": [";
  for (std::size_t m = 0; m < summary.metrics.size(); ++m) {
    out << (m == 0 ? "" : ", ") << json_escape(summary.metrics[m]);
  }
  out << "],\n  \"replicates\": " << summary.replicates
      << ",\n  \"perf\": {\"wall_seconds\": " << json_number(summary.wall_seconds)
      << ", \"tasks\": " << summary.task_count
      << ", \"runs_per_second\": " << json_number(summary.tasks_per_second())
      << ", \"threads\": " << summary.threads_used << "},\n  \"cells\": [\n";
  for (std::size_t c = 0; c < summary.cells.size(); ++c) {
    const CellSummary& cell = summary.cells[c];
    out << "    {\"labels\": [";
    for (std::size_t a = 0; a < cell.labels.size(); ++a) {
      out << (a == 0 ? "" : ", ") << json_escape(cell.labels[a]);
    }
    out << "], \"stats\": {";
    for (std::size_t m = 0; m < summary.metrics.size(); ++m) {
      const MetricSummary& ms = cell.metrics[m];
      out << (m == 0 ? "" : ", ") << json_escape(summary.metrics[m])
          << ": {\"n\": " << ms.count << ", \"mean\": " << json_number(ms.mean)
          << ", \"stddev\": " << json_number(ms.stddev)
          << ", \"min\": " << json_number(ms.min)
          << ", \"max\": " << json_number(ms.max)
          << ", \"p50\": " << json_number(ms.p50)
          << ", \"p95\": " << json_number(ms.p95)
          << ", \"ci95\": " << json_number(ms.ci95) << "}";
    }
    out << "}}" << (c + 1 == summary.cells.size() ? "" : ",") << "\n";
  }
  out << "  ]\n}\n";
}

void write_perf_record_json(std::ostream& out, const SweepSummary& summary,
                            const obs::ProfileSummary* scopes,
                            const obs::FoldedStacks* folded) {
  out << "{\"bench\": " << json_escape(summary.name)
      << ", \"wall_seconds\": " << json_number(summary.wall_seconds)
      << ", \"tasks\": " << summary.task_count
      << ", \"runs_per_second\": " << json_number(summary.tasks_per_second())
      << ", \"threads\": " << summary.threads_used
      << ", \"cells\": " << summary.cells.size()
      << ", \"replicates\": " << summary.replicates
      << ", \"shard\": \"" << summary.shard_index << "/"
      << summary.shard_count << "\", \"executed_tasks\": "
      << summary.executed_tasks
      << ", \"resumed_tasks\": " << summary.resumed_tasks;
  if (scopes != nullptr && !scopes->empty()) {
    out << ", \"scopes\": {";
    bool first = true;
    for (const auto& [name, stats] : *scopes) {
      // json_number throughout: raw operator<< would truncate to 6
      // significant figures and emit bare inf/nan, which breaks the
      // util/json parse in perf_gate.
      out << (first ? "" : ", ") << json_escape(name) << ": {\"count\": "
          << stats.count << ", \"total_us\": " << json_number(stats.total_us)
          << ", \"max_us\": " << json_number(stats.max_us)
          << ", \"mean_us\": " << json_number(stats.mean_us()) << "}";
      first = false;
    }
    out << "}";
  }
  if (folded != nullptr && !folded->empty()) {
    out << ", \"folded_stacks\": {";
    bool first = true;
    for (const auto& [stack, count] : *folded) {
      out << (first ? "" : ", ") << json_escape(stack) << ": " << count;
      first = false;
    }
    out << "}";
  }
  out << "}\n";
}

void metrics_from_summary(obs::MetricsRegistry& registry,
                          const SweepSummary& summary) {
  for (const CellSummary& cell : summary.cells) {
    obs::Labels base{{"sweep", summary.name}};
    for (std::size_t a = 0; a < summary.axes.size(); ++a) {
      base.emplace_back(summary.axes[a].name, cell.labels[a]);
    }
    for (std::size_t m = 0; m < summary.metrics.size(); ++m) {
      const MetricSummary& ms = cell.metrics[m];
      const struct {
        const char* stat;
        double value;
      } stats[] = {{"mean", ms.mean}, {"min", ms.min}, {"max", ms.max}};
      for (const auto& s : stats) {
        obs::Labels labels = base;
        labels.emplace_back("stat", s.stat);
        registry.gauge(summary.metrics[m], labels).set(s.value);
      }
    }
  }
}

bool export_time_series_csv(const std::string& dir, const std::string& name,
                            const TimeSeries& series, std::ostream* diag) {
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream out;
  if (!open_or_diag(out, path, diag)) return false;
  CsvWriter csv(out);
  csv.write_row({"time_s", "value"});
  for (const Sample& s : series.samples()) {
    csv.write_numeric_row({s.time.sec(), s.value});
  }
  wrote(path, diag);
  return true;
}

bool export_sweep(const std::string& dir, const SweepSpec& spec,
                  const SweepRun& run, const SweepSummary& summary,
                  std::ostream* diag) {
  bool ok = true;
  {
    const std::string path = dir + "/" + spec.name() + "_rows.csv";
    std::ofstream out;
    if (open_or_diag(out, path, diag)) {
      write_rows_csv(out, spec, run);
      wrote(path, diag);
    } else {
      ok = false;
    }
  }
  {
    const std::string path = dir + "/" + spec.name() + "_summary.csv";
    std::ofstream out;
    if (open_or_diag(out, path, diag)) {
      write_summary_csv(out, summary);
      wrote(path, diag);
    } else {
      ok = false;
    }
  }
  {
    const std::string path = dir + "/" + spec.name() + "_summary.json";
    std::ofstream out;
    if (open_or_diag(out, path, diag)) {
      write_summary_json(out, summary);
      wrote(path, diag);
    } else {
      ok = false;
    }
  }
  return ok;
}

bool export_perf_record(const std::string& dir, const SweepSummary& summary,
                        std::ostream* diag, const obs::ProfileSummary* scopes,
                        const obs::FoldedStacks* folded) {
  const std::string path = dir + "/BENCH_" + summary.name + ".json";
  std::ofstream out;
  if (!open_or_diag(out, path, diag)) return false;
  write_perf_record_json(out, summary, scopes, folded);
  wrote(path, diag);
  if (folded != nullptr && !folded->empty()) {
    const std::string stacks_path =
        dir + "/" + summary.name + "_stacks.folded";
    std::ofstream stacks;
    if (!open_or_diag(stacks, stacks_path, diag)) return false;
    obs::write_folded(stacks, *folded);
    wrote(stacks_path, diag);
  }
  return true;
}

}  // namespace dcs::exp
