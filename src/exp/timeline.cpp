#include "exp/timeline.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/perfetto.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "util/json.h"

namespace dcs::exp {
namespace {

namespace fs = std::filesystem;

/// One telemetry stream feeding the merge.
struct Source {
  std::string path;
  /// "dispatcher", "shard0", "shard0#2" (restart attempts count from 1).
  std::string src;
  bool have_header = false;
  int pid = 0;
  std::int64_t epoch_unix_us = 0;
  std::string name;
};

/// Reads the header (always the first line) without consuming the stream.
void read_header(Source* source) {
  std::ifstream in(source->path, std::ios::binary);
  std::string line;
  if (!in || !std::getline(in, line)) return;
  try {
    const json::Value v = json::parse(line);
    if (v.find("telemetry") == nullptr) return;
    source->pid = static_cast<int>(v.at("pid").as_number());
    source->epoch_unix_us =
        static_cast<std::int64_t>(v.at("epoch_unix_us").as_number());
    source->name = v.at("name").as_string();
    source->have_header = true;
  } catch (const std::exception&) {
    // Headerless stream (killed before the first flush): merged unaligned.
  }
}

/// Dispatcher stream first, then each shard's attempts in attempt order —
/// a deterministic ordering so re-merges are byte-identical.
std::vector<Source> collect_sources(const TimelineOptions& options) {
  std::vector<Source> sources;
  std::error_code ec;
  const std::string dispatcher =
      options.work_dir + "/dispatcher_telemetry.jsonl";
  if (fs::is_regular_file(dispatcher, ec)) {
    Source dispatcher_source;
    dispatcher_source.path = dispatcher;
    dispatcher_source.src = "dispatcher";
    sources.push_back(std::move(dispatcher_source));
  }
  for (std::size_t i = 0; i < options.shards; ++i) {
    const std::string dir =
        options.work_dir + "/shard_" + std::to_string(i);
    std::vector<std::string> files;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("telemetry_", 0) == 0 &&
          name.size() > 16 &&
          name.compare(name.size() - 6, 6, ".jsonl") == 0) {
        files.push_back(entry.path().string());
      }
    }
    // Attempt numbers are zero-padded (telemetry_0001.jsonl), so the
    // lexical sort is attempt order.
    std::sort(files.begin(), files.end());
    for (std::size_t a = 0; a < files.size(); ++a) {
      Source source;
      source.path = files[a];
      source.src = "shard" + std::to_string(i);
      if (a > 0) source.src += "#" + std::to_string(a + 1);
      sources.push_back(std::move(source));
    }
  }
  for (Source& s : sources) read_header(&s);
  return sources;
}

std::string render_args(const json::Value& args) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, v] : args.as_object()) {
    if (!first) out += ",";
    first = false;
    out += obs::detail::render_string(key) + ":";
    switch (v.type()) {
      case json::Value::Type::kNumber:
        out += json::number_to_string(v.as_number());
        break;
      case json::Value::Type::kBool:
        out += v.as_bool() ? "true" : "false";
        break;
      case json::Value::Type::kString:
        out += obs::detail::render_string(v.as_string());
        break;
      default:
        out += "null";
        break;
    }
  }
  out += "}";
  return out;
}

/// Streaming Chrome trace-event document with per-source pids (the shared
/// detail::write_event_json hardcodes the single-process pid scheme).
class ChromeDoc {
 public:
  explicit ChromeDoc(const std::string& path) : out_(path, std::ios::trunc) {
    out_ << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  }

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  std::ostream& element() {
    out_ << (first_ ? "  " : ",\n  ");
    first_ = false;
    return out_;
  }

  void finish() {
    out_ << "\n]}\n";
    out_.flush();
  }

  std::ofstream out_;

 private:
  bool first_ = true;
};

constexpr std::uint64_t to_ns(double ts_us) {
  return ts_us <= 0.0 ? 0 : static_cast<std::uint64_t>(ts_us * 1e3);
}

/// The merge driver: owns the three output writers and the per-source
/// track bookkeeping.
class Merger {
 public:
  Merger(const std::string& out_dir, TimelineSummary* summary)
      : summary_(summary),
        jsonl_(out_dir + "/timeline.jsonl", std::ios::trunc),
        chrome_(out_dir + "/timeline_trace.json"),
        perfetto_stream_(out_dir + "/timeline.perfetto",
                         std::ios::trunc | std::ios::binary),
        perfetto_(perfetto_stream_) {
    summary->jsonl_path = out_dir + "/timeline.jsonl";
    summary->chrome_path = out_dir + "/timeline_trace.json";
    summary->perfetto_path = out_dir + "/timeline.perfetto";
  }

  [[nodiscard]] bool ok() const {
    return static_cast<bool>(jsonl_) && chrome_.ok() &&
           static_cast<bool>(perfetto_stream_);
  }

  void begin(std::size_t sources, std::int64_t base_epoch) {
    base_epoch_ = base_epoch;
    jsonl_ << "{\"t\":\"timeline\",\"timeline\":1,\"sources\":" << sources
           << ",\"base_epoch_unix_us\":" << base_epoch << "}\n";
  }

  void add_source(const Source& source, std::size_t index) {
    sidx_ = index;
    src_ = source.src;
    offset_us_ = source.have_header
                     ? static_cast<double>(source.epoch_unix_us - base_epoch_)
                     : 0.0;
    jsonl_ << "{\"t\":\"proc\",\"src\":" << obs::detail::render_string(src_)
           << ",\"pid\":" << source.pid
           << ",\"name\":" << obs::detail::render_string(source.name)
           << ",\"aligned\":" << (source.have_header ? "true" : "false")
           << ",\"epoch_unix_us\":" << source.epoch_unix_us
           << ",\"offset_us\":" << json::number_to_string(offset_us_)
           << "}\n";
  }

  void consume_line(std::string_view line) {
    json::Value v;
    try {
      v = json::parse(line);
    } catch (const std::exception&) {
      return;  // torn or foreign line
    }
    const json::Value* type = v.find("t");
    if (type == nullptr || !type->is_string()) return;
    const std::string& t = type->as_string();
    try {
      if (t == "ev") {
        event(v);
      } else if (t == "lane") {
        lane_name(v);
      } else if (t == "stack") {
        stacks_[src_ + ";" + v.at("stack").as_string()] +=
            static_cast<std::size_t>(v.at("count").as_number());
      }
    } catch (const std::exception&) {
      // Skip malformed lines; the merge covers what it can read.
    }
  }

  [[nodiscard]] const obs::FoldedStacks& stacks() const noexcept {
    return stacks_;
  }

  void finish() {
    chrome_.finish();
    perfetto_stream_.flush();
    jsonl_.flush();
  }

  [[nodiscard]] bool outputs_ok() const {
    return static_cast<bool>(jsonl_) && chrome_.ok() &&
           static_cast<bool>(perfetto_stream_);
  }

 private:
  // Chrome pid per (source, domain): sources land at 10, 12, 14, ... (sim)
  // and 11, 13, 15, ... (wall) — disjoint from the single-process 1/2
  // scheme so nothing collides when traces are concatenated by hand.
  [[nodiscard]] int chrome_pid(obs::Domain domain) const {
    return 10 + 2 * static_cast<int>(sidx_) +
           (domain == obs::Domain::kWall ? 1 : 0);
  }

  void ensure_chrome_process(obs::Domain domain) {
    const auto key = std::make_pair(sidx_, domain);
    if (!chrome_procs_.insert(std::make_pair(key, true)).second) return;
    chrome_.element() << "{\"ph\": \"M\", \"pid\": " << chrome_pid(domain)
                      << ", \"name\": \"process_name\", \"args\": {\"name\": "
                      << obs::detail::render_string(
                             src_ + "/" +
                             std::string(obs::to_string(domain)))
                      << "}}";
  }

  std::uint64_t perfetto_process(obs::Domain domain) {
    const auto key = std::make_pair(sidx_, domain);
    const auto it = perfetto_procs_.find(key);
    if (it != perfetto_procs_.end()) return it->second;
    const std::uint64_t uuid = perfetto_.add_process(
        chrome_pid(domain), src_ + "/" + std::string(obs::to_string(domain)));
    perfetto_procs_.emplace(key, uuid);
    return uuid;
  }

  std::uint64_t perfetto_lane(obs::Domain domain, std::uint32_t lane) {
    const auto key = std::make_tuple(sidx_, domain, lane);
    const auto it = perfetto_lanes_.find(key);
    if (it != perfetto_lanes_.end()) return it->second;
    perfetto_process(domain);
    const auto named = lane_names_.find(key);
    const std::string name = named != lane_names_.end()
                                 ? named->second
                                 : "lane-" + std::to_string(lane);
    const std::uint64_t uuid = perfetto_.add_thread(
        chrome_pid(domain), static_cast<std::int32_t>(lane), name);
    perfetto_lanes_.emplace(key, uuid);
    return uuid;
  }

  std::uint64_t perfetto_counter(obs::Domain domain, const std::string& name) {
    const auto key = std::make_tuple(sidx_, domain, name);
    const auto it = perfetto_counters_.find(key);
    if (it != perfetto_counters_.end()) return it->second;
    const std::uint64_t uuid =
        perfetto_.add_counter(perfetto_process(domain), name);
    perfetto_counters_.emplace(key, uuid);
    return uuid;
  }

  void lane_name(const json::Value& v) {
    const obs::Domain domain = v.at("domain").as_string() == "wall"
                                   ? obs::Domain::kWall
                                   : obs::Domain::kSim;
    const auto lane = static_cast<std::uint32_t>(v.at("lane").as_number());
    const std::string& name = v.at("name").as_string();
    jsonl_ << "{\"t\":\"lane\",\"src\":" << obs::detail::render_string(src_)
           << ",\"domain\":\"" << obs::to_string(domain)
           << "\",\"lane\":" << lane
           << ",\"name\":" << obs::detail::render_string(name) << "}\n";
    ensure_chrome_process(domain);
    chrome_.element() << "{\"ph\": \"M\", \"pid\": " << chrome_pid(domain)
                      << ", \"tid\": " << lane
                      << ", \"name\": \"thread_name\", \"args\": {\"name\": "
                      << obs::detail::render_string(name) << "}}";
    const auto key = std::make_tuple(sidx_, domain, lane);
    const auto it = perfetto_lanes_.find(key);
    if (it != perfetto_lanes_.end()) {
      perfetto_.redeclare_thread(it->second, chrome_pid(domain),
                                 static_cast<std::int32_t>(lane), name);
    }
    lane_names_.insert_or_assign(key, name);
  }

  void event(const json::Value& v) {
    const std::string& domain_name = v.at("domain").as_string();
    const obs::Domain domain =
        domain_name == "wall" ? obs::Domain::kWall : obs::Domain::kSim;
    const std::string& ph = v.at("ph").as_string();
    if (ph.empty()) return;
    const char phase = ph[0];
    // Wall events shift onto the shared epoch; sim events keep their
    // simulated timestamps (a different axis entirely).
    double ts = v.at("ts").as_number();
    if (domain == obs::Domain::kWall) ts += offset_us_;
    double dur = 0.0;
    const json::Value* dur_v = v.find("dur");
    if (dur_v != nullptr) dur = dur_v->as_number();
    const auto lane =
        static_cast<std::uint32_t>(v.at("lane").as_number());
    const std::string& cat = v.at("cat").as_string();
    const std::string& name = v.at("name").as_string();
    const json::Value* args = v.find("args");

    jsonl_ << "{\"t\":\"ev\",\"src\":" << obs::detail::render_string(src_)
           << ",\"domain\":\"" << domain_name << "\",\"ph\":\"" << phase
           << "\",\"ts\":" << json::number_to_string(ts);
    if (phase == 'X') jsonl_ << ",\"dur\":" << json::number_to_string(dur);
    jsonl_ << ",\"lane\":" << lane
           << ",\"cat\":" << obs::detail::render_string(cat)
           << ",\"name\":" << obs::detail::render_string(name);
    if (args != nullptr && args->is_object()) {
      jsonl_ << ",\"args\":" << render_args(*args);
    }
    jsonl_ << "}\n";

    ensure_chrome_process(domain);
    std::ostream& out = chrome_.element();
    out << "{\"ph\": \"" << phase
        << "\", \"ts\": " << json::number_to_string(ts);
    if (phase == 'X') out << ", \"dur\": " << json::number_to_string(dur);
    out << ", \"pid\": " << chrome_pid(domain) << ", \"tid\": " << lane
        << ", \"cat\": " << obs::detail::render_string(cat)
        << ", \"name\": " << obs::detail::render_string(name);
    if (phase == 'i') out << ", \"s\": \"t\"";
    if (args != nullptr && args->is_object()) {
      out << ", \"args\": " << render_args(*args);
    }
    out << "}";

    switch (phase) {
      case 'C': {
        double value = 0.0;
        bool have = false;
        if (args != nullptr && args->is_object()) {
          const json::Value* direct = args->find("value");
          if (direct != nullptr && direct->is_number()) {
            value = direct->as_number();
            have = true;
          }
        }
        if (have) {
          perfetto_.counter(perfetto_counter(domain, name), to_ns(ts), value);
        }
        break;
      }
      case 'X': {
        const std::uint64_t track = perfetto_lane(domain, lane);
        perfetto_.slice_begin(track, to_ns(ts), name, cat);
        perfetto_.slice_end(track, to_ns(ts + dur));
        break;
      }
      default: {
        // Decision records carry id/cause args; hash them (scoped by src so
        // per-worker chains stay distinct after the merge) into Perfetto
        // flow ids so causal chains render as arrows.
        std::vector<std::uint64_t> flows;
        if (cat == "decision" && args != nullptr && args->is_object()) {
          for (const char* key : {"id", "cause"}) {
            const json::Value* token = args->find(key);
            if (token != nullptr && token->is_string()) {
              flows.push_back(obs::detail::flow_id_hash(src_ + "/" +
                                                        token->as_string()));
            }
          }
        }
        perfetto_.instant(perfetto_lane(domain, lane), to_ns(ts), name, cat,
                          flows);
        break;
      }
    }
    ++summary_->events;
  }

  TimelineSummary* summary_;
  std::ofstream jsonl_;
  ChromeDoc chrome_;
  std::ofstream perfetto_stream_;
  obs::PerfettoWriter perfetto_;
  std::int64_t base_epoch_ = 0;
  std::size_t sidx_ = 0;
  std::string src_;
  double offset_us_ = 0.0;
  std::map<std::pair<std::size_t, obs::Domain>, bool> chrome_procs_;
  std::map<std::pair<std::size_t, obs::Domain>, std::uint64_t> perfetto_procs_;
  std::map<std::tuple<std::size_t, obs::Domain, std::uint32_t>, std::uint64_t>
      perfetto_lanes_;
  std::map<std::tuple<std::size_t, obs::Domain, std::uint32_t>, std::string>
      lane_names_;
  std::map<std::tuple<std::size_t, obs::Domain, std::string>, std::uint64_t>
      perfetto_counters_;
  obs::FoldedStacks stacks_;
};

}  // namespace

TimelineSummary merge_timeline(const TimelineOptions& options) {
  TimelineSummary summary;
  if (options.work_dir.empty()) {
    summary.error = "timeline: work_dir is required";
    return summary;
  }
  const auto log = [&](const std::string& line) {
    if (options.log != nullptr) *options.log << "[timeline] " << line << "\n";
  };

  const std::vector<Source> sources = collect_sources(options);
  if (sources.empty()) {
    summary.error = "timeline: no telemetry streams under " + options.work_dir;
    return summary;
  }
  summary.sources = sources.size();

  std::int64_t base = 0;
  bool have_base = false;
  for (const Source& s : sources) {
    if (!s.have_header) continue;
    ++summary.aligned_sources;
    if (!have_base || s.epoch_unix_us < base) {
      base = s.epoch_unix_us;
      have_base = true;
    }
  }
  summary.base_epoch_unix_us = base;

  const std::string out_dir =
      options.out_dir.empty() ? options.work_dir + "/merged" : options.out_dir;
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  Merger merger(out_dir, &summary);
  if (!merger.ok()) {
    summary.error = "timeline: cannot open outputs under " + out_dir;
    return summary;
  }
  merger.begin(sources.size(), base);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    merger.add_source(sources[i], i);
    std::ifstream in(sources[i].path, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) merger.consume_line(line);
  }
  merger.finish();
  if (!merger.outputs_ok()) {
    summary.error = "timeline: output write failed under " + out_dir;
    return summary;
  }

  summary.stacks = merger.stacks().size();
  if (!merger.stacks().empty()) {
    const std::string stacks_path = out_dir + "/dispatch_stacks.folded";
    std::ofstream stacks(stacks_path, std::ios::trunc);
    obs::write_folded(stacks, merger.stacks());
    stacks.flush();
    if (stacks) {
      summary.stacks_path = stacks_path;
    } else {
      summary.error = "timeline: cannot write " + stacks_path;
      return summary;
    }
  }
  log("merged " + std::to_string(summary.events) + " event(s) from " +
      std::to_string(summary.sources) + " stream(s) (" +
      std::to_string(summary.aligned_sources) + " aligned) -> " +
      summary.jsonl_path);
  return summary;
}

}  // namespace dcs::exp
