#include "exp/checkpoint.h"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/json.h"

namespace dcs::exp {
namespace {

constexpr int kVersion = 1;

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  DCS_REQUIRE(!s.empty(), std::string("checkpoint: empty ") + what);
  std::uint64_t v = 0;
  for (const char c : s) {
    DCS_REQUIRE(c >= '0' && c <= '9',
                std::string("checkpoint: malformed ") + what + " '" + s + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::string header_line(const std::string& sweep, std::uint64_t base_seed,
                        std::size_t task_count,
                        const std::vector<std::string>& metrics) {
  std::ostringstream out;
  out << "{\"checkpoint\": " << json_escape(sweep)
      << ", \"version\": " << kVersion << ", \"base_seed\": \""
      << base_seed << "\", \"task_count\": " << task_count
      << ", \"metrics\": [";
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    out << (m == 0 ? "" : ", ") << json_escape(metrics[m]);
  }
  out << "]}";
  return out.str();
}

std::string row_line(std::size_t index, std::uint64_t seed,
                     const std::vector<double>& row) {
  std::ostringstream out;
  out << "{\"index\": " << index << ", \"seed\": \"" << seed
      << "\", \"row\": [";
  for (std::size_t m = 0; m < row.size(); ++m) {
    out << (m == 0 ? "" : ", ") << json::number_to_string(row[m]);
  }
  out << "]}";
  return out.str();
}

/// Rows must match bit-for-bit across shards/attempts (NaN == NaN here:
/// identical bits, not IEEE comparison).
bool bit_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return false;
    }
  }
  return true;
}

void parse_header(const json::Value& doc, CheckpointData* data) {
  data->sweep = doc.at("checkpoint").as_string();
  const double version = doc.at("version").as_number();
  if (version != kVersion) {
    throw std::invalid_argument("checkpoint: unsupported version " +
                                std::to_string(version));
  }
  data->base_seed = parse_u64(doc.at("base_seed").as_string(), "base_seed");
  data->task_count =
      static_cast<std::size_t>(doc.at("task_count").as_number());
  for (const json::Value& m : doc.at("metrics").as_array()) {
    data->metrics.push_back(m.as_string());
  }
}

}  // namespace

CheckpointData load_checkpoint(const std::string& path) {
  CheckpointData data;
  std::ifstream in(path);
  if (!in) return data;  // missing file: fresh start
  // An existing but empty file is also a fresh start, not an error: a
  // worker killed between opening the file and flushing the header leaves
  // exactly this state, and must restart cleanly.
  if (in.peek() == std::ifstream::traits_type::eof()) return data;
  data.present = true;

  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value doc;
    try {
      doc = json::parse(line);
    } catch (const std::exception&) {
      if (!have_header) throw;  // malformed header: a real error
      break;  // torn trailing line from a mid-append kill: resume re-runs it
    }
    if (!have_header) {
      parse_header(doc, &data);
      have_header = true;
      continue;
    }
    // A row whose shape is wrong is treated like a torn line too: anything
    // after the corruption point is unreachable on a line-oriented scan.
    if (!doc.has("index") || !doc.has("seed") || !doc.has("row")) break;
    const std::size_t index =
        static_cast<std::size_t>(doc.at("index").as_number());
    if (index >= data.task_count) break;
    std::vector<double> row;
    for (const json::Value& v : doc.at("row").as_array()) {
      row.push_back(json::read_number(v));
    }
    data.seeds[index] = parse_u64(doc.at("seed").as_string(), "seed");
    data.rows[index] = std::move(row);
  }
  if (!have_header) {
    throw std::invalid_argument("checkpoint: " + path + " has no header line");
  }
  return data;
}

void require_matches(const CheckpointData& data, const SweepSpec& spec,
                     const std::vector<std::string>& metrics) {
  DCS_REQUIRE(data.present, "checkpoint: validating an absent checkpoint");
  DCS_REQUIRE(data.sweep == spec.name(),
              "checkpoint belongs to sweep '" + data.sweep +
                  "', expected '" + spec.name() + "'");
  DCS_REQUIRE(data.base_seed == spec.base_seed(),
              "checkpoint base seed does not match sweep '" + spec.name() +
                  "' (the grid was re-seeded; delete the stale checkpoint)");
  DCS_REQUIRE(data.task_count == spec.task_count(),
              "checkpoint covers " + std::to_string(data.task_count) +
                  " tasks, sweep '" + spec.name() + "' has " +
                  std::to_string(spec.task_count()) +
                  " (the grid changed; delete the stale checkpoint)");
  DCS_REQUIRE(data.metrics == metrics,
              "checkpoint metrics do not match sweep '" + spec.name() + "'");
  const std::vector<SweepSpec::Task> tasks = spec.tasks();
  for (const auto& [index, row] : data.rows) {
    DCS_REQUIRE(row.size() == metrics.size(),
                "checkpoint row " + std::to_string(index) +
                    " has the wrong metric count");
    const auto seed = data.seeds.find(index);
    DCS_REQUIRE(seed != data.seeds.end() &&
                    seed->second == tasks[index].seed,
                "checkpoint row " + std::to_string(index) +
                    " was produced under a different seed");
  }
}

void write_checkpoint(std::ostream& out, const CheckpointData& data) {
  out << header_line(data.sweep, data.base_seed, data.task_count,
                     data.metrics)
      << "\n";
  for (const auto& [index, row] : data.rows) {
    const auto seed = data.seeds.find(index);
    out << row_line(index, seed != data.seeds.end() ? seed->second : 0, row)
        << "\n";
  }
}

bool write_checkpoint_atomic(const std::string& path,
                             const CheckpointData& data) {
  // Write the whole document to a sibling temp file first: rename(2) within
  // one directory is atomic, so readers (and later resumes) only ever see
  // the previous file or the complete new one, never a truncated hybrid —
  // even if we crash or the disk fills mid-write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (out) write_checkpoint(out, data);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

CheckpointData merge_checkpoints(const std::vector<CheckpointData>& shards) {
  if (shards.empty()) {
    throw std::invalid_argument("merge_checkpoints: no shards to merge");
  }
  CheckpointData merged;
  for (const CheckpointData& shard : shards) {
    if (!shard.present) {
      throw std::invalid_argument("merge_checkpoints: absent shard");
    }
    if (!merged.present) {
      merged = shard;
      continue;
    }
    if (shard.sweep != merged.sweep || shard.base_seed != merged.base_seed ||
        shard.task_count != merged.task_count ||
        shard.metrics != merged.metrics) {
      throw std::invalid_argument(
          "merge_checkpoints: shard headers disagree (sweep '" + shard.sweep +
          "' vs '" + merged.sweep + "')");
    }
    for (const auto& [index, row] : shard.rows) {
      const auto it = merged.rows.find(index);
      if (it != merged.rows.end() && !bit_equal(it->second, row)) {
        throw std::invalid_argument(
            "merge_checkpoints: shards disagree on task " +
            std::to_string(index));
      }
      merged.rows[index] = row;
      merged.seeds[index] = shard.seeds.at(index);
    }
  }
  return merged;
}

SweepRun merge_runs(const std::vector<CheckpointData>& shards) {
  const CheckpointData merged = merge_checkpoints(shards);
  SweepRun run;
  run.metrics = merged.metrics;
  run.rows.assign(merged.task_count, {});
  for (const auto& [index, row] : merged.rows) run.rows[index] = row;
  run.resumed_tasks = merged.rows.size();
  return run;
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   const SweepSpec& spec,
                                   const std::vector<std::string>& metrics)
    : path_(path) {
  // Header only when starting a fresh file; an append to an existing
  // checkpoint continues after the rows load_checkpoint already returned.
  std::ifstream probe(path_);
  const bool fresh = !probe || probe.peek() == std::ifstream::traits_type::eof();
  probe.close();
  out_.open(path_, std::ios::app);
  ok_ = static_cast<bool>(out_);
  if (ok_ && fresh) {
    out_ << header_line(spec.name(), spec.base_seed(), spec.task_count(),
                        metrics)
         << "\n";
    out_.flush();
    ok_ = static_cast<bool>(out_);
  }
}

void CheckpointWriter::append(std::size_t index, std::uint64_t seed,
                              const std::vector<double>& row) {
  const std::string line = row_line(index, seed, row);
  const std::lock_guard<std::mutex> lock(mu_);
  if (!ok_) return;
  // Flush per line (the JSONL crash-safety discipline of obs/sink.h): the
  // file is valid up to the last completed task no matter when we die, and
  // a failed write drops the writer to the failed state immediately.
  out_ << line << "\n";
  out_.flush();
  if (!out_) ok_ = false;
}

}  // namespace dcs::exp
