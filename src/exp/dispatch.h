// Fault-tolerant distributed sweep dispatch: a process supervisor that turns
// any checkpointing sweep bench into a multi-worker run that survives
// crashes, hangs and kills.
//
// The dispatcher spawns N shard workers from one command template, appending
// `shard=i/N checkpoint=<work_dir>/shard_i` to each (the contract every
// bench built on bench_util already speaks), and watches liveness two ways:
//
//   * process exit status — exit 0 completes the shard, anything else (or
//     death by signal) is a crash;
//   * checkpoint progress — the byte size of the shard's `*.ckpt.jsonl`
//     files must grow within `stall_timeout_s`, otherwise the worker is
//     presumed hung and killed.
//
// Dead or stalled workers are restarted with exponential backoff under a
// per-shard retry budget. Workers are crash-only: every completed row was
// already flushed to the shard checkpoint, so a restart re-runs only the
// rows that were in flight (`RunnerOptions::checkpoint_path` resume).
//
// When every shard completes, the dispatcher merges the shard checkpoints
// (exp::merge_checkpoints — headers must carry the same sweep fingerprint,
// overlapping rows must be bit-identical) into `<work_dir>/merged/` via
// atomic rename. When a shard exhausts its budget it degrades gracefully:
// what exists is still merged, the report lists the missing task indices,
// and the run is reported as "degraded" — partial results stay usable but
// can never be mistaken for complete ones.
//
// A seeded chaos mode (`chaos_kill_prob`) randomly SIGKILLs live workers at
// poll time to test the supervisor against itself; self-inflicted kills are
// not failures, so they consume no retry budget and trigger no backoff.
// Chaos timing is wall-clock and therefore not reproducible, but the merged
// result is: deterministic task seeding makes every attempt compute the
// same bytes, so a chaos-ridden run merges byte-identical to a clean one.
//
// Supervision state machine (per shard; DESIGN.md §8):
//
//   pending -> running -> completed            (exit 0)
//                      -> backoff -> running   (crash/stall/deadline, budget
//                                               left; chaos skips backoff)
//                      -> failed               (budget exhausted)
//   any     -> interrupted                     (drain: stop flag observed)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/timeline.h"

namespace dcs::exp {

struct DispatchOptions {
  /// Worker command template (argv[0] + args). The dispatcher appends
  /// `shard=i/N` and `checkpoint=<work_dir>/shard_i` for shard i.
  std::vector<std::string> command;
  /// Worker process count N (one contiguous task slice each).
  std::size_t shards = 1;
  /// Scratch root: per-shard checkpoint dirs and attempt logs land in
  /// `<work_dir>/shard_i/`, merged checkpoints in `<work_dir>/merged/`.
  std::string work_dir;
  /// Restarts a shard may consume after crashes/stalls/deadlines before it
  /// is declared failed (chaos kills are free — see above).
  std::size_t max_restarts = 3;
  /// Kill a worker whose checkpoint files stopped growing for this long
  /// (seconds; 0 disables). Must exceed the longest single task.
  double stall_timeout_s = 120.0;
  /// Per-attempt wall-clock cap (seconds; 0 disables).
  double attempt_deadline_s = 0.0;
  /// Exponential backoff before restart r: base * 2^(r-1), capped.
  double backoff_base_s = 0.5;
  double backoff_max_s = 30.0;
  /// Supervisor poll cadence (exit status, progress, chaos) in seconds.
  double poll_interval_s = 0.05;
  /// Drain: after forwarding SIGTERM, wait this long for workers to flush
  /// and exit before SIGKILL.
  double grace_period_s = 10.0;
  /// Chaos mode: per poll, each live worker is SIGKILLed with this
  /// probability (seeded; 0 disables).
  double chaos_kill_prob = 0.0;
  std::uint64_t chaos_seed = 0x0C4A05ULL;
  /// Total chaos kills after which chaos disarms (0 = unlimited). A capped
  /// chaos run is guaranteed to terminate even at kill probability 1.
  std::size_t chaos_kill_limit = 0;
  /// Resume from a degraded/interrupted run's dispatch_report.json: every
  /// cleanly merged sweep checkpoint named in the report is seeded into the
  /// new shard dirs before workers start, so each worker resumes from the
  /// *merged* rows and re-runs only the report's missing task indices.
  /// Shards whose slice has no missing work (across every cleanly seeded
  /// sweep) are marked completed without spawning a process at all. Empty
  /// disables. An unreadable or malformed report throws
  /// std::invalid_argument (better to fail loudly than silently recompute
  /// the whole sweep).
  std::string resume_report_path;
  /// Telemetry plane: each worker attempt gets
  /// `telemetry=<shard_dir>/telemetry_<attempt>.jsonl` appended to its
  /// command (obs::TelemetrySink stream), the dispatcher tails those
  /// streams for live per-shard progress, writes its own supervision
  /// stream to `<work_dir>/dispatcher_telemetry.jsonl`, and merges
  /// everything into `<work_dir>/merged/timeline.*` (exp/timeline.h)
  /// after the checkpoint merge.
  bool telemetry = false;
  /// Cadence of aggregated live status lines (seconds; needs `telemetry`
  /// and `log`; 0 disables).
  double status_interval_s = 5.0;
  /// Drain request (e.g. wired to a SIGINT/SIGTERM flag by the CLI): when
  /// it turns true the dispatcher forwards SIGTERM to every worker, waits
  /// out the grace period, merges what exists and reports "interrupted".
  const std::atomic<bool>* stop = nullptr;
  /// Progress diagnostics (spawn/kill/restart lines); null = silent.
  std::ostream* log = nullptr;
};

/// One worker attempt, as observed by the supervisor.
struct AttemptResult {
  /// Exit code when the worker exited (term_signal == 0), else unset (-1).
  int exit_code = -1;
  /// Terminating signal when the worker died by one, else 0.
  int term_signal = 0;
  double wall_s = 0.0;
  /// Shard checkpoint bytes on disk when the attempt ended (progress proof).
  std::uint64_t checkpoint_bytes = 0;
  /// "completed" | "crashed" | "stalled" | "deadline" | "chaos" |
  /// "drained" | "spawn-failed"
  std::string outcome;
};

struct ShardStatus {
  std::size_t shard = 0;
  /// Terminal state: "completed" | "failed" | "interrupted".
  std::string state;
  /// Budget-consuming restarts (crash/stall/deadline).
  std::size_t restarts = 0;
  /// Self-inflicted chaos kills (restarted for free).
  std::size_t chaos_kills = 0;
  /// Rows present in this shard's checkpoint files at the end.
  std::size_t rows = 0;
  /// Last telemetry progress heartbeat across all attempts (telemetry
  /// mode; 0/0 when the worker never sent one).
  std::size_t tasks_done = 0;
  std::size_t tasks_total = 0;
  std::vector<AttemptResult> attempts;
};

/// One merged sweep checkpoint (benches may run several sweeps; each
/// `<sweep>.ckpt.jsonl` file name seen in any shard dir merges separately).
struct MergedSweep {
  std::string sweep;
  /// Merged checkpoint path (empty when nothing could be written).
  std::string path;
  std::size_t rows = 0;
  std::size_t task_count = 0;
  /// Task indices no shard covered, in ascending order.
  std::vector<std::size_t> missing;
  /// Non-empty when the merge itself failed (fingerprint or row conflict).
  std::string error;

  [[nodiscard]] bool complete() const noexcept {
    return error.empty() && rows == task_count && task_count > 0;
  }
};

struct DispatchReport {
  /// "complete" | "degraded" | "interrupted"
  std::string status;
  std::size_t shards = 0;
  std::size_t chaos_kills = 0;
  double wall_s = 0.0;
  /// True when the run streamed telemetry (timeline below is meaningful).
  bool telemetry = false;
  std::vector<ShardStatus> shard_status;
  std::vector<MergedSweep> merged;
  /// Cross-process timeline merge result (telemetry mode only).
  TimelineSummary timeline;

  [[nodiscard]] bool complete() const noexcept {
    return status == "complete";
  }
  /// CLI exit code: 0 complete, 1 degraded, 3 interrupted.
  [[nodiscard]] int exit_code() const noexcept {
    return status == "complete" ? 0 : status == "interrupted" ? 3 : 1;
  }
};

/// Runs the supervision loop to completion (or drain) and merges the shard
/// checkpoints. Throws std::invalid_argument on unusable options (empty
/// command, zero shards, empty work_dir); worker-level failures never throw
/// — they land in the report as "degraded".
[[nodiscard]] DispatchReport dispatch_sweep(const DispatchOptions& options);

/// Machine-readable report (schema documented in EXPERIMENTS.md).
[[nodiscard]] std::string dispatch_report_json(const DispatchReport& report);

/// Writes the JSON report via a sibling temp file and atomic rename.
/// Returns false when the file cannot be written.
[[nodiscard]] bool write_dispatch_report(const std::string& path,
                                         const DispatchReport& report);

}  // namespace dcs::exp
