// The sweep runner: expands a SweepSpec and executes one task per grid point
// across the thread pool, collecting metric rows in task order.
//
// Determinism: the runner only schedules; tasks receive their Task (levels,
// replicate, seed) and must build all mutable state themselves (for
// simulation sweeps, a fresh DataCenter per task — DataCenter::run already
// builds fresh plant state per call). Rows are written into pre-sized
// task-indexed slots, so the collected result is bit-identical for any
// thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/sweep.h"

namespace dcs::exp {

struct RunnerOptions {
  /// Worker threads; 0 = all hardware threads.
  std::size_t threads = 0;
};

/// Raw sweep output: one row of metric values per task, in task order.
struct SweepRun {
  std::vector<std::string> metrics;
  std::vector<std::vector<double>> rows;
  std::size_t threads_used = 1;
  double wall_seconds = 0.0;

  [[nodiscard]] double tasks_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(rows.size()) / wall_seconds
               : 0.0;
  }
};

/// One sweep task: returns one value per declared metric.
using TaskFn = std::function<std::vector<double>(const SweepSpec::Task&)>;

/// Runs every task of `spec` and collects the metric rows. Throws (after
/// attempting every task) if any task throws or returns the wrong number of
/// metrics.
[[nodiscard]] SweepRun run_sweep(const SweepSpec& spec,
                                 std::vector<std::string> metrics,
                                 const TaskFn& fn,
                                 const RunnerOptions& options = {});

}  // namespace dcs::exp
