// The sweep runner: expands a SweepSpec and executes one task per grid point
// across the thread pool, collecting metric rows in task order.
//
// Determinism: the runner only schedules; tasks receive their Task (levels,
// replicate, seed) and must build all mutable state themselves (for
// simulation sweeps, a fresh DataCenter per task — DataCenter::run already
// builds fresh plant state per call). Rows are written into pre-sized
// task-indexed slots, so the collected result is bit-identical for any
// thread count.
//
// Durability and partitioning: `RunnerOptions::checkpoint_path` append-
// streams every completed row to a crash-safe JSONL checkpoint and, on
// restart, re-runs only the task indices the file does not already cover.
// `RunnerOptions::shard` restricts execution to a contiguous slice of the
// task range so N processes (or machines) can split one grid; their
// checkpoint files merge back into the full task-indexed run with
// exp::merge_runs / tools/merge_sweep. Both rely on the stable task->seed
// mapping of SweepSpec: a slot computes the same row no matter which
// process (or which attempt) executes it.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.h"

namespace dcs::exp {

/// One contiguous slice of a sweep's task range: shard `index` of `count`.
/// The default {0, 1} is the whole range.
struct Shard {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// Task-index range [first, last) owned by `shard` out of `task_count`
/// tasks. Slices are contiguous, disjoint, cover the range, and differ in
/// size by at most one task. DCS_REQUIRE on index >= count or count == 0.
[[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
    std::size_t task_count, const Shard& shard);

struct RunnerOptions {
  /// Worker threads; 0 = all hardware threads.
  std::size_t threads = 0;
  /// When non-empty: load completed rows from this JSONL checkpoint before
  /// running (skipping their slots) and append every newly completed row to
  /// it, so a killed sweep resumes instead of restarting.
  std::string checkpoint_path;
  /// Restrict execution to this shard's contiguous task-index slice.
  Shard shard;
  /// Cooperative drain: when non-null and set (e.g. by a SIGTERM handler),
  /// workers stop picking up new tasks; tasks already started finish —
  /// and checkpoint — normally. The run returns with `drained == true` and
  /// the unexecuted slots empty, leaving a resumable checkpoint behind.
  const std::atomic<bool>* stop = nullptr;
  /// Progress callback, invoked after every completed task with
  /// (done, total) for this process's slice — done counts resumed slots
  /// too, so it reaches total when the slice finishes. Called from worker
  /// threads; must be thread-safe (obs::TelemetrySink::heartbeat is).
  std::function<void(std::size_t done, std::size_t total)> on_progress;
};

/// Raw sweep output: one row of metric values per task, in task order.
/// Slots outside the executed shard (or not yet covered by any checkpoint)
/// hold empty rows.
struct SweepRun {
  std::vector<std::string> metrics;
  std::vector<std::vector<double>> rows;
  std::size_t threads_used = 1;
  double wall_seconds = 0.0;
  /// Tasks actually executed by this process (excludes checkpoint-resumed
  /// slots and slots outside the shard).
  std::size_t executed_tasks = 0;
  /// Completed rows adopted from the checkpoint instead of re-run.
  std::size_t resumed_tasks = 0;
  /// Provenance of the executed slice (shard_count == 1: whole range).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// True when RunnerOptions::stop cut the run short; some slots in the
  /// shard's slice were skipped and remain empty.
  bool drained = false;

  [[nodiscard]] double tasks_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(executed_tasks) / wall_seconds
               : 0.0;
  }
};

/// One sweep task: returns one value per declared metric.
using TaskFn = std::function<std::vector<double>(const SweepSpec::Task&)>;

/// Runs every task of `spec` (restricted to `options.shard`, minus slots
/// already covered by `options.checkpoint_path`) and collects the metric
/// rows. Throws (after attempting every task) if any task throws or returns
/// the wrong number of metrics.
[[nodiscard]] SweepRun run_sweep(const SweepSpec& spec,
                                 std::vector<std::string> metrics,
                                 const TaskFn& fn,
                                 const RunnerOptions& options = {});

}  // namespace dcs::exp
