#include "exp/sweep.h"

#include <utility>

#include "util/check.h"
#include "util/rng.h"
#include "util/table.h"

namespace dcs::exp {

SweepSpec::SweepSpec(std::string name, std::uint64_t base_seed)
    : name_(std::move(name)), base_seed_(base_seed) {
  DCS_REQUIRE(!name_.empty(), "sweep name must not be empty");
}

std::size_t SweepSpec::add_axis(std::string name,
                                std::vector<std::string> labels) {
  DCS_REQUIRE(!name.empty(), "axis name must not be empty");
  DCS_REQUIRE(!labels.empty(), "axis '" + name + "' needs at least one level");
  for (const Axis& axis : axes_) {
    DCS_REQUIRE(axis.name != name, "duplicate axis '" + name + "'");
  }
  axes_.push_back(Axis{std::move(name), std::move(labels), {}});
  return axes_.size() - 1;
}

std::size_t SweepSpec::add_axis(std::string name, std::span<const double> values,
                                int precision) {
  std::vector<std::string> labels;
  labels.reserve(values.size());
  for (const double v : values) labels.push_back(format_double(v, precision));
  const std::size_t index = add_axis(std::move(name), std::move(labels));
  axes_[index].values.assign(values.begin(), values.end());
  return index;
}

void SweepSpec::set_replicates(std::size_t n) {
  DCS_REQUIRE(n >= 1, "replicate count must be at least 1");
  replicates_ = n;
}

std::size_t SweepSpec::cell_count() const noexcept {
  std::size_t count = 1;
  for (const Axis& axis : axes_) count *= axis.labels.size();
  return count;
}

std::size_t SweepSpec::task_count() const noexcept {
  return cell_count() * replicates_;
}

std::vector<std::size_t> SweepSpec::cell_levels(std::size_t cell) const {
  DCS_REQUIRE(cell < cell_count(), "cell index out of range");
  std::vector<std::size_t> level(axes_.size(), 0);
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const std::size_t size = axes_[a].labels.size();
    level[a] = cell % size;
    cell /= size;
  }
  return level;
}

std::vector<SweepSpec::Task> SweepSpec::tasks() const {
  const Rng base(base_seed_);
  std::vector<Task> out;
  out.reserve(task_count());
  for (std::size_t cell = 0; cell < cell_count(); ++cell) {
    const std::vector<std::size_t> level = cell_levels(cell);
    const Rng cell_stream = base.fork(cell);
    for (std::size_t rep = 0; rep < replicates_; ++rep) {
      Task task;
      task.index = out.size();
      task.cell = cell;
      task.level = level;
      task.replicate = rep;
      task.seed = cell_stream.fork_seed(rep);
      out.push_back(std::move(task));
    }
  }
  return out;
}

double SweepSpec::value(const Task& task, std::size_t axis) const {
  DCS_REQUIRE(axis < axes_.size(), "axis index out of range");
  const Axis& a = axes_[axis];
  DCS_REQUIRE(!a.values.empty(), "axis '" + a.name + "' is not numeric");
  return a.values[task.level[axis]];
}

const std::string& SweepSpec::label(const Task& task, std::size_t axis) const {
  DCS_REQUIRE(axis < axes_.size(), "axis index out of range");
  return axes_[axis].labels[task.level[axis]];
}

}  // namespace dcs::exp
