// Aggregates raw sweep rows into per-cell descriptive statistics across the
// replicate axis (mean / stddev / extrema / percentiles / 95% CI), using the
// util/stats primitives.
#pragma once

#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/sweep.h"

namespace dcs::exp {

/// Statistics of one metric across a cell's replicates.
struct MetricSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (0 for fewer than two replicates).
  double ci95 = 0.0;
};

struct CellSummary {
  std::size_t cell = 0;
  std::vector<std::size_t> level;
  std::vector<std::string> labels;
  /// One entry per run metric, in metric order.
  std::vector<MetricSummary> metrics;
};

struct SweepSummary {
  std::string name;
  std::vector<Axis> axes;
  std::vector<std::string> metrics;
  std::size_t replicates = 1;
  std::vector<CellSummary> cells;
  // Perf record of the producing run (executed/resumed/shard mirror
  // SweepRun's provenance fields).
  std::size_t task_count = 0;
  std::size_t threads_used = 1;
  double wall_seconds = 0.0;
  std::size_t executed_tasks = 0;
  std::size_t resumed_tasks = 0;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  [[nodiscard]] double tasks_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(executed_tasks) / wall_seconds
               : 0.0;
  }
};

/// Collapses the replicate axis of `run` (produced from `spec`) into
/// per-cell statistics. Cell order matches the spec's cell indexing. Empty
/// row slots (sharded or partially resumed runs) are skipped, so a cell's
/// `count` reflects the replicates that actually ran; a cell with no rows
/// keeps default (zero) statistics.
[[nodiscard]] SweepSummary aggregate(const SweepSpec& spec,
                                     const SweepRun& run);

}  // namespace dcs::exp
