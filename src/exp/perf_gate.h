// Perf-regression gate: compares a fresh perf record against a checked-in
// baseline and flags scopes whose wall time regressed beyond a threshold.
//
// Two record formats are understood, keyed off their top-level shape:
//   - the repo's own BENCH_*.json perf records ({"bench", "wall_seconds",
//     "scopes": {name: {mean_us, ...}}}) — each scope contributes its
//     mean_us, and the record's wall_seconds contributes a synthetic
//     "wall" entry;
//   - google-benchmark --benchmark_out JSON ({"benchmarks": [{name,
//     real_time, time_unit}]}) — per-benchmark real_time, normalized to
//     microseconds; aggregate rows (run_type == "aggregate") are skipped in
//     favor of the raw iterations.
//
// The gate is deliberately coarse (ratios of means, generous default
// threshold, a min_us floor below which timing noise dominates): it exists
// to catch order-of-magnitude engine regressions in CI, not to benchmark.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.h"

namespace dcs::exp {

struct PerfGateOptions {
  /// Maximum tolerated relative slowdown: fresh > baseline * (1 + max_regress)
  /// fails. 0.20 == 20%.
  double max_regress = 0.20;
  /// Entries whose baseline time is below this are ignored (noise floor).
  double min_us = 50.0;
  /// Report regressions but keep ok == true (first-run / warming mode).
  bool warn_only = false;
};

struct PerfGateRow {
  std::string name;
  double baseline_us = 0.0;
  double fresh_us = 0.0;
  /// fresh / baseline (>1 means slower).
  double ratio = 0.0;
  bool regressed = false;
};

struct PerfGateResult {
  std::vector<PerfGateRow> rows;           // shared entries, by name
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_fresh;
  /// False iff !warn_only and either a row regressed or a baseline entry
  /// is missing from the fresh record (a deleted benchmark must not turn
  /// the gate green).
  bool ok = true;
};

/// Extracts {entry name -> microseconds} from a parsed perf record in
/// either supported format. Throws std::invalid_argument when the document
/// matches neither shape.
[[nodiscard]] std::map<std::string, double> perf_scope_times_us(
    const json::Value& record);

/// Build type the record's *benchmark binary* was compiled with, as stamped
/// by bench/perf_engine.cpp into the google-benchmark context
/// ("dcs_build_type": "release"/"debug"). Empty when the record carries no
/// stamp (repo BENCH_*.json records, or google-benchmark output from before
/// the stamp existed). Note google-benchmark's own "library_build_type"
/// context key describes the *system benchmark library*, not our code — it
/// is deliberately ignored here.
[[nodiscard]] std::string perf_record_build_type(const json::Value& record);

/// Compares fresh against baseline entry-by-entry.
[[nodiscard]] PerfGateResult perf_gate_compare(
    const std::map<std::string, double>& baseline,
    const std::map<std::string, double>& fresh,
    const PerfGateOptions& options = {});

/// Human-readable comparison table plus a PASS/FAIL/WARN verdict line.
void write_perf_gate_report(std::ostream& out, const PerfGateResult& result,
                            const PerfGateOptions& options);

/// One historical baseline in a trend comparison, labelled (by file stem
/// when loaded from a baseline directory).
struct PerfTrendBaseline {
  std::string label;
  std::map<std::string, double> times_us;
};

struct PerfTrendResult {
  /// Baseline labels, oldest to newest (the order they were given in).
  std::vector<std::string> labels;
  /// Per entry: microseconds across the baselines in `labels` order, with
  /// the fresh record appended last. NaN marks a record that lacks the
  /// entry.
  std::map<std::string, std::vector<double>> series_us;
  /// The gate proper: fresh vs the *newest* baseline only. Older baselines
  /// contribute drift context, never failures — a slow creep that stays
  /// inside the per-step threshold is surfaced by the trend table, not the
  /// exit code.
  PerfGateResult gate;

  [[nodiscard]] bool ok() const noexcept { return gate.ok; }
};

/// Compares fresh against a chronological series of baselines: the newest
/// gates (perf_gate_compare), the rest feed the drift table. Throws
/// std::invalid_argument when `baselines` is empty (the caller decides what
/// an empty history means — the CLI warns and passes).
[[nodiscard]] PerfTrendResult perf_trend(
    const std::vector<PerfTrendBaseline>& baselines,
    const std::map<std::string, double>& fresh,
    const PerfGateOptions& options = {});

/// Drift table (one row per entry, one column per baseline plus fresh)
/// followed by the vs-newest gate report and verdict.
void write_perf_trend_report(std::ostream& out, const PerfTrendResult& result,
                             const PerfGateOptions& options);

}  // namespace dcs::exp
