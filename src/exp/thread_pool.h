// Work-queue thread pool and the deterministic parallel-for primitive the
// experiment runner is built on.
//
// Tasks must be independent: each task may only write state it owns (for
// sweeps, the result slot addressed by its task index). Under that contract
// every result is bit-identical regardless of thread count or scheduling
// order, because combining happens in task-index order after the barrier.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dcs::exp {

/// Resolves a requested worker count: 0 means "all hardware threads"
/// (always at least 1).
[[nodiscard]] std::size_t resolve_threads(std::size_t requested) noexcept;

/// A fixed-size pool of workers draining a FIFO task queue. The destructor
/// drains the queue and joins every worker.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues one task. The returned future rethrows whatever the task
  /// threw, so callers observe failures where they wait.
  [[nodiscard]] std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(0) .. fn(count - 1) across `threads` workers (0 = all hardware
/// threads). Every index is attempted even when earlier tasks throw; after
/// the barrier the exception with the lowest task index is rethrown, so
/// failure behaviour is as deterministic as success behaviour.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace dcs::exp
