#include "exp/runner.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "exp/thread_pool.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "util/check.h"

namespace dcs::exp {

SweepRun run_sweep(const SweepSpec& spec, std::vector<std::string> metrics,
                   const TaskFn& fn, const RunnerOptions& options) {
  DCS_REQUIRE(!metrics.empty(), "a sweep needs at least one metric");
  DCS_REQUIRE(fn != nullptr, "a sweep needs a task function");
  const std::vector<SweepSpec::Task> tasks = spec.tasks();

  SweepRun run;
  run.metrics = std::move(metrics);
  run.rows.assign(tasks.size(), {});
  run.threads_used =
      std::min(resolve_threads(options.threads),
               std::max<std::size_t>(tasks.size(), 1));

  // Wall-domain sampling profiler, active only while DCS_OBS_SAMPLER is set.
  const obs::ScopedSamplerRun sampler;
  const auto start = std::chrono::steady_clock::now();
  parallel_for(tasks.size(), options.threads, [&](std::size_t i) {
    DCS_OBS_SCOPE("exp.task");
    std::vector<double> row = fn(tasks[i]);
    DCS_REQUIRE(row.size() == run.metrics.size(),
                "sweep '" + spec.name() + "' task " + std::to_string(i) +
                    " returned " + std::to_string(row.size()) +
                    " metrics, expected " +
                    std::to_string(run.metrics.size()));
    run.rows[i] = std::move(row);
  });
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return run;
}

}  // namespace dcs::exp
