#include "exp/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "exp/checkpoint.h"
#include "exp/thread_pool.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "util/check.h"

namespace dcs::exp {

std::pair<std::size_t, std::size_t> shard_range(std::size_t task_count,
                                                const Shard& shard) {
  DCS_REQUIRE(shard.count >= 1, "shard count must be >= 1");
  DCS_REQUIRE(shard.index < shard.count,
              "shard index " + std::to_string(shard.index) +
                  " out of range for " + std::to_string(shard.count) +
                  " shards");
  // i*n/k boundaries: contiguous, disjoint, covering, sizes within one.
  const std::size_t first = shard.index * task_count / shard.count;
  const std::size_t last = (shard.index + 1) * task_count / shard.count;
  return {first, last};
}

SweepRun run_sweep(const SweepSpec& spec, std::vector<std::string> metrics,
                   const TaskFn& fn, const RunnerOptions& options) {
  DCS_REQUIRE(!metrics.empty(), "a sweep needs at least one metric");
  DCS_REQUIRE(fn != nullptr, "a sweep needs a task function");
  const std::vector<SweepSpec::Task> tasks = spec.tasks();

  SweepRun run;
  run.metrics = std::move(metrics);
  run.rows.assign(tasks.size(), {});
  run.shard_index = options.shard.index;
  run.shard_count = options.shard.count;
  const auto [first, last] = shard_range(tasks.size(), options.shard);

  // Resume: adopt the checkpoint's completed rows (anywhere in the range,
  // so a merged multi-shard checkpoint replays in one process) and only
  // schedule the shard's uncovered slots.
  std::vector<std::size_t> pending;
  std::unique_ptr<CheckpointWriter> checkpoint;
  if (!options.checkpoint_path.empty()) {
    const CheckpointData data = load_checkpoint(options.checkpoint_path);
    if (data.present) {
      require_matches(data, spec, run.metrics);
      for (const auto& [index, row] : data.rows) run.rows[index] = row;
      run.resumed_tasks = data.rows.size();
    }
    for (std::size_t i = first; i < last; ++i) {
      if (run.rows[i].empty()) pending.push_back(i);
    }
    checkpoint = std::make_unique<CheckpointWriter>(options.checkpoint_path,
                                                    spec, run.metrics);
    DCS_REQUIRE(checkpoint->ok(),
                "cannot write checkpoint " + options.checkpoint_path);
  } else {
    pending.reserve(last - first);
    for (std::size_t i = first; i < last; ++i) pending.push_back(i);
  }

  run.threads_used =
      std::min(resolve_threads(options.threads),
               std::max<std::size_t>(pending.size(), 1));

  // Wall-domain sampling profiler, active only while DCS_OBS_SAMPLER is set.
  const obs::ScopedSamplerRun sampler;
  std::atomic<std::size_t> executed{0};
  // Progress heartbeats count against the shard's whole slice, with
  // checkpoint-resumed slots already done — a restarted worker reports
  // 40/100 immediately instead of restarting the count from zero.
  const std::size_t slice_total = last - first;
  const std::size_t slice_resumed = slice_total - pending.size();
  if (options.on_progress != nullptr) {
    options.on_progress(slice_resumed, slice_total);
  }
  const auto start = std::chrono::steady_clock::now();
  parallel_for(pending.size(), options.threads, [&](std::size_t p) {
    // Cooperative drain (SIGTERM from a dispatcher, Ctrl-C): slots not yet
    // started are skipped; the checkpoint keeps every finished row, so a
    // resumed run re-executes exactly the skipped slots.
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      return;
    }
    DCS_OBS_SCOPE("exp.task");
    const std::size_t i = pending[p];
    std::vector<double> row = fn(tasks[i]);
    DCS_REQUIRE(row.size() == run.metrics.size(),
                "sweep '" + spec.name() + "' task " + std::to_string(i) +
                    " returned " + std::to_string(row.size()) +
                    " metrics, expected " +
                    std::to_string(run.metrics.size()));
    if (checkpoint != nullptr) checkpoint->append(i, tasks[i].seed, row);
    run.rows[i] = std::move(row);
    const std::size_t done =
        executed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options.on_progress != nullptr) {
      options.on_progress(slice_resumed + done, slice_total);
    }
  });
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.executed_tasks = executed.load();
  run.drained = options.stop != nullptr &&
                options.stop->load(std::memory_order_relaxed) &&
                run.executed_tasks < pending.size();
  return run;
}

}  // namespace dcs::exp
