// Cross-process timeline merge: folds the dispatcher's own telemetry
// stream and every shard worker's per-attempt telemetry stream
// (obs/telemetry.h) into one timeline, aligned on a shared wall-clock
// epoch.
//
// Alignment: each stream's header carries the producing process's
// obs::Profiler::epoch_unix_us(). The merge picks the earliest epoch as
// t=0 and shifts every *wall*-domain event by (stream epoch - base), so a
// span that started 3 s into a restarted worker's life lands 3 s after
// that worker's actual start on the shared axis — dispatcher supervision,
// worker attempts and restart gaps all line up. Sim-domain events keep
// their simulated timestamps untouched (they share the simulation's own
// time axis and are deterministic results, not wall observations).
//
// Outputs (under `<work_dir>/merged/`):
//   timeline.jsonl          "ev" lines tagged with `src` ("dispatcher",
//                           "shard0", "shard0#2" for restart attempts) and
//                           aligned timestamps, plus proc/lane metadata
//   timeline_trace.json     Chrome trace-event JSON: one pid per
//                           (source, domain), process names "src/domain",
//                           loadable in Perfetto / chrome://tracing
//   timeline.perfetto       protobuf TrackEvent stream (obs/perfetto.h),
//                           SQL-queryable in trace_processor
//   dispatch_stacks.folded  every stream's sampler stacks, prefixed with
//                           its src, so distributed runs produce one flame
//                           graph like local ones do
//
// The merge is a pure function of the input files: re-running it (a
// dispatcher restarted over the same work dir) writes byte-identical
// outputs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace dcs::exp {

struct TimelineOptions {
  /// Dispatcher work dir: `dispatcher_telemetry.jsonl` +
  /// `shard_<i>/telemetry_<attempt>.jsonl` streams.
  std::string work_dir;
  std::size_t shards = 0;
  /// Output directory; empty = `<work_dir>/merged`.
  std::string out_dir;
  /// Progress diagnostics; null = silent.
  std::ostream* log = nullptr;
};

struct TimelineSummary {
  /// Telemetry streams merged (dispatcher + one per worker attempt).
  std::size_t sources = 0;
  /// Streams that carried a parsable header (and therefore aligned).
  std::size_t aligned_sources = 0;
  std::size_t events = 0;
  std::size_t stacks = 0;
  /// Earliest header epoch — the merged timeline's wall t=0.
  std::int64_t base_epoch_unix_us = 0;
  std::string jsonl_path;
  std::string chrome_path;
  std::string perfetto_path;
  /// Empty when no stream carried sampler stacks.
  std::string stacks_path;
  /// Non-empty when nothing could be merged or an output failed to write.
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Merges every telemetry stream under `options.work_dir`. Worker-level
/// problems (missing streams, torn lines) degrade silently — the merge
/// covers whatever telemetry exists; only unusable options or unwritable
/// outputs land in `error`.
[[nodiscard]] TimelineSummary merge_timeline(const TimelineOptions& options);

}  // namespace dcs::exp
