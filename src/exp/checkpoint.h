// Crash-safe sweep checkpoints: completed task rows append-streamed to a
// JSONL file, keyed by task index, so a killed sweep resumes from the rows
// it already earned and N sharded processes can merge their slices back
// into one task-indexed run.
//
// File format (one JSON object per line):
//
//   {"checkpoint": "<sweep>", "version": 1, "base_seed": "<u64>",
//    "task_count": N, "metrics": ["m0", ...]}          <- header, line 1
//   {"index": 7, "seed": "<u64>", "row": [1.5, "inf"]} <- one per task
//
// Seeds are decimal strings (JSON numbers are doubles and cannot hold a
// full uint64). Row values go through json::number_to_string, so they
// round-trip bit-for-bit — including non-finite values — and a resumed or
// merged run reproduces the exact bytes of an uninterrupted one.
//
// Crash safety follows the JSONL discipline of obs/sink.h: the file is
// append-only and every line is flushed as soon as it is written, so it is
// valid up to the last flushed line no matter when the process dies; a
// torn trailing line (kill mid-append) is tolerated and simply re-run.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/sweep.h"

namespace dcs::exp {

/// Parsed contents of a checkpoint file: the sweep fingerprint from the
/// header plus every completed row, keyed by task index.
struct CheckpointData {
  /// False when the file did not exist (a fresh start, not an error).
  bool present = false;
  std::string sweep;
  std::uint64_t base_seed = 0;
  std::size_t task_count = 0;
  std::vector<std::string> metrics;
  std::map<std::size_t, std::vector<double>> rows;
  std::map<std::size_t, std::uint64_t> seeds;

  /// True when every task index [0, task_count) has a row.
  [[nodiscard]] bool complete() const noexcept {
    return present && rows.size() == task_count;
  }
};

/// Loads a checkpoint file. A missing file — or an existing but empty one,
/// the state a worker killed between open and header flush leaves behind —
/// returns `present == false` (a fresh start, not an error); a non-empty
/// file with a malformed header throws std::invalid_argument. A
/// torn trailing line (crash mid-append) stops the scan and is not an
/// error; on duplicate indices (e.g. two resumed attempts) the last row
/// wins — deterministic seeding makes them identical anyway.
[[nodiscard]] CheckpointData load_checkpoint(const std::string& path);

/// DCS_REQUIRE that `data` (which must be present) was produced by a sweep
/// with this spec shape and metric list — same name, base seed, task count
/// and metrics — and that every stored row has one value per metric and the
/// seed the spec assigns to its index.
void require_matches(const CheckpointData& data, const SweepSpec& spec,
                     const std::vector<std::string>& metrics);

/// Writes a full checkpoint document (header plus rows in index order);
/// tools/merge_sweep uses this to emit the merged file.
void write_checkpoint(std::ostream& out, const CheckpointData& data);

/// Writes `data` to `path` via a sibling `.tmp` file and an atomic rename,
/// so a crash or full disk mid-write can never leave a truncated checkpoint
/// that a later resume would adopt as valid — either the old file survives
/// untouched or the complete new one appears. Returns false (removing the
/// temp file, leaving any previous `path` intact) when the write fails.
[[nodiscard]] bool write_checkpoint_atomic(const std::string& path,
                                           const CheckpointData& data);

/// Merges shard checkpoints into one CheckpointData covering the union of
/// their rows. All inputs must be present and share the header fingerprint;
/// the same index appearing twice must carry bit-identical rows. Throws
/// std::invalid_argument on empty input, fingerprint mismatch or row
/// conflict.
[[nodiscard]] CheckpointData merge_checkpoints(
    const std::vector<CheckpointData>& shards);

/// Merges shard checkpoints into one task-indexed SweepRun. Task indices no
/// shard covered keep empty rows (callers needing completeness check
/// `merge_checkpoints(...).complete()` or compare row counts). The merged
/// run carries no timing (wall_seconds == 0): the shards ran elsewhere.
[[nodiscard]] SweepRun merge_runs(const std::vector<CheckpointData>& shards);

/// Append-only checkpoint writer used by run_sweep. Opens `path` for
/// append, emitting the header first when the file is new or empty.
/// `append` is thread-safe (workers complete tasks concurrently) and
/// flushes each line, dropping to `ok() == false` the moment the stream
/// fails (disk full, unlinked directory) — mirroring obs::FileStreamSink.
class CheckpointWriter {
 public:
  CheckpointWriter(const std::string& path, const SweepSpec& spec,
                   const std::vector<std::string>& metrics);

  void append(std::size_t index, std::uint64_t seed,
              const std::vector<double>& row);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::mutex mu_;
  std::ofstream out_;
  bool ok_ = false;
};

}  // namespace dcs::exp
