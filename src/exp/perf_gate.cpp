#include "exp/perf_gate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace dcs::exp {
namespace {

double to_us(double value, const std::string& unit) {
  if (unit == "ns") return value / 1000.0;
  if (unit == "us") return value;
  if (unit == "ms") return value * 1000.0;
  if (unit == "s") return value * 1e6;
  throw std::invalid_argument("perf_gate: unknown time_unit '" + unit + "'");
}

std::map<std::string, double> from_google_benchmark(const json::Value& record) {
  std::map<std::string, double> out;
  for (const json::Value& b : record.at("benchmarks").as_array()) {
    const json::Value* run_type = b.find("run_type");
    if (run_type != nullptr && run_type->is_string() &&
        run_type->as_string() == "aggregate") {
      continue;
    }
    const std::string& name = b.at("name").as_string();
    const double real_time = b.at("real_time").as_number();
    const json::Value* unit = b.find("time_unit");
    const double us =
        to_us(real_time, unit != nullptr ? unit->as_string() : "ns");
    // Repeated iterations of the same benchmark: keep the fastest (least
    // noisy) observation.
    const auto [it, inserted] = out.emplace(name, us);
    if (!inserted) it->second = std::min(it->second, us);
  }
  return out;
}

std::map<std::string, double> from_bench_record(const json::Value& record) {
  std::map<std::string, double> out;
  if (const json::Value* wall = record.find("wall_seconds");
      wall != nullptr && wall->is_number()) {
    out.emplace("wall", wall->as_number() * 1e6);
  }
  if (const json::Value* scopes = record.find("scopes");
      scopes != nullptr && scopes->is_object()) {
    for (const auto& [name, stats] : scopes->as_object()) {
      // Non-finite stats serialize as null (JSON has no inf/nan); such a
      // scope carries no comparable timing, so it is skipped rather than
      // failing the whole record parse.
      const json::Value* mean = stats.find("mean_us");
      if (mean != nullptr && mean->is_number()) {
        out.emplace(name, mean->as_number());
      }
    }
  }
  return out;
}

}  // namespace

std::map<std::string, double> perf_scope_times_us(const json::Value& record) {
  if (record.has("benchmarks")) return from_google_benchmark(record);
  if (record.has("bench")) return from_bench_record(record);
  throw std::invalid_argument(
      "perf_gate: record is neither a BENCH_*.json perf record nor "
      "google-benchmark output");
}

std::string perf_record_build_type(const json::Value& record) {
  const json::Value* context = record.find("context");
  if (context == nullptr || !context->is_object()) return {};
  const json::Value* type = context->find("dcs_build_type");
  if (type == nullptr || !type->is_string()) return {};
  return type->as_string();
}

PerfGateResult perf_gate_compare(const std::map<std::string, double>& baseline,
                                 const std::map<std::string, double>& fresh,
                                 const PerfGateOptions& options) {
  PerfGateResult result;
  for (const auto& [name, base_us] : baseline) {
    const auto it = fresh.find(name);
    if (it == fresh.end()) {
      // A baseline entry the fresh record no longer produces: in strict
      // mode that fails the gate — otherwise deleting a regressed
      // benchmark would turn it green.
      result.only_in_baseline.push_back(name);
      if (!options.warn_only) result.ok = false;
      continue;
    }
    PerfGateRow row;
    row.name = name;
    row.baseline_us = base_us;
    row.fresh_us = it->second;
    // A zero baseline yields an infinite ratio, not 0.0 — 0.0 would read
    // as a 1000x win.
    row.ratio = base_us > 0.0 ? it->second / base_us
                              : std::numeric_limits<double>::infinity();
    row.regressed = base_us >= options.min_us &&
                    it->second > base_us * (1.0 + options.max_regress);
    if (row.regressed && !options.warn_only) result.ok = false;
    result.rows.push_back(std::move(row));
  }
  for (const auto& [name, us] : fresh) {
    (void)us;
    if (baseline.find(name) == baseline.end()) {
      result.only_in_fresh.push_back(name);
    }
  }
  return result;
}

void write_perf_gate_report(std::ostream& out, const PerfGateResult& result,
                            const PerfGateOptions& options) {
  char buf[160];
  out << "perf gate (max regress " << options.max_regress * 100.0
      << "%, noise floor " << options.min_us << " us"
      << (options.warn_only ? ", warn-only" : "") << ")\n";
  for (const PerfGateRow& row : result.rows) {
    std::snprintf(buf, sizeof(buf), "  %-40s %12.1f us -> %12.1f us  x%.3f%s\n",
                  row.name.c_str(), row.baseline_us, row.fresh_us, row.ratio,
                  row.regressed ? "  REGRESSED" : "");
    out << buf;
  }
  for (const std::string& name : result.only_in_baseline) {
    out << "  " << name << ": only in baseline (removed?)"
        << (options.warn_only ? "" : "  MISSING") << "\n";
  }
  for (const std::string& name : result.only_in_fresh) {
    out << "  " << name << ": only in fresh record (new scope)\n";
  }
  const bool any_regressed =
      std::any_of(result.rows.begin(), result.rows.end(),
                  [](const PerfGateRow& r) { return r.regressed; });
  const bool any_missing = !result.only_in_baseline.empty();
  if (!any_regressed && !any_missing) {
    out << "PASS: no scope regressed\n";
  } else if (result.ok) {
    out << "WARN: "
        << (any_regressed ? "regressions found" : "baseline scopes missing")
        << " (warn-only mode)\n";
  } else {
    out << "FAIL:";
    if (any_regressed) out << " regressions found";
    if (any_missing) {
      out << (any_regressed ? ";" : "") << " "
          << result.only_in_baseline.size()
          << " baseline scope(s) missing from the fresh record";
    }
    out << "\n";
  }
}

PerfTrendResult perf_trend(const std::vector<PerfTrendBaseline>& baselines,
                           const std::map<std::string, double>& fresh,
                           const PerfGateOptions& options) {
  if (baselines.empty()) {
    throw std::invalid_argument("perf_trend: no baselines given");
  }
  PerfTrendResult result;
  for (const PerfTrendBaseline& b : baselines) result.labels.push_back(b.label);

  // Union of entry names; every series has one slot per baseline plus the
  // trailing fresh slot, NaN where a record lacks the entry.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::size_t width = baselines.size() + 1;
  const auto series_of = [&](const std::string& name) -> std::vector<double>& {
    return result.series_us.try_emplace(name, width, nan).first->second;
  };
  for (std::size_t i = 0; i < baselines.size(); ++i) {
    for (const auto& [name, us] : baselines[i].times_us) {
      series_of(name)[i] = us;
    }
  }
  for (const auto& [name, us] : fresh) series_of(name)[width - 1] = us;

  result.gate = perf_gate_compare(baselines.back().times_us, fresh, options);
  return result;
}

void write_perf_trend_report(std::ostream& out, const PerfTrendResult& result,
                             const PerfGateOptions& options) {
  char buf[64];
  out << "perf trend (" << result.labels.size()
      << " baseline(s), oldest -> newest -> fresh; only the newest gates)\n";
  for (const auto& [name, series] : result.series_us) {
    out << "  " << name << ":";
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (std::isnan(series[i])) {
        out << "  -";
      } else {
        std::snprintf(buf, sizeof(buf), "  %.1f", series[i]);
        out << buf;
      }
      if (i + 1 == series.size()) out << " us (fresh)";
    }
    // Total drift across the whole window, when both ends exist: the creep
    // a single-step gate cannot see.
    const double first = series.front();
    const double last = series.back();
    if (!std::isnan(first) && !std::isnan(last) && first > 0.0) {
      std::snprintf(buf, sizeof(buf), "  [x%.3f over window]", last / first);
      out << buf;
    }
    out << "\n";
  }
  out << "gating baseline: " << result.labels.back() << "\n";
  write_perf_gate_report(out, result.gate, options);
}

}  // namespace dcs::exp
