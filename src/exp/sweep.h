// SweepSpec: a declarative cartesian parameter grid (config knobs, strategy
// choices, fault scenarios, ...) plus an optional replicate ("seed") axis,
// expanded into deterministically-seeded tasks.
//
// Seeding contract: task seeds are derived by stream splitting —
// `Rng(base_seed).fork(cell).fork_seed(replicate)` — so they depend only on
// the cell index and replicate number, never on thread count or scheduling
// order. Adding replicates extends the seed list without reshuffling the
// seeds already assigned, so a 50-seed sweep is a strict superset of the
// 10-seed sweep with the same grid.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dcs::exp {

/// One sweep dimension: a name plus one label per level. Numeric axes also
/// carry the underlying values.
struct Axis {
  std::string name;
  std::vector<std::string> labels;
  /// Empty for categorical axes; `labels.size()` entries for numeric axes.
  std::vector<double> values;
};

class SweepSpec {
 public:
  explicit SweepSpec(std::string name, std::uint64_t base_seed = 0x5EEDC0DEULL);

  /// Adds a categorical axis; returns its axis index. Axis names must be
  /// unique and every axis needs at least one level.
  std::size_t add_axis(std::string name, std::vector<std::string> labels);

  /// Adds a numeric axis whose labels are the values formatted with the
  /// given precision.
  std::size_t add_axis(std::string name, std::span<const double> values,
                       int precision = 3);

  /// Sets the number of independent repetitions per cell (default 1). Each
  /// replicate gets its own stable seed.
  void set_replicates(std::size_t n);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t base_seed() const noexcept { return base_seed_; }
  [[nodiscard]] const std::vector<Axis>& axes() const noexcept { return axes_; }
  [[nodiscard]] std::size_t replicates() const noexcept { return replicates_; }

  /// Product of the axis sizes (1 for an axis-free spec).
  [[nodiscard]] std::size_t cell_count() const noexcept;
  /// cell_count() * replicates().
  [[nodiscard]] std::size_t task_count() const noexcept;

  struct Task {
    /// Stable position in the expansion: cell-major, replicate fastest.
    std::size_t index = 0;
    std::size_t cell = 0;
    /// Level per axis (row-major over the axes, last axis fastest).
    std::vector<std::size_t> level;
    std::size_t replicate = 0;
    /// Stable per-task seed (see the seeding contract above).
    std::uint64_t seed = 0;
  };

  /// Expands the full grid in deterministic order.
  [[nodiscard]] std::vector<Task> tasks() const;

  /// Levels of one cell (row-major decode).
  [[nodiscard]] std::vector<std::size_t> cell_levels(std::size_t cell) const;

  /// Value of a numeric axis at the task's level.
  [[nodiscard]] double value(const Task& task, std::size_t axis) const;
  /// Label of any axis at the task's level.
  [[nodiscard]] const std::string& label(const Task& task,
                                         std::size_t axis) const;

 private:
  std::string name_;
  std::uint64_t base_seed_;
  std::vector<Axis> axes_;
  std::size_t replicates_ = 1;
};

}  // namespace dcs::exp
