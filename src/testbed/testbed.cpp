#include "testbed/testbed.h"

#include <algorithm>

#include <cmath>

#include "util/check.h"
#include "util/interpolate.h"
#include "util/rng.h"

namespace dcs::testbed {

TimeSeries reference_utilization(Duration length, std::uint64_t seed) {
  DCS_REQUIRE(length > Duration::zero(), "length must be positive");
  Rng rng(seed);
  TimeSeries ts;
  for (Duration t = Duration::zero(); t <= length; t += Duration::seconds(1)) {
    const double m = t.min();
    double v = 0.60 + 0.40 * std::sin(m * 1.1) +
               0.20 * std::sin(m * 0.23 + 1.0);
    v *= 1.0 + rng.normal(0.0, 0.03);
    ts.push_back(t, clamp(v, 0.0, 1.0));
  }
  return ts;
}

Testbed::Testbed(const TestbedParams& params) : params_(params) {
  DCS_REQUIRE(params_.peak > params_.idle, "peak power must exceed idle");
  DCS_REQUIRE(params_.cb_rated > Power::zero(), "breaker rating must be positive");
  DCS_REQUIRE(params_.ups_capacity > Energy::zero(), "UPS capacity must be positive");
  DCS_REQUIRE(params_.ups_share > 0.0 && params_.ups_share < 1.0,
              "UPS share in (0, 1)");
  DCS_REQUIRE(params_.step > Duration::zero(), "step must be positive");
}

TestbedOutcome Testbed::run(const TimeSeries& utilization, Policy policy,
                            Duration reserved_trip_time) {
  DCS_REQUIRE(!utilization.empty(), "utilization trace is empty");
  DCS_REQUIRE(reserved_trip_time > Duration::zero(),
              "reserved trip time must be positive");

  power::CircuitBreaker cb(
      "testbed/cb",
      {.rated = params_.cb_rated, .curve = power::TripCurve{params_.trip_curve}});
  power::Battery ups("testbed/ups",
                     {// Express the usable energy as charge at 12 V.
                      .capacity = Charge::amp_hours(params_.ups_capacity.wh() / 12.0),
                      .bus_voltage = 12.0,
                      .max_discharge = params_.peak,
                      .max_recharge = Power::zero()});
  power::Relay relay(params_.relay_delay, /*initially_closed=*/false);
  bool cb_first_switched = false;

  TestbedOutcome out;
  const Duration dt = params_.step;
  const Duration end = utilization.end_time();
  for (Duration now = Duration::zero(); now < end; now += dt) {
    const double util = clamp(utilization.at(now), 0.0, 1.0);
    const Power server = params_.idle + (params_.peak - params_.idle) * util;

    // Policy: decide the relay command for this second.
    bool want_ups = false;
    switch (policy) {
      case Policy::kCbOnly:
        want_ups = false;
        break;
      case Policy::kReservedTripTime:
        // Overload the breaker only while it can hold this load for more
        // than the reserved trip time.
        want_ups = cb.time_to_trip_at(server) <= reserved_trip_time;
        break;
      case Policy::kCbFirst:
        // Stay on the breaker until it is about to trip, then lean on the
        // UPS for good.
        if (!cb_first_switched && cb.time_to_trip_at(server) <= dt * 2.0) {
          cb_first_switched = true;
        }
        want_ups = cb_first_switched;
        break;
    }
    if (ups.available() <= Energy::zero()) want_ups = false;
    relay.command(want_ups);
    relay.tick(dt);  // settles within the same 1 s step (10 ms delay)

    Power ups_power = Power::zero();
    if (relay.closed()) {
      ups_power = ups.discharge(server * params_.ups_share, dt);
      if (ups_power <= Power::zero()) out.ups_exhausted = true;
    }
    const Power cb_power = server - ups_power;
    cb.apply_load(cb_power, dt);

    out.total_power_w.push_back(now, server.w());
    out.cb_power_w.push_back(now, cb_power.w());
    out.ups_power_w.push_back(now, ups_power.w());
    if (cb_power > params_.cb_rated) out.cb_overload_time += dt;

    if (cb.tripped()) {
      out.cb_tripped = true;
      out.sustained = now;
      out.ups_energy_used = params_.ups_capacity - ups.available();
      return out;
    }
  }
  out.sustained = end;
  out.ups_energy_used = params_.ups_capacity - ups.available();
  return out;
}

}  // namespace dcs::testbed
