// Software emulation of the paper's prototype hardware testbed
// (Section VI-B, Fig. 6): a server with two power sockets — one behind a
// circuit breaker on a power strip, one behind a relay to a UPS. When the
// relay closes, the UPS carries about half the server power (the two
// supplies split the load); otherwise the breaker carries everything.
//
// Published constants: the breaker sustains at most 232 W without being
// overloaded; the server idles at 273 W and peaks at 428 W (so the breaker
// is *always* overloaded when alone — the experiment starts sprinting at
// second one); the relay switches in under 10 ms, well inside the server's
// >30 ms ride-through.
//
// Policies (Section VII-D):
//  * ReservedTripTime(R) — "ours": overload the breaker only while it can
//    sustain the present load for more than R seconds; otherwise close the
//    relay so the UPS cancels the overload.
//  * CbFirst — overload the breaker until it is about to trip, then lean on
//    the UPS until it runs dry.
//  * CbOnly — no UPS at all (the paper's 65 s reference).
#pragma once

#include <cstdint>

#include "power/battery.h"
#include "power/circuit_breaker.h"
#include "power/relay.h"
#include "util/time_series.h"
#include "util/units.h"

namespace dcs::testbed {

enum class Policy { kReservedTripTime, kCbFirst, kCbOnly };

/// The reference CPU-utilization trace for testbed experiments — the
/// synthetic stand-in for the paper's "Yahoo trace with burst degree 1"
/// driving the server. Spans low and near-peak utilization so that breaker
/// trip times straddle the reserved-trip-time sweep (10-90 s), which is what
/// makes the Fig. 11b comparison meaningful.
[[nodiscard]] TimeSeries reference_utilization(
    Duration length = Duration::minutes(30), std::uint64_t seed = 77);

struct TestbedParams {
  Power idle = Power::watts(273.0);
  Power peak = Power::watts(428.0);
  /// Breaker rating ("sustains at most 232 W without being overloaded").
  Power cb_rated = Power::watts(232.0);
  power::TripCurveParams trip_curve{};
  /// Usable UPS energy. Small — the testbed UPS is a consumer unit.
  Energy ups_capacity = Energy::watt_hours(10.0);
  /// Fraction of server power the UPS carries while the relay is closed.
  double ups_share = 0.5;
  Duration relay_delay = Duration::seconds(0.010);
  Duration step = Duration::seconds(1);
};

struct TestbedOutcome {
  /// Time until the breaker tripped (or the trace ended, censored).
  Duration sustained = Duration::zero();
  bool cb_tripped = false;
  bool ups_exhausted = false;
  /// Aggregated time the breaker spent above its rating.
  Duration cb_overload_time = Duration::zero();
  Energy ups_energy_used;
  TimeSeries total_power_w;  ///< server draw
  TimeSeries cb_power_w;     ///< share through the breaker
  TimeSeries ups_power_w;    ///< share from the UPS
};

class Testbed {
 public:
  explicit Testbed(const TestbedParams& params);

  /// Drives the testbed with a CPU-utilization trace (values clamped to
  /// [0, 1]; the paper uses the Yahoo trace at burst degree 1).
  /// `reserved_trip_time` applies to the ReservedTripTime policy only.
  [[nodiscard]] TestbedOutcome run(const TimeSeries& utilization, Policy policy,
                                   Duration reserved_trip_time =
                                       Duration::seconds(30));

  [[nodiscard]] const TestbedParams& params() const noexcept { return params_; }

 private:
  TestbedParams params_;
};

}  // namespace dcs::testbed
