// Deterministic pseudo-random generator for synthetic trace generation.
//
// Experiments must be exactly reproducible across machines, so we use our
// own SplitMix64/xoshiro256** implementation instead of std::mt19937 with
// distribution objects (whose outputs are implementation-defined).
#pragma once

#include <cstdint>

namespace dcs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential with given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Stream splitting: derives the seed of an independent child stream from
  /// this generator's *current* state and `stream_id`. Pure integer mixing,
  /// so the mapping is identical on every platform; distinct stream ids (or
  /// distinct parent states) give statistically independent streams. Does
  /// not advance the parent.
  [[nodiscard]] std::uint64_t fork_seed(std::uint64_t stream_id) const noexcept;

  /// A generator seeded with fork_seed(stream_id). The determinism
  /// substrate for sweep task seeding: Rng(base).fork(cell).fork(replicate)
  /// yields a stable per-task stream regardless of thread count or
  /// scheduling order.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    return Rng(fork_seed(stream_id));
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dcs
