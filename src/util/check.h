// Contract-checking helpers used across the library.
//
// DCS_REQUIRE is for precondition violations that indicate a programming or
// configuration error; it throws std::invalid_argument so that misuse is
// detected deterministically in release builds as well (the simulator is a
// research instrument — silent corruption is worse than an exception).
// DCS_ENSURE is for internal invariants; it throws std::logic_error.
#pragma once

#include <stdexcept>
#include <string>

namespace dcs {

[[noreturn]] inline void require_failed(const char* cond, const char* file,
                                        int line, const std::string& msg) {
  throw std::invalid_argument(std::string("precondition failed: ") + cond +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : ": " + msg));
}

[[noreturn]] inline void ensure_failed(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  throw std::logic_error(std::string("invariant violated: ") + cond + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : ": " + msg));
}

}  // namespace dcs

#define DCS_REQUIRE(cond, msg)                                \
  do {                                                        \
    if (!(cond)) ::dcs::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define DCS_ENSURE(cond, msg)                                \
  do {                                                       \
    if (!(cond)) ::dcs::ensure_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
