#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dcs {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;
LogSink g_sink;  // empty => default stderr sink

void default_sink(LogLevel level, const std::string& message) {
  std::cerr << '[' << to_string(level) << "] " << message << '\n';
}

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(LogSink sink) {
  const std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::lock_guard lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace dcs
