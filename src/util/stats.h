// Small descriptive-statistics helpers for experiment summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dcs {

/// Streaming accumulator (Welford) for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs);
/// Linear-interpolation percentile, p in [0, 100]. Requires non-empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double p);
/// Pearson correlation coefficient; requires equal non-trivial lengths.
[[nodiscard]] double correlation(std::span<const double> a, std::span<const double> b);

}  // namespace dcs
