#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  DCS_REQUIRE(!xs.empty(), "mean of empty range");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
  DCS_REQUIRE(!xs.empty(), "percentile of empty range");
  DCS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double correlation(std::span<const double> a, std::span<const double> b) {
  DCS_REQUIRE(a.size() == b.size(), "correlation requires equal lengths");
  DCS_REQUIRE(a.size() >= 2, "correlation requires at least two samples");
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  DCS_REQUIRE(da > 0.0 && db > 0.0, "correlation undefined for constant input");
  return num / std::sqrt(da * db);
}

}  // namespace dcs
