#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace dcs {
namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() noexcept {
  // Box-Muller; draw until u1 is nonzero so log() is finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::uint64_t Rng::fork_seed(std::uint64_t stream_id) const noexcept {
  // Collapse the 256-bit state and the stream id into one word, then run it
  // through two SplitMix64 rounds so neighbouring stream ids land far apart.
  std::uint64_t x = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
  x ^= (stream_id + 1) * 0x9e3779b97f4a7c15ULL;
  (void)splitmix64(x);
  return splitmix64(x);
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

}  // namespace dcs
