// Piecewise curves on (x, y) knot tables. The circuit-breaker trip curve and
// the Oracle upper-bound table are both lookups of this shape; the log-log
// mode matches how breaker trip curves are published (straight lines on
// log-log paper, cf. Bulletin 1489-A).
#pragma once

#include <vector>

namespace dcs {

struct Knot {
  double x = 0.0;
  double y = 0.0;
};

/// Interpolating lookup over strictly-increasing x knots. Outside the knot
/// range the curve clamps to the end values.
class PiecewiseCurve {
 public:
  enum class Scale { kLinear, kLogLog };

  PiecewiseCurve(std::vector<Knot> knots, Scale scale = Scale::kLinear);

  [[nodiscard]] double operator()(double x) const;
  [[nodiscard]] const std::vector<Knot>& knots() const noexcept { return knots_; }

 private:
  std::vector<Knot> knots_;
  Scale scale_;
};

/// Clamps x into [lo, hi].
[[nodiscard]] double clamp(double x, double lo, double hi);

/// Linear interpolation between a and b by t in [0, 1].
[[nodiscard]] double lerp(double a, double b, double t);

}  // namespace dcs
