#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace dcs {

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DCS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  DCS_REQUIRE(row.size() == headers_.size(), "row width must match headers");
  rows_.push_back(std::move(row));
}

void TablePrinter::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void TablePrinter::add_row(const std::string& label,
                           const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dcs
