#include "util/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <stdexcept>

#include "util/check.h"

namespace dcs {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Config Config::from_string(std::string_view text) {
  Config cfg;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    ++lineno;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    DCS_REQUIRE(eq != std::string_view::npos,
                "config line " + std::to_string(lineno) + " has no '='");
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    DCS_REQUIRE(!key.empty(), "config line " + std::to_string(lineno) + " has empty key");
    cfg.set(key, value);
  }
  return cfg;
}

Config Config::from_args(std::span<const char* const> args) {
  Config cfg;
  for (const char* arg : args) {
    std::string_view sv{arg};
    const std::size_t eq = sv.find('=');
    DCS_REQUIRE(eq != std::string_view::npos && eq > 0,
                "argument '" + std::string(sv) + "' is not key=value");
    const std::string_view key = sv.substr(0, eq);
    const bool well_formed =
        std::all_of(key.begin(), key.end(), [](unsigned char c) {
          return std::isalnum(c) || c == '_' || c == '.';
        });
    if (!well_formed) {
      throw std::invalid_argument("argument '" + std::string(sv) +
                                  "' has a malformed key '" + std::string(key) +
                                  "' (keys are [A-Za-z0-9_.]+)");
    }
    cfg.set(std::string{key}, std::string{sv.substr(eq + 1)});
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::contains(const std::string& key) const {
  return entries_.contains(key);
}

void Config::require_known(std::span<const std::string_view> allowed) const {
  std::string unknown;
  for (const auto& [key, value] : entries_) {
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) {
      continue;
    }
    unknown += unknown.empty() ? "'" : ", '";
    unknown += key + "'";
  }
  if (unknown.empty()) return;
  std::string known;
  for (const std::string_view key : allowed) {
    known += known.empty() ? "'" : ", '";
    known += std::string(key) + "'";
  }
  throw std::invalid_argument("unknown config key(s) " + unknown +
                              "; known keys: " + known);
}

std::string Config::get_string(const std::string& key, std::string fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::move(fallback) : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(it->second, &consumed);
    DCS_REQUIRE(consumed == it->second.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "' is not a number: '" +
                                it->second + "'");
  }
}

int Config::get_int(const std::string& key, int fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  int v = 0;
  const auto* first = it->second.data();
  const auto* last = first + it->second.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) {
    throw std::invalid_argument("config key '" + key + "' is not an int: '" +
                                it->second + "'");
  }
  return v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("config key '" + key + "' is not a bool: '" +
                              it->second + "'");
}

}  // namespace dcs
