#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace dcs {
namespace {

std::string fmt(double v, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g %s", v, unit);
  return buf;
}

}  // namespace

std::string to_string(Duration d) {
  if (d.is_infinite()) return "inf";
  const double s = d.sec();
  if (std::fabs(s) >= 3600.0) return fmt(d.hrs(), "h");
  if (std::fabs(s) >= 120.0) return fmt(d.min(), "min");
  return fmt(s, "s");
}

std::string to_string(Power p) {
  const double w = p.w();
  if (std::fabs(w) >= 1e6) return fmt(p.mw(), "MW");
  if (std::fabs(w) >= 1e3) return fmt(p.kw(), "kW");
  return fmt(w, "W");
}

std::string to_string(Energy e) {
  const double j = e.j();
  if (std::fabs(j) >= 3.6e6) return fmt(e.kwh(), "kWh");
  if (std::fabs(j) >= 3600.0) return fmt(e.wh(), "Wh");
  return fmt(j, "J");
}

std::string to_string(Charge q) { return fmt(q.ah(), "Ah"); }

std::string to_string(Temperature t) { return fmt(t.c(), "C"); }

}  // namespace dcs
