// A tiny key=value configuration store so examples and benches can override
// simulation parameters from the command line ("key=value" arguments) or a
// config file, without pulling in an external dependency.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace dcs {

class Config {
 public:
  Config() = default;

  /// Parses "key=value" lines; '#' starts a comment; blank lines ignored.
  /// Throws std::invalid_argument on malformed lines.
  [[nodiscard]] static Config from_string(std::string_view text);

  /// Parses argv-style "key=value" tokens. Tokens without '=' and keys with
  /// characters outside [A-Za-z0-9_.] (e.g. "--flag=1") are rejected with
  /// std::invalid_argument.
  [[nodiscard]] static Config from_args(std::span<const char* const> args);

  void set(std::string key, std::string value);

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Throws std::invalid_argument listing every key not in `allowed` (and
  /// the allowed set), so callers reject misspelled knobs instead of
  /// silently ignoring them.
  void require_known(std::span<const std::string_view> allowed) const;

  /// Typed getters: return the parsed value, or `fallback` when the key is
  /// absent. Throw std::invalid_argument when present but unparsable.
  [[nodiscard]] std::string get_string(const std::string& key, std::string fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const noexcept {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace dcs
