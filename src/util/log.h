// Leveled logging with a process-wide sink. The simulator core never prints
// directly; benches and examples choose verbosity.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dcs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] const char* to_string(LogLevel level) noexcept;

/// Sets the minimum level that reaches the sink. Default: kWarn.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Replaces the sink (default writes "[LEVEL] message" to stderr).
/// Passing nullptr restores the default sink.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dcs

#define DCS_LOG(level)                         \
  if (::dcs::log_level() <= ::dcs::LogLevel::level) \
  ::dcs::detail::LogLine(::dcs::LogLevel::level)

#define DCS_LOG_DEBUG DCS_LOG(kDebug)
#define DCS_LOG_INFO DCS_LOG(kInfo)
#define DCS_LOG_WARN DCS_LOG(kWarn)
#define DCS_LOG_ERROR DCS_LOG(kError)
