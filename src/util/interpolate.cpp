#include "util/interpolate.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs {

PiecewiseCurve::PiecewiseCurve(std::vector<Knot> knots, Scale scale)
    : knots_(std::move(knots)), scale_(scale) {
  DCS_REQUIRE(knots_.size() >= 2, "curve needs at least two knots");
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    DCS_REQUIRE(knots_[i - 1].x < knots_[i].x, "knot x must strictly increase");
  }
  if (scale_ == Scale::kLogLog) {
    for (const Knot& k : knots_) {
      DCS_REQUIRE(k.x > 0.0 && k.y > 0.0, "log-log knots must be positive");
    }
  }
}

double PiecewiseCurve::operator()(double x) const {
  if (x <= knots_.front().x) return knots_.front().y;
  if (x >= knots_.back().x) return knots_.back().y;
  const auto it = std::upper_bound(
      knots_.begin(), knots_.end(), x,
      [](double lhs, const Knot& k) { return lhs < k.x; });
  const Knot& hi = *it;
  const Knot& lo = *(it - 1);
  if (scale_ == Scale::kLinear) {
    const double t = (x - lo.x) / (hi.x - lo.x);
    return lerp(lo.y, hi.y, t);
  }
  const double t = (std::log(x) - std::log(lo.x)) / (std::log(hi.x) - std::log(lo.x));
  return std::exp(lerp(std::log(lo.y), std::log(hi.y), t));
}

double clamp(double x, double lo, double hi) {
  DCS_REQUIRE(lo <= hi, "clamp bounds inverted");
  return std::min(std::max(x, lo), hi);
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace dcs
