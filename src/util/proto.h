// Minimal protobuf wire-format writer: just enough encoding to emit
// Perfetto TracePacket streams (obs/perfetto.h) without taking a protobuf
// dependency. Only the writer side exists — the repo never parses protobuf,
// it only produces files for external tools (Perfetto UI, trace_processor).
//
// Wire format recap (https://protobuf.dev/programming-guides/encoding/):
//   field tag   = (field_number << 3) | wire_type, varint-encoded
//   wire type 0 = varint (int32/int64/uint64/bool/enum)
//   wire type 1 = fixed64 (double)
//   wire type 2 = length-delimited (string/bytes/sub-message)
//
// Messages nest by building the sub-message in its own ProtoWriter and
// appending its bytes length-delimited.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dcs::proto {

/// Appends one varint to `out`.
inline void append_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// Accumulates one message's encoded bytes.
class ProtoWriter {
 public:
  /// Wire type 0: uint64/int32>=0/bool/enum fields.
  void varint(std::uint32_t field, std::uint64_t value) {
    tag(field, 0);
    append_varint(bytes_, value);
  }

  /// Wire type 0 with zig-zag-free two's-complement negative support
  /// (standard int32/int64 fields encode negatives as 10-byte varints).
  void int64(std::uint32_t field, std::int64_t value) {
    varint(field, static_cast<std::uint64_t>(value));
  }

  /// Wire type 1: double fields (IEEE-754 little-endian; the build targets
  /// are little-endian, matching the in-memory representation).
  void fixed64_double(std::uint32_t field, double value) {
    tag(field, 1);
    char buf[sizeof(double)];
    std::memcpy(buf, &value, sizeof(double));
    bytes_.append(buf, sizeof(double));
  }

  /// Wire type 1: raw 64-bit little-endian fields (fixed64/sfixed64).
  void fixed64(std::uint32_t field, std::uint64_t value) {
    tag(field, 1);
    char buf[sizeof(std::uint64_t)];
    std::memcpy(buf, &value, sizeof(std::uint64_t));
    bytes_.append(buf, sizeof(std::uint64_t));
  }

  /// Wire type 2: strings and raw bytes.
  void string(std::uint32_t field, std::string_view value) {
    tag(field, 2);
    append_varint(bytes_, value.size());
    bytes_.append(value.data(), value.size());
  }

  /// Wire type 2: a nested message's encoded bytes.
  void message(std::uint32_t field, const ProtoWriter& sub) {
    string(field, sub.bytes());
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return bytes_; }
  [[nodiscard]] bool empty() const noexcept { return bytes_.empty(); }
  void clear() noexcept { bytes_.clear(); }

 private:
  void tag(std::uint32_t field, std::uint32_t wire_type) {
    append_varint(bytes_, (static_cast<std::uint64_t>(field) << 3) | wire_type);
  }

  std::string bytes_;
};

}  // namespace dcs::proto
