// Dimensional quantity types used throughout the simulator.
//
// The power-infrastructure models mix seconds, minutes, watts, megawatts,
// joules, watt-hours and amp-hours; using distinct value types for each
// dimension makes unit errors compile errors instead of silent 3600x bugs.
// Each type is a thin wrapper over a double in a fixed SI base unit
// (seconds, watts, joules, coulombs, kelvin-relative celsius) with named
// factory functions and accessors for the common display units.
#pragma once

#include <cmath>
#include <compare>
#include <limits>
#include <string>

namespace dcs {

/// A span of simulated time. Base unit: seconds.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  [[nodiscard]] static constexpr Duration seconds(double s) noexcept {
    return Duration{s};
  }
  [[nodiscard]] static constexpr Duration minutes(double m) noexcept {
    return Duration{m * 60.0};
  }
  [[nodiscard]] static constexpr Duration hours(double h) noexcept {
    return Duration{h * 3600.0};
  }
  [[nodiscard]] static constexpr Duration infinity() noexcept {
    return Duration{std::numeric_limits<double>::infinity()};
  }
  [[nodiscard]] static constexpr Duration zero() noexcept { return {}; }

  [[nodiscard]] constexpr double sec() const noexcept { return s_; }
  [[nodiscard]] constexpr double min() const noexcept { return s_ / 60.0; }
  [[nodiscard]] constexpr double hrs() const noexcept { return s_ / 3600.0; }
  [[nodiscard]] constexpr bool is_infinite() const noexcept {
    return std::isinf(s_);
  }

  constexpr Duration& operator+=(Duration o) noexcept { s_ += o.s_; return *this; }
  constexpr Duration& operator-=(Duration o) noexcept { s_ -= o.s_; return *this; }
  constexpr Duration& operator*=(double k) noexcept { s_ *= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) noexcept { return Duration{a.s_ + b.s_}; }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept { return Duration{a.s_ - b.s_}; }
  friend constexpr Duration operator*(Duration a, double k) noexcept { return Duration{a.s_ * k}; }
  friend constexpr Duration operator*(double k, Duration a) noexcept { return Duration{a.s_ * k}; }
  friend constexpr Duration operator/(Duration a, double k) noexcept { return Duration{a.s_ / k}; }
  friend constexpr double operator/(Duration a, Duration b) noexcept { return a.s_ / b.s_; }
  friend constexpr auto operator<=>(Duration a, Duration b) noexcept = default;

 private:
  constexpr explicit Duration(double s) noexcept : s_(s) {}
  double s_ = 0.0;
};

/// Electrical (or heat) power. Base unit: watts.
class Power {
 public:
  constexpr Power() noexcept = default;

  [[nodiscard]] static constexpr Power watts(double w) noexcept { return Power{w}; }
  [[nodiscard]] static constexpr Power kilowatts(double kw) noexcept { return Power{kw * 1e3}; }
  [[nodiscard]] static constexpr Power megawatts(double mw) noexcept { return Power{mw * 1e6}; }
  [[nodiscard]] static constexpr Power zero() noexcept { return {}; }

  [[nodiscard]] constexpr double w() const noexcept { return w_; }
  [[nodiscard]] constexpr double kw() const noexcept { return w_ / 1e3; }
  [[nodiscard]] constexpr double mw() const noexcept { return w_ / 1e6; }

  constexpr Power& operator+=(Power o) noexcept { w_ += o.w_; return *this; }
  constexpr Power& operator-=(Power o) noexcept { w_ -= o.w_; return *this; }
  constexpr Power& operator*=(double k) noexcept { w_ *= k; return *this; }

  friend constexpr Power operator+(Power a, Power b) noexcept { return Power{a.w_ + b.w_}; }
  friend constexpr Power operator-(Power a, Power b) noexcept { return Power{a.w_ - b.w_}; }
  friend constexpr Power operator*(Power a, double k) noexcept { return Power{a.w_ * k}; }
  friend constexpr Power operator*(double k, Power a) noexcept { return Power{a.w_ * k}; }
  friend constexpr Power operator/(Power a, double k) noexcept { return Power{a.w_ / k}; }
  friend constexpr double operator/(Power a, Power b) noexcept { return a.w_ / b.w_; }
  friend constexpr Power operator-(Power a) noexcept { return Power{-a.w_}; }
  friend constexpr auto operator<=>(Power a, Power b) noexcept = default;

 private:
  constexpr explicit Power(double w) noexcept : w_(w) {}
  double w_ = 0.0;
};

/// Electrical (or thermal) energy. Base unit: joules.
class Energy {
 public:
  constexpr Energy() noexcept = default;

  [[nodiscard]] static constexpr Energy joules(double j) noexcept { return Energy{j}; }
  [[nodiscard]] static constexpr Energy watt_hours(double wh) noexcept { return Energy{wh * 3600.0}; }
  [[nodiscard]] static constexpr Energy kilowatt_hours(double kwh) noexcept { return Energy{kwh * 3.6e6}; }
  [[nodiscard]] static constexpr Energy zero() noexcept { return {}; }

  [[nodiscard]] constexpr double j() const noexcept { return j_; }
  [[nodiscard]] constexpr double wh() const noexcept { return j_ / 3600.0; }
  [[nodiscard]] constexpr double kwh() const noexcept { return j_ / 3.6e6; }

  constexpr Energy& operator+=(Energy o) noexcept { j_ += o.j_; return *this; }
  constexpr Energy& operator-=(Energy o) noexcept { j_ -= o.j_; return *this; }
  constexpr Energy& operator*=(double k) noexcept { j_ *= k; return *this; }

  friend constexpr Energy operator+(Energy a, Energy b) noexcept { return Energy{a.j_ + b.j_}; }
  friend constexpr Energy operator-(Energy a, Energy b) noexcept { return Energy{a.j_ - b.j_}; }
  friend constexpr Energy operator*(Energy a, double k) noexcept { return Energy{a.j_ * k}; }
  friend constexpr Energy operator*(double k, Energy a) noexcept { return Energy{a.j_ * k}; }
  friend constexpr Energy operator/(Energy a, double k) noexcept { return Energy{a.j_ / k}; }
  friend constexpr double operator/(Energy a, Energy b) noexcept { return a.j_ / b.j_; }
  friend constexpr auto operator<=>(Energy a, Energy b) noexcept = default;

 private:
  constexpr explicit Energy(double j) noexcept : j_(j) {}
  double j_ = 0.0;
};

// Cross-dimension arithmetic.
[[nodiscard]] constexpr Energy operator*(Power p, Duration t) noexcept {
  return Energy::joules(p.w() * t.sec());
}
[[nodiscard]] constexpr Energy operator*(Duration t, Power p) noexcept {
  return p * t;
}
[[nodiscard]] constexpr Power operator/(Energy e, Duration t) noexcept {
  return Power::watts(e.j() / t.sec());
}
[[nodiscard]] constexpr Duration operator/(Energy e, Power p) noexcept {
  return Duration::seconds(e.j() / p.w());
}

/// Battery charge. Base unit: coulombs (amp-seconds).
class Charge {
 public:
  constexpr Charge() noexcept = default;

  [[nodiscard]] static constexpr Charge coulombs(double c) noexcept { return Charge{c}; }
  [[nodiscard]] static constexpr Charge amp_hours(double ah) noexcept { return Charge{ah * 3600.0}; }
  [[nodiscard]] static constexpr Charge zero() noexcept { return {}; }

  [[nodiscard]] constexpr double c() const noexcept { return c_; }
  [[nodiscard]] constexpr double ah() const noexcept { return c_ / 3600.0; }

  /// Energy stored when drained at a (constant) bus voltage.
  [[nodiscard]] constexpr Energy at_volts(double volts) const noexcept {
    return Energy::joules(c_ * volts);
  }

  friend constexpr Charge operator+(Charge a, Charge b) noexcept { return Charge{a.c_ + b.c_}; }
  friend constexpr Charge operator-(Charge a, Charge b) noexcept { return Charge{a.c_ - b.c_}; }
  friend constexpr Charge operator*(Charge a, double k) noexcept { return Charge{a.c_ * k}; }
  friend constexpr Charge operator*(double k, Charge a) noexcept { return Charge{a.c_ * k}; }
  friend constexpr auto operator<=>(Charge a, Charge b) noexcept = default;

 private:
  constexpr explicit Charge(double c) noexcept : c_(c) {}
  double c_ = 0.0;
};

/// Temperature in degrees Celsius. Differences are also expressed in this
/// type; the room model only ever works with deltas against a setpoint, so
/// an affine/linear split would add noise without catching real bugs here.
class Temperature {
 public:
  constexpr Temperature() noexcept = default;

  [[nodiscard]] static constexpr Temperature celsius(double c) noexcept {
    return Temperature{c};
  }

  [[nodiscard]] constexpr double c() const noexcept { return c_; }

  constexpr Temperature& operator+=(Temperature o) noexcept { c_ += o.c_; return *this; }
  constexpr Temperature& operator-=(Temperature o) noexcept { c_ -= o.c_; return *this; }

  friend constexpr Temperature operator+(Temperature a, Temperature b) noexcept { return Temperature{a.c_ + b.c_}; }
  friend constexpr Temperature operator-(Temperature a, Temperature b) noexcept { return Temperature{a.c_ - b.c_}; }
  friend constexpr Temperature operator*(Temperature a, double k) noexcept { return Temperature{a.c_ * k}; }
  friend constexpr Temperature operator*(double k, Temperature a) noexcept { return Temperature{a.c_ * k}; }
  friend constexpr auto operator<=>(Temperature a, Temperature b) noexcept = default;

 private:
  constexpr explicit Temperature(double c) noexcept : c_(c) {}
  double c_ = 0.0;
};

// Human-readable formatting (picks a sensible display unit).
[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(Power p);
[[nodiscard]] std::string to_string(Energy e);
[[nodiscard]] std::string to_string(Charge q);
[[nodiscard]] std::string to_string(Temperature t);

}  // namespace dcs
