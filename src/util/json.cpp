#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dcs::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("invalid literal");
    }
    pos_ += lit.size();
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_literal("true"); return Value(true);
      case 'f': expect_literal("false"); return Value(false);
      case 'n': expect_literal("null"); return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object out;
    if (consume('}')) return Value(std::move(out));
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      out.insert_or_assign(std::move(key), parse_value());
      if (consume(',')) continue;
      expect('}');
      return Value(std::move(out));
    }
  }

  Value parse_array() {
    expect('[');
    Array out;
    if (consume(']')) return Value(std::move(out));
    for (;;) {
      out.push_back(parse_value());
      if (consume(',')) continue;
      expect(']');
      return Value(std::move(out));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape");
      }
    }
    fail("unterminated string");
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    // UTF-8 encode the BMP code point (surrogate pairs are passed through
    // as two separately-encoded code units; the records we read never use
    // them).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  DCS_REQUIRE(is_bool(), "json value is not a bool");
  return bool_;
}

double Value::as_number() const {
  DCS_REQUIRE(is_number(), "json value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  DCS_REQUIRE(is_string(), "json value is not a string");
  return string_;
}

const Array& Value::as_array() const {
  DCS_REQUIRE(is_array(), "json value is not an array");
  return *array_;
}

const Object& Value::as_object() const {
  DCS_REQUIRE(is_object(), "json value is not an object");
  return *object_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = object_->find(std::string(key));
  return it == object_->end() ? nullptr : &it->second;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  DCS_REQUIRE(v != nullptr, "missing json key: " + std::string(key));
  return *v;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("json: cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::string number_to_string(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0.0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

double read_number(const Value& v) {
  if (v.is_number()) return v.as_number();
  DCS_REQUIRE(v.is_string(), "json value is neither a number nor a "
                             "non-finite marker string");
  const std::string& s = v.as_string();
  if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  if (s == "inf") return std::numeric_limits<double>::infinity();
  if (s == "-inf") return -std::numeric_limits<double>::infinity();
  DCS_REQUIRE(false, "unknown non-finite number marker '" + s + "'");
  return 0.0;
}

}  // namespace dcs::json
