// ASCII table printer used by the benchmark harness to render the paper's
// figure series as aligned rows on stdout.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dcs {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);
  /// Formats numbers with the given precision (default %.3f).
  void add_numeric_row(const std::vector<double>& values, int precision = 3);
  /// Mixed row: first column text, remaining numeric.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string format_double(double v, int precision = 3);

}  // namespace dcs
