// Minimal JSON reader for the repo's own machine-readable records
// (BENCH_*.json perf records, google-benchmark output, trace files in
// tests). Parses a full document into an immutable Value tree; no external
// dependencies, no streaming — the records this reads are small.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace dcs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double n) : type_(Type::kNumber), number_(n) {}
  explicit Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), array_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), object_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Typed accessors; DCS_REQUIRE on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member or nullptr when absent (or when this is not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }
  /// Object member; DCS_REQUIRE when absent.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Array element count (0 for non-arrays).
  [[nodiscard]] std::size_t size() const noexcept {
    return type_ == Type::kArray ? array_->size() : 0;
  }
  [[nodiscard]] const Value& operator[](std::size_t i) const {
    return as_array()[i];
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // shared_ptr keeps Value cheap to copy and the tree immutable-by-use.
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document (trailing whitespace allowed, anything else
/// after the document throws). Throws std::invalid_argument with an offset
/// on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Reads and parses `path`; throws std::invalid_argument when the file
/// cannot be read or does not parse.
[[nodiscard]] Value parse_file(const std::string& path);

/// Serializes a double so `parse` + `read_number` return it bit-for-bit:
/// finite values render as `%.17g` numbers (strtod round-trips those
/// exactly), non-finite values as the strings "inf" / "-inf" / "nan"
/// (JSON has no literals for them). The exp checkpoint files rely on this
/// to reproduce rows byte-identically after a resume.
[[nodiscard]] std::string number_to_string(double v);

/// Reads a value written by `number_to_string`: a plain number, or one of
/// the non-finite marker strings. DCS_REQUIRE on anything else.
[[nodiscard]] double read_number(const Value& v);

}  // namespace dcs::json
