// Minimal CSV writer for exporting experiment series (one file per figure).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace dcs {

/// Writes RFC-4180-style CSV rows to a stream. Fields containing commas,
/// quotes or newlines are quoted and escaped.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(std::initializer_list<std::string> fields) {
    write_row(std::vector<std::string>(fields));
  }
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with %.10g.
  void write_numeric_row(const std::vector<double>& values);

 private:
  std::ostream* out_;
};

[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace dcs
