#include "util/time_series.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcs {

TimeSeries::TimeSeries(std::vector<Sample> samples) : samples_(std::move(samples)) {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    DCS_REQUIRE(samples_[i - 1].time < samples_[i].time,
                "sample times must be strictly increasing");
  }
}

void TimeSeries::push_back(Duration time, double value) {
  DCS_REQUIRE(samples_.empty() || samples_.back().time < time,
              "sample times must be strictly increasing");
  samples_.push_back(Sample{time, value});
}

Duration TimeSeries::start_time() const {
  DCS_REQUIRE(!samples_.empty(), "empty series has no start time");
  return samples_.front().time;
}

Duration TimeSeries::end_time() const {
  DCS_REQUIRE(!samples_.empty(), "empty series has no end time");
  return samples_.back().time;
}

double TimeSeries::at(Duration t, Interpolation mode) const {
  DCS_REQUIRE(!samples_.empty(), "cannot sample an empty series");
  if (t <= samples_.front().time) return samples_.front().value;
  if (t >= samples_.back().time) return samples_.back().value;
  // First sample strictly after t.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](Duration lhs, const Sample& s) { return lhs < s.time; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  if (mode == Interpolation::kStep) return lo.value;
  const double frac = (t - lo.time) / (hi.time - lo.time);
  return lo.value + frac * (hi.value - lo.value);
}

double TimeSeries::at(Duration t, Cursor& cursor, Interpolation mode) const {
  DCS_REQUIRE(!samples_.empty(), "cannot sample an empty series");
  if (t <= samples_.front().time) return samples_.front().value;
  if (t >= samples_.back().time) return samples_.back().value;
  // Restore the invariant samples_[i].time <= t < samples_[i + 1].time by
  // walking from the cursor; both loops terminate because t lies strictly
  // between the first and last sample times.
  std::size_t i = std::min(cursor.hint_, samples_.size() - 2);
  while (samples_[i].time > t) --i;
  while (samples_[i + 1].time <= t) ++i;
  cursor.hint_ = i;
  const Sample& lo = samples_[i];
  if (mode == Interpolation::kStep) return lo.value;
  const Sample& hi = samples_[i + 1];
  const double frac = (t - lo.time) / (hi.time - lo.time);
  return lo.value + frac * (hi.value - lo.value);
}

Duration TimeSeries::next_time_after(Duration t, Cursor& cursor) const {
  DCS_REQUIRE(!samples_.empty(), "cannot sample an empty series");
  if (t < samples_.front().time) return samples_.front().time;
  if (t >= samples_.back().time) return Duration::infinity();
  std::size_t i = std::min(cursor.hint_, samples_.size() - 2);
  while (samples_[i].time > t) --i;
  while (samples_[i + 1].time <= t) ++i;
  cursor.hint_ = i;
  return samples_[i + 1].time;
}

TimeSeries TimeSeries::slice(Duration from, Duration to, Interpolation mode) const {
  DCS_REQUIRE(from < to, "slice requires from < to");
  TimeSeries out;
  out.push_back(Duration::zero(), at(from, mode));
  for (const Sample& s : samples_) {
    if (s.time > from && s.time < to) out.push_back(s.time - from, s.value);
  }
  out.push_back(to - from, at(to, mode));
  return out;
}

TimeSeries TimeSeries::resample(Duration step, Interpolation mode) const {
  DCS_REQUIRE(step > Duration::zero(), "resample step must be positive");
  DCS_REQUIRE(!samples_.empty(), "cannot resample an empty series");
  TimeSeries out;
  for (Duration t = start_time(); t <= end_time(); t += step) {
    out.push_back(t, at(t, mode));
  }
  return out;
}

TimeSeries TimeSeries::map(const std::function<double(double)>& fn) const {
  TimeSeries out;
  for (const Sample& s : samples_) out.push_back(s.time, fn(s.value));
  return out;
}

TimeSeries TimeSeries::scaled(double k) const {
  return map([k](double v) { return v * k; });
}

TimeSeries TimeSeries::normalized_to_peak() const {
  const double peak = max_value();
  DCS_REQUIRE(peak > 0.0, "normalized_to_peak requires a positive peak");
  return scaled(1.0 / peak);
}

double TimeSeries::min_value() const {
  DCS_REQUIRE(!samples_.empty(), "empty series has no min");
  double m = samples_.front().value;
  for (const Sample& s : samples_) m = std::min(m, s.value);
  return m;
}

double TimeSeries::max_value() const {
  DCS_REQUIRE(!samples_.empty(), "empty series has no max");
  double m = samples_.front().value;
  for (const Sample& s : samples_) m = std::max(m, s.value);
  return m;
}

double TimeSeries::time_weighted_mean() const {
  const Duration total = span();
  if (total <= Duration::zero()) return samples_.empty() ? 0.0 : samples_.front().value;
  return integral() / total.sec();
}

double TimeSeries::integral() const {
  DCS_REQUIRE(!samples_.empty(), "empty series has no integral");
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    sum += samples_[i].value * (samples_[i + 1].time - samples_[i].time).sec();
  }
  return sum;
}

Duration TimeSeries::time_above(double threshold) const {
  Duration total = Duration::zero();
  for (std::size_t i = 0; i + 1 < samples_.size(); ++i) {
    if (samples_[i].value > threshold) {
      total += samples_[i + 1].time - samples_[i].time;
    }
  }
  return total;
}

TimeSeries TimeSeries::sum(const TimeSeries& a, const TimeSeries& b, Interpolation mode) {
  DCS_REQUIRE(!a.empty() && !b.empty(), "sum requires non-empty series");
  std::vector<Duration> times;
  times.reserve(a.size() + b.size());
  for (const Sample& s : a.samples()) times.push_back(s.time);
  for (const Sample& s : b.samples()) times.push_back(s.time);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  TimeSeries out;
  for (Duration t : times) out.push_back(t, a.at(t, mode) + b.at(t, mode));
  return out;
}

}  // namespace dcs
