#include "util/csv.h"

#include <cstdio>

namespace dcs {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    fields.emplace_back(buf);
  }
  write_row(fields);
}

}  // namespace dcs
