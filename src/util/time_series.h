// A time-indexed sequence of samples with the transforms the experiment
// harness needs: interpolation, resampling, slicing, scaling, aggregation
// and summary statistics. Used both for workload traces (demand over time)
// and for simulation outputs (power / performance over time).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/units.h"

namespace dcs {

/// One (time, value) sample. The meaning of `value` is up to the owner
/// (normalized demand, watts, a performance factor, ...).
struct Sample {
  Duration time;
  double value = 0.0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

/// How TimeSeries::at() fills in values between samples.
enum class Interpolation {
  kStep,    ///< value holds until the next sample (piecewise constant)
  kLinear,  ///< straight line between neighbouring samples
};

class TimeSeries {
 public:
  /// Amortized-O(1) sampling position for callers that walk a series with
  /// (nearly) monotone query times, e.g. the per-tick run loop. The cursor
  /// is just a hint — any position yields correct results — and is external
  /// to the series so one series can be shared across threads, each with its
  /// own cursor.
  class Cursor {
   public:
    Cursor() = default;

   private:
    friend class TimeSeries;
    std::size_t hint_ = 0;
  };

  TimeSeries() = default;
  explicit TimeSeries(std::vector<Sample> samples);

  /// Appends a sample; time must be strictly increasing.
  void push_back(Duration time, double value);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] const Sample& operator[](std::size_t i) const { return samples_[i]; }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }

  [[nodiscard]] Duration start_time() const;
  [[nodiscard]] Duration end_time() const;
  [[nodiscard]] Duration span() const { return end_time() - start_time(); }

  /// Value at `t`. Before the first sample returns the first value; after
  /// the last returns the last value.
  [[nodiscard]] double at(Duration t, Interpolation mode = Interpolation::kStep) const;

  /// Same result as at(), locating the bracketing samples from `cursor`
  /// instead of a binary search (amortized O(1) for monotone query times).
  [[nodiscard]] double at(Duration t, Cursor& cursor,
                          Interpolation mode = Interpolation::kStep) const;

  /// Time of the first sample strictly after `t`, or Duration::infinity()
  /// when no sample lies after it. The engine's span-skipping uses this as
  /// the next boundary where a step-interpolated series can change value.
  [[nodiscard]] Duration next_time_after(Duration t, Cursor& cursor) const;

  /// Sub-series covering [from, to] (endpoints sampled via `mode` so the
  /// slice is well-defined even when they fall between samples), shifted so
  /// the slice starts at t = 0.
  [[nodiscard]] TimeSeries slice(Duration from, Duration to,
                                 Interpolation mode = Interpolation::kStep) const;

  /// Re-samples onto a fixed step over [start, end].
  [[nodiscard]] TimeSeries resample(Duration step,
                                    Interpolation mode = Interpolation::kStep) const;

  /// Applies `fn` to each value, keeping timestamps.
  [[nodiscard]] TimeSeries map(const std::function<double(double)>& fn) const;

  /// Multiplies every value by `k`.
  [[nodiscard]] TimeSeries scaled(double k) const;

  /// Divides every value by the peak value so the maximum becomes 1.
  /// Requires a strictly positive peak.
  [[nodiscard]] TimeSeries normalized_to_peak() const;

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

  /// Time-weighted mean over the series span (step interpretation).
  [[nodiscard]] double time_weighted_mean() const;

  /// Time-weighted integral of value * dt (step interpretation). For a
  /// series of watts this yields joules.
  [[nodiscard]] double integral() const;

  /// Total time during which value > threshold (step interpretation).
  [[nodiscard]] Duration time_above(double threshold) const;

  /// Pointwise sum of two series; both are resampled onto the union of
  /// their timestamps using `mode`.
  [[nodiscard]] static TimeSeries sum(const TimeSeries& a, const TimeSeries& b,
                                      Interpolation mode = Interpolation::kStep);

 private:
  std::vector<Sample> samples_;
};

}  // namespace dcs
