// Fixed-step simulation engine.
//
// The paper's controller operates on a 1-second control period against
// second-granularity traces, so a fixed-step loop (plus a one-shot event
// queue for phase transitions) models the system exactly; a full
// discrete-event core would add machinery without adding fidelity.
#pragma once

#include <functional>
#include <vector>

#include "obs/trace.h"
#include "sim/component.h"
#include "sim/event_queue.h"
#include "util/units.h"

namespace dcs::sim {

class Engine {
 public:
  /// `step` is the tick width (default 1 s, the paper's control period).
  explicit Engine(Duration step = Duration::seconds(1));

  /// Registers a component; the engine does not take ownership. Components
  /// tick in registration order.
  void add(Component* component);

  /// Schedules `fn` to run at simulated time `at` (before the components of
  /// that tick).
  void schedule(Duration at, std::function<void()> fn);

  /// Runs until `end` (inclusive of the tick that starts at end - step).
  /// Returns the number of ticks executed.
  std::size_t run_until(Duration end);

  /// Runs a single tick.
  void step_once();

  /// Requests the run loop to exit after the current tick.
  void request_stop() noexcept { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const noexcept { return stop_requested_; }

  /// Optional structured-trace sink (must outlive the engine use; nullptr
  /// disables tracing). The engine emits run-start / run-end instants and
  /// one event per fired one-shot callback — it never prints, same
  /// discipline as util/log.h.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  [[nodiscard]] Duration now() const noexcept { return now_; }
  [[nodiscard]] Duration step() const noexcept { return step_; }

 private:
  Duration step_;
  Duration now_ = Duration::zero();
  bool stop_requested_ = false;
  obs::Tracer* tracer_ = nullptr;
  std::vector<Component*> components_;
  EventQueue events_;
};

}  // namespace dcs::sim
