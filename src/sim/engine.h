// Hybrid fixed-step / span-skipping simulation engine.
//
// The paper's controller operates on a 1-second control period against
// second-granularity traces, so every component still advances on a fixed
// tick grid — that is what the physics integrators and the recorder
// channels are written against. On top of the grid the engine runs
// event-driven span skipping: when every registered component publishes a
// next_event_hint() strictly ahead of now and no one-shot event is due
// before it, the engine *leaps* — it replays the per-tick component walk in
// a tight loop up to the boundary, skipping the per-tick event-queue and
// tracer checks. Because the leap replays the exact tick sequence (not a
// closed form), a skipping run is bit-identical to a tick-by-tick run; the
// hints only decide where the tight loop may run, never what it computes.
// One-shot events must therefore sit on the tick grid (schedule() enforces
// alignment), which also fixes their firing time exactly.
#pragma once

#include <functional>
#include <vector>

#include "obs/trace.h"
#include "sim/component.h"
#include "sim/event_queue.h"
#include "util/units.h"

namespace dcs::sim {

class Engine {
 public:
  /// `step` is the tick width (default 1 s, the paper's control period).
  explicit Engine(Duration step = Duration::seconds(1));

  /// Registers a component; the engine does not take ownership. Components
  /// tick in registration order.
  void add(Component* component);

  /// Schedules `fn` to run at simulated time `at` (before the components of
  /// that tick). `at` must lie on the tick grid: an off-grid event would
  /// otherwise silently slip to the next tick boundary.
  void schedule(Duration at, std::function<void()> fn);

  /// Runs until `end` (inclusive of the tick that starts at end - step).
  /// Returns the number of ticks executed. A stop requested before the call
  /// (e.g. a drain signal between setup and run) is honored: no tick runs.
  std::size_t run_until(Duration end);

  /// Runs a single tick.
  void step_once();

  /// Requests the run loop to exit after the current tick.
  void request_stop() noexcept { stop_requested_ = true; }
  [[nodiscard]] bool stop_requested() const noexcept { return stop_requested_; }
  /// Clears a previous stop request so the engine can run again.
  void clear_stop() noexcept { stop_requested_ = false; }

  /// Enables/disables span skipping (on by default). Results are identical
  /// either way; turning it off forces the plain per-tick loop, which the
  /// bit-identity tests use as the reference.
  void set_span_skip(bool enabled) noexcept { span_skip_ = enabled; }
  [[nodiscard]] bool span_skip() const noexcept { return span_skip_; }

  /// Number of leaps taken and ticks executed inside leaps (observability
  /// for tests and perf work).
  [[nodiscard]] std::size_t leap_count() const noexcept { return leap_count_; }
  [[nodiscard]] std::size_t leaped_ticks() const noexcept { return leaped_ticks_; }

  /// Optional structured-trace sink (must outlive the engine use; nullptr
  /// disables tracing). The engine emits run-start / run-end instants and
  /// one event per fired one-shot callback — it never prints, same
  /// discipline as util/log.h.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const noexcept { return tracer_; }

  [[nodiscard]] Duration now() const noexcept { return now_; }
  [[nodiscard]] Duration step() const noexcept { return step_; }

 private:
  /// Largest grid time <= min(component hints, next event, end) that a leap
  /// may run to, or `now_` when leaping is not possible.
  [[nodiscard]] Duration leap_limit(Duration end) const;

  Duration step_;
  Duration now_ = Duration::zero();
  bool stop_requested_ = false;
  bool span_skip_ = true;
  std::size_t leap_count_ = 0;
  std::size_t leaped_ticks_ = 0;
  obs::Tracer* tracer_ = nullptr;
  std::vector<Component*> components_;
  EventQueue events_;
};

}  // namespace dcs::sim
