// One-shot timed callbacks (phase transitions, burst arrival, faults).
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "util/units.h"

namespace dcs::sim {

class EventQueue {
 public:
  void schedule(Duration at, std::function<void()> fn);

  /// Runs (and removes) every event with time <= now, in time order.
  /// Returns the number of events fired.
  std::size_t fire_due(Duration now);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event; requires non-empty queue.
  [[nodiscard]] Duration next_time() const;

 private:
  struct Event {
    Duration at;
    std::uint64_t seq;  // FIFO tie-break for equal times
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dcs::sim
