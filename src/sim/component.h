// Interface implemented by every simulated subsystem (breakers, batteries,
// chillers, controllers, ...). The engine advances all registered components
// with a fixed step, in registration order — the data-center wiring
// registers producers (workload, compute) before the controller and the
// controller before the physical plant, so each tick sees a consistent
// dataflow.
#pragma once

#include <string_view>

#include "util/units.h"

namespace dcs::sim {

class Component {
 public:
  virtual ~Component() = default;

  /// Advances the component from `now` to `now + dt`.
  virtual void tick(Duration now, Duration dt) = 0;

  /// Earliest future time at which this component's *inputs* can change
  /// discontinuously (next workload sample, supply excursion, fault edge,
  /// ...). The engine uses the minimum across components to bound a
  /// quiescent span it can replay in a tight leap loop without consulting
  /// the event queue or tracer each tick. Returning a time <= `now` (the
  /// default) declines to provide a hint and disables leaping while this
  /// component is registered — always safe, since leaping never changes
  /// results, only removes per-tick engine overhead.
  [[nodiscard]] virtual Duration next_event_hint(Duration now) const {
    return now;
  }

  /// Stable identifier used in logs and recorder channels.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

}  // namespace dcs::sim
