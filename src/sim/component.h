// Interface implemented by every simulated subsystem (breakers, batteries,
// chillers, controllers, ...). The engine advances all registered components
// with a fixed step, in registration order — the data-center wiring
// registers producers (workload, compute) before the controller and the
// controller before the physical plant, so each tick sees a consistent
// dataflow.
#pragma once

#include <string_view>

#include "util/units.h"

namespace dcs::sim {

class Component {
 public:
  virtual ~Component() = default;

  /// Advances the component from `now` to `now + dt`.
  virtual void tick(Duration now, Duration dt) = 0;

  /// Stable identifier used in logs and recorder channels.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

}  // namespace dcs::sim
