#include "sim/engine.h"

#include "obs/profile.h"
#include "util/check.h"

namespace dcs::sim {

Engine::Engine(Duration step) : step_(step) {
  DCS_REQUIRE(step > Duration::zero(), "engine step must be positive");
}

void Engine::add(Component* component) {
  DCS_REQUIRE(component != nullptr, "component must not be null");
  components_.push_back(component);
}

void Engine::schedule(Duration at, std::function<void()> fn) {
  DCS_REQUIRE(at >= now_, "cannot schedule events in the past");
  events_.schedule(at, std::move(fn));
}

void Engine::step_once() {
  const std::size_t fired = events_.fire_due(now_);
  if (fired > 0 && tracer_ != nullptr) {
    tracer_->instant(now_, "engine", "events-fired",
                     {obs::arg("count", static_cast<double>(fired))});
  }
  for (Component* c : components_) c->tick(now_, step_);
  now_ += step_;
}

std::size_t Engine::run_until(Duration end) {
  DCS_OBS_SCOPE("sim.run");
  if (tracer_ != nullptr) {
    tracer_->instant(now_, "engine", "run-start",
                     {obs::arg("end_s", end.sec()),
                      obs::arg("step_s", step_.sec())});
  }
  std::size_t ticks = 0;
  stop_requested_ = false;
  while (now_ < end && !stop_requested_) {
    step_once();
    ++ticks;
  }
  if (tracer_ != nullptr) {
    tracer_->instant(now_, "engine", "run-end",
                     {obs::arg("ticks", static_cast<double>(ticks)),
                      obs::arg("stopped", stop_requested_)});
  }
  return ticks;
}

}  // namespace dcs::sim
