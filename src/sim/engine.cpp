#include "sim/engine.h"

#include <cmath>

#include "obs/profile.h"
#include "util/check.h"

namespace dcs::sim {

Engine::Engine(Duration step) : step_(step) {
  DCS_REQUIRE(step > Duration::zero(), "engine step must be positive");
}

void Engine::add(Component* component) {
  DCS_REQUIRE(component != nullptr, "component must not be null");
  components_.push_back(component);
}

void Engine::schedule(Duration at, std::function<void()> fn) {
  DCS_REQUIRE(at >= now_, "cannot schedule events in the past");
  // fire_due() fires events with at <= now_, so an off-grid time would
  // silently slip to the next tick boundary; require alignment instead.
  const double steps = at / step_;
  const double rounded = std::round(steps);
  DCS_REQUIRE(std::abs(steps - rounded) <= 1e-9 * std::max(1.0, rounded),
              "scheduled event time must lie on the tick grid");
  events_.schedule(at, std::move(fn));
}

void Engine::step_once() {
  const std::size_t fired = events_.fire_due(now_);
  if (fired > 0 && tracer_ != nullptr) {
    tracer_->instant(now_, "engine", "events-fired",
                     {obs::arg("count", static_cast<double>(fired))});
  }
  for (Component* c : components_) c->tick(now_, step_);
  now_ += step_;
}

Duration Engine::leap_limit(Duration end) const {
  if (components_.empty()) return now_;
  Duration limit = end;
  if (!events_.empty()) {
    const Duration next_event = events_.next_time();
    // An already-due event must fire through step_once().
    if (next_event <= now_) return now_;
    limit = std::min(limit, next_event);
  }
  for (const Component* c : components_) {
    const Duration hint = c->next_event_hint(now_);
    if (hint <= now_) return now_;  // component declines span skipping
    limit = std::min(limit, hint);
  }
  return limit;
}

std::size_t Engine::run_until(Duration end) {
  DCS_OBS_SCOPE("sim.run");
  if (tracer_ != nullptr) {
    tracer_->instant(now_, "engine", "run-start",
                     {obs::arg("end_s", end.sec()),
                      obs::arg("step_s", step_.sec())});
  }
  std::size_t ticks = 0;
  while (now_ < end && !stop_requested_) {
    if (span_skip_) {
      const Duration limit = leap_limit(end);
      // Leap only when at least two ticks fit: a single tick gains nothing
      // over step_once() and the guard keeps the loop structure simple.
      if (limit >= now_ + step_ + step_) {
        ++leap_count_;
        // Replay of the exact per-tick walk: bit-identical to step_once()
        // minus the event-queue poll (provably idle until `limit`) and the
        // tracer check (the engine emits nothing on event-free ticks).
        while (now_ < limit && !stop_requested_) {
          for (Component* c : components_) c->tick(now_, step_);
          now_ += step_;
          ++ticks;
          ++leaped_ticks_;
        }
        continue;
      }
    }
    step_once();
    ++ticks;
  }
  if (tracer_ != nullptr) {
    tracer_->instant(now_, "engine", "run-end",
                     {obs::arg("ticks", static_cast<double>(ticks)),
                      obs::arg("stopped", stop_requested_)});
  }
  return ticks;
}

}  // namespace dcs::sim
