#include "sim/engine.h"

#include "util/check.h"

namespace dcs::sim {

Engine::Engine(Duration step) : step_(step) {
  DCS_REQUIRE(step > Duration::zero(), "engine step must be positive");
}

void Engine::add(Component* component) {
  DCS_REQUIRE(component != nullptr, "component must not be null");
  components_.push_back(component);
}

void Engine::schedule(Duration at, std::function<void()> fn) {
  DCS_REQUIRE(at >= now_, "cannot schedule events in the past");
  events_.schedule(at, std::move(fn));
}

void Engine::step_once() {
  events_.fire_due(now_);
  for (Component* c : components_) c->tick(now_, step_);
  now_ += step_;
}

std::size_t Engine::run_until(Duration end) {
  std::size_t ticks = 0;
  stop_requested_ = false;
  while (now_ < end && !stop_requested_) {
    step_once();
    ++ticks;
  }
  return ticks;
}

}  // namespace dcs::sim
