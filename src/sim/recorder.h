// Named metric channels captured during a run. Each channel becomes a
// TimeSeries that benches print / export and tests assert on.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/time_series.h"
#include "util/units.h"

namespace dcs::sim {

class Recorder {
  struct Channel;

 public:
  /// Stable handle to one channel: map nodes never move, so hot-path callers
  /// resolve the name once and append per tick without a map lookup. A
  /// default-constructed handle is unusable until assigned from handle().
  class Handle {
   public:
    Handle() = default;

   private:
    friend class Recorder;
    explicit Handle(Channel* ch) noexcept : ch_(ch) {}
    Channel* ch_ = nullptr;
  };

  /// Appends a sample to `channel` (created on first use). Times within a
  /// channel must be non-decreasing; equal-time samples overwrite.
  void record(std::string_view channel, Duration time, double value);

  /// Resolves (creating on first use) a stable handle for `channel`.
  [[nodiscard]] Handle handle(std::string_view channel);
  /// Appends through a handle; identical semantics to the name overload.
  void record(Handle h, Duration time, double value);

  [[nodiscard]] bool has(std::string_view channel) const;
  /// Throws std::invalid_argument for unknown channels.
  [[nodiscard]] const TimeSeries& series(std::string_view channel) const;
  [[nodiscard]] std::vector<std::string> channels() const;

  void clear();

 private:
  // Channels are appended strictly in time order during simulation, so store
  // raw samples and expose them as TimeSeries (built lazily).
  struct Channel {
    TimeSeries series;
  };
  std::map<std::string, Channel, std::less<>> channels_;
};

}  // namespace dcs::sim
