// Named metric channels captured during a run. Each channel becomes a
// TimeSeries that benches print / export and tests assert on.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/time_series.h"
#include "util/units.h"

namespace dcs::sim {

class Recorder {
 public:
  /// Appends a sample to `channel` (created on first use). Times within a
  /// channel must be non-decreasing; equal-time samples overwrite.
  void record(std::string_view channel, Duration time, double value);

  [[nodiscard]] bool has(std::string_view channel) const;
  /// Throws std::invalid_argument for unknown channels.
  [[nodiscard]] const TimeSeries& series(std::string_view channel) const;
  [[nodiscard]] std::vector<std::string> channels() const;

  void clear();

 private:
  // Channels are appended strictly in time order during simulation, so store
  // raw samples and expose them as TimeSeries (built lazily).
  struct Channel {
    TimeSeries series;
  };
  std::map<std::string, Channel, std::less<>> channels_;
};

}  // namespace dcs::sim
