#include "sim/event_queue.h"

#include "util/check.h"

namespace dcs::sim {

void EventQueue::schedule(Duration at, std::function<void()> fn) {
  DCS_REQUIRE(fn != nullptr, "event callback must be set");
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

std::size_t EventQueue::fire_due(Duration now) {
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().at <= now) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the callable (events are rare relative to ticks).
    auto fn = heap_.top().fn;
    heap_.pop();
    fn();
    ++fired;
  }
  return fired;
}

Duration EventQueue::next_time() const {
  DCS_REQUIRE(!heap_.empty(), "no pending events");
  return heap_.top().at;
}

}  // namespace dcs::sim
