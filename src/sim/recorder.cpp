#include "sim/recorder.h"

#include "util/check.h"

namespace dcs::sim {

namespace {

void append(TimeSeries& ts, Duration time, double value) {
  if (!ts.empty() && ts.end_time() == time) {
    // Same-tick overwrite: rebuild the last sample.
    std::vector<Sample> samples = ts.samples();
    samples.back().value = value;
    ts = TimeSeries{std::move(samples)};
    return;
  }
  ts.push_back(time, value);
}

}  // namespace

void Recorder::record(std::string_view channel, Duration time, double value) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    it = channels_.emplace(std::string{channel}, Channel{}).first;
  }
  append(it->second.series, time, value);
}

Recorder::Handle Recorder::handle(std::string_view channel) {
  auto it = channels_.find(channel);
  if (it == channels_.end()) {
    it = channels_.emplace(std::string{channel}, Channel{}).first;
  }
  return Handle{&it->second};
}

void Recorder::record(Handle h, Duration time, double value) {
  DCS_REQUIRE(h.ch_ != nullptr, "recorder handle is not bound to a channel");
  append(h.ch_->series, time, value);
}

bool Recorder::has(std::string_view channel) const {
  return channels_.find(channel) != channels_.end();
}

const TimeSeries& Recorder::series(std::string_view channel) const {
  const auto it = channels_.find(channel);
  DCS_REQUIRE(it != channels_.end(),
              "unknown recorder channel: " + std::string{channel});
  return it->second.series;
}

std::vector<std::string> Recorder::channels() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, _] : channels_) names.push_back(name);
  return names;
}

void Recorder::clear() { channels_.clear(); }

}  // namespace dcs::sim
