#include "workload/predictor.h"

#include <algorithm>

#include "util/check.h"
#include "workload/burst.h"

namespace dcs::workload {

BurstTruth measure_burst_truth(const TimeSeries& demand) {
  const BurstStats stats = analyze_bursts(demand, 1.0);
  BurstTruth truth;
  truth.duration = stats.over_capacity_time;
  truth.max_degree = std::max(1.0, stats.peak_demand);
  truth.mean_degree = std::max(1.0, stats.mean_burst_demand);
  return truth;
}

ErrorfulForecast::ErrorfulForecast(BurstTruth truth, double relative_error)
    : truth_(truth), error_(relative_error) {
  DCS_REQUIRE(relative_error >= -1.0, "error below -100% is meaningless");
}

Duration ErrorfulForecast::predicted_duration() const {
  return truth_.duration * (1.0 + error_);
}

double ErrorfulForecast::apply(double true_value) const {
  return true_value * (1.0 + error_);
}

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  DCS_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha in (0, 1]");
}

double EwmaPredictor::observe(double demand) {
  DCS_REQUIRE(demand >= 0.0, "demand must be non-negative");
  if (!primed_) {
    level_ = demand;
    primed_ = true;
  } else {
    level_ = alpha_ * demand + (1.0 - alpha_) * level_;
  }
  return level_;
}

}  // namespace dcs::workload
