// Trace file I/O: load demand traces from CSV so real datasets (the actual
// MS/Yahoo traces, or an operator's own telemetry) can drive every
// experiment in place of the synthetic stand-ins.
//
// Format: two numeric columns "time_s,value" with an optional header line;
// '#' lines are comments. Times must be strictly increasing.
#pragma once

#include <iosfwd>
#include <string>

#include "util/time_series.h"

namespace dcs::workload {

/// Parses a trace from a stream. Throws std::invalid_argument on malformed
/// input (bad numbers, non-increasing time, wrong column count).
[[nodiscard]] TimeSeries read_trace_csv(std::istream& in);

/// Loads a trace from a file; throws std::invalid_argument when the file
/// cannot be opened.
[[nodiscard]] TimeSeries load_trace_csv(const std::string& path);

/// Writes "time_s,value" rows (with header).
void write_trace_csv(std::ostream& out, const TimeSeries& trace);

/// Saves a trace to a file; throws std::invalid_argument on I/O failure.
void save_trace_csv(const std::string& path, const TimeSeries& trace);

}  // namespace dcs::workload
