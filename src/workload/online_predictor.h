// Online burst statistics: learns burst durations and magnitudes from the
// demand stream itself, so the Prediction and Heuristic strategies can run
// without oracle-supplied forecasts. This implements the paper's pointer to
// workload-prediction literature ([5], [19], [36], [38]) with a simple,
// fully-deterministic estimator: exponentially-weighted statistics over the
// bursts observed so far.
#pragma once

#include <cstddef>

#include "util/units.h"

namespace dcs::workload {

class OnlineBurstPredictor {
 public:
  struct Params {
    /// Demand level above which a burst is in progress.
    double threshold = 1.0;
    /// EW weight of the newest completed burst (1 = only the last burst).
    double learning_rate = 0.5;
    /// Forecasts before any burst completed.
    Duration prior_duration = Duration::minutes(10);
    double prior_mean_degree = 2.0;
    double prior_max_degree = 3.0;
  };

  OnlineBurstPredictor() : OnlineBurstPredictor(Params{}) {}
  explicit OnlineBurstPredictor(const Params& params);

  /// Feeds one demand observation covering `dt`.
  void observe(double demand, Duration dt);

  /// Predicted duration of the next (or current) burst.
  [[nodiscard]] Duration predicted_duration() const;
  /// Predicted time-mean demand during bursts.
  [[nodiscard]] double predicted_mean_degree() const;
  /// Predicted peak demand during bursts.
  [[nodiscard]] double predicted_max_degree() const;

  /// Completed bursts learned so far.
  [[nodiscard]] std::size_t bursts_completed() const noexcept { return completed_; }
  [[nodiscard]] bool in_burst() const noexcept { return in_burst_; }
  /// Elapsed time of the burst in progress (zero outside bursts).
  [[nodiscard]] Duration current_burst_elapsed() const noexcept {
    return current_elapsed_;
  }

 private:
  void finish_burst();

  Params params_;
  bool in_burst_ = false;
  Duration current_elapsed_ = Duration::zero();
  double current_integral_ = 0.0;
  double current_max_ = 1.0;
  std::size_t completed_ = 0;
  // EW estimates (valid once completed_ > 0).
  Duration est_duration_ = Duration::zero();
  double est_mean_degree_ = 1.0;
  double est_max_degree_ = 1.0;
};

}  // namespace dcs::workload
