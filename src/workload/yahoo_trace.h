// Synthetic stand-in for the Yahoo! inter-data-center request trace
// (Chen et al., INFOCOM 2011 [6]) used by the paper (Fig. 7b).
//
// The paper aggregates 70 per-server request traces into a smooth 30-minute
// baseline, then injects a burst from minute 5 for a configurable duration
// by scaling one server's trace — yielding a family of traces parameterized
// by (burst degree, burst duration), which Fig. 10 sweeps (degree 2.6-3.6,
// duration 1-15 min). We reproduce exactly that parameterization: a smooth
// sub-capacity baseline with a flat-topped burst of the requested degree.
#pragma once

#include <cstdint>

#include "util/time_series.h"
#include "util/units.h"

namespace dcs::workload {

struct YahooTraceParams {
  Duration length = Duration::minutes(30);
  Duration step = Duration::seconds(1);
  /// Demand during the burst, normalized to peak-normal capacity.
  double burst_degree = 3.2;
  Duration burst_start = Duration::minutes(5);
  Duration burst_duration = Duration::minutes(15);
  /// Mean of the smooth baseline (normalized). The aggregated Yahoo trace
  /// "does not change so severely", so variation about this level is small.
  double base_level = 0.22;
  /// Peak-to-mean swing of the baseline's slow component.
  double base_swing = 0.06;
  /// Multiplicative noise sigma.
  double noise = 0.02;
  std::uint64_t seed = 0x5EED0003;
};

[[nodiscard]] TimeSeries generate_yahoo_trace(const YahooTraceParams& params = {});

}  // namespace dcs::workload
