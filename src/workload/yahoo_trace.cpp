#include "workload/yahoo_trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "workload/burst.h"

namespace dcs::workload {

TimeSeries generate_yahoo_trace(const YahooTraceParams& params) {
  DCS_REQUIRE(params.length > Duration::zero(), "trace length must be positive");
  DCS_REQUIRE(params.step > Duration::zero(), "trace step must be positive");
  DCS_REQUIRE(params.burst_degree >= 1.0, "burst degree >= 1");
  DCS_REQUIRE(params.burst_start >= Duration::zero(), "burst start must be non-negative");
  DCS_REQUIRE(params.burst_duration > Duration::zero(), "burst duration must be positive");
  DCS_REQUIRE(params.burst_start + params.burst_duration <= params.length,
              "burst must fit inside the trace");
  DCS_REQUIRE(params.base_level > 0.0 && params.base_level + params.base_swing < 1.0,
              "baseline must stay below capacity");
  DCS_REQUIRE(params.noise >= 0.0 && params.noise < 0.2, "noise sigma in [0, 0.2)");

  Rng rng(params.seed);
  TimeSeries base;
  for (Duration t = Duration::zero(); t <= params.length; t += params.step) {
    const double t_min = t.min();
    double v = params.base_level +
               params.base_swing * std::sin(t_min * 0.21 + 0.6) +
               0.3 * params.base_swing * std::sin(t_min * 0.047);
    v *= 1.0 + rng.normal(0.0, params.noise);
    base.push_back(t, std::max(0.05, v));
  }
  return inject_burst(base, params.burst_start, params.burst_duration,
                      params.burst_degree);
}

}  // namespace dcs::workload
