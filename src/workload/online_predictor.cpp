#include "workload/online_predictor.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::workload {

OnlineBurstPredictor::OnlineBurstPredictor(const Params& params)
    : params_(params) {
  DCS_REQUIRE(params_.threshold > 0.0, "threshold must be positive");
  DCS_REQUIRE(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0,
              "learning rate in (0, 1]");
  DCS_REQUIRE(params_.prior_duration > Duration::zero(),
              "prior duration must be positive");
  DCS_REQUIRE(params_.prior_mean_degree >= 1.0, "prior mean degree >= 1");
  DCS_REQUIRE(params_.prior_max_degree >= params_.prior_mean_degree,
              "prior max below prior mean");
}

void OnlineBurstPredictor::observe(double demand, Duration dt) {
  DCS_REQUIRE(demand >= 0.0, "demand must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  if (demand > params_.threshold) {
    in_burst_ = true;
    current_elapsed_ += dt;
    current_integral_ += demand * dt.sec();
    current_max_ = std::max(current_max_, demand);
    return;
  }
  if (in_burst_) finish_burst();
}

void OnlineBurstPredictor::finish_burst() {
  const double mean = current_integral_ / current_elapsed_.sec();
  if (completed_ == 0) {
    est_duration_ = current_elapsed_;
    est_mean_degree_ = mean;
    est_max_degree_ = current_max_;
  } else {
    const double a = params_.learning_rate;
    est_duration_ = est_duration_ * (1.0 - a) + current_elapsed_ * a;
    est_mean_degree_ = est_mean_degree_ * (1.0 - a) + mean * a;
    est_max_degree_ = est_max_degree_ * (1.0 - a) + current_max_ * a;
  }
  ++completed_;
  in_burst_ = false;
  current_elapsed_ = Duration::zero();
  current_integral_ = 0.0;
  current_max_ = 1.0;
}

Duration OnlineBurstPredictor::predicted_duration() const {
  // While a burst is in progress its elapsed time is a lower bound that can
  // exceed the historical estimate — take the max so the forecast never
  // claims a burst will end in the past.
  const Duration base =
      completed_ > 0 ? est_duration_ : params_.prior_duration;
  return std::max(base, current_elapsed_);
}

double OnlineBurstPredictor::predicted_mean_degree() const {
  return completed_ > 0 ? est_mean_degree_ : params_.prior_mean_degree;
}

double OnlineBurstPredictor::predicted_max_degree() const {
  const double base =
      completed_ > 0 ? est_max_degree_ : params_.prior_max_degree;
  return std::max(base, current_max_);
}

}  // namespace dcs::workload
