#include "workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "util/check.h"
#include "util/csv.h"

namespace dcs::workload {

TimeSeries read_trace_csv(std::istream& in) {
  TimeSeries out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    const std::size_t comma = line.find(',');
    DCS_REQUIRE(comma != std::string::npos,
                "line " + std::to_string(lineno) + ": expected 'time,value'");
    DCS_REQUIRE(line.find(',', comma + 1) == std::string::npos,
                "line " + std::to_string(lineno) + ": too many columns");
    const std::string time_field = line.substr(0, comma);
    const std::string value_field = line.substr(comma + 1);

    // A leading non-numeric row is the header; anywhere else it is an error.
    const auto looks_numeric = [](const std::string& s) {
      const std::size_t pos = s.find_first_not_of(" \t");
      if (pos == std::string::npos) return false;
      const char c = s[pos];
      return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.';
    };
    if (!looks_numeric(time_field)) {
      DCS_REQUIRE(out.empty(), "trace CSV line " + std::to_string(lineno) +
                                   ": cannot parse '" + line + "'");
      continue;
    }
    const auto parse = [&](const std::string& field) {
      std::size_t consumed = 0;
      double v = 0.0;
      try {
        v = std::stod(field, &consumed);
      } catch (const std::exception&) {
        throw std::invalid_argument("trace CSV line " + std::to_string(lineno) +
                                    ": cannot parse '" + field + "'");
      }
      DCS_REQUIRE(field.find_first_not_of(" \t\r", consumed) ==
                      std::string::npos,
                  "trace CSV line " + std::to_string(lineno) +
                      ": trailing characters in '" + field + "'");
      return v;
    };
    const double t = parse(time_field);
    const double v = parse(value_field);
    out.push_back(Duration::seconds(t), v);
  }
  DCS_REQUIRE(!out.empty(), "trace CSV contains no samples");
  return out;
}

TimeSeries load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  DCS_REQUIRE(in.good(), "cannot open trace file: " + path);
  return read_trace_csv(in);
}

void write_trace_csv(std::ostream& out, const TimeSeries& trace) {
  CsvWriter csv(out);
  csv.write_row({"time_s", "value"});
  for (const Sample& s : trace.samples()) {
    csv.write_numeric_row({s.time.sec(), s.value});
  }
}

void save_trace_csv(const std::string& path, const TimeSeries& trace) {
  std::ofstream out(path);
  DCS_REQUIRE(out.good(), "cannot write trace file: " + path);
  write_trace_csv(out, trace);
  out.flush();
  DCS_REQUIRE(out.good(), "I/O error writing trace file: " + path);
}

}  // namespace dcs::workload
