#include "workload/burst.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::workload {

BurstStats analyze_bursts(const TimeSeries& demand, double threshold) {
  DCS_REQUIRE(!demand.empty(), "cannot analyze an empty trace");
  BurstStats stats;
  stats.peak_demand = demand.max_value();
  stats.mean_demand = demand.time_weighted_mean();

  Duration current_run = Duration::zero();
  bool in_burst = false;
  double burst_weighted_sum = 0.0;
  const auto& samples = demand.samples();
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    const Duration dt = samples[i + 1].time - samples[i].time;
    if (samples[i].value > threshold) {
      if (!in_burst) {
        in_burst = true;
        ++stats.burst_count;
        current_run = Duration::zero();
      }
      current_run += dt;
      stats.over_capacity_time += dt;
      burst_weighted_sum += samples[i].value * dt.sec();
      stats.longest_burst = std::max(stats.longest_burst, current_run);
    } else {
      in_burst = false;
    }
  }
  if (stats.over_capacity_time > Duration::zero()) {
    stats.mean_burst_demand = burst_weighted_sum / stats.over_capacity_time.sec();
  }
  return stats;
}

TimeSeries inject_burst(const TimeSeries& demand, Duration start,
                        Duration duration, double degree, double blend) {
  DCS_REQUIRE(degree > 0.0, "burst degree must be positive");
  DCS_REQUIRE(duration > Duration::zero(), "burst duration must be positive");
  DCS_REQUIRE(blend >= 0.0 && blend <= 1.0, "blend in [0, 1]");
  const Duration end = start + duration;
  TimeSeries out;
  for (const Sample& s : demand.samples()) {
    if (s.time >= start && s.time < end) {
      out.push_back(s.time, degree + blend * (s.value - 1.0));
    } else {
      out.push_back(s.time, s.value);
    }
  }
  return out;
}

}  // namespace dcs::workload
