// Burst analysis and injection on normalized demand traces.
//
// Convention: demand is normalized to the fleet's peak-normal capacity, so
// demand > 1 means the normally-active cores are insufficient — the paper's
// definition of a burst (its "real burst duration" is the aggregated time
// above capacity).
#pragma once

#include <cstddef>

#include "util/time_series.h"
#include "util/units.h"

namespace dcs::workload {

struct BurstStats {
  /// Aggregated time with demand above the threshold.
  Duration over_capacity_time = Duration::zero();
  /// Number of contiguous runs above the threshold.
  std::size_t burst_count = 0;
  /// Longest contiguous run above the threshold.
  Duration longest_burst = Duration::zero();
  double peak_demand = 0.0;
  double mean_demand = 0.0;
  /// Mean demand during over-capacity time (the burst magnitude).
  double mean_burst_demand = 0.0;
};

/// Scans a demand trace (step interpretation) for bursts above `threshold`.
[[nodiscard]] BurstStats analyze_bursts(const TimeSeries& demand,
                                        double threshold = 1.0);

/// Returns a copy of `demand` whose values in [start, start + duration) are
/// replaced by `degree` (plus the original sub-threshold variation scaled by
/// `blend`, default 0 = flat top), reproducing the paper's Yahoo-trace burst
/// injection.
[[nodiscard]] TimeSeries inject_burst(const TimeSeries& demand, Duration start,
                                      Duration duration, double degree,
                                      double blend = 0.0);

}  // namespace dcs::workload
