// Synthetic stand-in for the Microsoft data-center traffic trace
// (Kandula et al., IMC 2009 [17]) used by the paper (Figs. 1 and 7a).
//
// The proprietary trace is unavailable, so we generate a seeded synthetic
// trace that reproduces the properties the paper documents for its 30-minute
// cut (seconds 71,188-72,987 of the original):
//   * consecutive bursts over the window,
//   * demand normalized to a capacity of 3 GB/s = 1.0, with peaks above 3x,
//   * an aggregated over-capacity ("real burst") duration of ~16.2 minutes.
// The controller observes only demand-vs-capacity, so matching this envelope
// preserves every behaviour the experiments exercise (see DESIGN.md).
#pragma once

#include <cstdint>

#include "util/time_series.h"
#include "util/units.h"

namespace dcs::workload {

struct MsTraceParams {
  Duration length = Duration::minutes(30);
  Duration step = Duration::seconds(1);
  /// Demand level between bursts (normalized).
  double baseline = 0.55;
  /// Multiplicative noise sigma.
  double noise = 0.03;
  std::uint64_t seed = 0x5EED0001;
};

/// Generates the normalized MS-style demand trace.
[[nodiscard]] TimeSeries generate_ms_trace(const MsTraceParams& params = {});

/// Generates a long-horizon (default 24 h) MS-style traffic trace in GB/s,
/// the analogue of paper Fig. 1, with about `bursts_per_day` bursts.
struct MsDayTraceParams {
  Duration length = Duration::hours(24);
  Duration step = Duration::seconds(30);
  double baseline_gbps = 2.2;
  double peak_gbps = 9.5;
  int bursts_per_day = 7;  // paper: ~200 bursts/month
  std::uint64_t seed = 0x5EED0002;
};
[[nodiscard]] TimeSeries generate_ms_day_trace(const MsDayTraceParams& params = {});

}  // namespace dcs::workload
