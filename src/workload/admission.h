// Admission control: when active cores cannot cover the demand, the excess
// requests are denied (the paper's "last resort", after Bhattacharya et
// al. [3]). This class only does the accounting — served vs dropped demand
// integrated over time — which both the performance metric and the revenue
// model consume.
#pragma once

#include "util/units.h"

namespace dcs::workload {

class AdmissionController {
 public:
  /// Records one control step: `demand` arrived, `capacity` was available.
  /// Returns the served demand min(demand, capacity).
  double admit(double demand, double capacity, Duration dt);

  /// Integrated served demand (normalized demand x seconds).
  [[nodiscard]] double served_integral() const noexcept { return served_; }
  /// Integrated dropped demand.
  [[nodiscard]] double dropped_integral() const noexcept { return dropped_; }
  /// Integrated offered demand.
  [[nodiscard]] double offered_integral() const noexcept { return served_ + dropped_; }
  /// Fraction of offered demand that was dropped (0 when nothing offered).
  [[nodiscard]] double drop_fraction() const noexcept;
  /// Total time during which any demand was dropped.
  [[nodiscard]] Duration degraded_time() const noexcept { return degraded_; }

  void reset() noexcept;

 private:
  double served_ = 0.0;
  double dropped_ = 0.0;
  Duration degraded_ = Duration::zero();
};

}  // namespace dcs::workload
