// Burst prediction interfaces.
//
// The Prediction and Heuristic strategies consume forecasts: a predicted
// burst duration BDu_p and an estimated best average sprinting degree
// SDe_p. The paper evaluates robustness by perturbing the *true* values
// with a relative estimation error (Fig. 9: -100 % ... +100 %), so the
// reference implementation is an oracle analyzer plus an error wrapper.
// An EWMA short-horizon demand forecaster is included for reactive use.
#pragma once

#include "util/time_series.h"
#include "util/units.h"

namespace dcs::workload {

/// Ground-truth burst descriptors extracted from a demand trace.
struct BurstTruth {
  /// Aggregated time above capacity (the paper's "real burst duration").
  Duration duration = Duration::zero();
  /// Maximum demand over the trace.
  double max_degree = 1.0;
  /// Time-weighted mean demand during over-capacity periods.
  double mean_degree = 1.0;
};

/// Extracts the ground truth from a demand trace (threshold = capacity 1.0).
[[nodiscard]] BurstTruth measure_burst_truth(const TimeSeries& demand);

/// Wraps truth with a relative estimation error: value * (1 + error).
/// error = 0 is a perfect forecast; -1 predicts zero.
class ErrorfulForecast {
 public:
  ErrorfulForecast(BurstTruth truth, double relative_error);

  [[nodiscard]] Duration predicted_duration() const;
  /// Applies the error to an externally-supplied true value (the best
  /// average sprinting degree is computed by the Oracle, not the trace).
  [[nodiscard]] double apply(double true_value) const;
  [[nodiscard]] double relative_error() const noexcept { return error_; }
  [[nodiscard]] const BurstTruth& truth() const noexcept { return truth_; }

 private:
  BurstTruth truth_;
  double error_;
};

/// Exponentially-weighted moving-average demand forecaster (one-step-ahead).
class EwmaPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3);

  /// Feeds an observation; returns the forecast for the next step.
  double observe(double demand);
  [[nodiscard]] double forecast() const noexcept { return level_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }

 private:
  double alpha_;
  double level_ = 0.0;
  bool primed_ = false;
};

}  // namespace dcs::workload
