#include "workload/ms_trace.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace dcs::workload {
namespace {

/// Trapezoidal burst: linear 30 s ramps at both ends, flat top at `height`.
struct Burst {
  double start_min;
  double end_min;
  double height;
};

double burst_value(const Burst& b, double t_min) {
  constexpr double kRampMin = 0.5;
  if (t_min <= b.start_min - kRampMin || t_min >= b.end_min + kRampMin) return 0.0;
  double shape = 1.0;
  if (t_min < b.start_min) {
    shape = (t_min - (b.start_min - kRampMin)) / kRampMin;
  } else if (t_min > b.end_min) {
    shape = ((b.end_min + kRampMin) - t_min) / kRampMin;
  }
  return b.height * shape;
}

}  // namespace

TimeSeries generate_ms_trace(const MsTraceParams& params) {
  DCS_REQUIRE(params.length > Duration::zero(), "trace length must be positive");
  DCS_REQUIRE(params.step > Duration::zero(), "trace step must be positive");
  DCS_REQUIRE(params.baseline > 0.0 && params.baseline < 1.0,
              "baseline must be a sub-capacity level");
  DCS_REQUIRE(params.noise >= 0.0 && params.noise < 0.3, "noise sigma in [0, 0.3)");

  // Consecutive bursts whose above-capacity spans sum to ~16.2 minutes, the
  // paper's measured "real burst duration" for its MS cut; the tallest
  // exceeds 3x capacity like the >9 GB/s peak over the 3 GB/s budget.
  const std::vector<Burst> bursts = {
      {1.0, 4.2, 1.30},    // opening burst, ~1.9 normalized
      {5.0, 10.2, 2.45},   // tallest: ~3.0 normalized (trips uncontrolled
                           // sprinting shortly after it starts)
      {12.5, 15.0, 1.30},  // ~1.9
      {17.5, 21.5, 2.10},  // ~2.7
  };

  Rng rng(params.seed);
  TimeSeries out;
  for (Duration t = Duration::zero(); t <= params.length; t += params.step) {
    const double t_min = t.min();
    // Gentle baseline wander plus the burst envelope.
    double v = params.baseline * (1.0 + 0.06 * std::sin(t_min * 0.7) +
                                  0.04 * std::sin(t_min * 0.13 + 1.0));
    for (const Burst& b : bursts) v += burst_value(b, t_min);
    v *= 1.0 + rng.normal(0.0, params.noise);
    out.push_back(t, std::max(0.05, v));
  }
  return out;
}

TimeSeries generate_ms_day_trace(const MsDayTraceParams& params) {
  DCS_REQUIRE(params.length > Duration::zero(), "trace length must be positive");
  DCS_REQUIRE(params.step > Duration::zero(), "trace step must be positive");
  DCS_REQUIRE(params.peak_gbps > params.baseline_gbps,
              "peak must exceed baseline");
  DCS_REQUIRE(params.bursts_per_day > 0, "need at least one burst");

  Rng rng(params.seed);
  // Draw burst centers/durations/heights up front.
  struct Spike {
    double center_min;
    double half_width_min;
    double height_gbps;
  };
  std::vector<Spike> spikes;
  spikes.reserve(static_cast<std::size_t>(params.bursts_per_day));
  const double total_min = params.length.min();
  for (int i = 0; i < params.bursts_per_day; ++i) {
    Spike s;
    s.center_min = rng.uniform(5.0, total_min - 5.0);
    s.half_width_min = rng.uniform(1.5, 8.0);
    s.height_gbps =
        rng.uniform(0.35, 1.0) * (params.peak_gbps - params.baseline_gbps);
    spikes.push_back(s);
  }

  TimeSeries out;
  for (Duration t = Duration::zero(); t <= params.length; t += params.step) {
    const double t_min = t.min();
    // Mild diurnal swing around the baseline.
    double v = params.baseline_gbps *
               (1.0 + 0.25 * std::sin(2.0 * std::numbers::pi * t_min / (24.0 * 60.0)));
    for (const Spike& s : spikes) {
      const double d = (t_min - s.center_min) / s.half_width_min;
      if (std::fabs(d) < 4.0) v += s.height_gbps * std::exp(-d * d);
    }
    v *= 1.0 + rng.normal(0.0, 0.05);
    out.push_back(t, std::clamp(v, 0.1, params.peak_gbps * 1.05));
  }
  return out;
}

}  // namespace dcs::workload
