#include "workload/admission.h"

#include <algorithm>

#include "util/check.h"

namespace dcs::workload {

double AdmissionController::admit(double demand, double capacity, Duration dt) {
  DCS_REQUIRE(demand >= 0.0, "demand must be non-negative");
  DCS_REQUIRE(capacity >= 0.0, "capacity must be non-negative");
  DCS_REQUIRE(dt > Duration::zero(), "dt must be positive");
  const double served = std::min(demand, capacity);
  const double dropped = demand - served;
  served_ += served * dt.sec();
  dropped_ += dropped * dt.sec();
  if (dropped > 1e-12) degraded_ += dt;
  return served;
}

double AdmissionController::drop_fraction() const noexcept {
  const double offered = offered_integral();
  return offered > 0.0 ? dropped_ / offered : 0.0;
}

void AdmissionController::reset() noexcept {
  served_ = 0.0;
  dropped_ = 0.0;
  degraded_ = Duration::zero();
}

}  // namespace dcs::workload
