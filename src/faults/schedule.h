// A validated, time-ordered collection of faults for one run.
//
// Schedules are plain data: build one by add()ing faults, scale a whole
// schedule's magnitudes for severity sweeps, or draw a reproducible random
// schedule for property tests. An empty schedule injects nothing and the
// DataCenter skips the injector entirely (the fault-free path stays
// bit-identical).
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault.h"
#include "util/units.h"

namespace dcs::faults {

class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Validates and appends one fault. Throws std::invalid_argument on a
  /// malformed window or an out-of-range magnitude.
  void add(const Fault& fault);

  [[nodiscard]] const std::vector<Fault>& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] bool empty() const noexcept { return faults_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return faults_.size(); }
  [[nodiscard]] bool any_active(Duration t) const noexcept;
  /// Worst severity_of() over the faults active at `t`.
  [[nodiscard]] double severity_at(Duration t) const noexcept;

  /// Earliest fault start or end strictly after `t`, or Duration::infinity()
  /// when no edge lies ahead. The engine's span-skipping treats every edge
  /// as an event boundary, so leaps never cross a fault transition.
  [[nodiscard]] Duration next_edge_after(Duration t) const noexcept;

  /// Same windows and kinds with every magnitude multiplied by `factor`
  /// (clamped to each kind's valid range). Severity sweeps hold the seed
  /// fixed and vary only this factor.
  [[nodiscard]] FaultSchedule scaled(double factor) const;

  /// Reproducible random schedule of 2-4 infrastructure faults with
  /// magnitudes and windows inside a survivable envelope (bounded
  /// derating, bounded windows) so a controlled run can always ride
  /// through. `severity` in [0, 1] scales every magnitude; the draw
  /// sequence does not depend on it, so the same seed yields the same
  /// kinds and windows at every severity.
  [[nodiscard]] static FaultSchedule random(std::uint64_t seed,
                                            Duration horizon, double severity);

 private:
  std::vector<Fault> faults_;
};

}  // namespace dcs::faults
