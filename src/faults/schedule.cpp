#include "faults/schedule.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace dcs::faults {
namespace {

/// Valid magnitude range per kind (derating/bias must leave the component
/// with some capability, so their upper bound is exclusive of 1).
struct MagnitudeRange {
  double lo;
  double hi;
  bool hi_inclusive;
};

MagnitudeRange magnitude_range(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kBreakerDerating:
    case FaultKind::kBreakerNuisanceBias:
      return {0.0, 1.0, false};
    case FaultKind::kChillerDegradedCop:
      return {0.0, 5.0, true};
    case FaultKind::kGeneratorStartFailure:
    case FaultKind::kGeneratorDelayedStart:
      return {0.0, 3600.0, true};  // seconds for the delayed start
    case FaultKind::kSensorNoisy:
      return {0.0, 2.0, true};
    default:
      return {0.0, 1.0, true};
  }
}

}  // namespace

void FaultSchedule::add(const Fault& fault) {
  DCS_REQUIRE(fault.start >= Duration::zero(),
              "fault window must start at or after t=0");
  DCS_REQUIRE(fault.end > fault.start, "fault window must have positive length");
  const MagnitudeRange range = magnitude_range(fault.kind);
  const bool in_range =
      fault.magnitude >= range.lo &&
      (range.hi_inclusive ? fault.magnitude <= range.hi
                          : fault.magnitude < range.hi);
  DCS_REQUIRE(in_range, "fault magnitude out of range for its kind");
  faults_.push_back(fault);
}

Duration FaultSchedule::next_edge_after(Duration t) const noexcept {
  Duration next = Duration::infinity();
  for (const Fault& f : faults_) {
    if (f.start > t) next = std::min(next, f.start);
    if (f.end > t) next = std::min(next, f.end);
  }
  return next;
}

bool FaultSchedule::any_active(Duration t) const noexcept {
  return std::any_of(faults_.begin(), faults_.end(),
                     [t](const Fault& f) { return f.active_at(t); });
}

double FaultSchedule::severity_at(Duration t) const noexcept {
  double worst = 0.0;
  for (const Fault& f : faults_) {
    if (f.active_at(t)) worst = std::max(worst, severity_of(f));
  }
  return worst;
}

FaultSchedule FaultSchedule::scaled(double factor) const {
  DCS_REQUIRE(factor >= 0.0, "scale factor must be non-negative");
  FaultSchedule out;
  for (Fault f : faults_) {
    const MagnitudeRange range = magnitude_range(f.kind);
    const double hi = range.hi_inclusive ? range.hi : range.hi - 1e-9;
    f.magnitude = std::clamp(f.magnitude * factor, range.lo, hi);
    out.add(f);
  }
  return out;
}

FaultSchedule FaultSchedule::random(std::uint64_t seed, Duration horizon,
                                    double severity) {
  DCS_REQUIRE(horizon > Duration::zero(), "horizon must be positive");
  DCS_REQUIRE(severity >= 0.0 && severity <= 1.0, "severity in [0, 1]");
  // Survivable envelope: derating stays mild (a derated breaker still
  // carries the peak-normal load with UPS help) and windows stay short
  // relative to the breaker thermal time scale.
  struct Pick {
    FaultKind kind;
    double lo;
    double hi;
  };
  static constexpr Pick kPool[] = {
      {FaultKind::kUpsBankOutage, 0.20, 0.60},
      {FaultKind::kUpsCapacityFade, 0.10, 0.45},
      {FaultKind::kBreakerDerating, 0.04, 0.15},
      {FaultKind::kBreakerNuisanceBias, 0.10, 0.30},
      {FaultKind::kChillerFailure, 0.15, 0.50},
      {FaultKind::kChillerDegradedCop, 0.10, 0.40},
      {FaultKind::kTesValveStuck, 0.30, 1.00},
      {FaultKind::kGeneratorDelayedStart, 10.0, 60.0},
  };
  Rng rng(seed);
  FaultSchedule out;
  const std::size_t count = 2 + rng.uniform_index(3);
  for (std::size_t i = 0; i < count; ++i) {
    const Pick& pick = kPool[rng.uniform_index(std::size(kPool))];
    const double base = rng.uniform(pick.lo, pick.hi);
    const double start_frac = rng.uniform(0.15, 0.60);
    const double duration_s = rng.uniform(60.0, 300.0);
    Fault f;
    f.kind = pick.kind;
    f.magnitude = base * severity;
    f.start = horizon * start_frac;
    f.end = std::min(f.start + Duration::seconds(duration_s), horizon);
    if (f.end > f.start) out.add(f);
  }
  return out;
}

}  // namespace dcs::faults
