// Per-tick invariant watchdog (DESIGN.md section 6).
//
// Under fault injection the controller's safety argument is no longer a
// static proof — a derated breaker or a blinded sensor can push the plant
// past an invariant without any exception firing. The watchdog re-checks
// the invariants every tick on the *true* component state and turns
// violations into a structured report on RunResult instead of silent bad
// numbers:
//   * every breaker's trip accumulator stays below 1 (and never trips),
//   * every UPS bank's state of charge stays within [reserve floor, 1],
//   * the TES state of charge stays within [0, 1],
//   * the room stays at or below the critical threshold.
#pragma once

#include <cstddef>
#include <string>

#include "obs/decision.h"
#include "obs/trace.h"
#include "power/topology.h"
#include "thermal/room_model.h"
#include "thermal/tes_tank.h"
#include "util/units.h"

namespace dcs::faults {

struct WatchdogReport {
  std::size_t checks = 0;
  /// Total violating (tick, invariant) pairs; a persistent violation counts
  /// every tick it persists.
  std::size_t violations = 0;
  std::string first_message;
  Duration first_time = Duration::infinity();
  [[nodiscard]] bool ok() const noexcept { return violations == 0; }
};

class Watchdog {
 public:
  struct Options {
    /// UPS reserve floor the banks must never discharge below.
    double ups_floor = 0.0;
    /// Breaker checks are meaningless for the uncontrolled baseline (a trip
    /// is its expected failure mode, not an invariant violation).
    bool check_breakers = true;
    /// Room check applies to the modes that promise thermal safety.
    bool check_room = true;
  };

  explicit Watchdog(const Options& options) : options_(options) {}

  /// Checks every invariant against the current plant state.
  void check(Duration now, const power::PowerTopology& topology,
             const thermal::RoomModel& room, const thermal::TesTank* tes);

  [[nodiscard]] const WatchdogReport& report() const noexcept {
    return report_;
  }

  /// Optional structured-trace sink: fail() emits one "violation" instant
  /// per violating (tick, invariant) pair.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  /// Optional decision-provenance log: check() emits one
  /// watchdog-violation trigger per violation *episode* (the tick a clean
  /// state turns violating), not per persisting tick — chains want the
  /// onset, the per-tick stream is the tracer's job.
  void set_decision_log(obs::DecisionLog* decisions) noexcept {
    decisions_ = decisions;
  }

 private:
  void fail(Duration now, std::string message);

  Options options_;
  WatchdogReport report_;
  obs::Tracer* tracer_ = nullptr;
  obs::DecisionLog* decisions_ = nullptr;
  bool prev_violating_ = false;
  std::string last_message_;
};

}  // namespace dcs::faults
