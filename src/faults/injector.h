// Applies a FaultSchedule to a live plant, tick by tick.
//
// apply(now) folds the faults active at `now` into one State (factors
// multiply, biases take the worst) and pushes it into the bound component
// models: PDU breakers and UPS banks, the cooling plant, the TES tank and
// the generator. Outside every fault window the pushed state is exactly
// neutral, so an injector whose schedule never activates leaves the run
// bit-identical to a run without one.
//
// measure() is the controller-boundary sensor filter: stale faults latch
// the last healthy reading, dropped faults read zero, noisy faults add
// relative Gaussian noise from a seeded stream (reproducible per run).
#pragma once

#include <cstdint>
#include <vector>

#include "faults/schedule.h"
#include "obs/decision.h"
#include "obs/trace.h"
#include "power/generator.h"
#include "power/topology.h"
#include "thermal/cooling_plant.h"
#include "thermal/tes_tank.h"
#include "util/rng.h"
#include "util/units.h"

namespace dcs::faults {

class FaultInjector {
 public:
  struct Bindings {
    power::PowerTopology* topology = nullptr;
    thermal::CoolingPlant* cooling = nullptr;
    thermal::TesTank* tes = nullptr;               // may be null (no TES)
    power::DieselGenerator* generator = nullptr;   // may be null
  };

  /// The combined effect of the faults active at the last apply() time.
  /// All factors are 1 and all biases 0 when nothing is active.
  struct State {
    std::size_t active_count = 0;
    /// Worst severity_of() over the active faults, in [0, 1].
    double severity = 0.0;
    double ups_availability = 1.0;
    double ups_capacity_factor = 1.0;
    double breaker_rating_factor = 1.0;
    double breaker_trip_bias = 0.0;
    double chiller_capacity_factor = 1.0;
    double chiller_cop_penalty = 0.0;
    double tes_discharge_factor = 1.0;
    bool generator_start_inhibited = false;
    Duration generator_extra_delay = Duration::zero();
    bool sensor_fault_active = false;
  };

  FaultInjector(FaultSchedule schedule, const Bindings& bindings,
                std::uint64_t seed = 0x5eedu);

  /// Recomputes the active-fault State for `now` and pushes it into every
  /// bound component. Call once per tick, before the controller steps.
  void apply(Duration now);

  [[nodiscard]] const State& state() const noexcept { return state_; }
  [[nodiscard]] const FaultSchedule& schedule() const noexcept {
    return schedule_;
  }
  /// True once any fault has been active during the run.
  [[nodiscard]] bool ever_active() const noexcept { return ever_active_; }

  /// Optional structured-trace sink: apply() emits one "inject" instant when
  /// a scheduled fault becomes active and one "clear" instant when it ends.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }
  /// Optional decision-provenance log: the same activation edges emit
  /// fault-inject / fault-clear trigger records, so every downstream
  /// ladder move or sprint end can cite the fault that set it off.
  void set_decision_log(obs::DecisionLog* decisions) noexcept {
    decisions_ = decisions;
  }

  /// Filters one sensor reading through the sensor faults active at `now`.
  /// Mutates latch/noise state, so call exactly once per channel per tick
  /// (extra calls stay deterministic but consume the noise stream).
  [[nodiscard]] double measure(SensorChannel channel, Duration now,
                               double true_value);

 private:
  struct SensorState {
    double last = 0.0;     // last healthy reading, for stale latching
    double latch = 0.0;
    bool latched = false;
  };

  /// True when the fields apply() pushes into components match (the
  /// active_count/severity/sensor fields are bookkeeping, not pushed).
  [[nodiscard]] static bool push_equal(const State& a, const State& b) noexcept;

  FaultSchedule schedule_;
  Bindings bindings_;
  State state_;
  State last_pushed_;
  bool pushed_ = false;
  Rng rng_;
  obs::Tracer* tracer_ = nullptr;
  obs::DecisionLog* decisions_ = nullptr;
  bool ever_active_ = false;
  SensorState sensors_[3];
  std::vector<bool> was_active_;  // per scheduled fault, for edge detection
};

}  // namespace dcs::faults
