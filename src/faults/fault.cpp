#include "faults/fault.h"

#include <algorithm>

namespace dcs::faults {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kUpsBankOutage: return "ups-bank-outage";
    case FaultKind::kUpsCapacityFade: return "ups-capacity-fade";
    case FaultKind::kBreakerDerating: return "breaker-derating";
    case FaultKind::kBreakerNuisanceBias: return "breaker-nuisance-bias";
    case FaultKind::kChillerFailure: return "chiller-failure";
    case FaultKind::kChillerDegradedCop: return "chiller-degraded-cop";
    case FaultKind::kTesValveStuck: return "tes-valve-stuck";
    case FaultKind::kGeneratorStartFailure: return "generator-start-failure";
    case FaultKind::kGeneratorDelayedStart: return "generator-delayed-start";
    case FaultKind::kSensorStale: return "sensor-stale";
    case FaultKind::kSensorDropped: return "sensor-dropped";
    case FaultKind::kSensorNoisy: return "sensor-noisy";
  }
  return "?";
}

std::string_view to_string(SensorChannel channel) noexcept {
  switch (channel) {
    case SensorChannel::kDemand: return "demand";
    case SensorChannel::kPower: return "power";
    case SensorChannel::kTemperature: return "temperature";
  }
  return "?";
}

bool is_sensor_fault(FaultKind kind) noexcept {
  return kind == FaultKind::kSensorStale || kind == FaultKind::kSensorDropped ||
         kind == FaultKind::kSensorNoisy;
}

double severity_of(const Fault& fault) noexcept {
  const double m = fault.magnitude;
  switch (fault.kind) {
    case FaultKind::kUpsBankOutage: return std::clamp(m, 0.0, 1.0);
    case FaultKind::kUpsCapacityFade: return std::clamp(0.8 * m, 0.0, 1.0);
    case FaultKind::kBreakerDerating: return std::clamp(2.0 * m, 0.0, 1.0);
    case FaultKind::kBreakerNuisanceBias: return std::clamp(m, 0.0, 1.0);
    case FaultKind::kChillerFailure: return std::clamp(m, 0.0, 1.0);
    case FaultKind::kChillerDegradedCop: return std::clamp(0.5 * m, 0.0, 1.0);
    case FaultKind::kTesValveStuck: return std::clamp(0.6 * m, 0.0, 1.0);
    case FaultKind::kGeneratorStartFailure: return 0.9;
    // Magnitude is seconds of extra cranking; a 60 s slip is a modest 0.3
    // and anything beyond ~3 minutes is as bad as not starting at all.
    case FaultKind::kGeneratorDelayedStart:
      return std::clamp(m / 200.0, 0.0, 1.0);
    // Stale/dropped sensors are severe enough to end a sprint (the
    // controller can no longer trust its planning inputs); noise scales
    // with its amplitude.
    case FaultKind::kSensorStale: return 0.6;
    case FaultKind::kSensorDropped: return 0.6;
    case FaultKind::kSensorNoisy: return std::clamp(0.3 + m, 0.0, 1.0);
  }
  return 0.0;
}

}  // namespace dcs::faults
