// Typed, timed infrastructure faults for the sprinting plant.
//
// A Fault derates or breaks one substrate over a time window: UPS banks
// (outage, capacity fade), PDU breakers (rating derated, nuisance-trip
// bias), the chiller (capacity loss, degraded COP), the TES discharge path
// (valve stuck), the backup generator (start failure, delayed start), and
// the controller's sensors (stale, dropped, or noisy readings). The
// FaultInjector pushes the active set into the component models every tick;
// the controller's degradation ladder reacts to the summarized severity.
#pragma once

#include <string_view>

#include "util/units.h"

namespace dcs::faults {

enum class FaultKind {
  // --- power/battery (per-PDU UPS banks) ---
  kUpsBankOutage,    ///< magnitude = fraction of the bank offline [0, 1]
  kUpsCapacityFade,  ///< magnitude = fraction of capacity lost [0, 1]
  // --- power/circuit_breaker, power/pdu (every PDU breaker) ---
  kBreakerDerating,     ///< magnitude = fraction of rated power lost [0, 1)
  kBreakerNuisanceBias, ///< magnitude = trip-fraction bias [0, 1): the
                        ///< element trips at accumulated heat >= 1 - m
  // --- thermal/cooling_plant ---
  kChillerFailure,     ///< magnitude = fraction of thermal capacity lost
                       ///< [0, 1]; 1 is a total chiller outage
  kChillerDegradedCop, ///< magnitude = fractional increase of the chiller's
                       ///< electrical power per watt of heat moved (>= 0)
  // --- thermal/tes_tank ---
  kTesValveStuck, ///< magnitude = fraction of the discharge rate lost
                  ///< [0, 1]; 1 is a stuck-closed valve
  // --- power/generator ---
  kGeneratorStartFailure, ///< the start sequence never completes
  kGeneratorDelayedStart, ///< magnitude = extra start delay in seconds
  // --- controller sensors (see SensorChannel) ---
  kSensorStale,   ///< the reading freezes at its pre-fault value
  kSensorDropped, ///< the reading is lost (reads as zero)
  kSensorNoisy,   ///< magnitude = relative Gaussian noise stddev
};

/// Which controller input a sensor fault corrupts.
enum class SensorChannel {
  kDemand,      ///< normalized demand seen by the controller
  kPower,       ///< remaining-energy-budget fraction fed to strategies
  kTemperature, ///< room temperature rise above setpoint (deg C)
};

struct Fault {
  FaultKind kind = FaultKind::kUpsBankOutage;
  /// Active over [start, end).
  Duration start = Duration::zero();
  Duration end = Duration::zero();
  /// Kind-specific magnitude; see the FaultKind comments.
  double magnitude = 0.0;
  /// Only meaningful for the kSensor* kinds.
  SensorChannel channel = SensorChannel::kDemand;

  [[nodiscard]] bool active_at(Duration t) const noexcept {
    return t >= start && t < end;
  }
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;
[[nodiscard]] std::string_view to_string(SensorChannel channel) noexcept;
[[nodiscard]] bool is_sensor_fault(FaultKind kind) noexcept;

/// Normalized severity in [0, 1] used by the controller's degradation
/// ladder: 0 is harmless, values >= 0.5 end an ongoing sprint outright.
/// Derating faults weigh heavier than their magnitude because they shrink
/// the safety margin of every planning decision.
[[nodiscard]] double severity_of(const Fault& fault) noexcept;

}  // namespace dcs::faults
