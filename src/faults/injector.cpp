#include "faults/injector.h"

#include <algorithm>

#include "util/check.h"
#include "util/log.h"

namespace dcs::faults {

FaultInjector::FaultInjector(FaultSchedule schedule, const Bindings& bindings,
                             std::uint64_t seed)
    : schedule_(std::move(schedule)), bindings_(bindings), rng_(seed) {
  DCS_REQUIRE(bindings_.topology != nullptr, "injector needs a power topology");
  DCS_REQUIRE(bindings_.cooling != nullptr, "injector needs a cooling plant");
  was_active_.assign(schedule_.faults().size(), false);
}

void FaultInjector::apply(Duration now) {
  State s;
  const auto& faults = schedule_.faults();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    const bool active = f.active_at(now);
    if (active != was_active_[i]) {
      const std::string_view kind = to_string(f.kind);
      if (tracer_ != nullptr) {
        tracer_->instant(now, "fault", active ? "inject" : "clear",
                         {obs::arg("kind", kind),
                          obs::arg("index", static_cast<double>(i)),
                          obs::arg("magnitude", f.magnitude),
                          obs::arg("severity", severity_of(f))});
      }
      if (decisions_ != nullptr) {
        decisions_->emit(active ? obs::DecisionRule::kFaultInject
                                : obs::DecisionRule::kFaultClear,
                         {{"magnitude", f.magnitude},
                          {"severity", severity_of(f)}},
                         {},
                         {obs::arg("kind", kind),
                          obs::arg("index", static_cast<double>(i))});
      }
      DCS_LOG_INFO << "fault " << kind << "[" << i << "] "
                   << (active ? "injected" : "cleared") << " at t="
                   << now.sec() << "s";
      was_active_[i] = active;
    }
    if (!active) continue;
    ++s.active_count;
    s.severity = std::max(s.severity, severity_of(f));
    switch (f.kind) {
      case FaultKind::kUpsBankOutage:
        s.ups_availability *= 1.0 - f.magnitude;
        break;
      case FaultKind::kUpsCapacityFade:
        s.ups_capacity_factor *= 1.0 - f.magnitude;
        break;
      case FaultKind::kBreakerDerating:
        s.breaker_rating_factor *= 1.0 - f.magnitude;
        break;
      case FaultKind::kBreakerNuisanceBias:
        s.breaker_trip_bias = std::max(s.breaker_trip_bias, f.magnitude);
        break;
      case FaultKind::kChillerFailure:
        s.chiller_capacity_factor *= 1.0 - f.magnitude;
        break;
      case FaultKind::kChillerDegradedCop:
        s.chiller_cop_penalty += f.magnitude;
        break;
      case FaultKind::kTesValveStuck:
        s.tes_discharge_factor *= 1.0 - f.magnitude;
        break;
      case FaultKind::kGeneratorStartFailure:
        s.generator_start_inhibited = true;
        break;
      case FaultKind::kGeneratorDelayedStart:
        s.generator_extra_delay += Duration::seconds(f.magnitude);
        break;
      case FaultKind::kSensorStale:
      case FaultKind::kSensorDropped:
      case FaultKind::kSensorNoisy:
        s.sensor_fault_active = true;
        break;
    }
  }
  state_ = s;
  ever_active_ = ever_active_ || s.active_count > 0;

  // Re-pushing an unchanged state is a no-op on every bound component (the
  // set_fault hooks assign factors; the battery's stored-charge clamp only
  // bites when the capacity factor drops), so skip the push while the
  // merged factors hold steady — outside fault windows that is every tick.
  if (pushed_ && push_equal(s, last_pushed_)) return;
  bindings_.topology->set_fault_all(s.breaker_rating_factor,
                                    s.breaker_trip_bias, s.ups_availability,
                                    s.ups_capacity_factor);
  bindings_.cooling->set_fault(s.chiller_capacity_factor, s.chiller_cop_penalty);
  if (bindings_.tes != nullptr) {
    bindings_.tes->set_fault(s.tes_discharge_factor);
  }
  if (bindings_.generator != nullptr) {
    bindings_.generator->set_fault(s.generator_start_inhibited,
                                   s.generator_extra_delay);
  }
  last_pushed_ = s;
  pushed_ = true;
}

bool FaultInjector::push_equal(const State& a, const State& b) noexcept {
  return a.breaker_rating_factor == b.breaker_rating_factor &&
         a.breaker_trip_bias == b.breaker_trip_bias &&
         a.ups_availability == b.ups_availability &&
         a.ups_capacity_factor == b.ups_capacity_factor &&
         a.chiller_capacity_factor == b.chiller_capacity_factor &&
         a.chiller_cop_penalty == b.chiller_cop_penalty &&
         a.tes_discharge_factor == b.tes_discharge_factor &&
         a.generator_start_inhibited == b.generator_start_inhibited &&
         a.generator_extra_delay == b.generator_extra_delay;
}

double FaultInjector::measure(SensorChannel channel, Duration now,
                              double true_value) {
  bool dropped = false;
  bool stale = false;
  double noise_stddev = 0.0;
  for (const Fault& f : schedule_.faults()) {
    if (!is_sensor_fault(f.kind) || f.channel != channel || !f.active_at(now)) {
      continue;
    }
    if (f.kind == FaultKind::kSensorDropped) dropped = true;
    if (f.kind == FaultKind::kSensorStale) stale = true;
    if (f.kind == FaultKind::kSensorNoisy) {
      noise_stddev = std::max(noise_stddev, f.magnitude);
    }
  }

  SensorState& s = sensors_[static_cast<std::size_t>(channel)];
  if (dropped) {
    s.latched = false;
    return 0.0;
  }
  if (stale) {
    if (!s.latched) {
      s.latched = true;
      s.latch = s.last;
    }
    return s.latch;
  }
  double value = true_value;
  if (noise_stddev > 0.0) {
    value = std::max(0.0, value * (1.0 + noise_stddev * rng_.normal()));
  }
  s.latched = false;
  s.last = value;
  return value;
}

}  // namespace dcs::faults
